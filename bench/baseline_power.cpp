// Reproduces the in-text idle power ladder of Section 6.1 and the WiFi
// drain comparison:
//
//   back-light + display on, BT off ........ 76.20 mW
//   back-light off .......................... 14.35 mW
//   display off too .........................  5.75 mW
//   + BT page/inquiry scan ..................  8.47 mW
//   + Contory running ....................... 10.11 mW
//   WiFi connected (communicator) ........ ~1190 mW (300 mA)
//   "WiFi connected is more than 100 times more energy-consuming than BT
//    in inquiry [scan] mode"
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

/// Measures the mean power over one minute in the current configuration.
double MeasureMw(testbed::World& world, phone::SmartPhone& phone) {
  const auto mark = phone.energy().Mark();
  const SimTime start = world.Now();
  world.RunFor(1min);
  return phone.energy().JoulesSince(mark) /
         ToSeconds(world.Now() - start) * 1e3;
}

std::string Mw(double mw) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f mW", mw);
  return buf;
}

}  // namespace

int main() {
  bench::PrintHeading(
      "Baseline operating-mode power (Sec. 6.1 in-text measurements)");

  testbed::World world{2026};
  testbed::DeviceOptions opts;
  opts.name = "nokia-6630";
  opts.with_cellular = false;  // "GSM radio turned off"
  opts.with_contory = false;   // toggled explicitly below
  auto& device = world.AddDevice(opts);
  device.bt()->SetEnabled(false);

  std::vector<bench::Row> rows;

  device.phone().SetBacklightOn(true);
  rows.push_back({"display on, back-light on, BT off",
                  Mw(MeasureMw(world, device.phone())), "76.20 mW", ""});

  device.phone().SetBacklightOn(false);
  rows.push_back({"back-light off",
                  Mw(MeasureMw(world, device.phone())), "14.35 mW", ""});

  device.phone().SetDisplayOn(false);
  rows.push_back({"display off",
                  Mw(MeasureMw(world, device.phone())), "5.75 mW", ""});

  device.bt()->SetEnabled(true);
  rows.push_back({"+ BT page/inquiry scan",
                  Mw(MeasureMw(world, device.phone())), "8.47 mW", ""});

  device.phone().SetContoryRunning(true);
  const double contory_on = MeasureMw(world, device.phone());
  rows.push_back({"+ Contory running", Mw(contory_on), "10.11 mW", ""});

  // WiFi drain on a communicator (backlight on, as in the paper's logs).
  testbed::DeviceOptions comm_opts;
  comm_opts.name = "nokia-9500";
  comm_opts.profile = phone::Nokia9500();
  comm_opts.with_bt = false;
  comm_opts.with_wifi = true;
  comm_opts.with_cellular = false;
  comm_opts.with_contory = false;
  comm_opts.position = {500, 0};
  auto& comm = world.AddDevice(comm_opts);
  comm.phone().SetBacklightOn(true);
  const double wifi_mw = MeasureMw(world, comm.phone());
  rows.push_back({"WiFi connected (9500, back-light on)", Mw(wifi_mw),
                  "~1190 mW", "constant ~300 mA drain"});

  bench::PrintTable("Idle power ladder (GSM radio off)", "notes", rows);

  const double bt_scan_mw = 8.47;
  std::printf(
      "\nWiFi connected vs BT scan: x%.0f (paper: \"more than 100 times"
      " more energy-consuming\")\n",
      wifi_mw / bt_scan_mw);

  // The measurement-circuit artifact: WiFi in-rush trips the protection
  // circuit only when the multimeter is in series.
  comm.wifi()->SetEnabled(false);
  comm.phone().battery().SetMeterInserted(true);
  bool tripped = false;
  comm.phone().battery().SetTripListener([&](SimTime) { tripped = true; });
  comm.wifi()->SetEnabled(true);
  std::printf(
      "WiFi start with meter in series tripped protection circuit: %s "
      "(paper: communicator switched off <30 s after WiFi up)\n",
      tripped ? "yes" : "no");
  return 0;
}
