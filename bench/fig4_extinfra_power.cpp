// Regenerates Fig. 4: "Power consumption for extInfra provisioning".
//
// The paper's trace: a Nokia 6630 with the GSM radio on sends 5 on-demand
// queries to the infrastructure over UMTS, one every 3 minutes. Expected
// features: ~1000 mW peaks when the connection is opened and the request
// sent, radio-tail decay after each query, and background GSM paging
// peaks of 450-481 mW every 50-60 s. The multimeter samples at ~500 ms.
#include <cstdio>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "energy/power_meter.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

}  // namespace

int main(int argc, char** argv) {
  const bool dump_tsv = argc > 1 && std::string(argv[1]) == "--tsv";
  bench::PrintHeading(
      "Fig. 4: power consumption for extInfra provisioning "
      "(5 UMTS queries, one every 3 min)");

  testbed::World world{2600};
  testbed::DeviceOptions opts;
  opts.name = "nokia-6630";
  opts.with_bt = false;
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");

  CxtItem seed;
  seed.id = "weather-1";
  seed.type = vocab::kTemperature;
  seed.value = 17.0;
  seed.timestamp = world.Now();
  server.StoreDirect({seed, "weather-station", std::nullopt});

  device.phone().battery().SetMeterInserted(true);
  energy::PowerMeter meter{world.sim(), device.phone().energy()};
  meter.Start();

  core::CollectingClient client;
  std::vector<double> query_latencies_ms;
  for (int i = 0; i < 5; ++i) {
    world.RunFor(3min);
    const SimTime start = world.Now();
    const std::size_t before = client.items.size();
    const auto id = device.contory().ProcessCxtQuery(
        Q(world.sim(),
          "SELECT temperature FROM extInfra DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.size() == before && world.sim().Step()) {
    }
    query_latencies_ms.push_back(ToMillis(world.Now() - start));
  }
  world.RunFor(1min);
  meter.Stop();

  const TimeSeries& trace = meter.trace();
  std::printf("\nPower trace (multimeter, 500 ms sampling):\n\n%s\n",
              trace.AsciiPlot(100, 14, "mW").c_str());

  // Characteristics the paper reports.
  std::printf("peak power:              %7.1f mW  (paper: 1000 mW at "
              "connection open)\n",
              trace.Max());
  std::printf("mean power:              %7.1f mW\n",
              trace.TimeWeightedMean());
  std::printf("sampled energy:          %7.1f J over %.0f s\n",
              meter.SampledEnergyJoules(),
              ToSeconds(trace.points().back().t - trace.points().front().t));

  // Count paging peaks (>400 mW samples outside query windows are GSM
  // paging; the paper: "peaks of 450-481 mW and every 50-60 sec").
  int paging_samples = 0;
  for (const auto& p : trace.points()) {
    if (p.value > 400.0 && p.value < 600.0) ++paging_samples;
  }
  std::printf("paging-band samples:     %7d     (450-481 mW bursts every "
              "50-60 s)\n",
              paging_samples);
  std::printf("queries completed:       %7zu\n", query_latencies_ms.size());
  for (std::size_t i = 0; i < query_latencies_ms.size(); ++i) {
    std::printf("  query %zu latency: %.0f ms\n", i + 1,
                query_latencies_ms[i]);
  }

  if (dump_tsv) {
    std::printf("\n# t_seconds\tpower_mW\n%s", trace.ToTsv().c_str());
  }
  return 0;
}
