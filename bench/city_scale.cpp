// City-scale SM-FINDER bench: 1k -> 10k -> 100k moving phones.
//
// The paper's ad-hoc experiments used four phones on a table; the
// ROADMAP's city-scale target asks what SM-FINDER context lookup costs
// when a whole city runs Contory. This bench builds a CityScenario per
// fleet size (RandomWaypoint mobility, constant node density so hop
// counts measure scale rather than crowding), then:
//
//   1. measures neighbor-query latency (Medium::NodesWithin at WiFi
//      range) under the spatial grid AND the brute-force linear oracle —
//      the grid must win by >= 10x at 10k nodes (hard gate, recorded as
//      grid_speedup_p50_10k in BENCH_city.json);
//   2. launches sequential SM-FINDER rounds from random issuers while
//      the fleet moves, reporting success rate, hop counts, and
//      reply latency;
//   3. charges the fleet's energy ledger across the finder phase and
//      reports Joules/query (includes the fleet's idle floor — the cost
//      of *operating* the city for one query interval, not just the TX).
//
// --smoke shrinks the sweep to one small size for ctest (label `city`);
// CONTORY_STRESS=ON re-points the smoke at 100k nodes. --nodes=a,b,c
// picks sizes, --rounds=N finders per size, --out=FILE writes the flat
// JSON object (BENCH_city.json at the repo root holds a reference run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observability.hpp"
#include "testbed/city_scenario.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[idx];
}

struct SizeResult {
  std::size_t nodes = 0;
  std::size_t rounds = 0;
  double success_rate = 0.0;
  double reply_rate = 0.0;
  double hops_p50 = 0.0;
  double hops_max = 0.0;
  double latency_p50_ms = 0.0;
  double joules_per_query = 0.0;
  double neighbor_grid_p50_us = 0.0;
  double neighbor_linear_p50_us = 0.0;
  double neighbor_speedup_p50 = 0.0;
  double grid_cells = 0.0;
  double mean_cell_occupancy = 0.0;
  double cell_size_m = 0.0;
  double position_updates = 0.0;
  double build_ms = 0.0;
  double sweep_ms = 0.0;
};

/// Wall-clocks NodesWithin at WiFi range from ~256 sampled nodes, once
/// per backend. The grid stays maintained while use_grid is off, so the
/// toggle is O(1) and both runs see identical node positions.
void MeasureNeighborLatency(testbed::CityScenario& city, SizeResult& out) {
  const std::size_t n = city.phone_count();
  const std::size_t samples = std::min<std::size_t>(n, 256);
  const std::size_t stride = std::max<std::size_t>(1, n / samples);
  const double range = city.options().wifi_range_m;

  const auto measure = [&](bool grid) {
    city.medium().set_use_grid(grid);
    std::vector<double> us;
    us.reserve(samples);
    for (std::size_t i = 0; i < n; i += stride) {
      const auto start = Clock::now();
      auto hits = city.medium().NodesWithin(city.node(i), range);
      const auto end = Clock::now();
      if (hits.size() == n) std::abort();  // keep `hits` observable
      us.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
    }
    return Percentile(std::move(us), 0.5);
  };

  out.neighbor_grid_p50_us = measure(true);
  out.neighbor_linear_p50_us = measure(false);
  city.medium().set_use_grid(true);
  out.neighbor_speedup_p50 =
      out.neighbor_grid_p50_us > 0.0
          ? out.neighbor_linear_p50_us / out.neighbor_grid_p50_us
          : 0.0;
}

SizeResult RunSize(std::size_t nodes, std::size_t rounds, int num_hops,
                   std::uint64_t seed, std::int64_t route_cache_ttl_ms,
                   bool record) {
  SizeResult out;
  out.nodes = nodes;
  out.rounds = rounds;

  testbed::CityOptions options;
  options.phones = nodes;
  // Tighter than the builder's default density: mean WiFi degree ~6.4,
  // comfortably above the continuum-percolation threshold, so a giant
  // component exists and finders genuinely route multi-hop.
  options.area_m = 70.0 * std::sqrt(static_cast<double>(nodes));
  options.provider_fraction = 0.25;
  options.seed = seed;
  options.route_cache_ttl =
      std::chrono::milliseconds{route_cache_ttl_ms};

  const auto build_start = Clock::now();
  testbed::CityScenario city(options);
  out.build_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           build_start)
                     .count();

  // Let the waypoint fleet disperse from the uniform scatter first.
  city.sim().RunFor(20s);
  MeasureNeighborLatency(city, out);

  // The SM hop timeout budget AdHocCxtProvider uses for its own rounds.
  const SimDuration timeout = std::chrono::milliseconds{
      static_cast<std::int64_t>(1500.0 * 2.0 * (num_hops + 1))};

  Rng pick{seed ^ 0xc1f7u};
  const auto sweep_start = Clock::now();
  const double joules_before = city.TotalEnergyJoules();
  std::size_t successes = 0;
  std::size_t replies = 0;
  std::vector<double> hops;
  std::vector<double> latency_ms;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto issuer = static_cast<std::size_t>(
        pick.UniformInt(0, static_cast<std::int64_t>(nodes) - 1));
    std::optional<testbed::CityScenario::FinderOutcome> outcome;
    city.LaunchFinder(issuer, /*num_nodes=*/-1, num_hops, timeout,
                      [&](testbed::CityScenario::FinderOutcome o) {
                        outcome = o;
                      });
    city.sim().RunFor(timeout + 5s);  // mobility keeps ticking throughout
    // One flight-recorder frame per finder round: the hop / airtime /
    // route-cache curves line up with the rounds that produced them.
    if (record) {
      COBS(obs::Observability::recorder().Sample(city.sim().Now()));
    }
    if (!outcome.has_value()) continue;
    successes += outcome->success ? 1 : 0;
    replies += outcome->replied ? 1 : 0;
    if (outcome->replied) {
      hops.push_back(static_cast<double>(outcome->hops));
      latency_ms.push_back(ToSeconds(outcome->latency) * 1e3);
    }
  }
  const double joules_after = city.TotalEnergyJoules();
  out.sweep_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           sweep_start)
                     .count();

  out.success_rate =
      static_cast<double>(successes) / static_cast<double>(rounds);
  out.reply_rate =
      static_cast<double>(replies) / static_cast<double>(rounds);
  out.hops_p50 = Percentile(hops, 0.5);
  out.hops_max = hops.empty() ? 0.0 : *std::max_element(hops.begin(),
                                                        hops.end());
  out.latency_p50_ms = Percentile(std::move(latency_ms), 0.5);
  out.joules_per_query =
      (joules_after - joules_before) / static_cast<double>(rounds);
  out.grid_cells = static_cast<double>(city.medium().occupied_cells());
  out.mean_cell_occupancy = city.medium().mean_cell_occupancy();
  out.cell_size_m = city.medium().cell_size_m();
  out.position_updates =
      city.mobility() != nullptr
          ? static_cast<double>(city.mobility()->position_updates())
          : 0.0;
  return out;
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string SizeLabel(std::size_t nodes) {
  if (nodes % 1000 == 0) return std::to_string(nodes / 1000) + "k nodes";
  return std::to_string(nodes) + " nodes";
}

int Run(const std::vector<std::size_t>& sizes, std::size_t rounds,
        int num_hops, bool gate, const std::string& out_path,
        const std::string& trace_path, std::int64_t route_cache_ttl_ms) {
  if (!trace_path.empty()) {
    if (!COBS_ON()) {
      std::fprintf(stderr,
                   "--trace-out ignored: observability is compiled out or "
                   "disabled\n");
    } else {
      obs::RecorderConfig rec;
      rec.capacity = 4096;
      rec.prefixes = {"sm_", "radio_", "recorder_"};
      obs::Observability::recorder().Configure(std::move(rec));
    }
  }

  std::vector<SizeResult> results;
  for (const std::size_t nodes : sizes) {
    std::printf("building %zu-phone city...\n", nodes);
    results.push_back(RunSize(nodes, rounds, num_hops, /*seed=*/20260808,
                              route_cache_ttl_ms,
                              /*record=*/!trace_path.empty()));
    const SizeResult& r = results.back();
    std::printf(
        "  done: success %.0f%%, hops p50 %.0f, grid speedup x%.1f "
        "(build %.0f ms, sweep %.0f ms)\n",
        r.success_rate * 100.0, r.hops_p50, r.neighbor_speedup_p50,
        r.build_ms, r.sweep_ms);
  }

  std::vector<bench::Row> finder_rows;
  std::vector<bench::Row> neighbor_rows;
  for (const SizeResult& r : results) {
    finder_rows.push_back(bench::Row{
        SizeLabel(r.nodes),
        Fmt("%.0f%%", r.success_rate * 100.0) + " success, hops p50 " +
            Fmt("%.0f", r.hops_p50) + ", " +
            Fmt("%.0f ms", r.latency_p50_ms) + ", " +
            Fmt("%.2f J/query", r.joules_per_query),
        "-",
        std::to_string(r.rounds) + " finders, hop budget " +
            std::to_string(num_hops)});
    neighbor_rows.push_back(bench::Row{
        SizeLabel(r.nodes),
        Fmt("%.2f us grid", r.neighbor_grid_p50_us) + " vs " +
            Fmt("%.2f us linear", r.neighbor_linear_p50_us),
        "-", "speedup x" + Fmt("%.1f", r.neighbor_speedup_p50)});
  }
  bench::PrintTable("SM-FINDER at city scale (RandomWaypoint mobility)",
                    "outcome", finder_rows);
  bench::PrintTable("NodesWithin p50 at WiFi range, grid vs linear oracle",
                    "latency", neighbor_rows);

  if (!out_path.empty()) {
    bench::JsonObject json;
    json.Set("bench", std::string("city_scale"));
    json.Set("seed", 20260808.0);
    json.Set("rounds_per_size", static_cast<double>(rounds));
    json.Set("num_hops", static_cast<double>(num_hops));
    for (const SizeResult& r : results) {
      const std::string p = "n" + std::to_string(r.nodes) + "_";
      json.Set(p + "success_rate", r.success_rate);
      json.Set(p + "reply_rate", r.reply_rate);
      json.Set(p + "hops_p50", r.hops_p50);
      json.Set(p + "hops_max", r.hops_max);
      json.Set(p + "latency_p50_ms", r.latency_p50_ms);
      json.Set(p + "joules_per_query", r.joules_per_query);
      json.Set(p + "neighbor_grid_p50_us", r.neighbor_grid_p50_us);
      json.Set(p + "neighbor_linear_p50_us", r.neighbor_linear_p50_us);
      json.Set(p + "neighbor_speedup_p50", r.neighbor_speedup_p50);
      json.Set(p + "grid_cells", r.grid_cells);
      json.Set(p + "mean_cell_occupancy", r.mean_cell_occupancy);
      json.Set(p + "cell_size_m", r.cell_size_m);
      json.Set(p + "position_updates", r.position_updates);
      json.Set(p + "build_ms", r.build_ms);
      json.Set(p + "sweep_ms", r.sweep_ms);
    }
    for (const SizeResult& r : results) {
      if (r.nodes == 10000) {
        json.Set("grid_speedup_p50_10k", r.neighbor_speedup_p50);
      }
    }
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.ToString().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (gate) {
    for (const SizeResult& r : results) {
      if (r.nodes < 10000) continue;
      if (r.neighbor_speedup_p50 < 10.0) {
        std::fprintf(stderr,
                     "GATE FAILED: grid speedup x%.1f at %zu nodes "
                     "(>= x10 required)\n",
                     r.neighbor_speedup_p50, r.nodes);
        return 1;
      }
      std::printf("gate ok: grid speedup x%.1f at %zu nodes (>= x10)\n",
                  r.neighbor_speedup_p50, r.nodes);
    }
  }

  if (!trace_path.empty() && COBS_ON()) {
    if (obs::ExportChromeTrace(trace_path)) {
      std::printf("wrote %s (load at ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<std::size_t> sizes;
  std::size_t rounds = 0;
  int num_hops = 10;
  std::string out_path;
  std::string trace_path;
  std::int64_t route_cache_ttl_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_path = arg + 12;
    } else if (std::strncmp(arg, "--route-cache-ttl-ms=", 21) == 0) {
      route_cache_ttl_ms = std::stoll(arg + 21);
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      std::string list = arg + 8;
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma
                                                        : comma - pos);
        if (!tok.empty()) sizes.push_back(std::stoul(tok));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      rounds = std::stoul(arg + 9);
    } else if (std::strncmp(arg, "--hops=", 7) == 0) {
      num_hops = std::stoi(arg + 7);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: city_scale [--smoke] [--nodes=a,b,c] "
                   "[--rounds=N] [--hops=N] [--out=FILE] "
                   "[--trace-out=FILE] [--route-cache-ttl-ms=N]\n");
      return 2;
    }
  }
  if (sizes.empty()) {
    sizes = smoke ? std::vector<std::size_t>{2000}
                  : std::vector<std::size_t>{1000, 10000, 100000};
  }
  if (rounds == 0) rounds = smoke ? 3 : 20;
  // The smoke run is a liveness check, not a perf measurement: skip the
  // >= 10x gate (1-core CI noise) unless the caller swept a 10k+ size
  // explicitly in a full run.
  return Run(sizes, rounds, num_hops, /*gate=*/!smoke, out_path,
             trace_path, route_cache_ttl_ms);
}
