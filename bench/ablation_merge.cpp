// Ablation: query merging on vs off (the Sec. 4.3 design choice).
//
// "Once the query has been assigned to a Facade, in order to avoid
// redundancy and keep the number of active queries minimal, the Facade
// performs query aggregation." This bench quantifies what that buys:
// N applications submit similar periodic temperature queries on one
// device; we compare providers created, items delivered, and the phone's
// energy with merging enabled vs disabled.
#include <cstdio>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

struct AblationResult {
  std::size_t providers = 0;
  std::size_t items = 0;
  double joules = 0.0;
};

AblationResult Run(bool merging, int apps) {
  testbed::World world{2800 + static_cast<std::uint64_t>(merging)};
  testbed::DeviceOptions opts;
  opts.name = "phone";
  opts.with_cellular = false;
  opts.factory_config.enable_query_merging = merging;
  auto& device = world.AddDevice(opts);

  // A neighboring device publishes fresh temperature readings over BT;
  // every application queries them through the ad hoc facade, so each
  // provider has a real radio cost (discovery, links, polls).
  testbed::DeviceOptions pub_opts;
  pub_opts.name = "publisher";
  pub_opts.position = {5, 0};
  pub_opts.with_cellular = false;
  auto& publisher = world.AddDevice(pub_opts);
  core::CollectingClient pub_app;
  (void)publisher.contory().RegisterCxtServer(pub_app);
  sim::PeriodicTask republish{world.sim(), 5s, [&] {
    CxtItem item;
    item.id = world.sim().ids().NextId("pub");
    item.type = vocab::kTemperature;
    item.value = 17.0;
    item.timestamp = world.Now();
    item.metadata.accuracy = 0.2;
    (void)publisher.contory().PublishCxtItem(item, true);
  }};
  world.RunFor(6s);

  std::vector<std::unique_ptr<core::CollectingClient>> clients;
  for (int i = 0; i < apps; ++i) {
    clients.push_back(std::make_unique<core::CollectingClient>());
    auto q = query::ParseQuery(
        "SELECT temperature FROM adHocNetwork FRESHNESS " +
        std::to_string(30 + 5 * i) + " sec DURATION 10 min EVERY " +
        std::to_string(10 + 2 * i) + " sec");
    if (!q.ok()) throw std::runtime_error(q.status().ToString());
    q->id = world.sim().ids().NextId("q");
    const auto id =
        device.contory().ProcessCxtQuery(*q, *clients.back());
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
  }

  AblationResult result;
  result.providers = device.contory()
                         .facade(query::SourceSel::kAdHocNetwork)
                         .active_provider_count();
  const auto mark = device.phone().energy().Mark();
  world.RunFor(10min);
  result.joules = device.phone().energy().JoulesSince(mark);
  for (const auto& client : clients) result.items += client->items.size();
  return result;
}

}  // namespace

int main() {
  bench::PrintHeading(
      "Ablation: facade query merging (N similar periodic ad hoc queries, one "
      "device)");

  std::printf(
      "\n  apps | merging | providers | items delivered | energy (J)\n");
  std::printf("  %s\n", std::string(64, '-').c_str());
  for (const int apps : {2, 5, 10}) {
    for (const bool merging : {false, true}) {
      const AblationResult r = Run(merging, apps);
      std::printf("  %4d | %-7s | %9zu | %15zu | %8.3f\n", apps,
                  merging ? "on" : "off", r.providers, r.items, r.joules);
    }
  }
  std::printf(
      "\nExpected shape: merging collapses N providers into 1 while every "
      "application\nstill receives its items (post-extraction); the "
      "provider-side work and energy\nstay flat as N grows instead of "
      "scaling linearly.\n");
  return 0;
}
