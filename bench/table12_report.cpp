// Regenerates Tables 1 and 2 from the observability subsystem alone.
//
// bench/table1_latency and bench/table2_energy time and meter each
// operation with bespoke bench code (manual SimTime marks, manual
// energy ledger marks). This report runs the same scenarios — same
// seeds, same topologies, same windows — but every printed number is
// read back from what the instrumented pipeline itself recorded:
//
//   latencies . the op_latency_ms{op,mechanism,transport} and
//               first_delivery_latency_ms{mechanism} histograms the
//               publisher / StoreCxtItem / DeliveryRouter hooks fill
//               (mean [90% CI] straight from Histogram::ToCell), and
//   energy .... QueryTracer spans: on-demand rows use the query's own
//               root span (energy probe sampled at admission and
//               terminal completion); windowed rows open an explicit
//               tracer span over the paper's measurement window and
//               read energy/duration/items back from the finished span.
//
// Matching numbers between the two reports is the acceptance check for
// the instrumentation: identical physics, independent measurement
// plumbing. Local object operations (createCxtItem / createCxtQuery)
// are host-wall-clock rows with no middleware hook; they stay in
// bench/table1_latency.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "obs/observability.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

constexpr int kLatencyRuns = 8;  // Table 1: 8 runs, 90% CI
constexpr int kEnergyRuns = 5;   // Table 2: 5 runs, 90% CI
/// "Turning on Contory as well leads to a power consumption of 10.11 mW."
constexpr double kContoryIdleMw = 10.11;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

CxtItem LightItem(testbed::World& world) {
  CxtItem item;
  item.id = world.sim().ids().NextId("item");
  item.type = vocab::kLight;
  item.value = 5200.0;
  item.timestamp = world.Now();
  item.metadata.accuracy = 50.0;
  return item;
}

/// Marginal energy above the Contory-idle baseline, per delivered item.
double MarginalPerItem(double joules, double window_s, std::uint64_t items) {
  if (items == 0) return 0.0;
  return (joules - kContoryIdleMw / 1e3 * window_s) /
         static_cast<double>(items);
}

/// Renders a registry histogram as the paper's table cell. Snapshot it
/// before the next ResetForTest wipes the group's samples.
std::string HistCell(const std::string& name, const obs::Labels& labels,
                     const char* unit) {
  const obs::Histogram* h =
      obs::Observability::metrics().FindHistogram(name, labels);
  if (h == nullptr || h->count() == 0) return "n/a (no samples)";
  return h->ToCell() + " " + unit;
}

/// The finished root span of `query_id`, or nullptr.
const obs::Span* RootSpanOf(const std::string& query_id) {
  static std::vector<obs::Span> spans;  // keep the copy alive for caller
  spans = obs::Observability::tracer().FinishedFor(query_id);
  for (const obs::Span& s : spans) {
    if (s.parent == 0) return &s;
  }
  return nullptr;
}

/// Opens an explicit tracer span metering `device` — the tracer used as
/// the measurement instrument for windows no pipeline span brackets
/// (provider side, steady-state windows, radio-tail windows).
std::uint64_t OpenWindowSpan(const std::string& id, testbed::World& world,
                             testbed::Device& device) {
  return obs::Observability::tracer().BeginQuery(
      id, world.Now(),
      [&device] { return device.phone().energy().TotalEnergyJoules(); });
}

// ----------------------------------------------------------------------
// Table 1 scenario groups (same seeds/topologies as bench/table1_latency;
// each group starts from a clean registry and snapshots its rows).
// ----------------------------------------------------------------------

void RunBtPublishes() {
  for (int run = 0; run < kLatencyRuns; ++run) {
    testbed::World world{300 + static_cast<std::uint64_t>(run)};
    auto& device = world.AddDevice({.name = "publisher"});
    core::CollectingClient server;
    (void)device.contory().RegisterCxtServer(server);
    bool done = false;
    device.contory().publisher().Publish(LightItem(world), "",
                                         [&](Status) { done = true; });
    while (!done && world.sim().Step()) {
    }
  }
}

void RunWifiPublishes() {
  for (int run = 0; run < kLatencyRuns; ++run) {
    testbed::World world{320 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions opts;
    opts.name = "publisher";
    opts.profile = phone::Nokia9500();
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.with_cellular = false;
    auto& device = world.AddDevice(opts);
    core::CollectingClient server;
    (void)device.contory().RegisterCxtServer(server);
    bool done = false;
    device.contory().publisher().Publish(LightItem(world), "",
                                         [&](Status) { done = true; });
    while (!done && world.sim().Step()) {
    }
  }
}

void RunUmtsPublishes() {
  testbed::World world{340};
  testbed::DeviceOptions opts;
  opts.name = "publisher";
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  world.AddContextServer("infra.dynamos.fi");
  for (int run = 0; run < kLatencyRuns + 2; ++run) {
    world.RunFor(12s);
    bool done = false;
    device.contory().StoreCxtItem(LightItem(world),
                                  [&](Status) { done = true; });
    while (!done && world.sim().Step()) {
    }
    // Drop the two cold-start samples the same way the bench does.
    if (run == 1) obs::Observability::metrics().Reset();
  }
}

void RunBtGets() {
  for (int run = 0; run < kLatencyRuns; ++run) {
    testbed::World world{360 + static_cast<std::uint64_t>(run)};
    auto& requester = world.AddDevice({.name = "requester"});
    testbed::DeviceOptions pub_opts;
    pub_opts.name = "publisher";
    pub_opts.position = {5, 0};
    auto& publisher = world.AddDevice(pub_opts);
    core::CollectingClient server;
    (void)publisher.contory().RegisterCxtServer(server);
    (void)publisher.contory().PublishCxtItem(LightItem(world), true);
    world.RunFor(1s);

    core::CollectingClient client;
    const auto id = requester.contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM adHocNetwork DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
  }
}

void RunWifiGets(int hops) {
  for (int run = 0; run < kLatencyRuns; ++run) {
    testbed::World world{380 + static_cast<std::uint64_t>(hops * 40 + run)};
    std::vector<testbed::Device*> devices;
    for (int i = 0; i <= hops; ++i) {
      testbed::DeviceOptions opts;
      opts.name = "comm-" + std::to_string(i);
      opts.profile = phone::Nokia9500();
      opts.position = {i * 80.0, 0};
      opts.with_bt = false;
      opts.with_wifi = true;
      opts.with_cellular = false;
      devices.push_back(&world.AddDevice(opts));
    }
    core::CollectingClient server;
    (void)devices.back()->contory().RegisterCxtServer(server);
    (void)devices.back()->contory().PublishCxtItem(LightItem(world), true);

    core::CollectingClient client;
    const auto id = devices[0]->contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM adHocNetwork(1," +
                           std::to_string(hops) + ") DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
  }
}

void RunUmtsGets() {
  testbed::World world{420};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");
  server.StoreDirect({LightItem(world), "boat-7", std::nullopt});
  for (int run = 0; run < kLatencyRuns; ++run) {
    world.RunFor(60s);  // decay to idle: the paper's on-demand cold cost
    core::CollectingClient client;
    const auto id = device.contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM extInfra DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
  }
}

// ----------------------------------------------------------------------
// Table 2 scenario groups (same seeds as bench/table2_energy). Energy is
// read back from tracer spans, never from the ledger directly.
// ----------------------------------------------------------------------

/// BT on-demand query: the pipeline's own root span brackets exactly the
/// admission -> terminal-completion window, energy probe included.
RunningStats BtOnDemandFromRootSpans() {
  RunningStats joules;
  for (int run = 0; run < kEnergyRuns; ++run) {
    testbed::World world{600 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions req_opts;
    req_opts.name = "requester";
    req_opts.with_cellular = false;
    auto& requester = world.AddDevice(req_opts);
    testbed::DeviceOptions pub_opts;
    pub_opts.name = "publisher";
    pub_opts.position = {5, 0};
    pub_opts.with_cellular = false;
    auto& publisher = world.AddDevice(pub_opts);
    core::CollectingClient server;
    (void)publisher.contory().RegisterCxtServer(server);
    (void)publisher.contory().PublishCxtItem(LightItem(world), true);
    world.RunFor(1s);

    core::CollectingClient client;
    const auto id = requester.contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM adHocNetwork DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
    // The on-demand round completes right after delivery; give the
    // completion cascade its events, then read the finished root span.
    world.RunFor(5s);
    const obs::Span* root = RootSpanOf(*id);
    if (root == nullptr) {  // still open: fall back to duration expiry
      world.RunFor(60s);
      root = RootSpanOf(*id);
    }
    if (root != nullptr) joules.Add(root->energy_joules());
  }
  return joules;
}

struct BtPeriodicResult {
  RunningStats requester_per_item;
  RunningStats provider_per_item;
};

/// BT periodic steady state: one explicit tracer span per side over the
/// paper's 5-minute window; marginal-per-item from the span's own
/// energy/duration/items.
BtPeriodicResult BtPeriodicFromWindowSpans() {
  BtPeriodicResult result;
  auto& tracer = obs::Observability::tracer();
  for (int run = 0; run < kEnergyRuns; ++run) {
    testbed::World world{620 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions req_opts;
    req_opts.name = "requester";
    req_opts.with_cellular = false;
    auto& requester = world.AddDevice(req_opts);
    testbed::DeviceOptions pub_opts;
    pub_opts.name = "publisher";
    pub_opts.position = {5, 0};
    pub_opts.with_cellular = false;
    auto& publisher = world.AddDevice(pub_opts);
    core::CollectingClient server;
    (void)publisher.contory().RegisterCxtServer(server);
    sim::PeriodicTask republish{world.sim(), 5s, [&] {
      (void)publisher.contory().PublishCxtItem(LightItem(world), true);
    }};

    core::CollectingClient client;
    const auto id = requester.contory().ProcessCxtQuery(
        Q(world.sim(),
          "SELECT light FROM adHocNetwork DURATION 20 min EVERY 5 sec"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    world.RunFor(30s);  // discovery + connection settle
    const std::size_t items_before = client.items.size();
    const std::string req_id = "t2-bt-req-" + std::to_string(run);
    const std::string prov_id = "t2-bt-prov-" + std::to_string(run);
    const std::uint64_t req_span = OpenWindowSpan(req_id, world, requester);
    const std::uint64_t prov_span = OpenWindowSpan(prov_id, world, publisher);
    world.RunFor(5min);
    const auto items =
        static_cast<std::uint64_t>(client.items.size() - items_before);
    tracer.AddItems(req_span, items);
    tracer.AddItems(prov_span, items);
    tracer.EndQuery(req_span, world.Now(), "window");
    tracer.EndQuery(prov_span, world.Now(), "window");

    for (const auto& [window_id, stats] :
         {std::pair{req_id, &result.requester_per_item},
          std::pair{prov_id, &result.provider_per_item}}) {
      const obs::Span* span = RootSpanOf(window_id);
      if (span != nullptr) {
        stats->Add(MarginalPerItem(span->energy_joules(),
                                   ToSeconds(span->duration()), span->items));
      }
    }
  }
  return result;
}

/// intSensor periodic location query over the BT-GPS.
RunningStats GpsPeriodicFromWindowSpans() {
  RunningStats joules;
  auto& tracer = obs::Observability::tracer();
  for (int run = 0; run < kEnergyRuns; ++run) {
    testbed::World world{640 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions opts;
    opts.name = "phone";
    opts.with_cellular = false;
    auto& device = world.AddDevice(opts);
    world.AddGps("gps-1", {3, 0});

    core::CollectingClient client;
    const auto id = device.contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT location DURATION 20 min EVERY 5 sec"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    world.RunFor(30s);  // discovery + SDP + connect
    const std::size_t items_before = client.items.size();
    const std::string window_id = "t2-gps-" + std::to_string(run);
    const std::uint64_t span = OpenWindowSpan(window_id, world, device);
    world.RunFor(5min);
    tracer.AddItems(span, static_cast<std::uint64_t>(client.items.size() -
                                                     items_before));
    tracer.EndQuery(span, world.Now(), "window");
    const obs::Span* finished = RootSpanOf(window_id);
    if (finished != nullptr) {
      joules.Add(MarginalPerItem(finished->energy_joules(),
                                 ToSeconds(finished->duration()),
                                 finished->items));
    }
  }
  return joules;
}

/// WiFi periodic get over `hops` hops: one explicit span per measured
/// round (launch -> delivery), back-light on as in the paper.
RunningStats WifiRoundFromWindowSpans(int hops) {
  RunningStats joules;
  auto& tracer = obs::Observability::tracer();
  for (int run = 0; run < kEnergyRuns; ++run) {
    testbed::World world{660 + static_cast<std::uint64_t>(hops * 20 + run)};
    std::vector<testbed::Device*> devices;
    for (int i = 0; i <= hops; ++i) {
      testbed::DeviceOptions opts;
      opts.name = "comm-" + std::to_string(i);
      opts.profile = phone::Nokia9500();
      opts.position = {i * 80.0, 0};
      opts.with_bt = false;
      opts.with_wifi = true;
      opts.with_cellular = false;
      devices.push_back(&world.AddDevice(opts));
    }
    devices[0]->phone().SetBacklightOn(true);
    core::CollectingClient server;
    (void)devices.back()->contory().RegisterCxtServer(server);
    sim::PeriodicTask republish{world.sim(), 5s, [&] {
      (void)devices.back()->contory().PublishCxtItem(LightItem(world), true);
    }};
    world.RunFor(1s);

    core::CollectingClient client;
    const auto id = devices[0]->contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM adHocNetwork(1," +
                           std::to_string(hops) +
                           ") DURATION 20 min EVERY 30 sec"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
    const std::size_t target = client.items.size() + 1;
    // Align to the next EVERY boundary, then meter exactly one round.
    world.RunFor(30s - (world.Now().time_since_epoch() % 30s));
    const std::string window_id =
        "t2-wifi" + std::to_string(hops) + "-" + std::to_string(run);
    const std::uint64_t span = OpenWindowSpan(window_id, world, *devices[0]);
    while (client.items.size() < target && world.sim().Step()) {
    }
    tracer.AddItems(span, 1);
    tracer.EndQuery(span, world.Now(), "round");
    const obs::Span* finished = RootSpanOf(window_id);
    if (finished != nullptr) joules.Add(finished->energy_joules());
  }
  return joules;
}

/// extInfra on-demand get: the root span closes at the on-demand round's
/// completion, before the UMTS radio tails decay, so the paper's window
/// (first item + 30 s of DCH/FACH tail) needs an explicit span.
RunningStats UmtsOnDemandFromWindowSpans() {
  RunningStats joules;
  auto& tracer = obs::Observability::tracer();
  testbed::World world{690};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.dynamos.fi";
  opts.with_bt = false;
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");
  server.StoreDirect({LightItem(world), "boat-7", std::nullopt});
  for (int run = 0; run < kEnergyRuns; ++run) {
    world.RunFor(60s);  // radio back to idle
    core::CollectingClient client;
    const std::string window_id = "t2-umts-" + std::to_string(run);
    const std::uint64_t span = OpenWindowSpan(window_id, world, device);
    const auto id = device.contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM extInfra DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
    world.RunFor(30s);  // DCH + FACH tails decay
    tracer.AddItems(span, 1);
    tracer.EndQuery(span, world.Now(), "window");
    const obs::Span* finished = RootSpanOf(window_id);
    if (finished != nullptr) joules.Add(finished->energy_joules());
  }
  return joules;
}

}  // namespace

int main() {
  bench::PrintHeading(
      "Tables 1 & 2 reconstructed from the metrics registry and tracer");

  // ---- Table 1: operation latencies from registry histograms ----------
  std::vector<bench::Row> t1;

  obs::Observability::ResetForTest();
  RunBtPublishes();
  t1.push_back({"adHocNetwork BT: publishCxtItem",
                HistCell("op_latency_ms",
                         {{"op", "publishCxtItem"},
                          {"mechanism", "adHocNetwork"},
                          {"transport", "bt"}},
                         "ms"),
                "140.359 ms", "op_latency_ms histogram"});

  obs::Observability::ResetForTest();
  RunWifiPublishes();
  t1.push_back({"adHocNetwork WiFi: publishCxtItem",
                HistCell("op_latency_ms",
                         {{"op", "publishCxtItem"},
                          {"mechanism", "adHocNetwork"},
                          {"transport", "wifi"}},
                         "ms"),
                "0.130 ms", "op_latency_ms histogram"});

  obs::Observability::ResetForTest();
  RunUmtsPublishes();
  t1.push_back({"extInfra UMTS: publishCxtItem",
                HistCell("op_latency_ms",
                         {{"op", "publishCxtItem"},
                          {"mechanism", "extInfra"},
                          {"transport", "cellular"}},
                         "ms"),
                "772.728 ms", "op_latency_ms histogram"});

  // getCxtItem rows: the DeliveryRouter's submission-to-first-item
  // histogram. For BT the window spans the whole discovery chain, so the
  // paper reference is the sum of its three reported components
  // (13 s inquiry + 1.12 s SDP + 31.830 ms poll ~= 14.15 s).
  obs::Observability::ResetForTest();
  RunBtGets();
  t1.push_back({"adHocNetwork BT one hop: getCxtItem",
                HistCell("first_delivery_latency_ms",
                         {{"mechanism", "adHocNetwork"}}, "ms"),
                "~14152 ms", "incl. discovery (13 s + 1.12 s + 31.8 ms)"});

  obs::Observability::ResetForTest();
  RunWifiGets(1);
  t1.push_back({"adHocNetwork WiFi one hop: getCxtItem",
                HistCell("first_delivery_latency_ms",
                         {{"mechanism", "adHocNetwork"}}, "ms"),
                "761.280 ms", "first_delivery histogram"});

  obs::Observability::ResetForTest();
  RunWifiGets(2);
  t1.push_back({"adHocNetwork WiFi two hops: getCxtItem",
                HistCell("first_delivery_latency_ms",
                         {{"mechanism", "adHocNetwork"}}, "ms"),
                "1422.500 ms", "first_delivery histogram"});

  obs::Observability::ResetForTest();
  RunUmtsGets();
  t1.push_back({"extInfra UMTS: getCxtItem",
                HistCell("first_delivery_latency_ms",
                         {{"mechanism", "extInfra"}}, "ms"),
                "1473.000 ms", "first_delivery histogram"});

  bench::PrintTable("Table 1 via registry (avg [90% CI] over 8 runs)",
                    "source", t1);

  // ---- Table 2: energy per context item from tracer spans -------------
  std::vector<bench::Row> t2;

  obs::Observability::ResetForTest();
  const BtPeriodicResult bt_periodic = BtPeriodicFromWindowSpans();
  t2.push_back({"adHocNetwork BT: provideCxtItem",
                bench::Cell(bt_periodic.provider_per_item) + " J",
                "0.133 J", "provider-side window span"});
  t2.push_back({"adHocNetwork BT: getCxtItem (periodic)",
                bench::Cell(bt_periodic.requester_per_item) + " J",
                "0.099 J", "requester-side window span"});

  obs::Observability::ResetForTest();
  t2.insert(t2.begin() + 1,
            {"adHocNetwork BT: getCxtItem (on-demand+discovery)",
             bench::Cell(BtOnDemandFromRootSpans()) + " J", "5.270 J",
             "query root span"});

  obs::Observability::ResetForTest();
  t2.push_back({"intSensor BT-GPS: getCxtItem (periodic)",
                bench::Cell(GpsPeriodicFromWindowSpans()) + " J", "0.422 J",
                "window span, marginal/item"});

  obs::Observability::ResetForTest();
  t2.push_back({"adHocNetwork WiFi 1 hop: getCxtItem (periodic)",
                bench::Cell(WifiRoundFromWindowSpans(1)) + " J", ">0.906 J",
                "one-round span, back-light on"});

  obs::Observability::ResetForTest();
  t2.push_back({"adHocNetwork WiFi 2 hops: getCxtItem (periodic)",
                bench::Cell(WifiRoundFromWindowSpans(2)) + " J", ">1.693 J",
                "one-round span, back-light on"});

  obs::Observability::ResetForTest();
  t2.push_back({"extInfra UMTS: getCxtItem (on-demand)",
                bench::Cell(UmtsOnDemandFromWindowSpans()) + " J",
                "14.076 J", "window span incl. radio tails"});

  bench::PrintTable("Table 2 via tracer spans (avg [90% CI] over 5 runs)",
                    "source", t2);

  std::printf(
      "\nEvery cell above is read back from the observability subsystem\n"
      "(op_latency_ms / first_delivery_latency_ms histograms, query root\n"
      "spans, explicit tracer window spans); bench/table1_latency and\n"
      "bench/table2_energy measure the same scenarios with bench-side\n"
      "timers, so the two reports cross-check the instrumentation.\n");
  return 0;
}
