#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>

namespace contory::bench {

void PrintHeading(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

std::string Ratio(double measured, double reference) {
  if (reference == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "x%.2f", measured / reference);
  return buf;
}

std::string Cell(const RunningStats& stats, int precision) {
  return stats.ToCell(precision);
}

void PrintTable(const std::string& title, const std::string& value_header,
                const std::vector<Row>& rows) {
  std::size_t label_w = std::string("operation").size();
  std::size_t measured_w = std::string("measured").size();
  std::size_t paper_w = std::string("paper").size();
  for (const auto& row : rows) {
    label_w = std::max(label_w, row.label.size());
    measured_w = std::max(measured_w, row.measured.size());
    paper_w = std::max(paper_w, row.paper.size());
  }
  std::printf("\n%s\n", title.c_str());
  std::printf("  %-*s | %-*s | %-*s | %s\n", static_cast<int>(label_w),
              "operation", static_cast<int>(measured_w), "measured",
              static_cast<int>(paper_w), "paper", value_header.c_str());
  std::printf("  %s\n",
              std::string(label_w + measured_w + paper_w + 30, '-').c_str());
  for (const auto& row : rows) {
    std::printf("  %-*s | %-*s | %-*s | %s\n", static_cast<int>(label_w),
                row.label.c_str(), static_cast<int>(measured_w),
                row.measured.c_str(), static_cast<int>(paper_w),
                row.paper.c_str(), row.note.c_str());
  }
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

JsonObject& JsonObject::Set(const std::string& key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key,
                            const std::string& value) {
  fields_.emplace_back(key, '"' + JsonEscape(value) + '"');
  return *this;
}

std::string JsonObject::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"' + JsonEscape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += '}';
  return out;
}

std::string ToJsonArray(const std::vector<JsonObject>& rows) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "  " + rows[i].ToString();
    if (i + 1 < rows.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

}  // namespace contory::bench
