// Regenerates Table 2: "Energy consumption of different context
// provisioning mechanisms", in Joules per context item.
//
// Paper reference values (Nokia 6630; 9500 for WiFi):
//   adHocNetwork BT: provideCxtItem ..................... 0.133 J
//   adHocNetwork BT: getCxtItem (on-demand, incl. discovery) 5.270 J
//   adHocNetwork BT: getCxtItem (periodic, no discovery)  0.099 J
//   intSensor BT-GPS: getCxtItem (periodic, no discovery) 0.422 J
//   adHocNetwork WiFi one hop (periodic) ................ >0.906 J
//   adHocNetwork WiFi two hops (periodic) ............... >1.693 J
//   extInfra UMTS: getCxtItem (on-demand) .............. 14.076 J
//
// Methodology mirrors the paper: GSM radio off / back-light off / display
// off except where noted; WiFi rows include the back-light (footnote a);
// per-item figures for periodic rows are the marginal energy above the
// Contory-idle baseline (10.11 mW) divided by items received. 5 runs,
// 90% CI.
#include <cstdio>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

constexpr int kRuns = 5;
/// "Turning on Contory as well leads to a power consumption of 10.11 mW."
constexpr double kContoryIdleMw = 10.11;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

CxtItem LightItem(testbed::World& world) {
  CxtItem item;
  item.id = world.sim().ids().NextId("item");
  item.type = vocab::kLight;
  item.value = 5200.0;
  item.timestamp = world.Now();
  item.metadata.accuracy = 50.0;
  return item;
}

/// Marginal energy above the idle baseline, per delivered item.
double MarginalPerItem(double joules, double window_s, std::size_t items,
                       double baseline_mw = kContoryIdleMw) {
  if (items == 0) return 0.0;
  return (joules - baseline_mw / 1e3 * window_s) /
         static_cast<double>(items);
}

/// BT one-hop on-demand query including device+service discovery.
RunningStats BenchBtOnDemand() {
  RunningStats joules;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{600 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions req_opts;
    req_opts.name = "requester";
    req_opts.with_cellular = false;
    auto& requester = world.AddDevice(req_opts);
    testbed::DeviceOptions pub_opts;
    pub_opts.name = "publisher";
    pub_opts.position = {5, 0};
    pub_opts.with_cellular = false;
    auto& publisher = world.AddDevice(pub_opts);
    core::CollectingClient server;
    (void)publisher.contory().RegisterCxtServer(server);
    (void)publisher.contory().PublishCxtItem(LightItem(world), true);
    world.RunFor(1s);

    core::CollectingClient client;
    const auto mark = requester.phone().energy().Mark();
    const auto id = requester.contory().ProcessCxtQuery(
        Q(world.sim(),
          "SELECT light FROM adHocNetwork DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
    joules.Add(requester.phone().energy().JoulesSince(mark));
  }
  return joules;
}

struct PeriodicResult {
  RunningStats requester_per_item;
  RunningStats provider_per_item;
};

/// BT one-hop periodic query, post-discovery steady state. Also measures
/// the provider (publisher) side for the provideCxtItem row.
PeriodicResult BenchBtPeriodic() {
  PeriodicResult result;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{620 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions req_opts;
    req_opts.name = "requester";
    req_opts.with_cellular = false;
    auto& requester = world.AddDevice(req_opts);
    testbed::DeviceOptions pub_opts;
    pub_opts.name = "publisher";
    pub_opts.position = {5, 0};
    pub_opts.with_cellular = false;
    auto& publisher = world.AddDevice(pub_opts);
    core::CollectingClient server;
    (void)publisher.contory().RegisterCxtServer(server);
    // Fresh values every 5 s.
    sim::PeriodicTask republish{world.sim(), 5s, [&] {
      (void)publisher.contory().PublishCxtItem(LightItem(world), true);
    }};

    core::CollectingClient client;
    const auto id = requester.contory().ProcessCxtQuery(
        Q(world.sim(),
          "SELECT light FROM adHocNetwork DURATION 20 min EVERY 5 sec"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    // Let discovery + connection settle, then measure steady state.
    world.RunFor(30s);
    const std::size_t items_before = client.items.size();
    const auto req_mark = requester.phone().energy().Mark();
    const auto pub_mark = publisher.phone().energy().Mark();
    const SimTime start = world.Now();
    world.RunFor(5min);
    const double window = ToSeconds(world.Now() - start);
    const auto items =
        client.items.size() - items_before;
    result.requester_per_item.Add(MarginalPerItem(
        requester.phone().energy().JoulesSince(req_mark), window, items));
    result.provider_per_item.Add(MarginalPerItem(
        publisher.phone().energy().JoulesSince(pub_mark), window, items));
  }
  return result;
}

/// intSensor periodic location query over the BT-GPS (1 Hz NMEA stream).
RunningStats BenchGpsPeriodic() {
  RunningStats joules;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{640 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions opts;
    opts.name = "phone";
    opts.with_cellular = false;
    auto& device = world.AddDevice(opts);
    world.AddGps("gps-1", {3, 0});

    core::CollectingClient client;
    const auto id = device.contory().ProcessCxtQuery(
        Q(world.sim(),
          "SELECT location DURATION 20 min EVERY 5 sec"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    world.RunFor(30s);  // discovery + SDP + connect
    const std::size_t items_before = client.items.size();
    const auto mark = device.phone().energy().Mark();
    const SimTime start = world.Now();
    world.RunFor(5min);
    const double window = ToSeconds(world.Now() - start);
    joules.Add(MarginalPerItem(device.phone().energy().JoulesSince(mark),
                               window,
                               client.items.size() - items_before));
  }
  return joules;
}

/// WiFi periodic get over `hops` hops: per-item energy on the requesting
/// communicator, back-light on (the paper's footnote a), attributed as
/// system power x round latency — the way the authors derived their
/// lower bounds from partial logs.
RunningStats BenchWifiPeriodic(int hops) {
  RunningStats joules;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{660 + static_cast<std::uint64_t>(hops * 20 + run)};
    std::vector<testbed::Device*> devices;
    for (int i = 0; i <= hops; ++i) {
      testbed::DeviceOptions opts;
      opts.name = "comm-" + std::to_string(i);
      opts.profile = phone::Nokia9500();
      opts.position = {i * 80.0, 0};
      opts.with_bt = false;
      opts.with_wifi = true;
      opts.with_cellular = false;
      devices.push_back(&world.AddDevice(opts));
    }
    devices[0]->phone().SetBacklightOn(true);
    core::CollectingClient server;
    (void)devices.back()->contory().RegisterCxtServer(server);
    sim::PeriodicTask republish{world.sim(), 5s, [&] {
      (void)devices.back()->contory().PublishCxtItem(LightItem(world),
                                                     true);
    }};
    world.RunFor(1s);

    core::CollectingClient client;
    const auto id = devices[0]->contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM adHocNetwork(1," +
                           std::to_string(hops) +
                           ") DURATION 20 min EVERY 30 sec"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    // Measure the energy of one round: from launch to delivery.
    while (client.items.empty() && world.sim().Step()) {
    }
    const std::size_t target = client.items.size() + 1;
    // Next round starts at the EVERY boundary; time its energy.
    world.RunFor(30s - (world.Now().time_since_epoch() % 30s));
    const auto mark = devices[0]->phone().energy().Mark();
    const SimTime start = world.Now();
    while (client.items.size() < target && world.sim().Step()) {
    }
    const double round_s = ToSeconds(world.Now() - start);
    (void)round_s;
    joules.Add(devices[0]->phone().energy().JoulesSince(mark));
  }
  return joules;
}

/// extInfra on-demand get including the full radio tail decay.
RunningStats BenchUmtsOnDemand() {
  RunningStats joules;
  testbed::World world{690};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.dynamos.fi";
  opts.with_bt = false;
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");
  server.StoreDirect({LightItem(world), "boat-7", std::nullopt});
  for (int run = 0; run < kRuns; ++run) {
    world.RunFor(60s);  // radio back to idle
    core::CollectingClient client;
    const auto mark = device.phone().energy().Mark();
    const auto id = device.contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM extInfra DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
    world.RunFor(30s);  // DCH + FACH tails decay
    joules.Add(device.phone().energy().JoulesSince(mark));
  }
  return joules;
}

}  // namespace

int main() {
  bench::PrintHeading(
      "Table 2: energy consumption per context item (Joule)");

  std::vector<bench::Row> rows;

  const PeriodicResult bt_periodic = BenchBtPeriodic();
  rows.push_back({"adHocNetwork BT: provideCxtItem",
                  bench::Cell(bt_periodic.provider_per_item) + " J",
                  "0.133 J", "provider side, periodic"});
  rows.push_back({"adHocNetwork BT: getCxtItem (on-demand+discovery)",
                  bench::Cell(BenchBtOnDemand()) + " J", "5.270 J",
                  "13 s inquiry dominates"});
  rows.push_back({"adHocNetwork BT: getCxtItem (periodic)",
                  bench::Cell(bt_periodic.requester_per_item) + " J",
                  "0.099 J", "no re-discovery"});
  rows.push_back({"intSensor BT-GPS: getCxtItem (periodic)",
                  bench::Cell(BenchGpsPeriodic()) + " J", "0.422 J",
                  "340 B NMEA @1 Hz, segmented"});
  rows.push_back({"adHocNetwork WiFi 1 hop: getCxtItem (periodic)",
                  bench::Cell(BenchWifiPeriodic(1)) + " J", ">0.906 J",
                  "incl. back-light (a)"});
  rows.push_back({"adHocNetwork WiFi 2 hops: getCxtItem (periodic)",
                  bench::Cell(BenchWifiPeriodic(2)) + " J", ">1.693 J",
                  "incl. back-light (a)"});
  rows.push_back({"extInfra UMTS: getCxtItem (on-demand)",
                  bench::Cell(BenchUmtsOnDemand()) + " J", "14.076 J",
                  "connection + radio tails"});

  bench::PrintTable("Energy per item (avg [90% CI] over 5 runs)", "notes",
                    rows);
  std::printf(
      "\nShape checks (paper):\n"
      "  on-demand-with-discovery >> periodic BT (x50+)\n"
      "  UMTS >> everything else (x100+ vs periodic BT)\n"
      "  intSensor periodic > adHocNetwork periodic (segmentation)\n"
      "  WiFi rows ~ system power x round latency\n");
  return 0;
}
