// Shared presentation helpers for the reproduction benches: each bench
// regenerates one table or figure of the paper and prints measured values
// next to the paper's, in the paper's "Avg [90% Conf interval]" format.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"

namespace contory::bench {

struct Row {
  std::string label;
  std::string measured;
  std::string paper;
  std::string note;
};

/// Prints a boxed comparison table.
void PrintTable(const std::string& title, const std::string& value_header,
                const std::vector<Row>& rows);

/// Prints a section heading.
void PrintHeading(const std::string& text);

/// "x12.3" style ratio annotation (measured/reference).
[[nodiscard]] std::string Ratio(double measured, double reference);

/// Formats a RunningStats the way the paper's tables do.
[[nodiscard]] std::string Cell(const RunningStats& stats, int precision = 3);

/// Minimal machine-readable output: one flat JSON object with fields in
/// insertion order (deterministic across runs, diffable in CI).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double value);
  JsonObject& Set(const std::string& key, const std::string& value);
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // pre-encoded
};

/// Renders rows as a JSON array, one object per line.
[[nodiscard]] std::string ToJsonArray(const std::vector<JsonObject>& rows);

}  // namespace contory::bench
