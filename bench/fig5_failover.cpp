// Regenerates Fig. 5: "Contory behaviour in the presence of BT-GPS
// failure".
//
// The paper's trace: the phone retrieves location from a BT-GPS; at
// t=155 s the GPS is switched off; Contory switches to ad hoc
// provisioning from a neighboring device; later the GPS returns and
// Contory switches back. "The cost in terms of power consumption of the
// switches is due mostly to the BT device discovery: this varies from
// 163 mW up to 292 mW" (inquiry power averaged over meter samples).
#include <cstdio>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "energy/power_meter.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

}  // namespace

int main(int argc, char** argv) {
  const bool dump_tsv = argc > 1 && std::string(argv[1]) == "--tsv";
  bench::PrintHeading(
      "Fig. 5: Contory behaviour in the presence of BT-GPS failure");

  testbed::World world{2700};
  testbed::DeviceOptions phone_opts;
  phone_opts.name = "phone-A";
  phone_opts.with_cellular = false;
  core::ContextFactoryConfig cfg;
  cfg.recovery_probe_period = 30s;
  phone_opts.factory_config = cfg;
  auto& device = world.AddDevice(phone_opts);

  auto& gps = world.AddGps("gps-1", {3, 0});

  // The neighboring boat that shares its location over BT.
  testbed::DeviceOptions nb_opts;
  nb_opts.name = "phone-B";
  nb_opts.position = {6, 0};
  nb_opts.with_cellular = false;
  auto& neighbor = world.AddDevice(nb_opts);
  core::CollectingClient nb_client;
  (void)neighbor.contory().RegisterCxtServer(nb_client);
  sim::PeriodicTask nb_publish{world.sim(), 5s, [&] {
    CxtItem item;
    item.id = world.sim().ids().NextId("nb");
    item.type = vocab::kLocation;
    item.value = sensors::ToGeo(neighbor.position());
    item.timestamp = world.Now();
    item.metadata.accuracy = 30.0;
    (void)neighbor.contory().PublishCxtItem(item, true);
  }};

  energy::PowerMeter meter{world.sim(), device.phone().energy()};
  meter.Start();

  core::CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT location DURATION 15 min EVERY 5 sec"),
      client);
  if (!id.ok()) throw std::runtime_error(id.status().ToString());

  // The paper's timeline: failure at 155 s, recovery later.
  world.RunFor(155s);
  std::printf("t=155s: switching GPS off\n");
  gps.PowerOff();
  world.RunFor(145s);
  std::printf("t=300s: switching GPS back on\n");
  gps.PowerOn();
  world.RunFor(200s);
  meter.Stop();

  const TimeSeries& trace = meter.trace();
  std::printf("\nPower trace (multimeter, 500 ms sampling):\n\n%s\n",
              trace.AsciiPlot(100, 12, "mW").c_str());

  std::printf("Provisioning switches:\n");
  for (const auto& sw : device.contory().switch_log()) {
    std::printf("  %s  %s: %s -> %s\n", FormatTime(sw.at).c_str(),
                sw.query_id.c_str(), query::SourceSelName(sw.from),
                query::SourceSelName(sw.to));
  }
  std::printf("\nitems delivered: %zu (by source: ", client.items.size());
  std::size_t gps_items = 0;
  std::size_t adhoc_items = 0;
  for (const auto& item : client.items) {
    if (item.source.kind == SourceKind::kIntSensor) ++gps_items;
    if (item.source.kind == SourceKind::kAdHocNetwork) ++adhoc_items;
  }
  std::printf("intSensor %zu, adHocNetwork %zu)\n", gps_items, adhoc_items);

  // Discovery-window power: meter samples in the inquiry band.
  double switch_peak = 0.0;
  for (const auto& p : trace.points()) {
    const double t = ToSeconds(p.t);
    if (t > 155.0 && t < 300.0) switch_peak = std::max(switch_peak, p.value);
  }
  std::printf(
      "max meter sample during failover window: %.1f mW "
      "(paper: discovery cost 163-292 mW averaged per sample)\n",
      switch_peak);
  std::printf(
      "mean power over the run: %.1f mW (NMEA/poll bursts aliased by the "
      "500 ms meter show as column peaks above)\n",
      trace.TimeWeightedMean());

  if (dump_tsv) {
    std::printf("\n# t_seconds\tpower_mW\n%s", trace.ToTsv().c_str());
  }
  return 0;
}
