// Google-benchmark microbenchmarks for the hot local operations of the
// library: context item construction/serialization, query parsing,
// predicate evaluation, and query merging. These are the operations a
// 220 MHz phone would run per item/query; regressions here matter for any
// real port.
#include <benchmark/benchmark.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/ring.hpp"
#include "common/rng.hpp"
#include "net/medium.hpp"
#include "core/contory.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "obs/observability.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

CxtItem MakeItem() {
  CxtItem item;
  item.id = "bench-item";
  item.type = vocab::kLight;
  item.value = 5200.0;
  item.metadata.accuracy = 50.0;
  item.metadata.trust = TrustLevel::kTrusted;
  return item;
}

void BM_CreateCxtItem(benchmark::State& state) {
  for (auto _ : state) {
    CxtItem item = MakeItem();
    benchmark::DoNotOptimize(item);
  }
}
BENCHMARK(BM_CreateCxtItem);

void BM_SerializeCxtItem(benchmark::State& state) {
  const CxtItem item = MakeItem();
  for (auto _ : state) {
    auto wire = item.Serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SerializeCxtItem);

void BM_DeserializeCxtItem(benchmark::State& state) {
  const auto wire = MakeItem().Serialize();
  for (auto _ : state) {
    auto item = CxtItem::Deserialize(wire);
    benchmark::DoNotOptimize(item);
  }
}
BENCHMARK(BM_DeserializeCxtItem);

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto q = query::ParseQuery(
        "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 "
        "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25");
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

void BM_SerializeQuery(benchmark::State& state) {
  auto q = query::ParseQuery(
      "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 "
      "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25");
  q->id = "q-bench";
  for (auto _ : state) {
    auto wire = q->Serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SerializeQuery);

void BM_EvalWhere(benchmark::State& state) {
  const auto p = query::ParsePredicate(
      "accuracy<=0.5 AND (trust=trusted OR correctness>=0.9) AND value>100");
  const CxtItem item = MakeItem();
  for (auto _ : state) {
    auto r = query::EvalWhere(*p, item);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvalWhere);

void BM_EvalEventAggregate(benchmark::State& state) {
  const auto p = query::ParsePredicate("AVG(light)>5000");
  std::vector<CxtItem> window(static_cast<std::size_t>(state.range(0)),
                              MakeItem());
  for (auto _ : state) {
    auto r = query::EvalEvent(*p, window);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvalEventAggregate)->Arg(8)->Arg(32);

void BM_MergeQueries(benchmark::State& state) {
  auto q1 = query::ParseQuery(
      "SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 10sec "
      "DURATION 1hour EVERY 15sec");
  auto q2 = query::ParseQuery(
      "SELECT temperature FROM adHocNetwork(all,1) FRESHNESS 20sec "
      "DURATION 2hour EVERY 30sec");
  q1->id = "q1";
  q2->id = "q2";
  for (auto _ : state) {
    auto merged = query::Merge(*q1, *q2);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_MergeQueries);

void BM_PostExtract(benchmark::State& state) {
  auto q = query::ParseQuery(
      "SELECT light WHERE accuracy<=100 FRESHNESS 1 hour DURATION 1 hour");
  q->id = "q";
  const CxtItem item = MakeItem();
  for (auto _ : state) {
    bool match = query::PostExtract(*q, item, kSimEpoch + 1s);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_PostExtract);

void BM_NmeaBuildParse(benchmark::State& state) {
  sensors::GpsFix fix;
  fix.position = {60.152, 24.909};
  fix.speed_knots = 6.5;
  fix.time = kSimEpoch + 3725s;
  for (auto _ : state) {
    const auto burst = sensors::BuildNmeaBurst(fix);
    auto parsed = sensors::ParseNmeaBurst(burst);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_NmeaBuildParse);

// --- Observability hot-path costs (the per-submit instrumentation) ----

void BM_ObsSpanLifecycle(benchmark::State& state) {
  // One query's worth of tracer work on the submit/finish path: root +
  // provision span opened, both closed. Capacity 0 keeps the finished
  // deque from growing across iterations.
  auto& tracer = obs::Observability::tracer();
  tracer.Reset();
  tracer.SetCapacity(0);
  const std::string query_id = "q-bench";
  double fake_energy = 0.0;
  for (auto _ : state) {
    const auto root = tracer.BeginQuery(query_id, kSimEpoch,
                                        [&] { return fake_energy; });
    const auto stage =
        tracer.BeginStage(root, "provision", "adHocNetwork", kSimEpoch);
    tracer.EndStage(stage, kSimEpoch + 1s, "ok");
    tracer.EndQuery(root, kSimEpoch + 1s, "ACTIVE");
  }
  tracer.Reset();
  tracer.SetCapacity(8192);
}
BENCHMARK(BM_ObsSpanLifecycle);

void BM_ObsCounterCachedInc(benchmark::State& state) {
  obs::Observability::metrics().Reset();
  obs::Counter& counter = obs::Observability::metrics().GetCounter(
      "bench_counter", {{"mechanism", "adHocNetwork"}});
  for (auto _ : state) {
    counter.Inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ObsCounterCachedInc);

void BM_ObsCounterLookupInc(benchmark::State& state) {
  // The anti-pattern the cached handles avoid: per-call name+label
  // resolution.
  obs::Observability::metrics().Reset();
  for (auto _ : state) {
    obs::Observability::metrics()
        .GetCounter("bench_counter", {{"mechanism", "adHocNetwork"}})
        .Inc();
  }
}
BENCHMARK(BM_ObsCounterLookupInc);

// --- Sharded-pipeline hot-path costs (rings, id interning, shard
// lookup): the per-query overhead of the scaling machinery itself. ------

void BM_SpscRingPushPop(benchmark::State& state) {
  // Uncontended push+pop pair — the floor for stage hand-off cost.
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v++);
    std::uint64_t out = 0;
    ring.TryPop(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_MpmcRingPushPop(benchmark::State& state) {
  MpmcRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v++);
    std::uint64_t out = 0;
    ring.TryPop(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MpmcRingPushPop);

void BM_MpmcRingContended(benchmark::State& state) {
  // Producer thread feeding the timed consumer loop: the worker->sim
  // hand-off under real cross-thread traffic.
  static MpmcRing<std::uint64_t> ring(4096);  // magic-static: safe init
  std::uint64_t v = 0;
  for (auto _ : state) {
    while (!ring.TryPush(v)) {
    }
    ++v;
    std::uint64_t out = 0;
    while (!ring.TryPop(out)) {
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MpmcRingContended)->Threads(2)->UseRealTime();

void BM_QueryIdIntern(benchmark::State& state) {
  // Intern + release of a fresh id: the admission-path cost of the dense
  // id mapping (includes the map insert and the chunk-slot write).
  core::QueryIdInterner interner;
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto entry = interner.Intern("q-" + std::to_string(n++));
    benchmark::DoNotOptimize(entry.id);
    interner.Release(entry.id);
  }
}
BENCHMARK(BM_QueryIdIntern);

void BM_QueryIdLookup(benchmark::State& state) {
  core::QueryIdInterner interner;
  std::vector<std::string> names;
  for (int i = 0; i < 4096; ++i) {
    names.push_back("q-" + std::to_string(i));
    interner.Intern(names.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const core::QueryId id = interner.Lookup(names[i & 4095]);
    benchmark::DoNotOptimize(id);
    ++i;
  }
}
BENCHMARK(BM_QueryIdLookup);

void BM_ShardedTableFindById(benchmark::State& state) {
  // Dense-id record lookup at a 64k-query population: one shard mask,
  // one shard-local hash probe.
  sim::Simulation sim{1};
  core::ShardedQueryTable table(sim, core::ShardedQueryTableOptions{
                                   static_cast<std::size_t>(state.range(0)),
                                   /*completion_log_capacity=*/16});
  obs::Observability::Enable(false);
  core::CollectingClient client;
  std::vector<core::QueryId> qids;
  for (int i = 0; i < 65536; ++i) {
    auto q = query::ParseQuery("SELECT temperature DURATION 1 hour");
    q->id = "q-" + std::to_string(i);
    auto admitted = table.Admit(*std::move(q), client);
    qids.push_back(*admitted);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    core::QueryRecord* record = table.FindById(qids[i & 65535]);
    benchmark::DoNotOptimize(record);
    ++i;
  }
  obs::Observability::Enable(true);
}
BENCHMARK(BM_ShardedTableFindById)->Arg(1)->Arg(16)->Arg(64);

// Uniform scatter at constant density (side = 100 * sqrt(n), the city
// default), WiFi-range cell size — the layout the city sweep queries.
void ScatterCity(net::Medium& medium, std::int64_t n,
                 std::vector<net::NodeId>& ids) {
  Rng rng{7};
  const double side = 100.0 * std::sqrt(static_cast<double>(n));
  ids.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    ids.push_back(medium.Register(
        "b", {rng.Uniform(0.0, side), rng.Uniform(0.0, side)}));
  }
  medium.NoteRadioRange(100.0);
}

void BM_MediumNodesWithin(benchmark::State& state) {
  net::Medium medium;
  std::vector<net::NodeId> ids;
  ScatterCity(medium, state.range(0), ids);
  medium.set_use_grid(state.range(1) != 0);
  std::size_t i = 0;
  for (auto _ : state) {
    auto hits = medium.NodesWithin(ids[i], 100.0);
    benchmark::DoNotOptimize(hits);
    i = (i + 8191) % ids.size();  // coprime stride: spread cache misses
  }
}
BENCHMARK(BM_MediumNodesWithin)
    ->ArgNames({"nodes", "grid"})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_MediumSetPositionSameCell(benchmark::State& state) {
  // The mobility common case: a sub-cell nudge, no migration.
  net::Medium medium;
  std::vector<net::NodeId> ids;
  ScatterCity(medium, 10000, ids);
  double dx = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(medium.SetPosition(ids[42], {500.0 + dx, 500.0}));
    dx = -dx;
  }
}
BENCHMARK(BM_MediumSetPositionSameCell);

void BM_MediumSetPositionMigrate(benchmark::State& state) {
  // Cross-cell move: swap-remove from one cell, append to another.
  net::Medium medium;
  std::vector<net::NodeId> ids;
  ScatterCity(medium, 10000, ids);
  bool flip = false;
  for (auto _ : state) {
    const double x = flip ? 100.0 : 900.0;  // several cells apart
    benchmark::DoNotOptimize(medium.SetPosition(ids[42], {x, 500.0}));
    flip = !flip;
  }
}
BENCHMARK(BM_MediumSetPositionMigrate);

}  // namespace

BENCHMARK_MAIN();
