// Google-benchmark microbenchmarks for the hot local operations of the
// library: context item construction/serialization, query parsing,
// predicate evaluation, and query merging. These are the operations a
// 220 MHz phone would run per item/query; regressions here matter for any
// real port.
#include <benchmark/benchmark.h>

#include "core/contory.hpp"
#include "obs/observability.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

CxtItem MakeItem() {
  CxtItem item;
  item.id = "bench-item";
  item.type = vocab::kLight;
  item.value = 5200.0;
  item.metadata.accuracy = 50.0;
  item.metadata.trust = TrustLevel::kTrusted;
  return item;
}

void BM_CreateCxtItem(benchmark::State& state) {
  for (auto _ : state) {
    CxtItem item = MakeItem();
    benchmark::DoNotOptimize(item);
  }
}
BENCHMARK(BM_CreateCxtItem);

void BM_SerializeCxtItem(benchmark::State& state) {
  const CxtItem item = MakeItem();
  for (auto _ : state) {
    auto wire = item.Serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SerializeCxtItem);

void BM_DeserializeCxtItem(benchmark::State& state) {
  const auto wire = MakeItem().Serialize();
  for (auto _ : state) {
    auto item = CxtItem::Deserialize(wire);
    benchmark::DoNotOptimize(item);
  }
}
BENCHMARK(BM_DeserializeCxtItem);

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto q = query::ParseQuery(
        "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 "
        "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25");
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

void BM_SerializeQuery(benchmark::State& state) {
  auto q = query::ParseQuery(
      "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 "
      "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25");
  q->id = "q-bench";
  for (auto _ : state) {
    auto wire = q->Serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SerializeQuery);

void BM_EvalWhere(benchmark::State& state) {
  const auto p = query::ParsePredicate(
      "accuracy<=0.5 AND (trust=trusted OR correctness>=0.9) AND value>100");
  const CxtItem item = MakeItem();
  for (auto _ : state) {
    auto r = query::EvalWhere(*p, item);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvalWhere);

void BM_EvalEventAggregate(benchmark::State& state) {
  const auto p = query::ParsePredicate("AVG(light)>5000");
  std::vector<CxtItem> window(static_cast<std::size_t>(state.range(0)),
                              MakeItem());
  for (auto _ : state) {
    auto r = query::EvalEvent(*p, window);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvalEventAggregate)->Arg(8)->Arg(32);

void BM_MergeQueries(benchmark::State& state) {
  auto q1 = query::ParseQuery(
      "SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 10sec "
      "DURATION 1hour EVERY 15sec");
  auto q2 = query::ParseQuery(
      "SELECT temperature FROM adHocNetwork(all,1) FRESHNESS 20sec "
      "DURATION 2hour EVERY 30sec");
  q1->id = "q1";
  q2->id = "q2";
  for (auto _ : state) {
    auto merged = query::Merge(*q1, *q2);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_MergeQueries);

void BM_PostExtract(benchmark::State& state) {
  auto q = query::ParseQuery(
      "SELECT light WHERE accuracy<=100 FRESHNESS 1 hour DURATION 1 hour");
  q->id = "q";
  const CxtItem item = MakeItem();
  for (auto _ : state) {
    bool match = query::PostExtract(*q, item, kSimEpoch + 1s);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_PostExtract);

void BM_NmeaBuildParse(benchmark::State& state) {
  sensors::GpsFix fix;
  fix.position = {60.152, 24.909};
  fix.speed_knots = 6.5;
  fix.time = kSimEpoch + 3725s;
  for (auto _ : state) {
    const auto burst = sensors::BuildNmeaBurst(fix);
    auto parsed = sensors::ParseNmeaBurst(burst);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_NmeaBuildParse);

// --- Observability hot-path costs (the per-submit instrumentation) ----

void BM_ObsSpanLifecycle(benchmark::State& state) {
  // One query's worth of tracer work on the submit/finish path: root +
  // provision span opened, both closed. Capacity 0 keeps the finished
  // deque from growing across iterations.
  auto& tracer = obs::Observability::tracer();
  tracer.Reset();
  tracer.SetCapacity(0);
  const std::string query_id = "q-bench";
  double fake_energy = 0.0;
  for (auto _ : state) {
    const auto root = tracer.BeginQuery(query_id, kSimEpoch,
                                        [&] { return fake_energy; });
    const auto stage =
        tracer.BeginStage(root, "provision", "adHocNetwork", kSimEpoch);
    tracer.EndStage(stage, kSimEpoch + 1s, "ok");
    tracer.EndQuery(root, kSimEpoch + 1s, "ACTIVE");
  }
  tracer.Reset();
  tracer.SetCapacity(8192);
}
BENCHMARK(BM_ObsSpanLifecycle);

void BM_ObsCounterCachedInc(benchmark::State& state) {
  obs::Observability::metrics().Reset();
  obs::Counter& counter = obs::Observability::metrics().GetCounter(
      "bench_counter", {{"mechanism", "adHocNetwork"}});
  for (auto _ : state) {
    counter.Inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ObsCounterCachedInc);

void BM_ObsCounterLookupInc(benchmark::State& state) {
  // The anti-pattern the cached handles avoid: per-call name+label
  // resolution.
  obs::Observability::metrics().Reset();
  for (auto _ : state) {
    obs::Observability::metrics()
        .GetCounter("bench_counter", {{"mechanism", "adHocNetwork"}})
        .Inc();
  }
}
BENCHMARK(BM_ObsCounterLookupInc);

}  // namespace

BENCHMARK_MAIN();
