// Ablation: the Smart Messages code cache.
//
// "code cache that stores frequently executed code bricks" (Sec. 5.1) —
// the first SM-FINDER visiting a node must carry its code brick
// (~700 B); subsequent finders travel data-only because the receiver has
// the brick cached, shortening serialization and transfer. This bench
// measures consecutive one-hop getCxtItem rounds: round 1 pays the code
// shipping, later rounds ride the cache.
#include <cstdio>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

}  // namespace

int main() {
  bench::PrintHeading(
      "Ablation: SM code cache (consecutive 1-hop SM-FINDER rounds)");

  testbed::World world{3100};
  std::vector<testbed::Device*> devices;
  for (int i = 0; i < 2; ++i) {
    testbed::DeviceOptions opts;
    opts.name = "comm-" + std::to_string(i);
    opts.profile = phone::Nokia9500();
    opts.position = {i * 80.0, 0};
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.with_cellular = false;
    devices.push_back(&world.AddDevice(opts));
  }
  core::CollectingClient pub_app;
  if (!devices[1]->contory().RegisterCxtServer(pub_app).ok()) return 1;
  sim::PeriodicTask republish{world.sim(), 5s, [&] {
    CxtItem item;
    item.id = world.sim().ids().NextId("pub");
    item.type = vocab::kTemperature;
    item.value = 19.0;
    item.timestamp = world.Now();
    item.metadata.accuracy = 0.2;
    (void)devices[1]->contory().PublishCxtItem(item, true);
  }};
  world.RunFor(6s);

  std::printf("\n  round | latency (ms) | code cached at peer?\n");
  std::printf("  %s\n", std::string(48, '-').c_str());
  double first = 0.0;
  double last = 0.0;
  for (int round = 1; round <= 5; ++round) {
    const bool cached_before =
        devices[1]->sm()->CodeCached(core::kFinderBrick);
    core::CollectingClient client;
    const SimTime start = world.Now();
    const auto id = devices[0]->contory().ProcessCxtQuery(
        Q(world.sim(),
          "SELECT temperature FROM adHocNetwork(1,1) DURATION 1 min"),
        client);
    if (!id.ok()) return 1;
    while (client.items.empty() && world.sim().Step()) {
    }
    const double ms = ToMillis(world.Now() - start);
    std::printf("  %5d | %12.1f | %s\n", round, ms,
                cached_before ? "yes" : "no (code travels)");
    if (round == 1) first = ms;
    last = ms;
    world.RunFor(10s);
  }
  std::printf(
      "\ncold/warm ratio: x%.2f — the cache elides %zu code bytes per "
      "migration\n(serialization + transfer at the J2ME/WiFi rates of the "
      "Table 1 break-up).\n",
      first / last, core::kFinderCodeBytes);
  return first > last ? 0 : 1;
}
