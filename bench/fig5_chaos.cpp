// Chaos extension of Fig. 5: query availability under compound faults.
//
// Default mode sweeps BT packet-loss rate x simultaneous-outage duration
// (the BT-GPS and the publishing neighbor go dark together, so failover
// has nowhere to go) and reports, per cell, how many 5 s delivery periods
// produced an answer, how many of those answers were degraded (served
// stale from the local repository), and the mean staleness of the
// degraded answers. `--mode=extinfra` runs the same sweep against the
// infrastructure path instead: cell.connectfail rate x broker.outage
// duration on a cellular-only device, exercising retry absorption and
// degradation over UMTS. Emits the sweep as JSON for machine consumption.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

constexpr SimDuration kRun = 300s;
constexpr SimDuration kEvery = 5s;
constexpr double kFaultAtSec = 60.0;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

struct CellResult {
  std::size_t items_total = 0;
  std::size_t items_stale = 0;
  double mean_staleness_s = 0.0;
  double success_rate = 0.0;
  std::size_t switches = 0;
  std::uint64_t retries = 0;
  std::uint64_t injected = 0;
};

CellResult RunCell(double loss_rate, int outage_sec, std::uint64_t seed) {
  testbed::World world{seed};

  testbed::DeviceOptions phone_opts;
  phone_opts.name = "phone-A";
  phone_opts.with_cellular = false;
  core::ContextFactoryConfig cfg;
  cfg.recovery_probe_period = 20s;
  phone_opts.factory_config = cfg;
  auto& device = world.AddDevice(phone_opts);

  world.AddGps("gps-1", {3, 0});

  testbed::DeviceOptions nb_opts;
  nb_opts.name = "phone-B";
  nb_opts.position = {6, 0};
  nb_opts.with_cellular = false;
  auto& neighbor = world.AddDevice(nb_opts);
  core::CollectingClient nb_client;
  (void)neighbor.contory().RegisterCxtServer(nb_client);
  sim::PeriodicTask nb_publish{world.sim(), kEvery, [&] {
                                 CxtItem item;
                                 item.id = world.sim().ids().NextId("nb");
                                 item.type = vocab::kLocation;
                                 item.value =
                                     sensors::ToGeo(neighbor.position());
                                 item.timestamp = world.Now();
                                 item.metadata.accuracy = 30.0;
                                 (void)neighbor.contory().PublishCxtItem(
                                     item, true);
                               }};

  std::string plan;
  if (loss_rate > 0.0) {
    // Interference on both phone radios for the whole run.
    for (const char* target : {"phone-A", "phone-B"}) {
      plan += "at=1s bt.loss " + std::string(target) +
              " rate=" + std::to_string(loss_rate) + " for=299s\n";
    }
  }
  if (outage_sec > 0) {
    // The GPS and the neighbor vanish together: provisioning must ride
    // out the window on retries and stale repository answers.
    plan += "at=60s gps.off gps-1 for=" + std::to_string(outage_sec) + "s\n";
    plan += "at=60s bt.fail phone-B for=" + std::to_string(outage_sec) +
            "s\n";
  }
  if (!plan.empty()) {
    const Status s = world.injector().ExecuteText(plan);
    if (!s.ok()) throw std::runtime_error(s.ToString());
  }

  core::CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT location DURATION 5 min EVERY 5 sec"), client);
  if (!id.ok()) throw std::runtime_error(id.status().ToString());
  world.RunFor(kRun);

  CellResult r;
  r.items_total = client.items.size();
  double staleness_sum = 0.0;
  for (const CxtItem& item : client.items) {
    if (item.metadata.staleness_seconds.has_value()) {
      ++r.items_stale;
      staleness_sum += *item.metadata.staleness_seconds;
    }
  }
  if (r.items_stale > 0) {
    r.mean_staleness_s = staleness_sum / static_cast<double>(r.items_stale);
  }
  const double periods = ToSeconds(kRun) / ToSeconds(kEvery);
  r.success_rate = static_cast<double>(r.items_total) / periods;
  if (r.success_rate > 1.0) r.success_rate = 1.0;
  r.switches = device.contory().switch_log().size();
  r.retries = device.contory().total_retries();
  r.injected = world.injector().injected();
  (void)kFaultAtSec;
  return r;
}

// extInfra variant of the sweep: cell.connectfail x broker.outage on a
// cellular-only device querying the remote repository.
CellResult RunExtInfraCell(double connectfail_rate, int outage_sec,
                           std::uint64_t seed) {
  testbed::World world{seed};
  auto& server = world.AddContextServer("infra.dynamos.fi");

  // A station feed keeps the remote repository warm every period.
  sim::PeriodicTask feed{world.sim(), kEvery, [&] {
                           infra::StoredItem stored;
                           stored.item.id =
                               world.sim().ids().NextId("station");
                           stored.item.type = vocab::kTemperature;
                           stored.item.value = 14.0;
                           stored.item.timestamp = world.Now();
                           stored.item.metadata.accuracy = 0.2;
                           stored.entity = "station-1";
                           server.StoreDirect(stored);
                         }};

  testbed::DeviceOptions phone_opts;
  phone_opts.name = "phone-A";
  phone_opts.with_bt = false;
  phone_opts.infra_address = "infra.dynamos.fi";
  core::ContextFactoryConfig cfg;
  cfg.recovery_probe_period = 20s;
  cfg.retry.max_attempts = 6;
  cfg.retry.attempt_timeout = 6s;
  cfg.retry.initial_backoff = 500ms;
  cfg.retry.max_backoff = 4s;
  cfg.retry.total_deadline = 60s;
  phone_opts.factory_config = cfg;
  auto& device = world.AddDevice(phone_opts);

  std::string plan;
  if (connectfail_rate > 0.0) {
    plan += "at=1s cell.connectfail phone-A rate=" +
            std::to_string(connectfail_rate) + " for=299s\n";
  }
  if (outage_sec > 0) {
    plan += "at=60s broker.outage infra.dynamos.fi for=" +
            std::to_string(outage_sec) + "s\n";
  }
  if (!plan.empty()) {
    const Status s = world.injector().ExecuteText(plan);
    if (!s.ok()) throw std::runtime_error(s.ToString());
  }

  // Submit inside the connectfail window so the long-running registration
  // itself must ride the retry policy out.
  world.RunFor(2s);
  core::CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM extInfra DURATION 5 min EVERY 5 sec"),
      client);
  if (!id.ok()) throw std::runtime_error(id.status().ToString());
  world.RunFor(kRun - 2s);

  CellResult r;
  r.items_total = client.items.size();
  double staleness_sum = 0.0;
  for (const CxtItem& item : client.items) {
    if (item.metadata.staleness_seconds.has_value()) {
      ++r.items_stale;
      staleness_sum += *item.metadata.staleness_seconds;
    }
  }
  if (r.items_stale > 0) {
    r.mean_staleness_s = staleness_sum / static_cast<double>(r.items_stale);
  }
  const double periods = ToSeconds(kRun) / ToSeconds(kEvery);
  r.success_rate = static_cast<double>(r.items_total) / periods;
  if (r.success_rate > 1.0) r.success_rate = 1.0;
  r.switches = device.contory().switch_log().size();
  r.retries = device.contory().total_retries();
  r.injected = world.injector().injected();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool extinfra = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode=extinfra") == 0) extinfra = true;
  }

  if (extinfra) {
    bench::PrintHeading(
        "Fig. 5 chaos sweep (extInfra): availability under "
        "connect failures x broker outages");
    std::printf(
        "300 s temperature query over UMTS (EVERY 5 s); at t=60 s the\n"
        "remote repository swallows requests for the outage window while\n"
        "connect attempts fail at the given rate; retries absorb what they\n"
        "can, then the factory degrades to stale local answers.\n");
  } else {
    bench::PrintHeading(
        "Fig. 5 chaos sweep: availability under packet loss x outages");
    std::printf(
        "300 s location query (EVERY 5 s); at t=60 s the BT-GPS and the\n"
        "publishing neighbor go dark for the outage window, so failover is\n"
        "exhausted and the factory degrades to stale repository answers.\n");
  }

  const std::vector<double> loss_rates{0.0, 0.1, 0.3};
  const std::vector<int> outages_sec{0, 30, 90};

  std::vector<bench::Row> rows;
  std::vector<bench::JsonObject> json;
  std::uint64_t seed = extinfra ? 9400 : 9100;
  for (const double loss : loss_rates) {
    for (const int outage : outages_sec) {
      const CellResult r = extinfra ? RunExtInfraCell(loss, outage, seed++)
                                    : RunCell(loss, outage, seed++);
      char label[64];
      std::snprintf(label, sizeof label, "%s=%.1f outage=%3ds",
                    extinfra ? "cfail" : "loss", loss, outage);
      char measured[96];
      std::snprintf(measured, sizeof measured,
                    "%.0f%% answered, %zu stale (mean %.0f s old)",
                    100.0 * r.success_rate, r.items_stale,
                    r.mean_staleness_s);
      char note[96];
      std::snprintf(note, sizeof note,
                    "%zu switches, %llu retries, %llu fault transitions",
                    r.switches, static_cast<unsigned long long>(r.retries),
                    static_cast<unsigned long long>(r.injected));
      rows.push_back({label, measured, "n/a (extension)", note});

      bench::JsonObject obj;
      obj.Set("mode", extinfra ? 1.0 : 0.0).Set("loss_rate", loss)
          .Set("outage_sec", static_cast<double>(outage))
          .Set("items_total", static_cast<double>(r.items_total))
          .Set("items_stale", static_cast<double>(r.items_stale))
          .Set("success_rate", r.success_rate)
          .Set("mean_staleness_s", r.mean_staleness_s)
          .Set("switches", static_cast<double>(r.switches))
          .Set("retries", static_cast<double>(r.retries));
      json.push_back(obj);
    }
  }

  bench::PrintTable("Query availability per fault mix", "availability",
                    rows);
  std::printf("\nJSON:\n%s", bench::ToJsonArray(json).c_str());
  return 0;
}
