// Query-table scaling bench: submit/cancel latency vs. active query count.
//
// The ROADMAP's production-scale target means thousands of concurrent
// queries per ContextFactory. This bench grows one factory to 10k live
// queries (each with a distinct SELECT type, so no two merge and every
// query owns a facade cluster) and measures the wall-clock latency of
// ProcessCxtQuery and CancelCxtQuery at increasing populations. With a
// linear cluster scan both degrade with the active count; with the
// (cxt_type, source, mode)-keyed cluster index they stay flat. Emits the
// sweep as JSON like the other benches.
//
// --obs=on|off|both selects whether the observability hooks (root span,
// admission counters, delivery metrics) are live during the sweep; the
// submit path is the hot path they instrument, so this is the overhead
// harness for docs/OBSERVABILITY.md. "both" runs the sweep twice and
// reports the relative submit-latency overhead at the 10k milestone
// (budget: <= 5%). --out=FILE additionally writes the comparison as one
// JSON object (see BENCH_obs.json at the repo root).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "obs/observability.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct OpStats {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

OpStats Summarize(std::vector<double> samples) {
  OpStats s;
  if (samples.empty()) return s;
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean_us = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  s.p50_us = samples[samples.size() / 2];
  s.p99_us = samples[std::min(samples.size() - 1,
                              (samples.size() * 99) / 100)];
  return s;
}

query::CxtQuery MakeQuery(sim::Simulation& sim, std::size_t n) {
  // Distinct SELECT types so every query lands in its own cluster.
  auto q = query::QueryBuilder("scale-type-" + std::to_string(n))
               .FromAdHoc(1, 1)
               .For(std::chrono::hours{1})
               .Every(60s)
               .Build();
  q.id = sim.ids().NextId("q");
  return q;
}

struct SweepResult {
  std::vector<bench::JsonObject> json;
  /// Submit p50 at the largest milestone — the overhead comparison point
  /// (the median is robust against scheduler outliers; the mean swings
  /// tens of percent between identical runs).
  double submit_p50_final_us = 0.0;
};

SweepResult RunSweep(bool obs_on) {
  obs::Observability::ResetForTest();
  obs::Observability::Enable(obs_on);

  testbed::World world{4242};
  testbed::DeviceOptions opts;
  opts.name = "phone-scale";
  opts.with_cellular = false;  // adHoc facade only: isolates cluster lookup
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;

  const std::vector<std::size_t> milestones{1'000, 2'500, 5'000, 10'000};
  constexpr std::size_t kTimedWindow = 2'000;  // ops timed at each milestone
  constexpr std::size_t kCancelSample = 250;

  std::vector<std::string> ids;
  ids.reserve(milestones.back());
  std::vector<bench::Row> rows;
  SweepResult result;
  Rng sample_rng{7};

  std::size_t submitted = 0;
  for (const std::size_t target : milestones) {
    // Grow to the milestone, timing the last kTimedWindow submissions.
    std::vector<double> submit_us;
    while (submitted < target) {
      auto q = MakeQuery(world.sim(), submitted);
      const bool timed = submitted + kTimedWindow >= target;
      const auto start = Clock::now();
      const auto id = device.contory().ProcessCxtQuery(std::move(q), client);
      if (timed) submit_us.push_back(MicrosSince(start));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed at %zu: %s\n", submitted,
                     id.status().ToString().c_str());
        std::exit(1);
      }
      ids.push_back(*id);
      ++submitted;
    }

    // Cancel a deterministic sample spread across the whole population
    // (early ids are the linear scan's worst case), then resubmit to
    // restore the population.
    std::vector<double> cancel_us;
    for (std::size_t i = 0; i < kCancelSample; ++i) {
      const std::size_t victim = static_cast<std::size_t>(
          sample_rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1));
      const auto start = Clock::now();
      device.contory().CancelCxtQuery(ids[victim]);
      cancel_us.push_back(MicrosSince(start));
      auto q = MakeQuery(world.sim(), submitted + i);
      const auto id = device.contory().ProcessCxtQuery(std::move(q), client);
      if (id.ok()) ids[victim] = *id;
    }

    const OpStats sub = Summarize(std::move(submit_us));
    const OpStats can = Summarize(std::move(cancel_us));
    result.submit_p50_final_us = sub.p50_us;
    char label[48];
    std::snprintf(label, sizeof label, "%5zu active", target);
    char measured[96];
    std::snprintf(measured, sizeof measured,
                  "submit %.1f us (p50 %.1f), cancel %.1f us (p50 %.1f)",
                  sub.mean_us, sub.p50_us, can.mean_us, can.p50_us);
    rows.push_back({label, measured, "n/a (extension)", ""});

    bench::JsonObject obj;
    obj.Set("active_queries", static_cast<double>(target))
        .Set("obs", obs_on ? "on" : "off")
        .Set("submit_mean_us", sub.mean_us)
        .Set("submit_p50_us", sub.p50_us)
        .Set("submit_p99_us", sub.p99_us)
        .Set("cancel_mean_us", can.mean_us)
        .Set("cancel_p50_us", can.p50_us)
        .Set("cancel_p99_us", can.p99_us);
    result.json.push_back(obj);
  }

  char title[96];
  std::snprintf(title, sizeof title,
                "Per-op latency vs. active query count (obs %s)",
                obs_on ? "on" : "off");
  bench::PrintTable(title, "latency", rows);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string obs_mode = "on";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--obs=", 6) == 0) {
      obs_mode = arg + 6;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: scale_queries [--obs=on|off|both] [--out=FILE]\n");
      return 2;
    }
  }
  if (obs_mode != "on" && obs_mode != "off" && obs_mode != "both") {
    std::fprintf(stderr, "unknown --obs mode '%s'\n", obs_mode.c_str());
    return 2;
  }

  bench::PrintHeading(
      "Query scaling: submit/cancel latency vs. active query count");
  std::printf(
      "One factory grown to 10k concurrent single-cluster queries; per-op\n"
      "wall-clock latency sampled at each population milestone.\n\n");

  std::vector<bench::JsonObject> json;
  double on_final_us = 0.0;
  double off_final_us = 0.0;
  if (obs_mode == "both") {
    // Interleave five repetitions per mode and compare the median of the
    // per-sweep medians: a single sweep's p50 still swings ~10% with
    // scheduler noise, and a min would reward whichever mode got lucky.
    // The order within each pair alternates so allocator/page warmup
    // doesn't systematically favor whichever mode runs second.
    constexpr int kReps = 5;
    std::vector<double> off_p50s;
    std::vector<double> on_p50s;
    for (int rep = 0; rep < kReps; ++rep) {
      const bool on_first = (rep % 2) == 1;
      const SweepResult first = RunSweep(on_first);
      const SweepResult second = RunSweep(!on_first);
      const SweepResult& off = on_first ? second : first;
      const SweepResult& on = on_first ? first : second;
      off_p50s.push_back(off.submit_p50_final_us);
      on_p50s.push_back(on.submit_p50_final_us);
      if (rep == kReps - 1) {
        json.insert(json.end(), off.json.begin(), off.json.end());
        json.insert(json.end(), on.json.begin(), on.json.end());
      }
    }
    std::sort(off_p50s.begin(), off_p50s.end());
    std::sort(on_p50s.begin(), on_p50s.end());
    off_final_us = off_p50s[kReps / 2];
    on_final_us = on_p50s[kReps / 2];
  } else {
    const bool on = obs_mode == "on";
    const SweepResult r = RunSweep(on);
    (on ? on_final_us : off_final_us) = r.submit_p50_final_us;
    json.insert(json.end(), r.json.begin(), r.json.end());
  }

  std::printf("\nJSON:\n%s", bench::ToJsonArray(json).c_str());

  if (obs_mode == "both") {
    const double overhead_pct =
        off_final_us > 0.0 ? (on_final_us - off_final_us) / off_final_us * 100.0
                           : 0.0;
    std::printf(
        "\nObservability overhead at 10k active queries: submit p50 "
        "%.2f us (on) vs %.2f us (off) = %+.2f%% (budget: <= 5%%)\n",
        on_final_us, off_final_us, overhead_pct);
    if (!out_path.empty()) {
      bench::JsonObject summary;
      summary.Set("bench", "scale_queries")
          .Set("milestone_active_queries", 10'000.0)
          .Set("submit_p50_us_obs_on", on_final_us)
          .Set("submit_p50_us_obs_off", off_final_us)
          .Set("submit_overhead_pct", overhead_pct)
          .Set("budget_pct", 5.0);
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", summary.ToString().c_str());
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return 0;
}
