// Query-table scaling bench: submit/cancel latency vs. active query count.
//
// The ROADMAP's production-scale target means millions of concurrent
// queries per ContextFactory. This bench grows one factory through
// 10k -> 100k -> 1M live queries (each with a distinct SELECT type, so no
// two merge and every query owns a facade cluster) and measures the
// wall-clock latency of ProcessCxtQuery and CancelCxtQuery at each
// population milestone; with the sharded id-keyed table and the indexed
// facades both stay flat. A second sweep measures ProcessCxtQueryBatch
// throughput across worker counts (--workers), exercising the
// admission/planning fan-out through the lock-free ring. --out=FILE
// writes the whole trajectory as one JSON object (see BENCH_scale.json
// at the repo root; `cores` records the machine the numbers came from).
//
// --smoke shrinks both sweeps to a seconds-scale sanity pass wired into
// ctest, so the binary cannot silently rot.
//
// --obs=on|off|both selects whether the observability hooks (root span,
// admission counters, delivery metrics) are live during the sweep; the
// submit path is the hot path they instrument, so this is the overhead
// harness for docs/OBSERVABILITY.md. "both" runs the 10k sweep twice and
// reports the relative submit-latency overhead at the 10k milestone
// (budget: <= 5%). --out=FILE then writes the comparison instead (see
// BENCH_obs.json at the repo root).
//
// --overload switches to the overload-protection sweep: a 10x offered-
// load spike against an OverloadGovernor-gated factory, reporting
// per-class submit p50/p99 and shed rates per phase plus the graceful-
// degradation gates (see RunOverloadMode below and docs/ADMISSION.md;
// BENCH_overload.json at the repo root holds a reference run).
// --submits=N scales the sweep; the CONTORY_STRESS CMake toggle uses it
// to grow the ctest smoke from 1k to 100k submits.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observability.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct OpStats {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

OpStats Summarize(std::vector<double> samples) {
  OpStats s;
  if (samples.empty()) return s;
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean_us = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  s.p50_us = samples[samples.size() / 2];
  s.p99_us = samples[std::min(samples.size() - 1,
                              (samples.size() * 99) / 100)];
  return s;
}

query::CxtQuery MakeQuery(sim::Simulation& sim, std::size_t n) {
  // Distinct SELECT types so every query lands in its own cluster.
  auto q = query::QueryBuilder("scale-type-" + std::to_string(n))
               .FromAdHoc(1, 1)
               .For(std::chrono::hours{1})
               .Every(60s)
               .Build();
  q.id = sim.ids().NextId("q");
  return q;
}

testbed::DeviceOptions ScaleDeviceOptions(std::size_t shards) {
  testbed::DeviceOptions opts;
  opts.name = "phone-scale";
  opts.with_cellular = false;  // adHoc facade only: isolates cluster lookup
  opts.factory_config.table_shards = shards;
  return opts;
}

struct Milestone {
  std::size_t active = 0;
  OpStats submit;
  OpStats cancel;
};

struct SweepResult {
  std::vector<bench::JsonObject> json;
  std::vector<Milestone> milestones;
  /// Submit p50 at the largest milestone — the overhead comparison point
  /// (the median is robust against scheduler outliers; the mean swings
  /// tens of percent between identical runs).
  double submit_p50_final_us = 0.0;
};

SweepResult RunSweep(bool obs_on, const std::vector<std::size_t>& milestones,
                     std::size_t shards) {
  obs::Observability::ResetForTest();
  obs::Observability::Enable(obs_on);

  testbed::World world{4242};
  auto& device = world.AddDevice(ScaleDeviceOptions(shards));
  core::CollectingClient client;

  constexpr std::size_t kTimedWindow = 2'000;  // ops timed at each milestone
  constexpr std::size_t kCancelSample = 250;

  std::vector<std::string> ids;
  ids.reserve(milestones.back());
  std::vector<bench::Row> rows;
  SweepResult result;
  Rng sample_rng{7};

  std::size_t submitted = 0;
  for (const std::size_t target : milestones) {
    // Grow to the milestone, timing the last kTimedWindow submissions.
    std::vector<double> submit_us;
    while (submitted < target) {
      auto q = MakeQuery(world.sim(), submitted);
      const bool timed = submitted + kTimedWindow >= target;
      const auto start = Clock::now();
      const auto id = device.contory().ProcessCxtQuery(std::move(q), client);
      if (timed) submit_us.push_back(MicrosSince(start));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed at %zu: %s\n", submitted,
                     id.status().ToString().c_str());
        std::exit(1);
      }
      ids.push_back(*id);
      ++submitted;
    }

    // Cancel a deterministic sample spread across the whole population
    // (early ids are the linear scan's worst case), then resubmit to
    // restore the population.
    std::vector<double> cancel_us;
    for (std::size_t i = 0; i < kCancelSample; ++i) {
      const std::size_t victim = static_cast<std::size_t>(
          sample_rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1));
      const auto start = Clock::now();
      device.contory().CancelCxtQuery(ids[victim]);
      cancel_us.push_back(MicrosSince(start));
      auto q = MakeQuery(world.sim(), submitted + i);
      const auto id = device.contory().ProcessCxtQuery(std::move(q), client);
      if (id.ok()) ids[victim] = *id;
    }

    const OpStats sub = Summarize(std::move(submit_us));
    const OpStats can = Summarize(std::move(cancel_us));
    result.submit_p50_final_us = sub.p50_us;
    result.milestones.push_back({target, sub, can});
    char label[48];
    std::snprintf(label, sizeof label, "%7zu active", target);
    char measured[96];
    std::snprintf(measured, sizeof measured,
                  "submit %.1f us (p50 %.1f), cancel %.1f us (p50 %.1f)",
                  sub.mean_us, sub.p50_us, can.mean_us, can.p50_us);
    rows.push_back({label, measured, "n/a (extension)", ""});

    bench::JsonObject obj;
    obj.Set("active_queries", static_cast<double>(target))
        .Set("obs", obs_on ? "on" : "off")
        .Set("submit_mean_us", sub.mean_us)
        .Set("submit_p50_us", sub.p50_us)
        .Set("submit_p99_us", sub.p99_us)
        .Set("cancel_mean_us", can.mean_us)
        .Set("cancel_p50_us", can.p50_us)
        .Set("cancel_p99_us", can.p99_us);
    result.json.push_back(obj);
  }

  char title[96];
  std::snprintf(title, sizeof title,
                "Per-op latency vs. active query count (obs %s)",
                obs_on ? "on" : "off");
  bench::PrintTable(title, "latency", rows);
  return result;
}

struct WorkerPoint {
  std::size_t workers = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
};

/// Batch-submit throughput per worker count, each against a fresh world
/// (same seed, same queries) so populations don't accumulate between
/// configurations.
std::vector<WorkerPoint> RunWorkerSweep(
    const std::vector<std::size_t>& worker_counts, std::size_t batch_size,
    std::size_t shards) {
  std::vector<WorkerPoint> points;
  std::vector<bench::Row> rows;
  for (const std::size_t workers : worker_counts) {
    obs::Observability::ResetForTest();
    obs::Observability::Enable(true);
    testbed::World world{9000 + workers};
    auto& device = world.AddDevice(ScaleDeviceOptions(shards));
    core::CollectingClient client;

    std::vector<query::CxtQuery> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(MakeQuery(world.sim(), i));
    }
    const auto start = Clock::now();
    const auto results = device.contory().ProcessCxtQueryBatch(
        std::move(batch), client,
        core::ContextFactory::BatchOptions{workers});
    const double wall_ms = MicrosSince(start) / 1'000.0;
    for (const auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "batch submit failed (workers=%zu): %s\n",
                     workers, r.status().ToString().c_str());
        std::exit(1);
      }
    }
    const double qps =
        static_cast<double>(batch_size) / (wall_ms / 1'000.0);
    points.push_back({workers, wall_ms, qps});
    char label[48];
    std::snprintf(label, sizeof label, "workers=%zu", workers);
    char measured[96];
    std::snprintf(measured, sizeof measured, "%.1f ms for %zu = %.0f q/s",
                  wall_ms, batch_size, qps);
    rows.push_back({label, measured, "n/a (extension)", ""});
  }
  bench::PrintTable("Batch-submit throughput vs. worker count",
                    "throughput", rows);
  return points;
}

int RunScaleMode(bool smoke, std::size_t max_active, std::size_t shards,
                 const std::vector<std::size_t>& worker_counts,
                 const std::string& out_path) {
  std::vector<std::size_t> milestones;
  if (smoke) {
    milestones = {1'000, 5'000};
  } else {
    for (const std::size_t m :
         {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
      if (m <= max_active) milestones.push_back(m);
    }
    if (milestones.empty() || milestones.back() != max_active) {
      milestones.push_back(max_active);
    }
  }
  const std::size_t batch_size = smoke ? 2'000 : 50'000;

  bench::PrintHeading(
      "Query scaling: submit/cancel latency vs. active query count");
  std::printf(
      "One factory grown to %zu concurrent single-cluster queries (%zu\n"
      "table shards); per-op wall-clock latency sampled at each milestone,\n"
      "then batch-submit throughput across worker counts.\n\n",
      milestones.back(), shards);

  const SweepResult sweep = RunSweep(/*obs_on=*/true, milestones, shards);
  std::printf("\n");
  const std::vector<WorkerPoint> throughput =
      RunWorkerSweep(worker_counts, batch_size, shards);

  std::vector<bench::JsonObject> json = sweep.json;
  const unsigned cores = std::thread::hardware_concurrency();
  double qps_one_worker = 0.0;
  for (const WorkerPoint& p : throughput) {
    if (p.workers == 1) qps_one_worker = p.qps;
  }
  for (const WorkerPoint& p : throughput) {
    bench::JsonObject obj;
    obj.Set("workers", static_cast<double>(p.workers))
        .Set("batch_size", static_cast<double>(batch_size))
        .Set("wall_ms", p.wall_ms)
        .Set("queries_per_sec", p.qps);
    if (qps_one_worker > 0.0 && p.workers >= 1) {
      obj.Set("speedup_vs_1_worker", p.qps / qps_one_worker);
    }
    json.push_back(obj);
  }
  std::printf("\nJSON:\n%s", bench::ToJsonArray(json).c_str());

  const Milestone& first = sweep.milestones.front();
  const Milestone& last = sweep.milestones.back();
  const double growth = first.submit.p50_us > 0.0
                            ? last.submit.p50_us / first.submit.p50_us
                            : 0.0;
  std::printf(
      "\nSubmit p50: %.2f us at %zu -> %.2f us at %zu (x%.2f); "
      "%u core(s) available for the worker sweep.\n",
      first.submit.p50_us, first.active, last.submit.p50_us, last.active,
      growth, cores);

  if (!out_path.empty()) {
    bench::JsonObject summary;
    summary.Set("bench", "scale_queries")
        .Set("cores", static_cast<double>(cores))
        .Set("table_shards", static_cast<double>(shards))
        .Set("max_active_queries", static_cast<double>(last.active))
        .Set("submit_p50_us_first_milestone", first.submit.p50_us)
        .Set("submit_p50_us_max", last.submit.p50_us)
        .Set("submit_p50_growth_ratio", growth)
        .Set("cancel_p50_us_max", last.cancel.p50_us);
    for (const WorkerPoint& p : throughput) {
      char key[48];
      std::snprintf(key, sizeof key, "qps_workers_%zu", p.workers);
      summary.Set(key, p.qps);
    }
    if (qps_one_worker > 0.0) {
      for (const WorkerPoint& p : throughput) {
        if (p.workers > 1) {
          char key[48];
          std::snprintf(key, sizeof key, "speedup_%zu_vs_1", p.workers);
          summary.Set(key, p.qps / qps_one_worker);
        }
      }
    }
    summary.Set("note",
                cores <= 1
                    ? "single-core machine: worker fan-out cannot speed up; "
                      "speedups reflect ring/coordination overhead only"
                    : "speedups measured on this core count");
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", summary.ToString().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (smoke) {
    // Sanity gates only — smoke runs on shared CI machines where absolute
    // numbers are meaningless, but a zero sample or a failed batch means
    // the harness itself broke.
    if (sweep.milestones.empty() || last.submit.p50_us <= 0.0 ||
        throughput.empty()) {
      std::fprintf(stderr, "SMOKE FAILED: empty sweep\n");
      return 1;
    }
    std::printf("SMOKE OK\n");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Overload mode (--overload): graceful load shedding under a 10x spike.
//
// One factory with the OverloadGovernor's watermarks armed is driven
// through three phases on a frozen simulation clock (occupancy, not
// time, is the pressure axis):
//   1. baseline — N/10 single submits, below every watermark;
//   2. spike    — 6N/10 single submits, a 10x offered-load burst that
//                 crosses the background and then the standard watermark;
//   3. batch    — 3N/10 queries through ProcessCxtQueryBatch with two
//                 workers: the pre-gated worker path, still shedding.
// Every 5th query is interactive, two in five standard, two in five
// background; half the background queries reuse one of eight "warm"
// SELECT types seeded into the repository up front, so their sheds take
// the stale-answer fast path (degraded delivery) instead of a refusal.
// The gates at the end are the graceful-degradation contract: interactive
// is never shed and its p99 stays within 2x of the unloaded baseline,
// background sheds strictly before standard, admitted == completed +
// live, zero invalid transitions, zero leaked spans — plus the drop/ring
// gauges (completion_log_dropped, executor_ring_high_watermark) that the
// bounded completion log and the worker ring must have populated.

constexpr std::size_t kWarmTypes = 8;

query::QueryPriority ClassOf(std::size_t i) {
  switch (i % 5) {
    case 0: return query::QueryPriority::kInteractive;
    case 1:
    case 2: return query::QueryPriority::kStandard;
    default: return query::QueryPriority::kBackground;
  }
}

query::CxtQuery MakeOverloadQuery(sim::Simulation& sim, std::size_t i) {
  const query::QueryPriority cls = ClassOf(i);
  // i % 10 in {3, 8}: half the background share (i % 5 in {3, 4}).
  const bool warm = i % 10 == 3 || i % 10 == 8;
  auto builder = query::QueryBuilder(
      warm ? "warm-" + std::to_string(i % kWarmTypes)
           : "load-type-" + std::to_string(i));
  builder.FromAdHoc(1, 1).For(std::chrono::hours{1}).Priority(cls);
  // Warm queries are on-demand: their stale fast path delivers one item
  // and finishes, feeding the bounded completion log.
  if (!warm) builder.Every(60s);
  auto q = builder.Build();
  q.id = sim.ids().NextId("q");
  return q;
}

struct ClassCounts {
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::vector<double> lat_us;  // wall latency of every submit call
};

struct OverloadPhase {
  const char* name = "";
  ClassCounts cls[3];
};

const char* ClassName(std::size_t c) {
  return query::QueryPriorityName(static_cast<query::QueryPriority>(c));
}

/// Flight-recorder cadence in --overload: the sim clock is frozen, so
/// "time" is submit count — one frame per 200 submits keeps the shed /
/// occupancy curves dense without recorder cost showing in the latencies.
constexpr std::size_t kRecorderStride = 200;

void SubmitSingles(core::ContextFactory& factory,
                   core::CollectingClient& client, sim::Simulation& sim,
                   std::size_t begin, std::size_t count, OverloadPhase& phase,
                   std::vector<std::string>& ids, std::size_t* first_shed,
                   std::size_t* order, bool record) {
  for (std::size_t k = 0; k < count; ++k) {
    if (record && (k + 1) % kRecorderStride == 0) {
      COBS(obs::Observability::recorder().Sample(sim.Now()));
    }
    const std::size_t i = begin + k;
    auto q = MakeOverloadQuery(sim, i);
    const auto c = static_cast<std::size_t>(q.priority);
    const auto start = Clock::now();
    const auto id = factory.ProcessCxtQuery(std::move(q), client);
    phase.cls[c].lat_us.push_back(MicrosSince(start));
    if (id.ok()) {
      ++phase.cls[c].admitted;
      ids.push_back(*id);
    } else if (id.status().code() == StatusCode::kOverloaded) {
      ++phase.cls[c].shed;
      if (first_shed[c] == SIZE_MAX) first_shed[c] = *order;
    } else {
      std::fprintf(stderr, "unexpected submit failure at %zu: %s\n", i,
                   id.status().ToString().c_str());
      std::exit(1);
    }
    ++*order;
  }
}

int RunOverloadMode(bool smoke, std::size_t submits,
                    const std::string& out_path, bool record) {
  obs::Observability::ResetForTest();
  obs::Observability::Enable(true);
  if (record && COBS_ON()) {
    obs::RecorderConfig rec;
    rec.capacity = 4096;
    rec.prefixes = {"admission_", "completion_log", "executor_",
                    "queries_", "recorder_"};
    obs::Observability::recorder().Configure(std::move(rec));
  }

  const std::size_t n = submits != 0 ? submits : (smoke ? 1'000 : 30'000);
  const std::size_t baseline_n = std::max<std::size_t>(n / 10, 50);
  const std::size_t spike_n = baseline_n * 6;
  const std::size_t batch_n = baseline_n * 3;
  // Background sheds early in the spike; standard only once the spike has
  // pushed occupancy past half its span. Interactive has no watermark.
  const std::size_t high_wm = baseline_n + spike_n / 10;
  const std::size_t standard_wm = baseline_n + spike_n / 2;

  bench::PrintHeading("Overload protection: graceful shedding under spike");
  std::printf(
      "Admission gated by the OverloadGovernor (high watermark %zu,\n"
      "standard watermark %zu). Baseline %zu submits, spike %zu (10x\n"
      "offered load), then %zu through the 2-worker batch path; class mix\n"
      "1:2:2 interactive:standard:background, half the background warm.\n\n",
      high_wm, standard_wm, baseline_n, spike_n, batch_n);

  testbed::DeviceOptions opts;
  opts.name = "phone-overload";
  opts.with_cellular = false;
  opts.factory_config.table_shards = 64;
  // Warm SELECT types repeat across queries; merging would collapse them.
  opts.factory_config.enable_query_merging = false;
  // Small bound so the drop path is exercised even in smoke runs.
  opts.factory_config.completion_log_capacity = 64;
  opts.factory_config.overload.shed_high_watermark = high_wm;
  opts.factory_config.overload.shed_standard_watermark = standard_wm;

  OverloadPhase baseline;
  baseline.name = "baseline";
  OverloadPhase spike;
  spike.name = "spike-10x";
  OverloadPhase batchp;
  batchp.name = "batch-2w";
  std::size_t first_shed[3] = {SIZE_MAX, SIZE_MAX, SIZE_MAX};
  std::uint64_t total_admitted = 0;
  std::uint64_t total_completed = 0;
  std::uint64_t invalid_transitions = 0;
  std::uint64_t degraded = 0;
  std::uint64_t stale_fastpath = 0;
  std::uint64_t shed_counter[3] = {0, 0, 0};
  std::size_t live = 0;
  double log_dropped = 0.0;
  double ring_high = 0.0;
  double batch_ms = 0.0;
  {
    testbed::World world{777};
    auto& device = world.AddDevice(opts);
    auto& factory = device.contory();
    auto& sim = world.sim();
    core::CollectingClient client;

    for (std::size_t k = 0; k < kWarmTypes; ++k) {
      CxtItem item;
      item.id = "seed-" + std::to_string(k);
      item.type = "warm-" + std::to_string(k);
      item.value = CxtValue(20.0 + static_cast<double>(k));
      item.timestamp = sim.Now();
      item.source = {SourceKind::kIntSensor, "bench-seed"};
      factory.repository().Store(std::move(item));
    }

    std::vector<std::string> ids;
    ids.reserve(n);
    std::size_t order = 0;
    SubmitSingles(factory, client, sim, 0, baseline_n, baseline, ids,
                  first_shed, &order, record);
    SubmitSingles(factory, client, sim, baseline_n, spike_n, spike, ids,
                  first_shed, &order, record);

    std::vector<query::CxtQuery> batch;
    batch.reserve(batch_n);
    for (std::size_t k = 0; k < batch_n; ++k) {
      batch.push_back(MakeOverloadQuery(sim, baseline_n + spike_n + k));
    }
    const auto bstart = Clock::now();
    const auto results = factory.ProcessCxtQueryBatch(
        std::move(batch), client, core::ContextFactory::BatchOptions{2});
    batch_ms = MicrosSince(bstart) / 1'000.0;
    for (std::size_t k = 0; k < results.size(); ++k) {
      const std::size_t i = baseline_n + spike_n + k;
      const auto c = static_cast<std::size_t>(ClassOf(i));
      if (results[k].ok()) {
        ++batchp.cls[c].admitted;
        ids.push_back(*results[k]);
      } else if (results[k].status().code() == StatusCode::kOverloaded) {
        ++batchp.cls[c].shed;
        if (first_shed[c] == SIZE_MAX) first_shed[c] = order + k;
      } else {
        std::fprintf(stderr, "unexpected batch failure at %zu: %s\n", k,
                     results[k].status().ToString().c_str());
        return 1;
      }
    }
    if (record) {
      COBS(obs::Observability::recorder().Sample(sim.Now()));
    }

    // Lifecycle accounting snapshot, before draining.
    auto& table = factory.queries();
    total_admitted = table.total_admitted();
    total_completed = table.total_completed();
    live = table.active_count();
    invalid_transitions = table.invalid_transitions();
    degraded = factory.degraded_deliveries();

    auto& metrics = obs::Observability::metrics();
    const auto* dropped = metrics.FindGauge("completion_log_dropped");
    log_dropped = dropped != nullptr ? dropped->value() : 0.0;
    const auto* ring = metrics.FindGauge("executor_ring_high_watermark");
    ring_high = ring != nullptr ? ring->value() : 0.0;
    const auto* fast = metrics.FindCounter("admission_stale_fastpath_total");
    stale_fastpath = fast != nullptr ? fast->value() : 0;
    for (std::size_t c = 0; c < 3; ++c) {
      const auto* counter = metrics.FindCounter(
          "admission_shed_total", {{"class", ClassName(c)}});
      shed_counter[c] = counter != nullptr ? counter->value() : 0;
    }

    // Drain: cancel everything still live so every span must close.
    for (const auto& id : ids) factory.CancelCxtQuery(id);
  }
  const std::size_t open_spans = obs::Observability::tracer().open_count();
  const std::size_t double_closes =
      obs::Observability::tracer().double_closes();

  std::vector<bench::Row> rows;
  std::vector<bench::JsonObject> json;
  OpStats stats[3][3];  // [phase][class]
  const OverloadPhase* phases[3] = {&baseline, &spike, &batchp};
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t c = 0; c < 3; ++c) {
      const ClassCounts& counts = phases[p]->cls[c];
      const std::size_t offered = counts.admitted + counts.shed;
      const double shed_pct =
          offered > 0 ? 100.0 * static_cast<double>(counts.shed) /
                            static_cast<double>(offered)
                      : 0.0;
      stats[p][c] = Summarize(counts.lat_us);
      char label[48];
      std::snprintf(label, sizeof label, "%-9s %s", phases[p]->name,
                    ClassName(c));
      char measured[96];
      std::snprintf(measured, sizeof measured,
                    "p50 %.1f us p99 %.1f us, shed %zu/%zu (%.0f%%)",
                    stats[p][c].p50_us, stats[p][c].p99_us, counts.shed,
                    offered, shed_pct);
      rows.push_back({label, measured, "n/a (extension)", ""});

      bench::JsonObject obj;
      obj.Set("phase", phases[p]->name)
          .Set("class", ClassName(c))
          .Set("offered", static_cast<double>(offered))
          .Set("admitted", static_cast<double>(counts.admitted))
          .Set("shed", static_cast<double>(counts.shed))
          .Set("shed_pct", shed_pct);
      if (!counts.lat_us.empty()) {
        obj.Set("submit_p50_us", stats[p][c].p50_us)
            .Set("submit_p99_us", stats[p][c].p99_us);
      }
      json.push_back(obj);
    }
  }
  bench::PrintTable("Per-class submit latency and shed rate by phase",
                    "latency / shed", rows);
  std::printf("\nJSON:\n%s", bench::ToJsonArray(json).c_str());

  const double p99_ratio =
      stats[0][0].p99_us > 0.0 ? stats[1][0].p99_us / stats[0][0].p99_us
                               : 0.0;
  const std::uint64_t live64 = static_cast<std::uint64_t>(live);
  std::printf(
      "\nInteractive p99: %.2f us baseline -> %.2f us spike (x%.2f, "
      "budget 2x)\n"
      "Accounting: admitted %llu = completed %llu + live %llu; "
      "invalid transitions %llu\n"
      "Shed counters i/s/b: %llu/%llu/%llu; stale fast path %llu; "
      "degraded deliveries %llu\n"
      "Gauges: completion_log_dropped %.0f, executor_ring_high_watermark "
      "%.0f (batch %.1f ms); open spans %zu, double closes %zu\n",
      stats[0][0].p99_us, stats[1][0].p99_us, p99_ratio,
      static_cast<unsigned long long>(total_admitted),
      static_cast<unsigned long long>(total_completed),
      static_cast<unsigned long long>(live64),
      static_cast<unsigned long long>(invalid_transitions),
      static_cast<unsigned long long>(shed_counter[0]),
      static_cast<unsigned long long>(shed_counter[1]),
      static_cast<unsigned long long>(shed_counter[2]),
      static_cast<unsigned long long>(stale_fastpath),
      static_cast<unsigned long long>(degraded), log_dropped, ring_high,
      batch_ms, open_spans, double_closes);

  if (!out_path.empty()) {
    bench::JsonObject summary;
    summary.Set("bench", "scale_queries_overload")
        .Set("cores", static_cast<double>(std::thread::hardware_concurrency()))
        .Set("submits_total", static_cast<double>(baseline_n + spike_n +
                                                  batch_n))
        .Set("high_watermark", static_cast<double>(high_wm))
        .Set("standard_watermark", static_cast<double>(standard_wm))
        .Set("interactive_p99_us_baseline", stats[0][0].p99_us)
        .Set("interactive_p99_us_spike", stats[1][0].p99_us)
        .Set("interactive_p99_spike_over_baseline", p99_ratio)
        .Set("interactive_shed",
             static_cast<double>(shed_counter[0]))
        .Set("standard_shed", static_cast<double>(shed_counter[1]))
        .Set("background_shed", static_cast<double>(shed_counter[2]))
        .Set("stale_fastpath_total", static_cast<double>(stale_fastpath))
        .Set("degraded_deliveries", static_cast<double>(degraded))
        .Set("admitted", static_cast<double>(total_admitted))
        .Set("completed_plus_live",
             static_cast<double>(total_completed + live64))
        .Set("invalid_transitions",
             static_cast<double>(invalid_transitions))
        .Set("completion_log_dropped", log_dropped)
        .Set("executor_ring_high_watermark", ring_high)
        .Set("open_spans", static_cast<double>(open_spans));
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", summary.ToString().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // Graceful-degradation gates. Latency is wall-clock and shared CI
  // machines are noisy, so the 2x interactive budget is informational in
  // smoke runs and enforced in full runs; the structural gates always
  // hold or the governor is broken.
  bool ok = true;
  const auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::fprintf(stderr, "OVERLOAD GATE FAILED: %s\n", what);
      ok = false;
    }
  };
  gate(shed_counter[0] == 0, "interactive must never shed");
  gate(shed_counter[2] > 0, "background must shed under spike");
  gate(shed_counter[1] > 0, "standard must shed past its watermark");
  gate(first_shed[2] < first_shed[1],
       "background must shed before standard");
  gate(stale_fastpath > 0, "warm sheds must take the stale fast path");
  gate(degraded > 0, "stale fast path must deliver");
  gate(total_admitted == total_completed + live64,
       "admitted != completed + live");
  gate(invalid_transitions == 0, "invalid lifecycle transitions");
  gate(log_dropped > 0.0, "bounded completion log never dropped");
  gate(ring_high >= 1.0, "worker ring high watermark never observed");
  gate(open_spans == 0 && double_closes == 0, "leaked or double-closed spans");
  if (!smoke) {
    gate(p99_ratio <= 2.0, "interactive p99 exceeded 2x baseline");
  } else if (p99_ratio > 2.0) {
    std::printf("note: interactive p99 ratio %.2f > 2 (not gated in smoke)\n",
                p99_ratio);
  }
  if (smoke) std::printf(ok ? "SMOKE OK\n" : "SMOKE FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string obs_mode = "scale";
  std::string out_path;
  std::string trace_path;
  bool smoke = false;
  bool overload = false;
  std::size_t submits = 0;
  std::size_t max_active = 1'000'000;
  std::size_t shards = 64;
  std::vector<std::size_t> worker_counts{0, 1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--obs=", 6) == 0) {
      obs_mode = arg + 6;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_path = arg + 12;
    } else if (std::strncmp(arg, "--max=", 6) == 0) {
      max_active = static_cast<std::size_t>(std::strtoull(arg + 6, nullptr, 10));
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = static_cast<std::size_t>(std::strtoull(arg + 9, nullptr, 10));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      worker_counts.clear();
      for (const char* p = arg + 10; *p != '\0';) {
        char* end = nullptr;
        worker_counts.push_back(
            static_cast<std::size_t>(std::strtoull(p, &end, 10)));
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--overload") == 0) {
      overload = true;
    } else if (std::strncmp(arg, "--submits=", 10) == 0) {
      submits = static_cast<std::size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: scale_queries [--obs=on|off|both] [--out=FILE]\n"
                   "                     [--trace-out=FILE]\n"
                   "                     [--max=N] [--shards=N]\n"
                   "                     [--workers=a,b,c] [--smoke]\n"
                   "                     [--overload] [--submits=N]\n");
      return 2;
    }
  }
  // Exports whatever spans + recorder frames the selected mode left in
  // the singletons (each sweep resets them, so the *last* sweep's view).
  const auto finish = [&trace_path](int rc) {
    if (trace_path.empty()) return rc;
    if (!COBS_ON()) {
      std::fprintf(stderr,
                   "--trace-out ignored: observability is compiled out or "
                   "disabled\n");
      return rc;
    }
    if (obs::ExportChromeTrace(trace_path)) {
      std::printf("wrote %s (load at ui.perfetto.dev)\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      if (rc == 0) rc = 1;
    }
    return rc;
  };
  if (overload) {
    return finish(RunOverloadMode(smoke, submits, out_path,
                                  /*record=*/!trace_path.empty()));
  }
  if (obs_mode == "scale") {
    if (smoke) worker_counts = {0, 2};
    return finish(
        RunScaleMode(smoke, max_active, shards, worker_counts, out_path));
  }
  if (obs_mode != "on" && obs_mode != "off" && obs_mode != "both") {
    std::fprintf(stderr, "unknown --obs mode '%s'\n", obs_mode.c_str());
    return 2;
  }

  // Observability-overhead mode: the 10k sweep, with the hooks toggled.
  const std::vector<std::size_t> obs_milestones{1'000, 2'500, 5'000, 10'000};
  bench::PrintHeading(
      "Query scaling: submit/cancel latency vs. active query count");
  std::printf(
      "One factory grown to 10k concurrent single-cluster queries; per-op\n"
      "wall-clock latency sampled at each population milestone.\n\n");

  std::vector<bench::JsonObject> json;
  double on_final_us = 0.0;
  double off_final_us = 0.0;
  if (obs_mode == "both") {
    // Interleave repetitions per mode and compare the median of the
    // per-sweep medians: a single sweep's p50 still swings ~10% with
    // scheduler noise, and a min would reward whichever mode got lucky.
    // The order within each pair alternates so allocator/page warmup
    // doesn't systematically favor whichever mode runs second. Nine reps
    // (up from five) because the median of five still wobbled past the
    // 5% budget run-to-run on a loaded single-core host.
    constexpr int kReps = 9;
    std::vector<double> off_p50s;
    std::vector<double> on_p50s;
    for (int rep = 0; rep < kReps; ++rep) {
      const bool on_first = (rep % 2) == 1;
      const SweepResult first = RunSweep(on_first, obs_milestones, shards);
      const SweepResult second = RunSweep(!on_first, obs_milestones, shards);
      const SweepResult& off = on_first ? second : first;
      const SweepResult& on = on_first ? first : second;
      off_p50s.push_back(off.submit_p50_final_us);
      on_p50s.push_back(on.submit_p50_final_us);
      if (rep == kReps - 1) {
        json.insert(json.end(), off.json.begin(), off.json.end());
        json.insert(json.end(), on.json.begin(), on.json.end());
      }
    }
    std::sort(off_p50s.begin(), off_p50s.end());
    std::sort(on_p50s.begin(), on_p50s.end());
    off_final_us = off_p50s[kReps / 2];
    on_final_us = on_p50s[kReps / 2];
  } else {
    const bool on = obs_mode == "on";
    const SweepResult r = RunSweep(on, obs_milestones, shards);
    (on ? on_final_us : off_final_us) = r.submit_p50_final_us;
    json.insert(json.end(), r.json.begin(), r.json.end());
  }

  std::printf("\nJSON:\n%s", bench::ToJsonArray(json).c_str());

  if (obs_mode == "both") {
    const double overhead_pct =
        off_final_us > 0.0 ? (on_final_us - off_final_us) / off_final_us * 100.0
                           : 0.0;
    std::printf(
        "\nObservability overhead at 10k active queries: submit p50 "
        "%.2f us (on) vs %.2f us (off) = %+.2f%% (budget: <= 5%%)\n",
        on_final_us, off_final_us, overhead_pct);
    if (!out_path.empty()) {
      bench::JsonObject summary;
      summary.Set("bench", "scale_queries")
          .Set("milestone_active_queries", 10'000.0)
          .Set("submit_p50_us_obs_on", on_final_us)
          .Set("submit_p50_us_obs_off", off_final_us)
          .Set("submit_overhead_pct", overhead_pct)
          .Set("budget_pct", 5.0);
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", summary.ToString().c_str());
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return finish(0);
}
