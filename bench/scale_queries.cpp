// Query-table scaling bench: submit/cancel latency vs. active query count.
//
// The ROADMAP's production-scale target means thousands of concurrent
// queries per ContextFactory. This bench grows one factory to 10k live
// queries (each with a distinct SELECT type, so no two merge and every
// query owns a facade cluster) and measures the wall-clock latency of
// ProcessCxtQuery and CancelCxtQuery at increasing populations. With a
// linear cluster scan both degrade with the active count; with the
// (cxt_type, source, mode)-keyed cluster index they stay flat. Emits the
// sweep as JSON like the other benches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct OpStats {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

OpStats Summarize(std::vector<double> samples) {
  OpStats s;
  if (samples.empty()) return s;
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean_us = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  s.p50_us = samples[samples.size() / 2];
  s.p99_us = samples[std::min(samples.size() - 1,
                              (samples.size() * 99) / 100)];
  return s;
}

query::CxtQuery MakeQuery(sim::Simulation& sim, std::size_t n) {
  // Distinct SELECT types so every query lands in its own cluster.
  auto q = query::QueryBuilder("scale-type-" + std::to_string(n))
               .FromAdHoc(1, 1)
               .For(std::chrono::hours{1})
               .Every(60s)
               .Build();
  q.id = sim.ids().NextId("q");
  return q;
}

}  // namespace

int main() {
  bench::PrintHeading(
      "Query scaling: submit/cancel latency vs. active query count");
  std::printf(
      "One factory grown to 10k concurrent single-cluster queries; per-op\n"
      "wall-clock latency sampled at each population milestone.\n\n");

  testbed::World world{4242};
  testbed::DeviceOptions opts;
  opts.name = "phone-scale";
  opts.with_cellular = false;  // adHoc facade only: isolates cluster lookup
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;

  const std::vector<std::size_t> milestones{1'000, 2'500, 5'000, 10'000};
  constexpr std::size_t kTimedWindow = 500;  // ops timed at each milestone
  constexpr std::size_t kCancelSample = 250;

  std::vector<std::string> ids;
  ids.reserve(milestones.back());
  std::vector<bench::Row> rows;
  std::vector<bench::JsonObject> json;
  Rng sample_rng{7};

  std::size_t submitted = 0;
  for (const std::size_t target : milestones) {
    // Grow to the milestone, timing the last kTimedWindow submissions.
    std::vector<double> submit_us;
    while (submitted < target) {
      auto q = MakeQuery(world.sim(), submitted);
      const bool timed = submitted + kTimedWindow >= target;
      const auto start = Clock::now();
      const auto id = device.contory().ProcessCxtQuery(std::move(q), client);
      if (timed) submit_us.push_back(MicrosSince(start));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed at %zu: %s\n", submitted,
                     id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(*id);
      ++submitted;
    }

    // Cancel a deterministic sample spread across the whole population
    // (early ids are the linear scan's worst case), then resubmit to
    // restore the population.
    std::vector<double> cancel_us;
    for (std::size_t i = 0; i < kCancelSample; ++i) {
      const std::size_t victim = static_cast<std::size_t>(
          sample_rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1));
      const auto start = Clock::now();
      device.contory().CancelCxtQuery(ids[victim]);
      cancel_us.push_back(MicrosSince(start));
      auto q = MakeQuery(world.sim(), submitted + i);
      const auto id = device.contory().ProcessCxtQuery(std::move(q), client);
      if (id.ok()) ids[victim] = *id;
    }

    const OpStats sub = Summarize(std::move(submit_us));
    const OpStats can = Summarize(std::move(cancel_us));
    char label[48];
    std::snprintf(label, sizeof label, "%5zu active", target);
    char measured[96];
    std::snprintf(measured, sizeof measured,
                  "submit %.1f us (p50 %.1f), cancel %.1f us (p50 %.1f)",
                  sub.mean_us, sub.p50_us, can.mean_us, can.p50_us);
    rows.push_back({label, measured, "n/a (extension)", ""});

    bench::JsonObject obj;
    obj.Set("active_queries", static_cast<double>(target))
        .Set("submit_mean_us", sub.mean_us)
        .Set("submit_p50_us", sub.p50_us)
        .Set("submit_p99_us", sub.p99_us)
        .Set("cancel_mean_us", can.mean_us)
        .Set("cancel_p50_us", can.p50_us)
        .Set("cancel_p99_us", can.p99_us);
    json.push_back(obj);
  }

  bench::PrintTable("Per-op latency vs. active query count", "latency",
                    rows);
  std::printf("\nJSON:\n%s", bench::ToJsonArray(json).c_str());
  return 0;
}
