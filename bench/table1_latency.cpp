// Regenerates Table 1: "Latency times of basic Contory operations".
//
// Paper reference values (Nokia 6630/9500 testbed):
//   createCxtItem ........................................ 0.078 ms
//   adHocNetwork, BT-based: publishCxtItem ............. 140.359 ms
//   adHocNetwork, WiFi-based: publishCxtItem ............. 0.130 ms
//   extInfra, UMTS-based: publishCxtItem ............... 772.728 ms
//   createCxtQuery ....................................... (cell empty
//       in the published text — we report ours and mark the paper n/a)
//   adHocNetwork, BT-based, one hop: getCxtItem ......... 31.830 ms
//   adHocNetwork, WiFi-based, one hop: getCxtItem ...... 761.280 ms
//   adHocNetwork, WiFi-based, two hops: getCxtItem .... 1422.500 ms
//   extInfra, UMTS-based: getCxtItem .................. 1473.000 ms
//
// Also reproduced: BT device discovery ~13 s, BT service discovery
// ~1.12 s, and the SM per-hop latency break-up (connection 4-5%,
// serialization 26-33%, thread switching 12-14%, transfer 51-54%).
//
// Local object operations (createCxtItem / createCxtQuery) are measured
// as wall-clock time of this library on the host; everything network-
// bound is measured in simulated time on the calibrated device models,
// with 8 runs and 90% confidence intervals, as in the paper.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

constexpr int kRuns = 8;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

CxtItem LightItem(testbed::World& world) {
  CxtItem item;
  item.id = world.sim().ids().NextId("item");
  item.type = vocab::kLight;  // the paper's 136-byte lightItem
  item.value = 5200.0;
  item.timestamp = world.Now();
  item.metadata.accuracy = 50.0;
  return item;
}

/// Wall-clock cost of a local library operation, in ms (median of many).
template <typename Fn>
double WallClockMs(Fn&& fn, int iters = 20'000) {
  // Warm up.
  for (int i = 0; i < 100; ++i) fn();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count() / iters;
}

RunningStats BenchBtPublish() {
  RunningStats ms;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{300 + static_cast<std::uint64_t>(run)};
    auto& device = world.AddDevice({.name = "publisher"});
    core::CollectingClient server;
    (void)device.contory().RegisterCxtServer(server);
    const SimTime start = world.Now();
    bool done = false;
    device.contory().publisher().Publish(LightItem(world), "",
                                         [&](Status) { done = true; });
    while (!done && world.sim().Step()) {
    }
    ms.Add(ToMillis(world.Now() - start));
  }
  return ms;
}

RunningStats BenchWifiPublish() {
  RunningStats ms;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{320 + static_cast<std::uint64_t>(run)};
    testbed::DeviceOptions opts;
    opts.name = "publisher";
    opts.profile = phone::Nokia9500();
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.with_cellular = false;
    auto& device = world.AddDevice(opts);
    core::CollectingClient server;
    (void)device.contory().RegisterCxtServer(server);
    const SimTime start = world.Now();
    bool done = false;
    device.contory().publisher().Publish(LightItem(world), "",
                                         [&](Status) { done = true; });
    while (!done && world.sim().Step()) {
    }
    ms.Add(ToMillis(world.Now() - start));
  }
  return ms;
}

RunningStats BenchUmtsPublish() {
  RunningStats ms;
  testbed::World world{340};
  testbed::DeviceOptions opts;
  opts.name = "publisher";
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  world.AddContextServer("infra.dynamos.fi");
  // A publisher stores repeatedly; the radio hovers between DCH tail and
  // FACH, which is where the paper's high variance comes from.
  for (int run = 0; run < kRuns + 2; ++run) {
    world.RunFor(12s);
    const SimTime start = world.Now();
    bool done = false;
    device.contory().StoreCxtItem(LightItem(world),
                                  [&](Status) { done = true; });
    while (!done && world.sim().Step()) {
    }
    if (run >= 2) ms.Add(ToMillis(world.Now() - start));  // skip cold runs
  }
  return ms;
}

RunningStats BenchBtGet(double* discovery_s, double* sdp_s) {
  RunningStats ms;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{360 + static_cast<std::uint64_t>(run)};
    auto& requester = world.AddDevice({.name = "requester"});
    testbed::DeviceOptions pub_opts;
    pub_opts.name = "publisher";
    pub_opts.position = {5, 0};
    auto& publisher = world.AddDevice(pub_opts);
    core::CollectingClient server;
    (void)publisher.contory().RegisterCxtServer(server);
    (void)publisher.contory().PublishCxtItem(LightItem(world), true);
    world.RunFor(1s);

    // Discovery phase, timed separately (the paper reports the one-hop
    // getCxtItem "once device and service discovery has occurred").
    const SimTime t0 = world.Now();
    bool discovered = false;
    requester.bt()->StartInquiry(
        [&](Result<std::vector<net::BtDeviceInfo>>) { discovered = true; });
    while (!discovered && world.sim().Step()) {
    }
    if (discovery_s != nullptr) *discovery_s = ToSeconds(world.Now() - t0);

    const SimTime t1 = world.Now();
    bool sdp_done = false;
    requester.bt()->DiscoverServices(
        publisher.node(), core::CxtServiceName(vocab::kLight),
        [&](Result<std::vector<net::ServiceRecord>>) { sdp_done = true; });
    while (!sdp_done && world.sim().Step()) {
    }
    if (sdp_s != nullptr) *sdp_s = ToSeconds(world.Now() - t1);

    // Connected poll: the getCxtItem the table times.
    net::BtLinkId link = 0;
    requester.bt()->Connect(publisher.node(), [&](Result<net::BtLinkId> r) {
      link = r.value();
    });
    world.RunFor(1s);
    bool got = false;
    requester.bt()->SetDataHandler(
        [&](net::BtLinkId, net::NodeId, const std::vector<std::byte>& f) {
          if (core::ParseCxtGetResponse(f).ok()) got = true;
        });
    const SimTime t2 = world.Now();
    requester.bt()->Send(link,
                         core::BuildCxtGetRequest(vocab::kLight, ""));
    while (!got && world.sim().Step()) {
    }
    ms.Add(ToMillis(world.Now() - t2));
  }
  return ms;
}

RunningStats BenchWifiGet(int hops, sm::HopBreakup* breakup) {
  RunningStats ms;
  for (int run = 0; run < kRuns; ++run) {
    testbed::World world{380 + static_cast<std::uint64_t>(hops * 40 + run)};
    // Line of communicators 80 m apart; publisher at the far end.
    std::vector<testbed::Device*> devices;
    for (int i = 0; i <= hops; ++i) {
      testbed::DeviceOptions opts;
      opts.name = "comm-" + std::to_string(i);
      opts.profile = phone::Nokia9500();
      opts.position = {i * 80.0, 0};
      opts.with_bt = false;
      opts.with_wifi = true;
      opts.with_cellular = false;
      devices.push_back(&world.AddDevice(opts));
    }
    core::CollectingClient server;
    (void)devices.back()->contory().RegisterCxtServer(server);
    (void)devices.back()->contory().PublishCxtItem(LightItem(world), true);

    core::CollectingClient client;
    const SimTime start = world.Now();
    const auto id = devices[0]->contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM adHocNetwork(1," +
                           std::to_string(hops) + ") DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
    ms.Add(ToMillis(world.Now() - start));
    (void)breakup;
  }
  return ms;
}

/// One raw SM round trip to extract the per-hop latency break-up.
sm::HopBreakup MeasureBreakup() {
  testbed::World world{470};
  std::vector<testbed::Device*> devices;
  for (int i = 0; i < 2; ++i) {
    testbed::DeviceOptions opts;
    opts.name = "comm-" + std::to_string(i);
    opts.profile = phone::Nokia9500();
    opts.position = {i * 80.0, 0};
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.with_cellular = false;
    devices.push_back(&world.AddDevice(opts));
  }
  core::CollectingClient server;
  (void)devices[1]->contory().RegisterCxtServer(server);
  (void)devices[1]->contory().PublishCxtItem(LightItem(world), true);

  sm::HopBreakup breakup;
  sm::SmRuntime* rt = devices[0]->sm();
  sm::SmartMessage finder;
  finder.id = "sm-breakup";
  finder.code_brick = core::kFinderBrick;
  finder.origin = devices[0]->node();
  finder.max_hops = 1;
  core::FinderState state;
  state.query = Q(world.sim(),
                  "SELECT light FROM adHocNetwork(1,1) DURATION 1 min");
  state.remaining_nodes = 1;
  finder.data = state.Encode();
  bool done = false;
  rt->RegisterReplyHandler(finder.id, [&](sm::SmartMessage reply) {
    breakup = reply.breakup;
    done = true;
  });
  (void)rt->Inject(std::move(finder));
  while (!done && world.sim().Step()) {
  }
  return breakup;
}

RunningStats BenchUmtsGet() {
  RunningStats ms;
  testbed::World world{420};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");
  server.StoreDirect({LightItem(world), "boat-7", std::nullopt});
  for (int run = 0; run < kRuns; ++run) {
    world.RunFor(60s);  // decay to idle: the paper's on-demand cold cost
    core::CollectingClient client;
    const SimTime start = world.Now();
    const auto id = device.contory().ProcessCxtQuery(
        Q(world.sim(), "SELECT light FROM extInfra DURATION 1 min"),
        client);
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
    while (client.items.empty() && world.sim().Step()) {
    }
    ms.Add(ToMillis(world.Now() - start));
  }
  return ms;
}

}  // namespace

int main() {
  bench::PrintHeading("Table 1: latency of basic Contory operations");

  std::vector<bench::Row> rows;

  // Local library operations (wall clock; the paper's numbers are for a
  // 220 MHz J2ME phone, so absolute values differ by the hardware gap —
  // the point is that both are sub-millisecond object operations).
  {
    testbed::World world{299};
    const double create_ms = WallClockMs([&] {
      CxtItem item;
      item.id = "bench";
      item.type = vocab::kLight;
      item.value = 5200.0;
      item.metadata.accuracy = 50.0;
      const auto wire = item.Serialize();
      if (wire.empty()) std::abort();
    });
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.4f ms (host)", create_ms);
    rows.push_back({"createCxtItem", buf, "0.078 ms", "local op"});

    const double query_ms = WallClockMs([&] {
      const auto q = query::ParseQuery(
          "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 "
          "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25");
      if (!q.ok()) std::abort();
    }, 5'000);
    std::snprintf(buf, sizeof buf, "%.4f ms (host)", query_ms);
    rows.push_back({"createCxtQuery", buf, "(empty in paper)", "local op"});
  }

  rows.push_back({"adHocNetwork BT: publishCxtItem",
                  bench::Cell(BenchBtPublish()) + " ms", "140.359 ms",
                  "SDDB registration"});
  rows.push_back({"adHocNetwork WiFi: publishCxtItem",
                  bench::Cell(BenchWifiPublish()) + " ms", "0.130 ms",
                  "SM tag upsert"});
  rows.push_back({"extInfra UMTS: publishCxtItem",
                  bench::Cell(BenchUmtsPublish()) + " ms", "772.728 ms",
                  "event-based store"});

  double discovery_s = 0.0;
  double sdp_s = 0.0;
  rows.push_back({"adHocNetwork BT one hop: getCxtItem",
                  bench::Cell(BenchBtGet(&discovery_s, &sdp_s)) + " ms",
                  "31.830 ms", "post-discovery poll"});
  rows.push_back({"adHocNetwork WiFi one hop: getCxtItem",
                  bench::Cell(BenchWifiGet(1, nullptr)) + " ms",
                  "761.280 ms", "SM-FINDER round trip"});
  rows.push_back({"adHocNetwork WiFi two hops: getCxtItem",
                  bench::Cell(BenchWifiGet(2, nullptr)) + " ms",
                  "1422.500 ms", "SM-FINDER round trip"});
  rows.push_back({"extInfra UMTS: getCxtItem",
                  bench::Cell(BenchUmtsGet()) + " ms", "1473.000 ms",
                  "cold connection"});

  bench::PrintTable("Latency (avg [90% CI] over 8 runs)", "notes", rows);

  std::printf("\nBT device discovery: %.2f s (paper: ~13 s)\n", discovery_s);
  std::printf("BT service discovery: %.2f s (paper: ~1.12 s)\n", sdp_s);

  const sm::HopBreakup breakup = MeasureBreakup();
  const double total = ToMillis(breakup.Total());
  std::printf(
      "\nSM latency break-up over a 1-hop round trip (paper: connection "
      "4-5%%, serialization 26-33%%, thread switching 12-14%%, transfer "
      "51-54%%):\n");
  std::printf("  connection    %6.1f ms (%4.1f%%)\n",
              ToMillis(breakup.connect), 100.0 * ToMillis(breakup.connect) / total);
  std::printf("  serialization %6.1f ms (%4.1f%%)\n",
              ToMillis(breakup.serialize),
              100.0 * ToMillis(breakup.serialize) / total);
  std::printf("  thread switch %6.1f ms (%4.1f%%)\n",
              ToMillis(breakup.thread_switch),
              100.0 * ToMillis(breakup.thread_switch) / total);
  std::printf("  transfer      %6.1f ms (%4.1f%%)\n",
              ToMillis(breakup.transfer),
              100.0 * ToMillis(breakup.transfer) / total);
  return 0;
}
