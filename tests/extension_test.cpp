// Tests for the extensions beyond the paper's prototype: result fusion
// (EnableFusion), SM-FINDER retry under mobility, and high-security
// access control end-to-end.
#include <gtest/gtest.h>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

CxtItem TempItem(testbed::World& world, double value, double accuracy) {
  CxtItem item;
  item.id = world.sim().ids().NextId("pub");
  item.type = vocab::kTemperature;
  item.value = value;
  item.timestamp = world.Now();
  item.metadata.accuracy = accuracy;
  return item;
}

TEST(FusionTest, MultiMechanismResultsAreFused) {
  testbed::World world{900};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.fi";
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.fi");
  server.StoreDirect({TempItem(world, 30.0, 1.0), "remote", std::nullopt});

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM intSensor, extInfra DURATION 5 min "
        "EVERY 30 sec"),
      client);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(device.contory().EnableFusion(*id).ok());
  world.RunFor(3min);
  ASSERT_GE(client.items.size(), 2u);
  // Every delivered item after the first (which the intSensor provider
  // emits synchronously at submission, before EnableFusion ran) is a
  // fusion product, not a raw reading.
  for (std::size_t i = 1; i < client.items.size(); ++i) {
    EXPECT_EQ(client.items[i].source.kind, SourceKind::kApplication);
    EXPECT_EQ(client.items[i].source.address, "cxtAggregator");
  }
}

TEST(FusionTest, FusionWeighsAccurateSourceHigher) {
  testbed::World world{901};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.fi";
  // Internal sensor: very accurate (0.2), environment ~18-22 degC.
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.fi");
  // Remote: wildly off (50 degC) and sloppy (accuracy 10).
  server.StoreDirect({TempItem(world, 50.0, 10.0), "remote", std::nullopt});

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM intSensor, extInfra DURATION 5 min "
        "EVERY 20 sec"),
      client);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(device.contory().EnableFusion(*id).ok());
  world.RunFor(2min);
  ASSERT_FALSE(client.items.empty());
  // The fused estimate leans toward the accurate local sensor (~20), not
  // the midpoint (~35).
  const auto last = client.items.back().value.AsNumber();
  ASSERT_TRUE(last.ok());
  EXPECT_LT(*last, 30.0);
}

TEST(FusionTest, UnknownQueryRejected) {
  testbed::World world{902};
  auto& device = world.AddDevice({});
  EXPECT_EQ(device.contory().EnableFusion("nope").code(),
            StatusCode::kNotFound);
}

class FinderRetryTest : public ::testing::Test {
 protected:
  FinderRetryTest() : world_(910) {
    for (int i = 0; i < 2; ++i) {
      testbed::DeviceOptions opts;
      opts.name = "comm-" + std::to_string(i);
      opts.profile = phone::Nokia9500();
      opts.position = {i * 80.0, 0};
      opts.with_bt = false;
      opts.with_wifi = true;
      opts.with_cellular = false;
      opts.factory_config.adhoc_finder_retries = retries_for_next_device_;
      devices_.push_back(&world_.AddDevice(opts));
    }
    EXPECT_TRUE(devices_[1]->contory().RegisterCxtServer(pub_app_).ok());
    CxtItem item = TempItem(world_, 21.0, 0.2);
    EXPECT_TRUE(devices_[1]->contory().PublishCxtItem(item, true).ok());
  }

  int retries_for_next_device_ = 1;
  testbed::World world_;
  std::vector<testbed::Device*> devices_;
  CollectingClient pub_app_;
};

TEST_F(FinderRetryTest, LostFinderIsRelaunchedAndSucceeds) {
  CollectingClient client;
  const auto id = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(1,1) DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  // Kill the target's radio while the first finder is being serialized;
  // the migration frame dies, the round times out, the retry lands after
  // the radio returns.
  world_.sim().ScheduleAfter(100ms,
                             [&] { devices_[1]->wifi()->SetEnabled(false); });
  world_.sim().ScheduleAfter(2s,
                             [&] { devices_[1]->wifi()->SetEnabled(true); });
  world_.RunFor(30s);
  ASSERT_EQ(client.items.size(), 1u);
  EXPECT_EQ(client.items[0].value, CxtValue{21.0});
  EXPECT_TRUE(client.errors.empty());
}

TEST(FinderRetryZeroTest, NoRetryMeansTimeoutFailure) {
  testbed::World world{911};
  std::vector<testbed::Device*> devices;
  for (int i = 0; i < 2; ++i) {
    testbed::DeviceOptions opts;
    opts.name = "comm-" + std::to_string(i);
    opts.profile = phone::Nokia9500();
    opts.position = {i * 80.0, 0};
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.with_cellular = false;
    opts.factory_config.adhoc_finder_retries = 0;
    devices.push_back(&world.AddDevice(opts));
  }
  CollectingClient pub_app;
  ASSERT_TRUE(devices[1]->contory().RegisterCxtServer(pub_app).ok());
  ASSERT_TRUE(devices[1]
                  ->contory()
                  .PublishCxtItem(TempItem(world, 21.0, 0.2), true)
                  .ok());
  CollectingClient client;
  const auto id = devices[0]->contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM adHocNetwork(1,1) DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  world.sim().ScheduleAfter(100ms,
                            [&] { devices[1]->wifi()->SetEnabled(false); });
  world.sim().ScheduleAfter(2s,
                            [&] { devices[1]->wifi()->SetEnabled(true); });
  world.RunFor(30s);
  EXPECT_TRUE(client.items.empty());
  EXPECT_FALSE(client.errors.empty());  // the timeout surfaced
}

TEST(HighSecurityTest, UnknownGpsRequiresApplicationApproval) {
  testbed::World world{920};
  auto& device = world.AddDevice({.name = "phone"});
  world.AddGps("gps-1", {3, 0});
  device.contory().access().SetMode(SecurityMode::kHigh);

  // A client that refuses every new source.
  class RefusingClient : public CollectingClient {
   public:
    bool MakeDecision(const std::string& msg) override {
      questions.push_back(msg);
      return false;
    }
    std::vector<std::string> questions;
  };
  RefusingClient refuser;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT location FROM intSensor DURATION 2 min EVERY 5 sec"),
      refuser);
  ASSERT_TRUE(id.ok());
  world.RunFor(1min);
  EXPECT_FALSE(refuser.questions.empty());
  EXPECT_TRUE(refuser.items.empty());  // blocked source, no data

  // An approving client on the same device: source was remembered as
  // blocked, so the controller fails closed for everyone.
  EXPECT_TRUE(device.contory().access().IsBlocked("bt:gps-1"));
}

TEST(HighSecurityTest, ApprovedGpsDelivers) {
  testbed::World world{921};
  auto& device = world.AddDevice({.name = "phone"});
  world.AddGps("gps-1", {3, 0});
  device.contory().access().SetMode(SecurityMode::kHigh);
  CollectingClient approver;  // MakeDecision returns true by default
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT location FROM intSensor DURATION 2 min EVERY 5 sec"),
      approver);
  ASSERT_TRUE(id.ok());
  world.RunFor(1min);
  EXPECT_FALSE(approver.items.empty());
}

TEST(MobilityTest, PeerLeavingRangeFailsOverToInfra) {
  testbed::World world{930};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.fi");
  server.StoreDirect({TempItem(world, 25.0, 0.3), "remote", std::nullopt});

  testbed::DeviceOptions pub_opts;
  pub_opts.name = "walker";
  pub_opts.position = {5, 0};
  auto& walker = world.AddDevice(pub_opts);
  CollectingClient pub_app;
  ASSERT_TRUE(walker.contory().RegisterCxtServer(pub_app).ok());
  sim::PeriodicTask republish{world.sim(), 5s, [&] {
    (void)walker.contory().PublishCxtItem(TempItem(world, 19.0, 0.3), true);
  }};

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature DURATION 10 min EVERY 10 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(1min);
  // Ad hoc (BT) provisioning was chosen (no internal sensor).
  ASSERT_TRUE(device.contory()
                  .CurrentMechanisms(*id)
                  .contains(query::SourceSel::kAdHocNetwork));

  // The walker strolls out of BT range.
  walker.MoveTo({500, 0});
  world.RunFor(2min);
  // Contory failed over to the infrastructure and kept delivering.
  EXPECT_TRUE(device.contory()
                  .CurrentMechanisms(*id)
                  .contains(query::SourceSel::kExtInfra));
  EXPECT_EQ(client.items.back().source.kind, SourceKind::kExtInfra);
}

TEST(AdmissionFloodTest, RunawayFindersAreRejectedNotFatal) {
  // Flood one node with more finders than its admission manager allows;
  // the node must stay functional.
  testbed::World world{940};
  std::vector<testbed::Device*> devices;
  for (int i = 0; i < 2; ++i) {
    testbed::DeviceOptions opts;
    opts.name = "comm-" + std::to_string(i);
    opts.profile = phone::Nokia9500();
    opts.position = {i * 80.0, 0};
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.with_cellular = false;
    devices.push_back(&world.AddDevice(opts));
  }
  CollectingClient pub_app;
  ASSERT_TRUE(devices[1]->contory().RegisterCxtServer(pub_app).ok());
  ASSERT_TRUE(devices[1]
                  ->contory()
                  .PublishCxtItem(TempItem(world, 21.0, 0.2), true)
                  .ok());

  sm::SmRuntime* target = devices[1]->sm();
  const auto before_rejected = target->rejected();
  // Saturate: inject far more resident SMs than max_resident.
  for (int i = 0; i < 64; ++i) {
    sm::SmartMessage sm;
    sm.id = "flood-" + std::to_string(i);
    sm.code_brick = kFinderBrick;
    sm.origin = devices[0]->node();
    FinderState state;
    state.query = Q(world.sim(),
                    "SELECT temperature FROM adHocNetwork(1,1) "
                    "DURATION 1 min");
    sm.data = state.Encode();
    (void)target->Inject(std::move(sm));
  }
  EXPECT_GT(target->rejected(), before_rejected);
  world.RunFor(10s);

  // The node still answers a legitimate query afterwards.
  CollectingClient client;
  const auto id = devices[0]->contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM adHocNetwork(1,1) DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(30s);
  EXPECT_EQ(client.items.size(), 1u);
}

}  // namespace
}  // namespace contory::core
