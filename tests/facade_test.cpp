// Unit tests for the Facade: query merging on submission, post-extraction
// on delivery, cancellation re-merging, and failure propagation.
#include <gtest/gtest.h>

#include <map>

#include "core/facade.hpp"
#include "core/query/parser.hpp"
#include "sim/simulation.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

/// Transportless provider the facade drives; the test injects items.
class ScriptedProvider final : public CxtProvider {
 public:
  ScriptedProvider(sim::Simulation& sim, query::CxtQuery q,
                   Callbacks callbacks,
                   std::vector<ScriptedProvider*>& registry)
      : CxtProvider(sim, std::move(q), std::move(callbacks)),
        registry_(registry) {
    registry_.push_back(this);
  }
  ~ScriptedProvider() override { std::erase(registry_, this); }

  query::SourceSel kind() const noexcept override {
    return query::SourceSel::kAdHocNetwork;
  }
  const char* transport() const noexcept override { return "scripted"; }
  void Push(CxtItem item) { Offer(std::move(item)); }
  void ForceFail(Status s) { Fail(std::move(s)); }

 protected:
  void DoStart() override {}
  void DoStop() override {}

 private:
  std::vector<ScriptedProvider*>& registry_;
};

struct FacadeHarness {
  explicit FacadeHarness(std::uint64_t seed = 3) : sim(seed) {
    facade = std::make_unique<Facade>(
        sim, query::SourceSel::kAdHocNetwork,
        [this](query::CxtQuery q, CxtProvider::Callbacks callbacks) {
          return std::make_unique<ScriptedProvider>(
              sim, std::move(q), std::move(callbacks), providers);
        });
    facade->SetDelivery(
        [this](const std::string& id, const CxtItem& item) {
          deliveries[id].push_back(item);
        });
    facade->SetFinished([this](const std::string& id, const Status& s) {
      finished[id] = s;
    });
  }

  CxtItem Item(const std::string& type, double value,
               double accuracy = 0.2) {
    CxtItem item;
    item.id = sim.ids().NextId("item");
    item.type = type;
    item.value = value;
    item.timestamp = sim.Now();
    item.metadata.accuracy = accuracy;
    return item;
  }

  sim::Simulation sim;
  std::vector<ScriptedProvider*> providers;
  std::unique_ptr<Facade> facade;
  std::map<std::string, std::vector<CxtItem>> deliveries;
  std::map<std::string, Status> finished;
};

TEST(FacadeTest, FirstQueryCreatesProvider) {
  FacadeHarness h;
  ASSERT_TRUE(
      h.facade->Submit(Q(h.sim, "SELECT temperature DURATION 1 hour "
                                "EVERY 10 sec"))
          .ok());
  EXPECT_EQ(h.facade->active_provider_count(), 1u);
  EXPECT_EQ(h.providers.size(), 1u);
}

TEST(FacadeTest, SameSelectMergesIntoOneProvider) {
  // The paper's headline merging behaviour: two temperature queries, one
  // provider with the widened parameters.
  FacadeHarness h;
  ASSERT_TRUE(h.facade
                  ->Submit(Q(h.sim,
                             "SELECT temperature FROM adHocNetwork(all,3) "
                             "FRESHNESS 10sec DURATION 1hour EVERY 15sec"))
                  .ok());
  ASSERT_TRUE(h.facade
                  ->Submit(Q(h.sim,
                             "SELECT temperature FROM adHocNetwork(all,1) "
                             "FRESHNESS 20sec DURATION 2hour EVERY 30sec"))
                  .ok());
  EXPECT_EQ(h.facade->active_provider_count(), 1u);
  EXPECT_EQ(h.facade->active_original_count(), 2u);
  ASSERT_EQ(h.providers.size(), 1u);
  const auto& merged = h.providers[0]->query();
  EXPECT_EQ(merged.freshness, SimDuration{20s});
  EXPECT_EQ(merged.every, SimDuration{15s});
  EXPECT_EQ(merged.duration.time, SimDuration{2h});
}

TEST(FacadeTest, DifferentSelectsGetSeparateProviders) {
  FacadeHarness h;
  ASSERT_TRUE(
      h.facade->Submit(Q(h.sim, "SELECT temperature DURATION 1 hour")).ok());
  ASSERT_TRUE(
      h.facade->Submit(Q(h.sim, "SELECT wind DURATION 1 hour")).ok());
  EXPECT_EQ(h.facade->active_provider_count(), 2u);
}

TEST(FacadeTest, PostExtractionSplitsResults) {
  FacadeHarness h;
  auto strict = Q(h.sim,
                  "SELECT temperature WHERE accuracy<=0.2 "
                  "DURATION 1 hour EVERY 10 sec");
  auto loose = Q(h.sim,
                 "SELECT temperature WHERE accuracy<=0.9 "
                 "DURATION 1 hour EVERY 10 sec");
  const std::string strict_id = strict.id;
  const std::string loose_id = loose.id;
  ASSERT_TRUE(h.facade->Submit(std::move(strict)).ok());
  ASSERT_TRUE(h.facade->Submit(std::move(loose)).ok());
  ASSERT_EQ(h.providers.size(), 1u);  // merged (WHERE dropped)

  h.providers[0]->Push(h.Item("temperature", 20.0, /*accuracy=*/0.5));
  // Only the loose query matches a 0.5-accuracy item.
  EXPECT_EQ(h.deliveries[strict_id].size(), 0u);
  EXPECT_EQ(h.deliveries[loose_id].size(), 1u);

  h.providers[0]->Push(h.Item("temperature", 21.0, /*accuracy=*/0.1));
  EXPECT_EQ(h.deliveries[strict_id].size(), 1u);
  EXPECT_EQ(h.deliveries[loose_id].size(), 2u);
}

TEST(FacadeTest, CancelLastOriginalStopsProvider) {
  FacadeHarness h;
  auto q = Q(h.sim, "SELECT temperature DURATION 1 hour EVERY 10 sec");
  const std::string id = q.id;
  ASSERT_TRUE(h.facade->Submit(std::move(q)).ok());
  h.facade->Cancel(id);
  EXPECT_EQ(h.facade->active_provider_count(), 0u);
  h.sim.RunFor(1s);  // reap
  EXPECT_TRUE(h.providers.empty());  // destroyed
}

TEST(FacadeTest, CancelOneOfTwoNarrowsMergedQuery) {
  FacadeHarness h;
  auto fast = Q(h.sim, "SELECT temperature DURATION 1hour EVERY 5sec");
  auto slow = Q(h.sim, "SELECT temperature DURATION 1hour EVERY 60sec");
  const std::string fast_id = fast.id;
  ASSERT_TRUE(h.facade->Submit(std::move(fast)).ok());
  ASSERT_TRUE(h.facade->Submit(std::move(slow)).ok());
  ASSERT_EQ(h.providers.size(), 1u);
  EXPECT_EQ(h.providers[0]->query().every, SimDuration{5s});

  h.facade->Cancel(fast_id);
  EXPECT_EQ(h.facade->active_provider_count(), 1u);
  // Re-merged to the remaining original's rate.
  EXPECT_EQ(h.providers[0]->query().every, SimDuration{60s});
}

TEST(FacadeTest, ProviderFailureReportsEveryOriginal) {
  FacadeHarness h;
  auto a = Q(h.sim, "SELECT temperature DURATION 1hour EVERY 10sec");
  auto b = Q(h.sim, "SELECT temperature DURATION 1hour EVERY 20sec");
  const std::string a_id = a.id;
  const std::string b_id = b.id;
  ASSERT_TRUE(h.facade->Submit(std::move(a)).ok());
  ASSERT_TRUE(h.facade->Submit(std::move(b)).ok());
  h.providers[0]->ForceFail(Unavailable("radio died"));
  EXPECT_EQ(h.finished[a_id].code(), StatusCode::kUnavailable);
  EXPECT_EQ(h.finished[b_id].code(), StatusCode::kUnavailable);
  EXPECT_EQ(h.facade->active_provider_count(), 0u);
}

TEST(FacadeTest, StopAllSuspendsEverything) {
  FacadeHarness h;
  auto a = Q(h.sim, "SELECT temperature DURATION 1hour");
  auto b = Q(h.sim, "SELECT wind DURATION 1hour");
  const std::string a_id = a.id;
  const std::string b_id = b.id;
  ASSERT_TRUE(h.facade->Submit(std::move(a)).ok());
  ASSERT_TRUE(h.facade->Submit(std::move(b)).ok());
  h.facade->StopAll(ResourceExhausted("reducePower"));
  EXPECT_EQ(h.finished[a_id].code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(h.finished[b_id].code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(h.facade->active_provider_count(), 0u);
}

TEST(FacadeTest, ProvidersCreatedCounterTracksMergeSavings) {
  FacadeHarness h;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(h.facade
                    ->Submit(Q(h.sim,
                               "SELECT temperature DURATION 1hour "
                               "EVERY 10sec"))
                    .ok());
  }
  EXPECT_EQ(h.facade->providers_created(), 1u);  // all merged
  EXPECT_EQ(h.facade->active_original_count(), 5u);
}

TEST(FacadeTest, MergingDisabledByPolicy) {
  FacadeHarness h;
  query::MergePolicy no_merge;
  no_merge.threshold = -1.0;
  auto facade = std::make_unique<Facade>(
      h.sim, query::SourceSel::kAdHocNetwork,
      [&h](query::CxtQuery q, CxtProvider::Callbacks callbacks) {
        return std::make_unique<ScriptedProvider>(
            h.sim, std::move(q), std::move(callbacks), h.providers);
      },
      no_merge);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(facade
                    ->Submit(Q(h.sim,
                               "SELECT temperature DURATION 1hour "
                               "EVERY 10sec"))
                    .ok());
  }
  EXPECT_EQ(facade->active_provider_count(), 3u);  // no merging
}

TEST(FacadeTest, InvalidQueryRejected) {
  FacadeHarness h;
  query::CxtQuery bad;
  bad.id = "bad";
  EXPECT_FALSE(h.facade->Submit(bad).ok());
  EXPECT_EQ(h.facade->active_provider_count(), 0u);
}

}  // namespace
}  // namespace contory::core
