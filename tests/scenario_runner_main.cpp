// Standalone scenario runner (and the ctest driver for label `scenario`).
//
//   scenario_runner --dir=tests/scenarios/cases --list
//   scenario_runner --dir=... --run=fault_to_degraded_recovery
//   scenario_runner --run=gen_adhoc_flap_standard_n6
//   scenario_runner --dir=... --all
//   scenario_runner --dir=... --check-manifest=<file>
//
// Cases come from two sources: .scn files in --dir (named by basename)
// and the generated combinatorial matrix (generator.hpp). The manifest
// check compares the full discoverable case list against the names CMake
// registered at configure time, so a case file dropped on disk without
// re-running CMake — or a registered case whose file went missing —
// fails the build instead of silently not running.
//
// CONTORY_SCENARIO_STRESS=<n> (set by the CONTORY_STRESS=ON ctest
// wiring) multiplies the generated cases' node counts.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

namespace fs = std::filesystem;
using namespace contory;

std::vector<std::string> FileCases(const std::string& dir) {
  std::vector<std::string> names;
  if (dir.empty() || !fs::is_directory(dir)) return names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      names.push_back(entry.path().stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

scenario::GeneratorOptions StressOptions() {
  scenario::GeneratorOptions options;
  if (const char* stress = std::getenv("CONTORY_SCENARIO_STRESS")) {
    const int scale = std::atoi(stress);
    if (scale > 1) options.node_scale = scale;
  }
  return options;
}

int RunOne(const std::string& dir, const std::string& name, bool verbose) {
  std::string text;
  if (scenario::IsGeneratedCase(name)) {
    auto generated = scenario::GeneratedSpecText(name, StressOptions());
    if (!generated.ok()) {
      std::cerr << name << ": " << generated.status().message() << "\n";
      return 2;
    }
    text = *generated;
  } else {
    const fs::path path = fs::path(dir) / (name + ".scn");
    std::ifstream in(path);
    if (!in) {
      std::cerr << name << ": cannot open " << path.string() << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  auto spec = scenario::ParseScenario(text);
  if (!spec.ok()) {
    std::cerr << name << ": parse error: " << spec.status().message()
              << "\n";
    return 2;
  }
  scenario::ScenarioRunner runner({.verbose = verbose});
  const scenario::RunReport report = runner.Run(*spec);
  for (const std::string& line : report.log) {
    std::cout << "  " << line << "\n";
  }
  for (const std::string& failure : report.failures) {
    std::cerr << "  FAIL " << failure << "\n";
  }
  std::cout << name << ": " << report.Summary() << "\n";
  return report.passed ? 0 : 1;
}

int CheckManifest(const std::string& dir, const std::string& manifest_path) {
  std::ifstream in(manifest_path);
  if (!in) {
    std::cerr << "cannot open manifest " << manifest_path << "\n";
    return 2;
  }
  std::set<std::string> registered;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) registered.insert(line);
  }
  std::set<std::string> discovered;
  for (const std::string& name : FileCases(dir)) discovered.insert(name);
  for (const std::string& name : scenario::GeneratedCaseNames()) {
    discovered.insert(name);
  }
  int failures = 0;
  for (const std::string& name : discovered) {
    if (!registered.contains(name)) {
      std::cerr << "case '" << name
                << "' exists but is not registered with ctest — re-run "
                   "cmake\n";
      ++failures;
    }
  }
  for (const std::string& name : registered) {
    if (!discovered.contains(name)) {
      std::cerr << "ctest registers case '" << name
                << "' but no such case exists (deleted .scn?)\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "manifest ok: " << registered.size() << " cases\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "tests/scenarios/cases";
  std::string run_case;
  std::string manifest;
  bool list = false;
  bool all = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const std::string& flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--dir=", 0) == 0) {
      dir = value("--dir=");
    } else if (arg.rfind("--run=", 0) == 0) {
      run_case = value("--run=");
    } else if (arg.rfind("--check-manifest=", 0) == 0) {
      manifest = value("--check-manifest=");
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: scenario_runner [--dir=<cases>] [--list] "
                   "[--run=<case>] [--all] [--check-manifest=<file>] "
                   "[--verbose]\n";
      return 2;
    }
  }

  if (list) {
    for (const std::string& name : FileCases(dir)) {
      std::cout << name << "\n";
    }
    for (const std::string& name : scenario::GeneratedCaseNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (!manifest.empty()) return CheckManifest(dir, manifest);
  if (!run_case.empty()) return RunOne(dir, run_case, verbose);
  if (all) {
    int failed = 0;
    for (const std::string& name : FileCases(dir)) {
      if (RunOne(dir, name, verbose) != 0) ++failed;
    }
    for (const std::string& name : scenario::GeneratedCaseNames()) {
      if (RunOne(dir, name, verbose) != 0) ++failed;
    }
    if (failed != 0) std::cerr << failed << " case(s) failed\n";
    return failed == 0 ? 0 : 1;
  }
  std::cerr << "nothing to do (try --list, --run=<case>, or --all)\n";
  return 2;
}
