// OverloadGovernor tests: the admission-side overload-protection tier.
// Per-client token buckets (sim-clock deterministic), 3-level priority
// shedding with watermark hysteresis, the reduceLoad rule hook, the
// stale-answer fast path into degraded mode, and the worker-mode
// pre-gating equivalence (identical shed decisions for workers 0/2/4),
// up to 100k submits under shedding with a coherent lifecycle ledger.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/contory.hpp"
#include "obs/observability.hpp"
#include "testbed/testbed.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

/// A temperature query of the given class; periodic unless on_demand.
query::CxtQuery TempQuery(sim::Simulation& sim, query::QueryPriority cls,
                          bool on_demand = false) {
  auto builder = query::QueryBuilder(vocab::kTemperature);
  builder.FromIntSensor().For(60min).Priority(cls);
  if (!on_demand) builder.Every(1min);
  auto q = builder.Build();
  q.id = sim.ids().NextId("q");
  return q;
}

testbed::DeviceOptions GovernedOptions() {
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  // These tests count occupancy query-by-query; merged records would
  // fold identical SELECTs into one.
  opts.factory_config.enable_query_merging = false;
  return opts;
}

CxtItem WarmItem(sim::Simulation& sim, const std::string& type) {
  CxtItem item;
  item.id = sim.ids().NextId("seed");
  item.type = type;
  item.value = CxtValue(21.5);
  item.timestamp = sim.Now();
  item.source = {SourceKind::kIntSensor, "seed"};
  return item;
}

class OverloadWorldTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Observability::ResetForTest(); }
  void TearDown() override { obs::Observability::ResetForTest(); }
};

// --- Query-language surface -------------------------------------------------

TEST(OverloadQueryTest, PriorityClauseParsesPrintsAndSerializes) {
  auto q = query::ParseQuery(
      "SELECT temperature FROM intSensor DURATION 5 min EVERY 1 min "
      "PRIORITY interactive");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->priority, query::QueryPriority::kInteractive);

  // Unannotated queries default to standard, and standard stays silent
  // in the textual form (old round-trips unchanged).
  auto plain = query::ParseQuery(
      "SELECT temperature FROM intSensor DURATION 5 min EVERY 1 min");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->priority, query::QueryPriority::kStandard);
  EXPECT_EQ(plain->ToString().find("PRIORITY"), std::string::npos);

  // ToString round-trip keeps the class.
  const std::string text = q->ToString();
  EXPECT_NE(text.find("PRIORITY interactive"), std::string::npos);
  auto reparsed = query::ParseQuery(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->priority, query::QueryPriority::kInteractive);

  // Wire round-trip keeps the class.
  q->id = "q-1";
  auto wire = q->Serialize();
  auto decoded = query::CxtQuery::Deserialize(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->priority, query::QueryPriority::kInteractive);

  EXPECT_FALSE(query::ParseQuery(
                   "SELECT temperature FROM intSensor DURATION 5 min "
                   "EVERY 1 min PRIORITY urgent")
                   .ok());
}

TEST(OverloadQueryTest, BuilderSetsPriority) {
  const auto q = query::QueryBuilder(vocab::kTemperature)
                     .FromIntSensor()
                     .For(5min)
                     .Every(1min)
                     .Priority(query::QueryPriority::kBackground)
                     .Build();
  EXPECT_EQ(q.priority, query::QueryPriority::kBackground);
}

// --- Token buckets ----------------------------------------------------------

TEST_F(OverloadWorldTest, TokenBucketRefillIsDeterministicAcrossSeeds) {
  std::vector<double> hints;
  for (const unsigned seed : {41u, 4242u}) {
    testbed::World world{seed};
    testbed::DeviceOptions opts = GovernedOptions();
    opts.factory_config.overload.admit_rate_per_s = 1.0;
    opts.factory_config.overload.admit_burst = 2.0;
    auto& device = world.AddDevice(opts);
    core::CollectingClient client;

    // Burst of two admits, then the bucket is dry.
    ASSERT_TRUE(device.contory()
                    .ProcessCxtQuery(
                        TempQuery(world.sim(),
                                  query::QueryPriority::kStandard),
                        client)
                    .ok());
    ASSERT_TRUE(device.contory()
                    .ProcessCxtQuery(
                        TempQuery(world.sim(),
                                  query::QueryPriority::kStandard),
                        client)
                    .ok());
    const auto refused = device.contory().ProcessCxtQuery(
        TempQuery(world.sim(), query::QueryPriority::kStandard), client);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kOverloaded);
    const double hint = core::OverloadGovernor::ParseRetryAfterSeconds(
        refused.status().message());
    EXPECT_GT(hint, 0.0);
    hints.push_back(hint);
    EXPECT_LT(device.contory().overload().TokensFor(client), 1.0);

    // Sim time is the only refill source: waiting out the hint restores
    // exactly enough budget for one more admission.
    world.RunFor(std::chrono::duration_cast<SimDuration>(
        std::chrono::duration<double>(hint)));
    EXPECT_TRUE(device.contory()
                    .ProcessCxtQuery(
                        TempQuery(world.sim(),
                                  query::QueryPriority::kStandard),
                        client)
                    .ok());
  }
  ASSERT_EQ(hints.size(), 2u);
  EXPECT_DOUBLE_EQ(hints[0], hints[1]);  // seed-independent
}

TEST_F(OverloadWorldTest, RateLimitedClientDoesNotStarveOthers) {
  testbed::World world{42};
  testbed::DeviceOptions opts = GovernedOptions();
  opts.factory_config.overload.admit_rate_per_s = 1.0;
  opts.factory_config.overload.admit_burst = 1.0;
  auto& device = world.AddDevice(opts);
  core::CollectingClient noisy;
  core::CollectingClient quiet;

  ASSERT_TRUE(device.contory()
                  .ProcessCxtQuery(
                      TempQuery(world.sim(),
                                query::QueryPriority::kStandard),
                      noisy)
                  .ok());
  const auto refused = device.contory().ProcessCxtQuery(
      TempQuery(world.sim(), query::QueryPriority::kStandard), noisy);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOverloaded);
  EXPECT_NE(refused.status().message().find("budget exhausted"),
            std::string::npos);

  // The noisy client drained only its own bucket.
  EXPECT_TRUE(device.contory()
                  .ProcessCxtQuery(
                      TempQuery(world.sim(),
                                query::QueryPriority::kStandard),
                      quiet)
                  .ok());
}

// --- Watermark shedding -----------------------------------------------------

TEST_F(OverloadWorldTest, WatermarksShedBackgroundThenStandardNeverInteractive) {
  testbed::World world{43};
  testbed::DeviceOptions opts = GovernedOptions();
  opts.factory_config.overload.shed_high_watermark = 4;
  opts.factory_config.overload.shed_standard_watermark = 8;
  opts.factory_config.overload.stale_fast_path = false;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;
  auto& factory = device.contory();

  const auto submit = [&](query::QueryPriority cls) {
    return factory.ProcessCxtQuery(TempQuery(world.sim(), cls), client);
  };

  // Below the high watermark everything admits.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(submit(query::QueryPriority::kBackground).ok());
  }
  // Occupancy 4 >= high: background sheds, standard and interactive pass.
  const auto bg = submit(query::QueryPriority::kBackground);
  ASSERT_FALSE(bg.ok());
  EXPECT_EQ(bg.status().code(), StatusCode::kOverloaded);
  EXPECT_NE(bg.status().message().find("background"), std::string::npos);
  EXPECT_NE(bg.status().message().find("retry after"), std::string::npos);
  EXPECT_TRUE(submit(query::QueryPriority::kStandard).ok());
  EXPECT_TRUE(submit(query::QueryPriority::kInteractive).ok());

  // Grow occupancy to the standard watermark: standard sheds too.
  while (factory.queries().active_count() < 8) {
    ASSERT_TRUE(submit(query::QueryPriority::kStandard).ok());
  }
  const auto std_refused = submit(query::QueryPriority::kStandard);
  ASSERT_FALSE(std_refused.ok());
  EXPECT_EQ(std_refused.status().code(), StatusCode::kOverloaded);
  // Interactive always admits.
  EXPECT_TRUE(submit(query::QueryPriority::kInteractive).ok());

  if (COBS_ON()) {
    auto& metrics = obs::Observability::metrics();
    EXPECT_GE(metrics
                  .GetCounter("admission_shed_total",
                              {{"class", "background"}})
                  .value(),
              1u);
    EXPECT_GE(metrics
                  .GetCounter("admission_shed_total", {{"class", "standard"}})
                  .value(),
              1u);
    EXPECT_EQ(metrics
                  .GetCounter("admission_shed_total",
                              {{"class", "interactive"}})
                  .value(),
              0u);
  }
}

TEST_F(OverloadWorldTest, ShedClearsBelowLowWatermarkAndRetrySucceeds) {
  testbed::World world{44};
  testbed::DeviceOptions opts = GovernedOptions();
  opts.factory_config.overload.shed_high_watermark = 2;  // low defaults to 1
  opts.factory_config.overload.stale_fast_path = false;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;
  auto& factory = device.contory();

  std::vector<std::string> ids;
  for (int i = 0; i < 2; ++i) {
    const auto id = factory.ProcessCxtQuery(
        TempQuery(world.sim(), query::QueryPriority::kStandard), client);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const auto refused = factory.ProcessCxtQuery(
      TempQuery(world.sim(), query::QueryPriority::kBackground), client);
  ASSERT_FALSE(refused.ok());
  const double hint = core::OverloadGovernor::ParseRetryAfterSeconds(
      refused.status().message());
  EXPECT_GT(hint, 0.0);

  // Hysteresis: while occupancy sits between the low and high watermark
  // background stays shed; only falling below low clears the level.
  factory.CancelCxtQuery(ids[0]);
  ASSERT_FALSE(factory
                   .ProcessCxtQuery(TempQuery(world.sim(),
                                              query::QueryPriority::
                                                  kBackground),
                                    client)
                   .ok());
  factory.CancelCxtQuery(ids[1]);
  world.RunFor(std::chrono::duration_cast<SimDuration>(
      std::chrono::duration<double>(hint)));
  EXPECT_TRUE(factory
                  .ProcessCxtQuery(TempQuery(world.sim(),
                                             query::QueryPriority::
                                                 kBackground),
                                   client)
                  .ok());
}

TEST_F(OverloadWorldTest, ReduceLoadRuleShedsBackgroundAdmissions) {
  testbed::World world{45};
  testbed::DeviceOptions opts = GovernedOptions();  // watermarks unarmed
  // The live sensor warms the repository immediately; force refusals so
  // the rule's shed is visible as a typed error.
  opts.factory_config.overload.stale_fast_path = false;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;
  auto& factory = device.contory();

  // Unarmed governor: background admits freely.
  ASSERT_TRUE(factory
                  .ProcessCxtQuery(TempQuery(world.sim(),
                                             query::QueryPriority::
                                                 kBackground),
                                   client)
                  .ok());

  core::ContextRule rule;
  rule.name = "always-reduce-load";
  rule.condition = core::RuleExpr::Leaf(
      {"batteryPercent", core::RuleOp::kLessThan, CxtValue{101.0}});
  rule.action = core::RuleAction::kReduceLoad;
  factory.AddControlPolicy(rule);
  world.RunFor(6s);  // one policy-evaluation period
  ASSERT_TRUE(factory.active_actions().contains(
      core::RuleAction::kReduceLoad));

  const auto refused = factory.ProcessCxtQuery(
      TempQuery(world.sim(), query::QueryPriority::kBackground), client);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOverloaded);
  EXPECT_TRUE(factory
                  .ProcessCxtQuery(TempQuery(world.sim(),
                                             query::QueryPriority::
                                                 kStandard),
                                   client)
                  .ok());
  EXPECT_TRUE(factory
                  .ProcessCxtQuery(TempQuery(world.sim(),
                                             query::QueryPriority::
                                                 kInteractive),
                                   client)
                  .ok());
}

// --- Stale-answer fast path -------------------------------------------------

TEST_F(OverloadWorldTest, StaleFastPathServesWarmRepositoryWithStaleness) {
  testbed::World world{46};
  testbed::DeviceOptions opts = GovernedOptions();
  opts.factory_config.overload.shed_high_watermark = 1;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;
  auto& factory = device.contory();

  factory.repository().Store(WarmItem(world.sim(), vocab::kTemperature));
  ASSERT_TRUE(factory
                  .ProcessCxtQuery(TempQuery(world.sim(),
                                             query::QueryPriority::
                                                 kStandard),
                                   client)
                  .ok());
  world.RunFor(10s);  // age the repository entry (still < 30 s max age)

  // A shed on-demand background query with a warm repository entry is
  // answered stale-first instead of refused: one delivery, staleness
  // metadata set, record finished on the spot.
  const std::size_t live_before = factory.queries().active_count();
  const std::size_t items_before = client.items.size();
  const auto id = factory.ProcessCxtQuery(
      TempQuery(world.sim(), query::QueryPriority::kBackground,
                /*on_demand=*/true),
      client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(factory.queries().active_count(), live_before);
  ASSERT_GT(client.items.size(), items_before);
  const CxtItem& answer = client.items.back();
  EXPECT_EQ(answer.type, vocab::kTemperature);
  ASSERT_TRUE(answer.metadata.staleness_seconds.has_value());
  EXPECT_GT(*answer.metadata.staleness_seconds, 0.0);
  EXPECT_GE(factory.degraded_deliveries(), 1u);

  if (COBS_ON()) {
    auto& metrics = obs::Observability::metrics();
    EXPECT_EQ(
        metrics.GetCounter("admission_stale_fastpath_total").value(), 1u);
    // The root span carries the shed-decision annotation.
    bool noted = false;
    for (const auto& span :
         obs::Observability::tracer().FinishedFor(*id)) {
      for (const auto& note : span.notes) {
        if (note == "shed:stale-fastpath") noted = true;
      }
    }
    EXPECT_TRUE(noted);
  }
}

TEST_F(OverloadWorldTest, StaleFastPathKeepsPeriodicQueriesDegraded) {
  testbed::World world{47};
  testbed::DeviceOptions opts = GovernedOptions();
  opts.factory_config.overload.shed_high_watermark = 1;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;
  auto& factory = device.contory();

  factory.repository().Store(WarmItem(world.sim(), vocab::kTemperature));
  ASSERT_TRUE(factory
                  .ProcessCxtQuery(TempQuery(world.sim(),
                                             query::QueryPriority::
                                                 kStandard),
                                   client)
                  .ok());

  const auto id = factory.ProcessCxtQuery(
      TempQuery(world.sim(), query::QueryPriority::kBackground), client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(factory.IsDegraded(*id));
  EXPECT_GE(factory.degraded_deliveries(), 1u);

  // The record entered through the degraded door but the sensor is
  // live, so the standard recovery probe pulls it back to real
  // provisioning — degraded-at-admission is a full failover citizen.
  const std::size_t items_before = client.items.size();
  world.RunFor(3min);
  EXPECT_FALSE(factory.IsDegraded(*id));
  EXPECT_GT(client.items.size(), items_before);
  factory.CancelCxtQuery(*id);
}

TEST_F(OverloadWorldTest, ColdTypesAreRefusedNotDegraded) {
  testbed::World world{48};
  testbed::DeviceOptions opts = GovernedOptions();
  opts.factory_config.overload.shed_high_watermark = 1;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;
  auto& factory = device.contory();

  ASSERT_TRUE(factory
                  .ProcessCxtQuery(TempQuery(world.sim(),
                                             query::QueryPriority::
                                                 kStandard),
                                   client)
                  .ok());
  // "humidity" has no repository entry (only the temperature sensor is
  // warming the cache), so this shed must stay a refusal.
  auto cold = query::QueryBuilder("humidity")
                  .FromIntSensor()
                  .For(60min)
                  .Every(1min)
                  .Priority(query::QueryPriority::kBackground)
                  .Build();
  cold.id = world.sim().ids().NextId("q");
  const auto refused = factory.ProcessCxtQuery(std::move(cold), client);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(factory.degraded_deliveries(), 0u);
}

// --- Worker-mode equivalence ------------------------------------------------

std::vector<query::CxtQuery> MixedBatch(sim::Simulation& sim, int n) {
  std::vector<query::CxtQuery> batch;
  batch.reserve(n);
  for (int i = 0; i < n; ++i) {
    const auto cls = static_cast<query::QueryPriority>(
        i % 5 == 0 ? 0 : (i % 5 <= 2 ? 1 : 2));
    // Every tenth query is an on-demand background query against the
    // warm type: its shed takes the stale fast path and finishes
    // immediately, exercising the projected-occupancy accounting.
    const bool warm = i % 10 == 3;
    batch.push_back(TempQuery(sim, warm ? query::QueryPriority::kBackground
                                        : cls,
                              /*on_demand=*/warm));
  }
  return batch;
}

/// Runs the mixed batch across workers {0, 2, 4} and asserts the shed
/// decisions (admit/refuse pattern, ids, ledger) are identical to the
/// deterministic baseline. With the stale fast path on, every shed of
/// the warm type degrades instead of refusing — that run exercises the
/// projected-occupancy accounting for degrades (periodic ones stay
/// live, on-demand ones finish immediately); with it off, sheds are
/// refusals and the refusal pattern itself must replay.
void CheckWorkerEquivalence(bool stale_fast_path) {
  constexpr int kN = 200;
  std::string baseline_signature;
  std::set<std::string> baseline_ids;
  std::uint64_t baseline_admitted = 0;

  for (const std::size_t workers : {std::size_t{0}, std::size_t{2},
                                    std::size_t{4}}) {
    testbed::World world{808};
    testbed::DeviceOptions opts = GovernedOptions();
    opts.factory_config.overload.shed_high_watermark = 30;
    opts.factory_config.overload.shed_standard_watermark = 60;
    opts.factory_config.overload.stale_fast_path = stale_fast_path;
    auto& device = world.AddDevice(opts);
    core::CollectingClient client;
    auto& factory = device.contory();
    factory.repository().Store(WarmItem(world.sim(), vocab::kTemperature));

    const auto results = factory.ProcessCxtQueryBatch(
        MixedBatch(world.sim(), kN), client,
        core::ContextFactory::BatchOptions{.workers = workers});
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kN));

    std::string signature;
    std::set<std::string> ids;
    for (const auto& r : results) {
      if (r.ok()) {
        signature += 'a';
        ids.insert(*r);
      } else {
        ASSERT_EQ(r.status().code(), StatusCode::kOverloaded)
            << r.status().ToString();
        signature += 's';
      }
    }
    EXPECT_EQ(factory.queries().invalid_transitions(), 0u);
    EXPECT_EQ(factory.queries().total_admitted(),
              factory.queries().total_completed() +
                  factory.queries().active_count());

    if (workers == 0) {
      baseline_signature = signature;
      baseline_ids = ids;
      baseline_admitted = factory.queries().total_admitted();
      if (!stale_fast_path) {
        // The mix must actually refuse something or this run is vacuous.
        EXPECT_NE(signature.find('s'), std::string::npos);
      } else {
        EXPECT_GE(factory.degraded_deliveries(), 1u);
      }
    } else {
      // Pre-gating replays the deterministic decisions: identical
      // admit/shed pattern per index, identical ids, identical ledger.
      EXPECT_EQ(signature, baseline_signature) << "workers=" << workers;
      EXPECT_EQ(ids, baseline_ids) << "workers=" << workers;
      EXPECT_EQ(factory.queries().total_admitted(), baseline_admitted);
    }
  }
}

TEST_F(OverloadWorldTest, WorkerModeRefusalsMatchDeterministic) {
  CheckWorkerEquivalence(/*stale_fast_path=*/false);
}

TEST_F(OverloadWorldTest, WorkerModeDegradesMatchDeterministic) {
  CheckWorkerEquivalence(/*stale_fast_path=*/true);
}

// The acceptance-scale run: 100k mixed-priority submits against armed
// watermarks through the worker path — the lifecycle ledger must stay
// coherent and no span may leak.
TEST_F(OverloadWorldTest, HundredKSubmitsUnderSheddingStayCoherent) {
  constexpr int kN = 100'000;
  testbed::World world{909};
  testbed::DeviceOptions opts = GovernedOptions();
  opts.factory_config.table_shards = 16;
  opts.factory_config.overload.shed_high_watermark = 20'000;
  opts.factory_config.overload.shed_standard_watermark = 50'000;
  // Refusals, not degrades: with the live sensor warming the repository
  // the fast path would admit everything and shed nothing.
  opts.factory_config.overload.stale_fast_path = false;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;
  auto& factory = device.contory();

  const auto results = factory.ProcessCxtQueryBatch(
      MixedBatch(world.sim(), kN), client,
      core::ContextFactory::BatchOptions{.workers = 2});
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kN));

  std::vector<std::string> ids;
  std::size_t shed = 0;
  for (int i = 0; i < kN; ++i) {
    const auto& r = results[i];
    if (r.ok()) {
      ids.push_back(*r);
    } else {
      ASSERT_EQ(r.status().code(), StatusCode::kOverloaded)
          << r.status().ToString();
      // Interactive (every 5th index, unless warm-overridden) never
      // sheds.
      ASSERT_NE(i % 5, 0) << "interactive query shed at index " << i;
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);

  const core::QueryTable& table = factory.queries();
  EXPECT_EQ(table.invalid_transitions(), 0u);
  EXPECT_EQ(table.total_admitted(),
            table.total_completed() + table.active_count());

  for (const auto& id : ids) factory.CancelCxtQuery(id);
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  EXPECT_EQ(table.total_admitted(), table.total_completed());
  if (COBS_ON()) {
    EXPECT_EQ(obs::Observability::tracer().open_count(), 0u);
    EXPECT_EQ(obs::Observability::tracer().double_closes(), 0u);
  }
}

}  // namespace
}  // namespace contory
