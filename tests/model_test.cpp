// Unit tests for the context model: values, metadata, items, vocabulary.
#include <gtest/gtest.h>

#include "core/model/cxt_item.hpp"
#include "core/model/cxt_value.hpp"
#include "core/model/metadata.hpp"
#include "core/model/vocabulary.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

TEST(CxtValueTest, KindsAndAccessors) {
  EXPECT_TRUE(CxtValue{14.5}.is_number());
  EXPECT_TRUE(CxtValue{"walking"}.is_string());
  EXPECT_TRUE(CxtValue{true}.is_bool());
  EXPECT_TRUE((CxtValue{GeoPoint{60.15, 24.9}}.is_geo()));

  EXPECT_DOUBLE_EQ(CxtValue{14.5}.AsNumber().value(), 14.5);
  EXPECT_EQ(CxtValue{"walking"}.AsString().value(), "walking");
  EXPECT_TRUE(CxtValue{true}.AsBool().value());
  EXPECT_DOUBLE_EQ((CxtValue{GeoPoint{1, 2}}.AsGeo().value().lat), 1.0);

  EXPECT_FALSE(CxtValue{14.5}.AsString().ok());
  EXPECT_FALSE(CxtValue{"x"}.AsNumber().ok());
}

TEST(CxtValueTest, IntConvertsToNumber) {
  const CxtValue v{42};
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.AsNumber().value(), 42.0);
}

TEST(CxtValueTest, ToStringFormats) {
  EXPECT_EQ(CxtValue{14.5}.ToString(), "14.5");
  EXPECT_EQ(CxtValue{"sailing"}.ToString(), "sailing");
  EXPECT_EQ(CxtValue{false}.ToString(), "false");
  EXPECT_EQ((CxtValue{GeoPoint{60.1520, 24.9090}}.ToString()),
            "60.1520,24.9090");
}

TEST(CxtValueTest, CompareNumbersAndStrings) {
  EXPECT_LT(CxtValue{1.0}.Compare(CxtValue{2.0}).value(), 0);
  EXPECT_GT(CxtValue{3.0}.Compare(CxtValue{2.0}).value(), 0);
  EXPECT_EQ(CxtValue{2.0}.Compare(CxtValue{2.0}).value(), 0);
  EXPECT_LT(CxtValue{"a"}.Compare(CxtValue{"b"}).value(), 0);
  EXPECT_FALSE(CxtValue{1.0}.Compare(CxtValue{"a"}).ok());
  EXPECT_FALSE((CxtValue{true}.Compare(CxtValue{false}).ok()));
}

TEST(CxtValueTest, EqualityAcrossKinds) {
  EXPECT_EQ(CxtValue{1.0}, CxtValue{1.0});
  EXPECT_FALSE(CxtValue{1.0} == CxtValue{"1"});
  EXPECT_EQ((CxtValue{GeoPoint{1, 2}}), (CxtValue{GeoPoint{1, 2}}));
}

TEST(CxtValueTest, EncodeDecodeRoundTrip) {
  for (const CxtValue& v :
       {CxtValue{14.5}, CxtValue{"walking"}, CxtValue{true},
        CxtValue{GeoPoint{60.15, 24.9}}}) {
    ByteWriter w;
    v.Encode(w);
    ByteReader r{w.bytes()};
    const auto back = CxtValue::Decode(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(GeoPointTest, DistanceSanity) {
  // ~1 degree latitude ~ 111 km.
  const GeoPoint a{60.0, 24.0};
  const GeoPoint b{61.0, 24.0};
  EXPECT_NEAR(DistanceMeters(a, b), 111'000, 500);
  EXPECT_DOUBLE_EQ(DistanceMeters(a, a), 0.0);
}

TEST(MetadataTest, GetNumericByName) {
  Metadata m;
  m.accuracy = 0.2;
  m.trust = TrustLevel::kTrusted;
  EXPECT_DOUBLE_EQ(m.GetNumeric("accuracy").value(), 0.2);
  EXPECT_DOUBLE_EQ(m.GetNumeric("trust").value(), 2.0);
  EXPECT_EQ(m.GetNumeric("precision").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(m.GetNumeric("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MetadataTest, SetNumericByName) {
  Metadata m;
  EXPECT_TRUE(m.SetNumeric("completeness", 0.9).ok());
  EXPECT_DOUBLE_EQ(*m.completeness, 0.9);
  EXPECT_TRUE(m.SetNumeric("trust", 2).ok());
  EXPECT_EQ(m.trust, TrustLevel::kTrusted);
  EXPECT_FALSE(m.SetNumeric("bogus", 1).ok());
}

TEST(MetadataTest, SatisfiesAccuracyIsUpperBound) {
  Metadata required;
  required.accuracy = 0.5;
  Metadata good;
  good.accuracy = 0.2;  // more accurate than required
  Metadata bad;
  bad.accuracy = 1.0;
  Metadata unset;
  EXPECT_TRUE(good.Satisfies(required));
  EXPECT_FALSE(bad.Satisfies(required));
  EXPECT_FALSE(unset.Satisfies(required));  // cannot demonstrate quality
}

TEST(MetadataTest, SatisfiesTrustAndPrivacy) {
  Metadata required;
  required.trust = TrustLevel::kTrusted;
  Metadata trusted;
  trusted.trust = TrustLevel::kTrusted;
  Metadata unknown;
  EXPECT_TRUE(trusted.Satisfies(required));
  EXPECT_FALSE(unknown.Satisfies(required));

  Metadata public_only;  // default: requester accepts only public items
  Metadata private_item;
  private_item.privacy = PrivacyLevel::kPrivate;
  EXPECT_FALSE(private_item.Satisfies(public_only));
}

TEST(MetadataTest, SatisfiesEmptyRequirementAlwaysTrue) {
  Metadata anything;
  anything.accuracy = 99.0;
  anything.trust = TrustLevel::kUntrusted;
  Metadata no_reqs;
  no_reqs.trust = TrustLevel::kUntrusted;  // accepts untrusted
  EXPECT_TRUE(anything.Satisfies(no_reqs));
}

TEST(MetadataTest, ToStringListsSetFields) {
  Metadata m;
  m.accuracy = 0.2;
  m.trust = TrustLevel::kTrusted;
  EXPECT_EQ(m.ToString(), "accuracy=0.2,trust=trusted");
  EXPECT_EQ(Metadata{}.ToString(), "");
}

TEST(MetadataTest, EncodeDecodeRoundTrip) {
  Metadata m;
  m.correctness = 0.8;
  m.accuracy = 0.2;
  m.privacy = PrivacyLevel::kProtected;
  m.trust = TrustLevel::kTrusted;
  ByteWriter w;
  m.Encode(w);
  ByteReader r{w.bytes()};
  const auto back = Metadata::Decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST(CxtItemTest, FreshnessAndExpiry) {
  CxtItem item;
  item.type = vocab::kTemperature;
  item.value = 14.0;
  item.timestamp = kSimEpoch + 100s;
  item.lifetime = SimDuration{60s};

  EXPECT_TRUE(item.IsFresh(kSimEpoch + 120s, 30s));
  EXPECT_FALSE(item.IsFresh(kSimEpoch + 140s, 30s));
  EXPECT_FALSE(item.IsExpired(kSimEpoch + 159s));
  EXPECT_TRUE(item.IsExpired(kSimEpoch + 160s));
}

TEST(CxtItemTest, NoLifetimeNeverExpires) {
  CxtItem item;
  item.timestamp = kSimEpoch;
  EXPECT_FALSE(item.IsExpired(kSimEpoch + std::chrono::hours{10'000}));
}

TEST(CxtItemTest, SerializedSizesMatchPaper) {
  // "the size of a context item varies from 53 bytes (e.g., a wind item)
  // to 136 bytes (e.g., a location item)". lightItem is 136 bytes.
  CxtItem wind;
  wind.id = "i-1";
  wind.type = vocab::kWind;
  wind.value = 7.5;
  EXPECT_EQ(wind.Serialize().size(), 53u);

  CxtItem location;
  location.id = "i-2";
  location.type = vocab::kLocation;
  location.value = GeoPoint{60.15, 24.9};
  EXPECT_EQ(location.Serialize().size(), 136u);

  CxtItem light;
  light.id = "i-3";
  light.type = vocab::kLight;
  light.value = 5000.0;
  EXPECT_EQ(light.Serialize().size(), 136u);
}

TEST(CxtItemTest, SerializeDeserializeRoundTrip) {
  CxtItem item;
  item.id = "item-42";
  item.type = vocab::kTemperature;
  item.value = 14.0;
  item.timestamp = kSimEpoch + 10s;
  item.lifetime = SimDuration{30s};
  item.source = {SourceKind::kAdHocNetwork, "node:3"};
  item.metadata.accuracy = 0.2;
  item.metadata.trust = TrustLevel::kTrusted;

  const auto back = CxtItem::Deserialize(item.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, "item-42");
  EXPECT_EQ(back->type, vocab::kTemperature);
  EXPECT_EQ(back->value, item.value);
  EXPECT_EQ(back->timestamp, item.timestamp);
  EXPECT_EQ(back->lifetime, item.lifetime);
  EXPECT_EQ(back->source, item.source);
  EXPECT_EQ(back->metadata, item.metadata);
}

TEST(CxtItemTest, UnknownTypeRoundTripsWithoutEnvelope) {
  CxtItem item;
  item.id = "i-9";
  item.type = "co2Level";  // not in the vocabulary
  item.value = 412.0;
  const auto wire = item.Serialize();
  const auto back = CxtItem::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, "co2Level");
}

TEST(CxtItemTest, DeserializeGarbageFails) {
  EXPECT_FALSE(
      CxtItem::Deserialize(std::vector<std::byte>(5, std::byte{0xff})).ok());
}

TEST(CxtItemTest, ToStringIsReadable) {
  CxtItem item;
  item.type = vocab::kTemperature;
  item.value = 14.0;
  item.timestamp = kSimEpoch + 12s;
  item.source = {SourceKind::kAdHocNetwork, "node:3"};
  item.metadata.accuracy = 0.2;
  EXPECT_EQ(item.ToString(),
            "temperature=14 @t=12.000s [accuracy=0.2] (adHocNetwork node:3)");
}

TEST(VocabularyTest, KnowsPaperTypes) {
  const auto& v = CxtVocabulary::Default();
  for (const char* type :
       {vocab::kLocation, vocab::kSpeed, vocab::kActivity, vocab::kMood,
        vocab::kTemperature, vocab::kLight, vocab::kNoise, vocab::kWind,
        vocab::kNearbyDevices, vocab::kBatteryLevel}) {
    EXPECT_TRUE(v.Knows(type)) << type;
  }
  EXPECT_FALSE(v.Knows("flavor"));
}

TEST(VocabularyTest, TypeInfoCarriesKindAndEnvelope) {
  const auto& v = CxtVocabulary::Default();
  const auto location = v.Find(vocab::kLocation);
  ASSERT_TRUE(location.has_value());
  EXPECT_EQ(location->kind, ValueKind::kGeo);
  EXPECT_EQ(location->envelope_bytes, 136u);
  const auto wind = v.Find(vocab::kWind);
  ASSERT_TRUE(wind.has_value());
  EXPECT_EQ(wind->envelope_bytes, 53u);
}

TEST(VocabularyTest, RegisterNewTypeIsExtensible) {
  CxtVocabulary v = CxtVocabulary::Default();  // copy
  v.RegisterType({"co2Level", ValueKind::kNumber, 60, "ppm"});
  EXPECT_TRUE(v.Knows("co2Level"));
  // Replacing updates in place.
  v.RegisterType({"co2Level", ValueKind::kNumber, 64, "ppm"});
  EXPECT_EQ(v.Find("co2Level")->envelope_bytes, 64u);
}

TEST(SourceKindTest, Names) {
  EXPECT_STREQ(SourceKindName(SourceKind::kIntSensor), "intSensor");
  EXPECT_STREQ(SourceKindName(SourceKind::kAdHocNetwork), "adHocNetwork");
  EXPECT_EQ(SourceId({SourceKind::kExtInfra, "infra.fi"}).ToString(),
            "extInfra infra.fi");
}

}  // namespace
}  // namespace contory
