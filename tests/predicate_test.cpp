// Unit tests for WHERE / EVENT predicate evaluation.
#include <gtest/gtest.h>

#include <vector>

#include "core/model/vocabulary.hpp"
#include "core/query/parser.hpp"
#include "core/query/predicate.hpp"

namespace contory::query {
namespace {

using namespace std::chrono_literals;

CxtItem TempItem(double value, double accuracy = 0.2,
                 TrustLevel trust = TrustLevel::kUnknown) {
  CxtItem item;
  item.type = vocab::kTemperature;
  item.value = value;
  item.metadata.accuracy = accuracy;
  item.metadata.trust = trust;
  return item;
}

Predicate P(const std::string& text) {
  auto p = ParsePredicate(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return *std::move(p);
}

TEST(EvalWhereTest, ValueFieldMatchesItemValue) {
  EXPECT_TRUE(EvalWhere(P("value>20"), TempItem(25)).value());
  EXPECT_FALSE(EvalWhere(P("value>20"), TempItem(15)).value());
}

TEST(EvalWhereTest, OwnTypeNameAliasesValue) {
  EXPECT_TRUE(EvalWhere(P("temperature>=25"), TempItem(25)).value());
  EXPECT_FALSE(EvalWhere(P("temperature<25"), TempItem(25)).value());
}

TEST(EvalWhereTest, OtherTypeNameNeverMatches) {
  EXPECT_FALSE(EvalWhere(P("humidity>0"), TempItem(25)).value());
}

TEST(EvalWhereTest, TypeField) {
  EXPECT_TRUE(EvalWhere(P("type=\"temperature\""), TempItem(1)).value());
  EXPECT_FALSE(EvalWhere(P("type=\"wind\""), TempItem(1)).value());
}

TEST(EvalWhereTest, MetadataComparison) {
  EXPECT_TRUE(EvalWhere(P("accuracy=0.2"), TempItem(20, 0.2)).value());
  EXPECT_TRUE(EvalWhere(P("accuracy<=0.5"), TempItem(20, 0.2)).value());
  EXPECT_FALSE(EvalWhere(P("accuracy<=0.1"), TempItem(20, 0.2)).value());
}

TEST(EvalWhereTest, UnsetMetadataFieldIsFalseNotError) {
  CxtItem item = TempItem(20);
  item.metadata.accuracy.reset();
  const auto r = EvalWhere(P("accuracy<=0.5"), item);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(EvalWhereTest, SymbolicTrustLiterals) {
  EXPECT_TRUE(EvalWhere(P("trust=trusted"),
                        TempItem(1, 0.2, TrustLevel::kTrusted))
                  .value());
  EXPECT_TRUE(EvalWhere(P("trust>=unknown"),
                        TempItem(1, 0.2, TrustLevel::kTrusted))
                  .value());
  EXPECT_FALSE(EvalWhere(P("trust=trusted"),
                         TempItem(1, 0.2, TrustLevel::kUnknown))
                   .value());
  // Unknown symbolic level is a real error.
  EXPECT_FALSE(EvalWhere(P("trust=super"), TempItem(1)).ok());
}

TEST(EvalWhereTest, StringValues) {
  CxtItem item;
  item.type = vocab::kActivity;
  item.value = "walking";
  EXPECT_TRUE(EvalWhere(P("value=\"walking\""), item).value());
  EXPECT_TRUE(EvalWhere(P("value!=\"sailing\""), item).value());
  // Bare-word literal parses as a string.
  EXPECT_TRUE(EvalWhere(P("activity=walking"), item).value());
}

TEST(EvalWhereTest, BooleanCombinators) {
  const CxtItem item = TempItem(30, 0.2, TrustLevel::kTrusted);
  EXPECT_TRUE(
      EvalWhere(P("value>25 AND accuracy<=0.5 AND trust=trusted"), item)
          .value());
  EXPECT_TRUE(EvalWhere(P("value>100 OR trust=trusted"), item).value());
  EXPECT_FALSE(EvalWhere(P("NOT trust=trusted"), item).value());
  EXPECT_TRUE(
      EvalWhere(P("NOT (value>100 AND accuracy<=0.5)"), item).value());
}

TEST(EvalWhereTest, TypeMismatchInComparisonIsError) {
  // Comparing a numeric value with < against a string literal.
  EXPECT_FALSE(EvalWhere(P("value<\"abc\""), TempItem(1)).ok());
}

TEST(EvalWhereTest, AggregateInWhereIsError) {
  EXPECT_FALSE(EvalWhere(P("AVG(temperature)>5"), TempItem(10)).ok());
}

TEST(EvalAggregateTest, AllFunctions) {
  std::vector<CxtItem> window{TempItem(10), TempItem(20), TempItem(30)};
  EXPECT_DOUBLE_EQ(
      EvalAggregate(AggregateFn::kAvg, "temperature", window).value(), 20.0);
  EXPECT_DOUBLE_EQ(
      EvalAggregate(AggregateFn::kMin, "temperature", window).value(), 10.0);
  EXPECT_DOUBLE_EQ(
      EvalAggregate(AggregateFn::kMax, "temperature", window).value(), 30.0);
  EXPECT_DOUBLE_EQ(
      EvalAggregate(AggregateFn::kSum, "temperature", window).value(), 60.0);
  EXPECT_DOUBLE_EQ(
      EvalAggregate(AggregateFn::kCount, "temperature", window).value(), 3.0);
}

TEST(EvalAggregateTest, FiltersByType) {
  std::vector<CxtItem> window{TempItem(10)};
  CxtItem wind;
  wind.type = vocab::kWind;
  wind.value = 99.0;
  window.push_back(wind);
  EXPECT_DOUBLE_EQ(
      EvalAggregate(AggregateFn::kAvg, "temperature", window).value(), 10.0);
  EXPECT_DOUBLE_EQ(
      EvalAggregate(AggregateFn::kCount, "wind", window).value(), 1.0);
}

TEST(EvalAggregateTest, EmptyWindowBehaviour) {
  std::vector<CxtItem> empty;
  EXPECT_EQ(EvalAggregate(AggregateFn::kAvg, "t", empty).status().code(),
            StatusCode::kNotFound);
  EXPECT_DOUBLE_EQ(EvalAggregate(AggregateFn::kCount, "t", empty).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(EvalAggregate(AggregateFn::kSum, "t", empty).value(), 0.0);
}

TEST(EvalEventTest, PaperExampleAvgAbove25) {
  const Predicate event = P("AVG(temperature)>25");
  std::vector<CxtItem> cold{TempItem(20), TempItem(22)};
  EXPECT_FALSE(EvalEvent(event, cold).value());
  std::vector<CxtItem> hot{TempItem(24), TempItem(30)};
  EXPECT_TRUE(EvalEvent(event, hot).value());
}

TEST(EvalEventTest, EmptyWindowNeverTriggers) {
  std::vector<CxtItem> empty;
  EXPECT_FALSE(EvalEvent(P("AVG(temperature)>25"), empty).value());
  EXPECT_FALSE(EvalEvent(P("value>0"), empty).value());
}

TEST(EvalEventTest, NonAggregateUsesLatestItem) {
  std::vector<CxtItem> window{TempItem(30), TempItem(10)};
  EXPECT_FALSE(EvalEvent(P("value>25"), window).value());  // latest is 10
  window.push_back(TempItem(40));
  EXPECT_TRUE(EvalEvent(P("value>25"), window).value());
}

TEST(EvalEventTest, MixedAggregateAndPlain) {
  const Predicate event = P("AVG(temperature)>20 AND value<100");
  std::vector<CxtItem> window{TempItem(30), TempItem(20)};
  EXPECT_TRUE(EvalEvent(event, window).value());
}

TEST(EvalEventTest, CountTriggersOnThreshold) {
  const Predicate event = P("COUNT(temperature)>=3");
  std::vector<CxtItem> window{TempItem(1), TempItem(2)};
  EXPECT_FALSE(EvalEvent(event, window).value());
  window.push_back(TempItem(3));
  EXPECT_TRUE(EvalEvent(event, window).value());
}

}  // namespace
}  // namespace contory::query
