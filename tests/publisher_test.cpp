// Unit tests for the CxtPublisher: dual-channel publication (BT SDDB +
// SM tags), the BT item-poll micro-protocol, authenticated access, and
// interplay with the AccessController on the requester side.
#include <gtest/gtest.h>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

CxtItem Item(testbed::World& world, const std::string& type, double value) {
  CxtItem item;
  item.id = world.sim().ids().NextId("item");
  item.type = type;
  item.value = value;
  item.timestamp = world.Now();
  item.metadata.accuracy = 0.2;
  return item;
}

TEST(CxtGetProtocolTest, RequestRoundTrip) {
  const auto frame = BuildCxtGetRequest("temperature", "key-1");
  const auto parsed = ParseCxtGetRequest(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, "temperature");
  EXPECT_EQ(parsed->key, "key-1");
}

TEST(CxtGetProtocolTest, ResponseRoundTrip) {
  testbed::World world{950};
  const auto frame = BuildCxtGetResponse(Item(world, "wind", 6.0));
  const auto parsed = ParseCxtGetResponse(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, "wind");

  const auto missing = ParseCxtGetResponse(
      BuildCxtGetResponse(NotFound("nothing published")));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CxtGetProtocolTest, ForeignFramesRejected) {
  // NMEA payloads and random bytes must not parse as protocol frames.
  std::vector<std::byte> nmea(340, std::byte{'$'});
  EXPECT_FALSE(ParseCxtGetRequest(nmea).ok());
  EXPECT_FALSE(ParseCxtGetResponse(nmea).ok());
  EXPECT_FALSE(ParseCxtGetRequest({}).ok());
}

class PublisherTest : public ::testing::Test {
 protected:
  PublisherTest() : world_(951) {
    testbed::DeviceOptions opts;
    opts.name = "publisher";
    opts.with_wifi = true;
    opts.profile = phone::Nokia9500();
    opts.with_cellular = false;
    device_ = &world_.AddDevice(opts);
    EXPECT_TRUE(device_->contory().RegisterCxtServer(app_).ok());
  }

  testbed::World world_;
  testbed::Device* device_ = nullptr;
  CollectingClient app_;
};

TEST_F(PublisherTest, PublishesOnBothChannels) {
  ASSERT_TRUE(device_->contory()
                  .PublishCxtItem(Item(world_, vocab::kWind, 6.0), true)
                  .ok());
  world_.RunFor(1s);
  // SM tag exposed...
  EXPECT_TRUE(device_->sm()->tags().Has(CxtTagName(vocab::kWind)));
  // ...and a BT service record registered.
  EXPECT_TRUE(device_->contory().publisher().IsPublished(vocab::kWind));
  EXPECT_TRUE(
      device_->contory().publisher().CurrentItem(vocab::kWind, "").ok());
}

TEST_F(PublisherTest, RepublishUpdatesInPlace) {
  ASSERT_TRUE(device_->contory()
                  .PublishCxtItem(Item(world_, vocab::kWind, 6.0), true)
                  .ok());
  world_.RunFor(1s);
  ASSERT_TRUE(device_->contory()
                  .PublishCxtItem(Item(world_, vocab::kWind, 9.0), true)
                  .ok());
  world_.RunFor(1s);
  const auto current =
      device_->contory().publisher().CurrentItem(vocab::kWind, "");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->value, CxtValue{9.0});
  // Tag carries the fresh value too.
  const auto tag = device_->sm()->tags().Read(CxtTagName(vocab::kWind));
  ASSERT_TRUE(tag.ok());
  const auto bytes = FromHex(tag->value);
  ASSERT_TRUE(bytes.ok());
  const auto item = CxtItem::Deserialize(*bytes);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->value, CxtValue{9.0});
}

TEST_F(PublisherTest, AuthenticatedItemNeedsKey) {
  ASSERT_TRUE(device_->contory()
                  .PublishCxtItem(Item(world_, vocab::kLocation, 1.0), true,
                                  "sesame")
                  .ok());
  world_.RunFor(1s);
  EXPECT_EQ(device_->contory()
                .publisher()
                .CurrentItem(vocab::kLocation, "")
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(device_->contory()
                .publisher()
                .CurrentItem(vocab::kLocation, "wrong")
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(device_->contory()
                  .publisher()
                  .CurrentItem(vocab::kLocation, "sesame")
                  .ok());
}

TEST_F(PublisherTest, UnpublishRemovesEverything) {
  ASSERT_TRUE(device_->contory()
                  .PublishCxtItem(Item(world_, vocab::kWind, 6.0), true)
                  .ok());
  world_.RunFor(1s);
  ASSERT_TRUE(device_->contory()
                  .PublishCxtItem(Item(world_, vocab::kWind, 6.0), false)
                  .ok());
  EXPECT_FALSE(device_->contory().publisher().IsPublished(vocab::kWind));
  EXPECT_FALSE(device_->sm()->tags().Has(CxtTagName(vocab::kWind)));
  EXPECT_FALSE(
      device_->contory().publisher().CurrentItem(vocab::kWind, "").ok());
}

TEST_F(PublisherTest, ItemLifetimeExpiresTag) {
  auto item = Item(world_, vocab::kWind, 6.0);
  item.lifetime = SimDuration{30s};
  ASSERT_TRUE(device_->contory().PublishCxtItem(item, true).ok());
  world_.RunFor(10s);
  EXPECT_TRUE(device_->sm()->tags().Has(CxtTagName(vocab::kWind)));
  world_.RunFor(30s);
  // The SM tag expired with the item's validity.
  EXPECT_FALSE(device_->sm()->tags().Has(CxtTagName(vocab::kWind)));
}

TEST(AccessControlledPollTest, BlockedPublisherIsSkipped) {
  testbed::World world{952};
  auto& requester = world.AddDevice({.name = "requester"});
  testbed::DeviceOptions pub_opts;
  pub_opts.name = "shady-device";
  pub_opts.position = {5, 0};
  auto& publisher = world.AddDevice(pub_opts);
  CollectingClient pub_app;
  ASSERT_TRUE(publisher.contory().RegisterCxtServer(pub_app).ok());
  ASSERT_TRUE(publisher.contory()
                  .PublishCxtItem(Item(world, vocab::kWind, 6.0), true)
                  .ok());
  world.RunFor(1s);

  // The requester's access controller has blacklisted the device.
  requester.contory().access().Block("bt:shady-device");

  CollectingClient client;
  auto q = query::ParseQuery(
      "SELECT wind FROM adHocNetwork DURATION 1 min");
  q->id = world.sim().ids().NextId("q");
  const auto id = requester.contory().ProcessCxtQuery(*q, client);
  ASSERT_TRUE(id.ok());
  world.RunFor(30s);
  EXPECT_TRUE(client.items.empty());  // never polled the blocked device
}

// --- Parser robustness: garbage in, clean error out --------------------------

class ParserRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  static const std::vector<std::string> kVocabulary = {
      "SELECT", "FROM",     "WHERE",  "DURATION", "EVERY",  "EVENT",
      "AND",    "OR",       "NOT",    "AVG",      "(",      ")",
      ",",      "=",        "<",      ">",        "<=",     ">=",
      "1",      "0.5",      "hour",   "sec",      "samples", "all",
      "temperature", "accuracy", "adHocNetwork", "intSensor",
      "\"x\"",  "region",   "entity", "@"};
  Rng rng{GetParam()};
  for (int i = 0; i < 300; ++i) {
    std::string soup;
    const int len = static_cast<int>(rng.UniformInt(1, 20));
    for (int j = 0; j < len; ++j) {
      soup += kVocabulary[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(kVocabulary.size()) - 1))];
      soup += ' ';
    }
    // Must not crash; must produce either a valid query or an error with
    // a message.
    const auto q = query::ParseQuery(soup);
    if (!q.ok()) {
      EXPECT_FALSE(q.status().message().empty()) << soup;
    } else {
      EXPECT_TRUE(q->Validate().ok()) << soup;
    }
  }
}

TEST_P(ParserRobustnessTest, RandomBytesNeverCrashDeserializers) {
  Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> junk(
        static_cast<std::size_t>(rng.UniformInt(0, 300)));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.Next() & 0xff);
    }
    (void)CxtItem::Deserialize(junk);
    (void)query::CxtQuery::Deserialize(junk);
    (void)sm::SmartMessage::Deserialize(junk);
    (void)ParseCxtGetRequest(junk);
    (void)ParseCxtGetResponse(junk);
    (void)infra::UnwrapEvent(junk);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace contory::core
