// Unit tests for the simulated Bluetooth stack.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/bluetooth.hpp"
#include "net/medium.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::net {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> Bytes(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x5a});
}

class BluetoothTest : public ::testing::Test {
 protected:
  BluetoothTest() {
    node_a_ = medium_.Register("A", {0, 0});
    node_b_ = medium_.Register("B", {5, 0});
    node_far_ = medium_.Register("far", {500, 0});
    bt_a_ = std::make_unique<BluetoothController>(sim_, bus_, phone_a_,
                                                  node_a_);
    bt_b_ = std::make_unique<BluetoothController>(sim_, bus_, phone_b_,
                                                  node_b_);
    bt_far_ = std::make_unique<BluetoothController>(sim_, bus_, phone_far_,
                                                    node_far_);
    bt_a_->SetEnabled(true);
    bt_b_->SetEnabled(true);
    bt_far_->SetEnabled(true);
  }

  /// Establishes an A->B link synchronously (runs the sim).
  BtLinkId ConnectAB() {
    BtLinkId link = 0;
    bt_a_->Connect(node_b_, [&](Result<BtLinkId> r) { link = r.value(); });
    sim_.Run();
    return link;
  }

  sim::Simulation sim_{7};
  Medium medium_;
  BluetoothBus bus_{medium_};
  phone::SmartPhone phone_a_{sim_, phone::Nokia6630(), "A"};
  phone::SmartPhone phone_b_{sim_, phone::Nokia6630(), "B"};
  phone::SmartPhone phone_far_{sim_, phone::Nokia6630(), "far"};
  NodeId node_a_{}, node_b_{}, node_far_{};
  std::unique_ptr<BluetoothController> bt_a_, bt_b_, bt_far_;
};

TEST_F(BluetoothTest, EnableAddsScanPower) {
  EXPECT_NEAR(phone_a_.energy().CurrentPowerMilliwatts(), 5.75 + 2.72, 1e-9);
  bt_a_->SetEnabled(false);
  EXPECT_NEAR(phone_a_.energy().CurrentPowerMilliwatts(), 5.75, 1e-9);
}

TEST_F(BluetoothTest, InquiryTakesAbout13Seconds) {
  bool done = false;
  const SimTime start = sim_.Now();
  bt_a_->StartInquiry([&](Result<std::vector<BtDeviceInfo>> r) {
    done = true;
    EXPECT_TRUE(r.ok());
  });
  sim_.Run();
  EXPECT_TRUE(done);
  const double secs = ToSeconds(sim_.Now() - start);
  EXPECT_NEAR(secs, 13.0, 0.6);  // paper: "approximately 13 sec"
}

TEST_F(BluetoothTest, InquiryFindsOnlyInRangeDevices) {
  std::vector<BtDeviceInfo> found;
  bt_a_->StartInquiry(
      [&](Result<std::vector<BtDeviceInfo>> r) { found = r.value(); });
  sim_.Run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].node, node_b_);
  EXPECT_EQ(found[0].name, "B");
}

TEST_F(BluetoothTest, InquiryMissesDisabledDevices) {
  bt_b_->SetEnabled(false);
  std::vector<BtDeviceInfo> found;
  bt_a_->StartInquiry(
      [&](Result<std::vector<BtDeviceInfo>> r) { found = r.value(); });
  sim_.Run();
  EXPECT_TRUE(found.empty());
}

TEST_F(BluetoothTest, InquiryChargesHighPower) {
  const auto mark = phone_a_.energy().Mark();
  bt_a_->StartInquiry([](Result<std::vector<BtDeviceInfo>>) {});
  sim_.Run();
  // ~13 s at ~360 mW dominates; BT on-demand discovery is why Table 2's
  // BT get-with-discovery costs 5.27 J.
  const double joules = phone_a_.energy().JoulesSince(mark);
  EXPECT_GT(joules, 3.5);
  EXPECT_LT(joules, 6.0);
}

TEST_F(BluetoothTest, ConcurrentInquiryRejected) {
  bt_a_->StartInquiry([](Result<std::vector<BtDeviceInfo>>) {});
  Status status;
  bt_a_->StartInquiry([&](Result<std::vector<BtDeviceInfo>> r) {
    status = r.status();
  });
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  sim_.Run();
}

TEST_F(BluetoothTest, InquiryWithRadioOffFails) {
  bt_a_->SetEnabled(false);
  Status status;
  bt_a_->StartInquiry(
      [&](Result<std::vector<BtDeviceInfo>> r) { status = r.status(); });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(BluetoothTest, ServiceRegistrationTakes140ms) {
  const SimTime start = sim_.Now();
  bool done = false;
  bt_b_->RegisterService({"contory.cxt.temperature", Bytes(136)},
                         [&](Result<ServiceHandle> r) {
                           EXPECT_TRUE(r.ok());
                           done = true;
                         });
  sim_.Run();
  EXPECT_TRUE(done);
  // Table 1: publishCxtItem BT-based = 140.359 ms.
  EXPECT_NEAR(ToMillis(sim_.Now() - start), 140.36, 3.0);
}

TEST_F(BluetoothTest, SdpDiscoveryFindsRecordsByPrefix) {
  bt_b_->RegisterService({"contory.cxt.temperature", Bytes(53)},
                         [](Result<ServiceHandle>) {});
  bt_b_->RegisterService({"contory.cxt.location", Bytes(136)},
                         [](Result<ServiceHandle>) {});
  bt_b_->RegisterService({"obex.ftp", Bytes(10)},
                         [](Result<ServiceHandle>) {});
  sim_.Run();

  std::vector<ServiceRecord> records;
  const SimTime start = sim_.Now();
  bt_a_->DiscoverServices(node_b_, "contory.cxt.",
                          [&](Result<std::vector<ServiceRecord>> r) {
                            records = r.value();
                          });
  sim_.Run();
  EXPECT_EQ(records.size(), 2u);
  // Paper: "BT service discovery takes approximately 1.12 sec".
  EXPECT_NEAR(ToSeconds(sim_.Now() - start), 1.12, 0.1);
}

TEST_F(BluetoothTest, SdpOnUnreachableDeviceFails) {
  Status status;
  bt_a_->DiscoverServices(node_far_, "",
                          [&](Result<std::vector<ServiceRecord>> r) {
                            status = r.status();
                          });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(BluetoothTest, UpdateServiceInPlace) {
  ServiceHandle handle = 0;
  bt_b_->RegisterService({"contory.cxt.temp", Bytes(53)},
                         [&](Result<ServiceHandle> r) { handle = r.value(); });
  sim_.Run();
  EXPECT_TRUE(bt_b_->UpdateService(handle, Bytes(60)).ok());
  EXPECT_FALSE(bt_b_->UpdateService(999, Bytes(1)).ok());
}

TEST_F(BluetoothTest, ConnectEstablishesBidirectionalLink) {
  const BtLinkId link = ConnectAB();
  EXPECT_TRUE(bt_a_->LinkAlive(link));
  EXPECT_EQ(bt_a_->LinkPeer(link).value(), node_b_);
}

TEST_F(BluetoothTest, ConnectOutOfRangeFails) {
  Status status;
  bt_a_->Connect(node_far_, [&](Result<BtLinkId> r) { status = r.status(); });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(BluetoothTest, SendDeliversPayload) {
  const BtLinkId link = ConnectAB();
  std::vector<std::byte> received;
  NodeId from = kInvalidNode;
  bt_b_->SetDataHandler(
      [&](BtLinkId, NodeId f, const std::vector<std::byte>& data) {
        from = f;
        received = data;
      });
  bool delivered = false;
  bt_a_->Send(link, Bytes(136), [&](Status s) {
    EXPECT_TRUE(s.ok());
    delivered = true;
  });
  sim_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(from, node_a_);
  EXPECT_EQ(received.size(), 136u);
}

TEST_F(BluetoothTest, SegmentationInflatesWireSize) {
  // 340 B NMEA -> 4 segments of 96 B payload -> 340 + 4*16 = 404 B on air.
  EXPECT_EQ(bt_a_->WireBytes(340), 340u + 4u * 16u);
  // 136 B item -> 2 segments -> 136 + 32.
  EXPECT_EQ(bt_a_->WireBytes(136), 136u + 2u * 16u);
  // Larger payloads cost proportionally more air time.
  EXPECT_GT(bt_a_->TransferTime(340), bt_a_->TransferTime(136));
}

TEST_F(BluetoothTest, TransferChargesBothEnds) {
  const BtLinkId link = ConnectAB();
  const auto mark_a = phone_a_.energy().Mark();
  const auto mark_b = phone_b_.energy().Mark();
  bt_a_->Send(link, Bytes(1000));
  sim_.Run();
  // Both ends burned more than idle would explain over the transfer time.
  const double idle_a = (5.75 + 2.72 + 8.0) / 1e3 *
                        ToSeconds(bt_a_->TransferTime(1000));
  EXPECT_GT(phone_a_.energy().JoulesSince(mark_a), idle_a * 1.5);
  EXPECT_GT(phone_b_.energy().JoulesSince(mark_b), idle_a * 1.5);
}

TEST_F(BluetoothTest, SendOnDeadLinkFails) {
  Status status = Status::Ok();
  bt_a_->Send(12345, Bytes(10), [&](Status s) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(BluetoothTest, DisconnectNotifiesPeer) {
  const BtLinkId link = ConnectAB();
  int peer_drops = 0;
  bt_b_->SetDisconnectHandler([&](BtLinkId, NodeId peer) {
    EXPECT_EQ(peer, node_a_);
    ++peer_drops;
  });
  bt_a_->Disconnect(link);
  sim_.Run();
  EXPECT_EQ(peer_drops, 1);
  EXPECT_FALSE(bt_a_->LinkAlive(link));
}

TEST_F(BluetoothTest, FailureDropsLinksAfterSupervisionTimeout) {
  // The Fig. 5 scenario: the GPS device is switched off; the phone's
  // stack reports the dead link ~1 s later.
  const BtLinkId link = ConnectAB();
  (void)link;
  SimTime drop_time{};
  bt_a_->SetDisconnectHandler(
      [&](BtLinkId, NodeId) { drop_time = sim_.Now(); });
  const SimTime fail_time = sim_.Now();
  bt_b_->SetFailed(true);
  sim_.Run();
  EXPECT_GT(drop_time, fail_time);
  EXPECT_NEAR(ToSeconds(drop_time - fail_time), 1.0, 0.1);
}

TEST_F(BluetoothTest, FailedDeviceInvisibleToInquiry) {
  bt_b_->SetFailed(true);
  std::vector<BtDeviceInfo> found;
  bt_a_->StartInquiry(
      [&](Result<std::vector<BtDeviceInfo>> r) { found = r.value(); });
  sim_.Run();
  EXPECT_TRUE(found.empty());
}

TEST_F(BluetoothTest, RecoveredDeviceDiscoverableAgain) {
  bt_b_->SetFailed(true);
  bt_b_->SetFailed(false);
  std::vector<BtDeviceInfo> found;
  bt_a_->StartInquiry(
      [&](Result<std::vector<BtDeviceInfo>> r) { found = r.value(); });
  sim_.Run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].node, node_b_);
}

TEST_F(BluetoothTest, LinkPowerAppearsWhileConnected) {
  ConnectAB();
  EXPECT_NEAR(phone_a_.energy().ComponentPowerMilliwatts("bt.link"), 8.0,
              1e-9);
  bt_a_->Disconnect(1);
  sim_.Run();
  EXPECT_DOUBLE_EQ(phone_a_.energy().ComponentPowerMilliwatts("bt.link"),
                   0.0);
}

}  // namespace
}  // namespace contory::net
