// Unit tests for the energy substrate: ledger, meter, battery.
#include <gtest/gtest.h>

#include "energy/battery.hpp"
#include "energy/energy_model.hpp"
#include "energy/power_meter.hpp"
#include "sim/simulation.hpp"

namespace contory::energy {
namespace {

using namespace std::chrono_literals;

TEST(EnergyModelTest, StartsIdle) {
  sim::Simulation sim;
  EnergyModel model{sim};
  EXPECT_DOUBLE_EQ(model.CurrentPowerMilliwatts(), 0.0);
  EXPECT_DOUBLE_EQ(model.TotalEnergyJoules(), 0.0);
}

TEST(EnergyModelTest, IntegratesPowerOverTime) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("radio", 1000.0);  // 1 W
  sim.RunFor(10s);
  EXPECT_NEAR(model.TotalEnergyJoules(), 10.0, 1e-9);
}

TEST(EnergyModelTest, ComponentsSum) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("a", 5.75);
  model.SetComponentPower("b", 2.72);
  EXPECT_NEAR(model.CurrentPowerMilliwatts(), 8.47, 1e-9);
  EXPECT_NEAR(model.ComponentPowerMilliwatts("a"), 5.75, 1e-9);
  EXPECT_DOUBLE_EQ(model.ComponentPowerMilliwatts("absent"), 0.0);
}

TEST(EnergyModelTest, PowerChangeSplitsIntegral) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("x", 1000.0);
  sim.RunFor(5s);
  model.SetComponentPower("x", 500.0);
  sim.RunFor(5s);
  EXPECT_NEAR(model.TotalEnergyJoules(), 5.0 + 2.5, 1e-9);
}

TEST(EnergyModelTest, ZeroRemovesComponent) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("x", 100.0);
  model.SetComponentPower("x", 0.0);
  EXPECT_TRUE(model.components().empty());
}

TEST(EnergyModelTest, MarkersMeasureDelta) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("x", 2000.0);
  sim.RunFor(1s);
  const EnergyMarker mark = model.Mark();
  sim.RunFor(3s);
  EXPECT_NEAR(model.JoulesSince(mark), 6.0, 1e-9);
}

TEST(EnergyModelTest, OneShotEnergy) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.AddEnergyJoules(0.5);
  EXPECT_NEAR(model.TotalEnergyJoules(), 0.5, 1e-12);
}

TEST(EnergyModelTest, ListenerFiresOnChange) {
  sim::Simulation sim;
  EnergyModel model{sim};
  double last = -1.0;
  model.SetPowerListener([&](SimTime, double mw) { last = mw; });
  model.SetComponentPower("x", 42.0);
  EXPECT_DOUBLE_EQ(last, 42.0);
}

TEST(ScopedPowerTest, RaiiAddsAndRemoves) {
  sim::Simulation sim;
  EnergyModel model{sim};
  {
    ScopedPower burst{model, "burst", 120.0};
    EXPECT_DOUBLE_EQ(model.CurrentPowerMilliwatts(), 120.0);
  }
  EXPECT_DOUBLE_EQ(model.CurrentPowerMilliwatts(), 0.0);
}

TEST(PowerMeterTest, SamplesEvery500ms) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("x", 100.0);
  PowerMeterConfig cfg;
  cfg.apply_noise = false;
  PowerMeter meter{sim, model, cfg};
  meter.Start();
  sim.RunFor(5s);
  EXPECT_EQ(meter.trace().size(), 10u);
  for (const auto& p : meter.trace().points()) {
    EXPECT_DOUBLE_EQ(p.value, 100.0);
  }
}

TEST(PowerMeterTest, SampledEnergyApproximatesTrue) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("x", 1000.0);
  PowerMeterConfig cfg;
  cfg.apply_noise = false;
  PowerMeter meter{sim, model, cfg};
  meter.Start();
  sim.RunFor(60s);
  // Trace spans 0.5..60 s -> 59.5 J of the true 60 J.
  EXPECT_NEAR(meter.SampledEnergyJoules(), 59.5, 1e-6);
  EXPECT_NEAR(model.TotalEnergyJoules(), 60.0, 1e-6);
}

TEST(PowerMeterTest, MissesSubSamplePeaks) {
  // A 10 ms, 1 W spike between samples must be invisible to the meter —
  // the same quantization the paper's Fluke 189 has.
  sim::Simulation sim;
  EnergyModel model{sim};
  PowerMeterConfig cfg;
  cfg.apply_noise = false;
  PowerMeter meter{sim, model, cfg};
  meter.Start();
  sim.ScheduleAfter(600ms, [&] { model.SetComponentPower("spike", 1000.0); });
  sim.ScheduleAfter(610ms, [&] { model.SetComponentPower("spike", 0.0); });
  sim.RunFor(2s);
  EXPECT_DOUBLE_EQ(meter.trace().Max(), 0.0);
  EXPECT_GT(model.TotalEnergyJoules(), 0.0);  // ledger still caught it
}

TEST(PowerMeterTest, NoiseIsBounded) {
  sim::Simulation sim;
  EnergyModel model{sim};
  model.SetComponentPower("x", 100.0);
  PowerMeter meter{sim, model};  // default 0.75% accuracy, noise on
  meter.Start();
  sim.RunFor(30s);
  for (const auto& p : meter.trace().points()) {
    EXPECT_GE(p.value, 99.25);
    EXPECT_LE(p.value, 100.75);
  }
}

TEST(PowerMeterTest, StopAndReset) {
  sim::Simulation sim;
  EnergyModel model{sim};
  PowerMeterConfig cfg;
  cfg.apply_noise = false;
  PowerMeter meter{sim, model, cfg};
  meter.Start();
  sim.RunFor(2s);
  meter.Stop();
  sim.RunFor(2s);
  EXPECT_EQ(meter.trace().size(), 4u);
  meter.Reset();
  EXPECT_TRUE(meter.trace().empty());
}

TEST(BatteryTest, NominalVoltageAtNoLoad) {
  sim::Simulation sim;
  EnergyModel model{sim};
  Battery battery{sim, model};
  EXPECT_NEAR(battery.TerminalVoltage(), 4.0965, 1e-9);
}

TEST(BatteryTest, SagsUnderLoadButUnderTwoPercent) {
  sim::Simulation sim;
  EnergyModel model{sim};
  Battery battery{sim, model};
  model.SetComponentPower("wifi", 1190.0);
  const double v = battery.TerminalVoltage();
  EXPECT_LT(v, 4.0965);
  EXPECT_GT(v, 4.0965 * 0.98);  // paper: "deviated less than 2%"
}

TEST(BatteryTest, MeterShuntDropsSupplyVoltage) {
  sim::Simulation sim;
  EnergyModel model{sim};
  Battery battery{sim, model};
  model.SetComponentPower("wifi", 1190.0);
  const double no_meter = battery.PhoneSupplyVoltage();
  battery.SetMeterInserted(true);
  const double with_meter = battery.PhoneSupplyVoltage();
  EXPECT_LT(with_meter, no_meter);
  // ~300 mA through 1.8 ohm ~ 0.54 V drop.
  EXPECT_NEAR(no_meter - with_meter, 0.52, 0.05);
}

TEST(BatteryTest, WifiInrushTripsOnlyWithMeter) {
  // Reproduces the paper's observation: the communicator switched off when
  // WiFi was brought up inside the measurement circuit, but worked fine
  // without the meter.
  sim::Simulation sim;
  EnergyModel model{sim};
  Battery battery{sim, model};
  EXPECT_FALSE(battery.InrushTrips(1113.8));
  battery.SetMeterInserted(true);
  EXPECT_TRUE(battery.InrushTrips(1113.8));
}

TEST(BatteryTest, BtLoadNeverTrips) {
  sim::Simulation sim;
  EnergyModel model{sim};
  Battery battery{sim, model};
  battery.SetMeterInserted(true);
  EXPECT_FALSE(battery.InrushTrips(120.0));  // BT transfer burst
}

TEST(BatteryTest, TripListenerFires) {
  sim::Simulation sim;
  EnergyModel model{sim};
  Battery battery{sim, model};
  int trips = 0;
  battery.SetTripListener([&](SimTime) { ++trips; });
  battery.ReportTrip();
  EXPECT_EQ(trips, 1);
}

}  // namespace
}  // namespace contory::energy
