// Query-lifecycle invariants over the pipeline's QueryTable.
//
// Every query must end in exactly one terminal completion — no leaked
// records, no double-finishes, no invalid state transitions — even when
// the lifecycle is perturbed at its most awkward moments: cancellation
// from inside a delivery callback, a failover target that fails while
// the failover is in flight, and a facade-wide StopAll while a query is
// already degraded.
#include <gtest/gtest.h>

#include <string>

#include "core/contory.hpp"
#include "fault/fault_injector.hpp"
#include "testbed/testbed.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

int CompletionsFor(const core::QueryTable& table, const std::string& id) {
  int n = 0;
  for (const auto& completion : table.completions()) {
    if (completion.id == id) ++n;
  }
  return n;
}

// A client that cancels its own query from inside the delivery callback —
// the reentrant path through router -> client -> factory -> facade.
class CancelOnFirstItemClient : public core::Client {
 public:
  void ReceiveCxtItem(const CxtItem& item) override {
    items.push_back(item);
    // The very first sample can arrive synchronously, before the caller
    // has learned the query id — cancel on the first delivery after that.
    if (factory != nullptr && !query_id.empty() && !cancelled) {
      cancelled = true;
      items_at_cancel = items.size();
      factory->CancelCxtQuery(query_id);
    }
  }
  void InformError(const std::string& msg) override {
    errors.push_back(msg);
  }
  bool MakeDecision(const std::string&) override { return true; }

  core::ContextFactory* factory = nullptr;
  std::string query_id;
  bool cancelled = false;
  std::size_t items_at_cancel = 0;
  std::vector<CxtItem> items;
  std::vector<std::string> errors;
};

TEST(LifecycleInvariantTest, CancelDuringDeliveryIsSingleTerminal) {
  testbed::World world{501};
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);

  CancelOnFirstItemClient client;
  client.factory = &device.contory();
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM intSensor DURATION 2 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  client.query_id = *id;

  world.RunFor(1min);

  // The delivery callback cancelled the query reentrantly: nothing was
  // delivered afterwards, exactly one terminal completion was logged, and
  // the state machine saw no invalid edges.
  EXPECT_TRUE(client.cancelled);
  EXPECT_EQ(client.items.size(), client.items_at_cancel);
  const core::QueryTable& table = device.contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  EXPECT_EQ(CompletionsFor(table, *id), 1);
}

class GpsWorldTest : public ::testing::Test {
 protected:
  GpsWorldTest() : world_(502) {
    testbed::DeviceOptions opts;
    opts.name = "phone-A";
    core::ContextFactoryConfig cfg;
    cfg.recovery_probe_period = 15s;
    opts.factory_config = cfg;
    device_ = &world_.AddDevice(opts);
    world_.AddGps("gps-1", {3, 0});
  }

  testbed::World world_;
  testbed::Device* device_ = nullptr;
};

TEST_F(GpsWorldTest, FailDuringFailoverIsSingleTerminal) {
  core::CollectingClient client;
  const auto id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 2 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Healthy provisioning warms the repository, then the GPS and the local
  // BT radio fail in the same instant: the failover target dies while the
  // failover itself is in flight, leaving only degraded mode.
  world_.RunFor(55s);
  ASSERT_FALSE(client.items.empty());
  ASSERT_TRUE(world_.injector()
                  .ExecuteText(
                      "at=60s gps.off gps-1 for=180s\n"
                      "at=60s bt.fail phone-A for=180s\n")
                  .ok());
  world_.RunFor(2min);  // past the 2 min DURATION

  const core::QueryTable& table = device_->contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  EXPECT_EQ(CompletionsFor(table, *id), 1);
}

TEST_F(GpsWorldTest, StopAllDuringDegradedIsSingleTerminal) {
  core::CollectingClient client;
  const auto id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 20 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Drive the query into degraded mode (GPS and BT both dark, repository
  // warm from the healthy phase; the BT radio follows the GPS down so the
  // recovery probes cannot flap back onto a GPS-less BT stack).
  world_.RunFor(55s);
  ASSERT_TRUE(world_.injector()
                  .ExecuteText(
                      "at=60s gps.off gps-1 for=600s\n"
                      "at=80s bt.fail phone-A for=580s\n")
                  .ok());
  world_.RunFor(90s);
  ASSERT_TRUE(device_->contory().IsDegraded(*id));

  // A facade-wide StopAll (what the reducePower/reduceLoad policies do)
  // must not double-finish a query that no facade is serving any more.
  for (const query::SourceSel kind :
       {query::SourceSel::kIntSensor, query::SourceSel::kAdHocNetwork,
        query::SourceSel::kExtInfra}) {
    device_->contory().facade(kind).StopAll(
        ResourceExhausted("policy suspended the query"));
  }
  world_.RunFor(30s);
  EXPECT_TRUE(device_->contory().IsDegraded(*id));
  EXPECT_EQ(device_->contory().queries().active_count(), 1u);

  device_->contory().CancelCxtQuery(*id);
  world_.RunFor(10s);

  const core::QueryTable& table = device_->contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  EXPECT_EQ(CompletionsFor(table, *id), 1);
}

}  // namespace
}  // namespace contory
