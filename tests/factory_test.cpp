// Integration tests for the ContextFactory: the paper's public interface,
// transparent mechanism selection, publishing, remote storage, and
// control-policy enforcement.
#include <gtest/gtest.h>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

TEST(FactoryTest, RequiredServicesEnforced) {
  DeviceServices services;  // all null
  EXPECT_THROW(ContextFactory{services}, std::invalid_argument);
}

TEST(FactoryTest, ContoryRuntimePowerAccounted) {
  testbed::World world{100};
  auto& device = world.AddDevice({});
  // base 5.75 + BT scan 2.72 + Contory 1.64 = 10.11 mW, the paper's number.
  EXPECT_NEAR(device.phone().energy().CurrentPowerMilliwatts(), 10.11, 1e-6);
}

TEST(FactoryTest, InvalidQueryRejectedAtSubmission) {
  testbed::World world{101};
  auto& device = world.AddDevice({});
  CollectingClient client;
  query::CxtQuery bad;  // no SELECT/DURATION
  EXPECT_FALSE(device.contory().ProcessCxtQuery(bad, client).ok());
}

TEST(FactoryTest, AssignsIdWhenMissing) {
  testbed::World world{102};
  testbed::DeviceOptions opts;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);
  CollectingClient client;
  auto q = Q(world.sim(), "SELECT temperature DURATION 1 min EVERY 10 sec");
  q.id.clear();
  const auto id = device.contory().ProcessCxtQuery(q, client);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(id->empty());
}

TEST(FactoryTest, AutoSelectionPrefersInternalSensor) {
  testbed::World world{103};
  testbed::DeviceOptions opts;
  opts.internal_sensors = {vocab::kTemperature};
  opts.infra_address = "infra.fi";
  auto& device = world.AddDevice(opts);
  world.AddContextServer("infra.fi");
  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT temperature DURATION 1 min EVERY 10 sec"),
      client);
  ASSERT_TRUE(id.ok());
  const auto mechanisms = device.contory().CurrentMechanisms(*id);
  ASSERT_EQ(mechanisms.size(), 1u);
  EXPECT_TRUE(mechanisms.contains(query::SourceSel::kIntSensor));
}

TEST(FactoryTest, AutoSelectionFallsBackToAdHocThenInfra) {
  testbed::World world{104};
  testbed::DeviceOptions opts;
  opts.infra_address = "infra.fi";  // no internal sensors
  auto& device = world.AddDevice(opts);
  world.AddContextServer("infra.fi");
  CollectingClient client;
  // No local humidity sensor, BT present: ad hoc is chosen.
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT humidity DURATION 1 min EVERY 10 sec"),
      client);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(device.contory()
                  .CurrentMechanisms(*id)
                  .contains(query::SourceSel::kAdHocNetwork));

  // Without BT (and without WiFi), only the infrastructure remains.
  testbed::DeviceOptions no_radios;
  no_radios.name = "phone-B";
  no_radios.with_bt = false;
  no_radios.infra_address = "infra.fi";
  auto& device_b = world.AddDevice(no_radios);
  const auto id_b = device_b.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT humidity DURATION 1 min EVERY 10 sec"),
      client);
  ASSERT_TRUE(id_b.ok());
  EXPECT_TRUE(device_b.contory()
                  .CurrentMechanisms(*id_b)
                  .contains(query::SourceSel::kExtInfra));
}

TEST(FactoryTest, NoMechanismAvailableFails) {
  testbed::World world{105};
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  auto& device = world.AddDevice(opts);
  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT humidity DURATION 1 min"), client);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
}

TEST(FactoryTest, CancelStopsDeliveries) {
  testbed::World world{106};
  testbed::DeviceOptions opts;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);
  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT temperature DURATION 1 hour EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(20s);
  const auto before = client.items.size();
  EXPECT_GT(before, 0u);
  device.contory().CancelCxtQuery(*id);
  world.RunFor(1min);
  EXPECT_EQ(client.items.size(), before);
  EXPECT_EQ(device.contory().queries().active_count(), 0u);
}

TEST(FactoryTest, PublishRequiresRegistration) {
  testbed::World world{107};
  auto& device = world.AddDevice({});
  CxtItem item;
  item.id = "i-1";
  item.type = vocab::kTemperature;
  item.value = 14.0;
  item.timestamp = world.Now();
  EXPECT_EQ(device.contory().PublishCxtItem(item, true).code(),
            StatusCode::kPermissionDenied);

  CollectingClient server;
  ASSERT_TRUE(device.contory().RegisterCxtServer(server).ok());
  EXPECT_TRUE(device.contory().PublishCxtItem(item, true).ok());
  world.RunFor(1s);  // BT SDDB registration takes ~140 ms
  EXPECT_TRUE(device.contory().publisher().IsPublished(item.type));

  // Deregistration and duplicate registration behave sanely.
  EXPECT_EQ(device.contory().RegisterCxtServer(server).code(),
            StatusCode::kAlreadyExists);
  device.contory().DeregisterCxtServer(server);
  EXPECT_EQ(device.contory().PublishCxtItem(item, true).code(),
            StatusCode::kPermissionDenied);
}

TEST(FactoryTest, UnpublishWithdraws) {
  testbed::World world{108};
  auto& device = world.AddDevice({});
  CollectingClient server;
  ASSERT_TRUE(device.contory().RegisterCxtServer(server).ok());
  CxtItem item;
  item.id = "i-1";
  item.type = vocab::kWind;
  item.value = 6.0;
  item.timestamp = world.Now();
  ASSERT_TRUE(device.contory().PublishCxtItem(item, true).ok());
  world.RunFor(1s);
  ASSERT_TRUE(device.contory().PublishCxtItem(item, false).ok());
  EXPECT_FALSE(device.contory().publisher().IsPublished(item.type));
}

TEST(FactoryTest, StoreCxtItemReachesInfrastructure) {
  testbed::World world{109};
  testbed::DeviceOptions opts;
  opts.infra_address = "infra.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.fi");
  CxtItem item;
  item.id = "i-1";
  item.type = vocab::kTemperature;
  item.value = 14.0;
  item.timestamp = world.Now();
  device.contory().StoreCxtItem(item);
  world.RunFor(30s);
  EXPECT_EQ(server.stored_count(), 1u);
  // Local repository also keeps it.
  EXPECT_TRUE(device.contory().repository().Latest(item.type).ok());
}

TEST(FactoryTest, QueryMergingAcrossApplications) {
  // "One ContextFactory is instantiated on each device and made
  // accessible to multiple applications": two clients, same query type,
  // one provider underneath.
  testbed::World world{110};
  testbed::DeviceOptions opts;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);
  CollectingClient app1, app2;
  ASSERT_TRUE(device.contory()
                  .ProcessCxtQuery(Q(world.sim(),
                                     "SELECT temperature FROM intSensor "
                                     "DURATION 10 min EVERY 10 sec"),
                                   app1)
                  .ok());
  ASSERT_TRUE(device.contory()
                  .ProcessCxtQuery(Q(world.sim(),
                                     "SELECT temperature FROM intSensor "
                                     "DURATION 10 min EVERY 20 sec"),
                                   app2)
                  .ok());
  EXPECT_EQ(device.contory()
                .facade(query::SourceSel::kIntSensor)
                .active_provider_count(),
            1u);
  world.RunFor(1min);
  EXPECT_GT(app1.items.size(), 0u);
  EXPECT_GT(app2.items.size(), 0u);
  // The faster query sees at least as many items.
  EXPECT_GE(app1.items.size(), app2.items.size());
}

TEST(FactoryTest, ReducePowerPolicySuspendsInfraQueries) {
  testbed::World world{111};
  testbed::DeviceOptions opts;
  opts.infra_address = "infra.fi";
  auto& device = world.AddDevice(opts);
  world.AddContextServer("infra.fi");
  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM extInfra DURATION 1 hour EVERY 30 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(10s);
  ASSERT_EQ(device.contory()
                .facade(query::SourceSel::kExtInfra)
                .active_provider_count(),
            1u);

  // Drain the battery below 20% and add the paper's example rule.
  device.phone().energy().AddEnergyJoules(11'000.0);
  ContextRule rule;
  rule.name = "battery-low";
  rule.condition =
      RuleExpr::Leaf({"batteryLevel", RuleOp::kEqual, CxtValue{"low"}});
  rule.action = RuleAction::kReducePower;
  device.contory().AddControlPolicy(rule);
  world.RunFor(10s);
  EXPECT_TRUE(device.contory().active_actions().contains(
      RuleAction::kReducePower));
  EXPECT_EQ(device.contory()
                .facade(query::SourceSel::kExtInfra)
                .active_provider_count(),
            0u);
  EXPECT_FALSE(client.errors.empty());
}

TEST(FactoryTest, ReduceMemoryPolicyShrinksRepository) {
  testbed::World world{112};
  testbed::DeviceOptions opts;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);
  const std::size_t before =
      device.contory().repository().capacity_per_type();
  ContextRule rule;
  rule.condition =
      RuleExpr::Leaf({"batteryPercent", RuleOp::kLessThan, CxtValue{101.0}});
  rule.action = RuleAction::kReduceMemory;
  device.contory().AddControlPolicy(rule);
  world.RunFor(10s);
  EXPECT_EQ(device.contory().repository().capacity_per_type(), before / 2);
}

TEST(FactoryTest, ItemsLandInRepository) {
  testbed::World world{113};
  testbed::DeviceOptions opts;
  opts.internal_sensors = {vocab::kLight};
  auto& device = world.AddDevice(opts);
  CollectingClient client;
  ASSERT_TRUE(device.contory()
                  .ProcessCxtQuery(Q(world.sim(),
                                     "SELECT light DURATION 1 min "
                                     "EVERY 10 sec"),
                                   client)
                  .ok());
  world.RunFor(30s);
  EXPECT_TRUE(device.contory().repository().Latest(vocab::kLight).ok());
}

}  // namespace
}  // namespace contory::core
