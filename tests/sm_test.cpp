// Unit tests for the Smart Messages platform: tag space, message
// serialization, runtime (admission, code cache, scheduler), migration,
// and content-based routing over the participation overlay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "net/wifi.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"
#include "sm/sm_runtime.hpp"
#include "sm/smart_message.hpp"
#include "sm/tag_space.hpp"

namespace contory::sm {
namespace {

using namespace std::chrono_literals;

TEST(TagSpaceTest, UpsertAndRead) {
  sim::Simulation sim;
  TagSpace tags{sim};
  tags.Upsert("temperature", "14C,1C,trusted");
  const auto tag = tags.Read("temperature");
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag->value, "14C,1C,trusted");
  EXPECT_EQ(tag->created, sim.Now());
}

TEST(TagSpaceTest, UpsertReplaces) {
  sim::Simulation sim;
  TagSpace tags{sim};
  tags.Upsert("t", "old");
  tags.Upsert("t", "new");
  EXPECT_EQ(tags.Read("t")->value, "new");
  EXPECT_EQ(tags.size(), 1u);
}

TEST(TagSpaceTest, MissingTagIsNotFound) {
  sim::Simulation sim;
  TagSpace tags{sim};
  EXPECT_EQ(tags.Read("nope").status().code(), StatusCode::kNotFound);
}

TEST(TagSpaceTest, LifetimeExpires) {
  sim::Simulation sim;
  TagSpace tags{sim};
  tags.Upsert("t", "v", SimDuration{30s});
  sim.RunFor(29s);
  EXPECT_TRUE(tags.Has("t"));
  sim.RunFor(2s);
  EXPECT_FALSE(tags.Has("t"));
  EXPECT_FALSE(tags.Read("t").ok());
}

TEST(TagSpaceTest, PurgeRemovesExpired) {
  sim::Simulation sim;
  TagSpace tags{sim};
  tags.Upsert("a", "1", SimDuration{10s});
  tags.Upsert("b", "2");
  sim.RunFor(11s);
  EXPECT_EQ(tags.PurgeExpired(), 1u);
  EXPECT_EQ(tags.size(), 1u);
}

TEST(TagSpaceTest, AuthenticatedAccess) {
  // "authenticated access locks the item with a key that must be known by
  // the requester" (Sec. 4.3).
  sim::Simulation sim;
  TagSpace tags{sim};
  tags.Upsert("secret", "classified", std::nullopt, "key123");
  EXPECT_EQ(tags.Read("secret").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(tags.ReadWithKey("secret", "wrong").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(tags.ReadWithKey("secret", "key123")->value, "classified");
}

TEST(TagSpaceTest, MatchByPrefixHidesLockedValues) {
  sim::Simulation sim;
  TagSpace tags{sim};
  tags.Upsert("cxt.temperature", "14");
  tags.Upsert("cxt.location", "60.1,24.9", std::nullopt, "key");
  tags.Upsert("other", "x");
  const auto hits = tags.Match("cxt.");
  ASSERT_EQ(hits.size(), 2u);
  for (const auto& t : hits) {
    if (t.name == "cxt.location") EXPECT_TRUE(t.value.empty());
    if (t.name == "cxt.temperature") EXPECT_EQ(t.value, "14");
  }
}

TEST(TagSpaceTest, DeleteWorks) {
  sim::Simulation sim;
  TagSpace tags{sim};
  tags.Upsert("t", "v");
  EXPECT_TRUE(tags.Delete("t").ok());
  EXPECT_FALSE(tags.Delete("t").ok());
}

TEST(SmartMessageTest, SerializeRoundTrip) {
  SmartMessage sm;
  sm.id = "sm-42";
  sm.code_brick = "contory.finder";
  sm.data = {std::byte{1}, std::byte{2}, std::byte{3}};
  sm.origin = 7;
  sm.target_tag = "cxt.temperature";
  sm.hop_count = 2;
  sm.max_hops = 3;
  sm.visited = {7, 9};
  sm.breakup.transfer = 100ms;

  const auto wire = sm.Serialize(500, false);
  const auto back = SmartMessage::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, "sm-42");
  EXPECT_EQ(back->code_brick, "contory.finder");
  EXPECT_EQ(back->data.size(), 3u);
  EXPECT_EQ(back->origin, 7u);
  EXPECT_EQ(back->target_tag, "cxt.temperature");
  EXPECT_EQ(back->hop_count, 2);
  EXPECT_EQ(back->max_hops, 3);
  EXPECT_EQ(back->visited, (std::vector<net::NodeId>{7, 9}));
  EXPECT_EQ(back->breakup.transfer, 100ms);
}

TEST(SmartMessageTest, CodeCachingShrinksWire) {
  SmartMessage sm;
  sm.id = "sm-1";
  sm.code_brick = "b";
  const std::size_t with_code = sm.WireBytes(800, false);
  const std::size_t without_code = sm.WireBytes(800, true);
  EXPECT_EQ(with_code - without_code, 800u);
}

TEST(SmartMessageTest, DeserializeGarbageFails) {
  EXPECT_FALSE(
      SmartMessage::Deserialize(std::vector<std::byte>(3, std::byte{9})).ok());
}

TEST(HopBreakupTest, Accumulates) {
  HopBreakup a{10ms, 20ms, 30ms, 40ms};
  HopBreakup b{1ms, 2ms, 3ms, 4ms};
  a += b;
  EXPECT_EQ(a.connect, 11ms);
  EXPECT_EQ(a.Total(), 11ms + 22ms + 33ms + 44ms);
}

/// Fixture: a line of communicators A - B - C - D, 80 m apart (100 m WiFi
/// range), all participating in the Contory overlay.
class SmRuntimeTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 4;

  SmRuntimeTest() {
    for (int i = 0; i < kNodes; ++i) {
      phones_.push_back(std::make_unique<phone::SmartPhone>(
          sim_, phone::Nokia9500(), "comm-" + std::to_string(i)));
      nodes_.push_back(
          medium_.Register("comm-" + std::to_string(i), {i * 80.0, 0}));
      wifis_.push_back(std::make_unique<net::WifiController>(
          sim_, wifi_bus_, *phones_.back(), nodes_.back()));
      wifis_.back()->SetEnabled(true);
      runtimes_.push_back(
          std::make_unique<SmRuntime>(sim_, sm_bus_, *wifis_.back()));
      runtimes_.back()->SetParticipating(true);
    }
  }

  SmartMessage MakeSm(const std::string& brick) {
    SmartMessage sm;
    sm.id = sim_.ids().NextId("sm");
    sm.code_brick = brick;
    sm.origin = nodes_[0];
    return sm;
  }

  sim::Simulation sim_{21};
  net::Medium medium_;
  net::WifiBus wifi_bus_{medium_};
  SmBus sm_bus_;
  std::vector<std::unique_ptr<phone::SmartPhone>> phones_;
  std::vector<net::NodeId> nodes_;
  std::vector<std::unique_ptr<net::WifiController>> wifis_;
  std::vector<std::unique_ptr<SmRuntime>> runtimes_;
};

TEST_F(SmRuntimeTest, ParticipationExposesTag) {
  EXPECT_TRUE(runtimes_[0]->participating());
  EXPECT_TRUE(runtimes_[0]->tags().Has("contory"));
  runtimes_[0]->SetParticipating(false);
  EXPECT_FALSE(runtimes_[0]->participating());
}

TEST_F(SmRuntimeTest, InjectExecutesHandlerAfterThreadSwitch) {
  bool ran = false;
  runtimes_[0]->RegisterCodeBrick("t", 100, [&](SmContext& ctx, SmartMessage) {
    EXPECT_EQ(ctx.node, nodes_[0]);
    ran = true;
  });
  const SimTime start = sim_.Now();
  ASSERT_TRUE(runtimes_[0]->Inject(MakeSm("t")).ok());
  sim_.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim_.Now() - start,
            phones_[0]->profile().wifi_thread_switch);
}

TEST_F(SmRuntimeTest, MissingBrickKillsSmSilently) {
  ASSERT_TRUE(runtimes_[0]->Inject(MakeSm("unknown")).ok());
  sim_.Run();
  EXPECT_EQ(runtimes_[0]->executed(), 1u);
}

TEST_F(SmRuntimeTest, AdmissionManagerRejectsWhenFull) {
  SmRuntimeConfig cfg;
  cfg.max_resident = 2;
  auto node = medium_.Register("tiny", {0, 80});
  phone::SmartPhone ph{sim_, phone::Nokia9500(), "tiny"};
  net::WifiController wifi{sim_, wifi_bus_, ph, node};
  wifi.SetEnabled(true);
  SmRuntime rt{sim_, sm_bus_, wifi, cfg};
  rt.RegisterCodeBrick("t", 10, [](SmContext&, SmartMessage) {});
  EXPECT_TRUE(rt.Inject(MakeSm("t")).ok());
  EXPECT_TRUE(rt.Inject(MakeSm("t")).ok());
  EXPECT_EQ(rt.Inject(MakeSm("t")).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rt.rejected(), 1u);
  sim_.Run();
  // After execution, capacity frees up.
  EXPECT_TRUE(rt.Inject(MakeSm("t")).ok());
}

TEST_F(SmRuntimeTest, MigrationDeliversToNeighbor) {
  int executed_at = -1;
  for (int i = 0; i < kNodes; ++i) {
    runtimes_[i]->RegisterCodeBrick(
        "probe", 400, [&, i](SmContext&, SmartMessage) { executed_at = i; });
  }
  SmartMessage sm = MakeSm("probe");
  runtimes_[0]->Migrate(std::move(sm), nodes_[1]);
  sim_.Run();
  EXPECT_EQ(executed_at, 1);
}

TEST_F(SmRuntimeTest, MigrationIncrementsHopCountAndVisited) {
  SmartMessage seen;
  for (int i = 0; i < kNodes; ++i) {
    runtimes_[i]->RegisterCodeBrick(
        "probe", 400, [&](SmContext&, SmartMessage sm) { seen = sm; });
  }
  runtimes_[0]->Migrate(MakeSm("probe"), nodes_[1]);
  sim_.Run();
  EXPECT_EQ(seen.hop_count, 1);
  ASSERT_EQ(seen.visited.size(), 1u);
  EXPECT_EQ(seen.visited[0], nodes_[1]);
}

TEST_F(SmRuntimeTest, MigrationToNonNeighborDies) {
  for (int i = 0; i < kNodes; ++i) {
    runtimes_[i]->RegisterCodeBrick("probe", 400,
                                    [](SmContext&, SmartMessage) {});
  }
  runtimes_[0]->Migrate(MakeSm("probe"), nodes_[2]);  // 160 m away
  sim_.Run();
  EXPECT_EQ(runtimes_[2]->executed(), 0u);
}

TEST_F(SmRuntimeTest, BreakupAccountsAllFourComponents) {
  SmartMessage seen;
  for (int i = 0; i < kNodes; ++i) {
    runtimes_[i]->RegisterCodeBrick(
        "probe", 600, [&](SmContext&, SmartMessage sm) { seen = sm; });
  }
  runtimes_[0]->Migrate(MakeSm("probe"), nodes_[1]);
  sim_.Run();
  EXPECT_GT(seen.breakup.connect, SimDuration::zero());
  EXPECT_GT(seen.breakup.serialize, SimDuration::zero());
  EXPECT_GT(seen.breakup.thread_switch, SimDuration::zero());
  EXPECT_GT(seen.breakup.transfer, SimDuration::zero());
  // Transfer dominates (51-54% in the paper) and connect is smallest.
  EXPECT_GT(seen.breakup.transfer, seen.breakup.serialize);
  EXPECT_LT(seen.breakup.connect, seen.breakup.thread_switch);
}

TEST_F(SmRuntimeTest, CodeCacheSkipsCodeBytesOnSecondMigration) {
  int count = 0;
  for (int i = 0; i < kNodes; ++i) {
    runtimes_[i]->RegisterCodeBrick("probe", 5000,
                                    [&](SmContext&, SmartMessage) { ++count; });
  }
  EXPECT_FALSE(runtimes_[1]->CodeCached("probe"));
  runtimes_[0]->Migrate(MakeSm("probe"), nodes_[1]);
  sim_.Run();
  EXPECT_TRUE(runtimes_[1]->CodeCached("probe"));

  // Second migration of the same brick is faster: code stays home.
  const SimTime start = sim_.Now();
  runtimes_[0]->Migrate(MakeSm("probe"), nodes_[1]);
  sim_.Run();
  const SimDuration second = sim_.Now() - start;
  // 5000 code bytes at ~147 us/byte serialization + ~0.93 s air time
  // would add ~1.6 s; the cached run must be well under that.
  EXPECT_LT(ToSeconds(second), 1.0);
  EXPECT_EQ(count, 2);
}

TEST_F(SmRuntimeTest, CodeCacheEvictsLru) {
  SmRuntimeConfig cfg;
  cfg.code_cache_capacity = 2;
  auto node = medium_.Register("cachey", {0, 80});
  phone::SmartPhone ph{sim_, phone::Nokia9500(), "cachey"};
  net::WifiController wifi{sim_, wifi_bus_, ph, node};
  wifi.SetEnabled(true);
  SmRuntime rt{sim_, sm_bus_, wifi, cfg};
  for (const char* b : {"a", "b", "c"}) {
    rt.RegisterCodeBrick(b, 10, [](SmContext&, SmartMessage) {});
  }
  SmartMessage sm = MakeSm("a");
  (void)rt.Inject(sm);
  sm.code_brick = "b";
  (void)rt.Inject(sm);
  sm.code_brick = "c";
  (void)rt.Inject(sm);
  EXPECT_FALSE(rt.CodeCached("a"));  // evicted
  EXPECT_TRUE(rt.CodeCached("b"));
  EXPECT_TRUE(rt.CodeCached("c"));
  sim_.Run();
}

TEST_F(SmRuntimeTest, NextHopTowardTagFollowsShortestPath) {
  runtimes_[3]->tags().Upsert("cxt.temperature", "14");
  const auto hop = runtimes_[0]->NextHopTowardTag("cxt.temperature");
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(*hop, nodes_[1]);
}

TEST_F(SmRuntimeTest, NextHopHonorsExclusion) {
  runtimes_[3]->tags().Upsert("cxt.t", "x");
  std::unordered_set<net::NodeId> exclude{nodes_[1]};
  // With B excluded the line topology has no path.
  EXPECT_FALSE(runtimes_[0]->NextHopTowardTag("cxt.t", exclude).ok());
}

TEST_F(SmRuntimeTest, NonParticipatingNodesDoNotRoute) {
  runtimes_[3]->tags().Upsert("cxt.t", "x");
  runtimes_[1]->SetParticipating(false);
  EXPECT_FALSE(runtimes_[0]->NextHopTowardTag("cxt.t").ok());
}

TEST_F(SmRuntimeTest, HopDistanceToTag) {
  runtimes_[2]->tags().Upsert("cxt.t", "x");
  EXPECT_EQ(runtimes_[0]->HopDistanceToTag("cxt.t").value(), 2);
  EXPECT_EQ(runtimes_[2]->HopDistanceToTag("cxt.t").value(), 0);
  EXPECT_FALSE(runtimes_[0]->HopDistanceToTag("absent").ok());
}

TEST_F(SmRuntimeTest, NodesWithTagRespectsMaxHops) {
  runtimes_[1]->tags().Upsert("cxt.t", "x");
  runtimes_[3]->tags().Upsert("cxt.t", "y");
  const auto all = runtimes_[0]->NodesWithTag("cxt.t");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, nodes_[1]);
  EXPECT_EQ(all[0].second, 1);
  EXPECT_EQ(all[1].second, 3);
  const auto near = runtimes_[0]->NodesWithTag("cxt.t", 2);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].first, nodes_[1]);
}

TEST_F(SmRuntimeTest, ReplyHandlerDeliversOnce) {
  int replies = 0;
  runtimes_[0]->RegisterReplyHandler("sm-7", [&](SmartMessage) { ++replies; });
  SmartMessage sm;
  sm.id = "sm-7";
  EXPECT_TRUE(runtimes_[0]->DeliverReply(sm));
  EXPECT_FALSE(runtimes_[0]->DeliverReply(sm));  // one-shot
  EXPECT_EQ(replies, 1);
}

TEST_F(SmRuntimeTest, UnregisterReplyHandler) {
  runtimes_[0]->RegisterReplyHandler("sm-8", [](SmartMessage) { FAIL(); });
  runtimes_[0]->UnregisterReplyHandler("sm-8");
  SmartMessage sm;
  sm.id = "sm-8";
  EXPECT_FALSE(runtimes_[0]->DeliverReply(sm));
}

TEST_F(SmRuntimeTest, EndToEndFinderStyleRoundTrip) {
  // A miniature SM-FINDER: migrate toward the data tag at node 2, read it,
  // then route home toward a per-query "home" tag exposed at the origin —
  // the same pattern the Contory AdHocCxtProvider uses.
  runtimes_[2]->tags().Upsert("cxt.temperature", "14C");
  SmartMessage sm = MakeSm("finder");
  const std::string home_tag = "home." + sm.id;
  runtimes_[0]->tags().Upsert(home_tag, "1");
  for (int i = 0; i < kNodes; ++i) {
    runtimes_[i]->RegisterCodeBrick(
        "finder", 800, [home_tag](SmContext& ctx, SmartMessage m) {
          if (!m.data.empty()) {
            // Homeward leg.
            if (ctx.node == m.origin) {
              ctx.runtime.DeliverReply(std::move(m));
              return;
            }
            const auto next = ctx.runtime.NextHopTowardTag(home_tag);
            if (next.ok()) ctx.runtime.Migrate(std::move(m), *next);
            return;
          }
          const auto tag = ctx.runtime.tags().Read("cxt.temperature");
          if (tag.ok()) {
            for (const char c : tag->value) {
              m.data.push_back(static_cast<std::byte>(c));
            }
            if (ctx.node == m.origin) {
              ctx.runtime.DeliverReply(std::move(m));
              return;
            }
            const auto next = ctx.runtime.NextHopTowardTag(home_tag);
            if (next.ok()) ctx.runtime.Migrate(std::move(m), *next);
            return;
          }
          const auto next = ctx.runtime.NextHopTowardTag("cxt.temperature");
          if (next.ok()) ctx.runtime.Migrate(std::move(m), *next);
        });
  }
  std::string result;
  SmartMessage reply_probe;
  runtimes_[0]->RegisterReplyHandler(sm.id, [&](SmartMessage reply) {
    reply_probe = reply;
    for (const auto b : reply.data) result.push_back(static_cast<char>(b));
  });
  const SimTime start = sim_.Now();
  ASSERT_TRUE(runtimes_[0]->Inject(std::move(sm)).ok());
  sim_.Run();
  EXPECT_EQ(result, "14C");
  // 0->1->2 out, 2->1->0 home: 4 migrations.
  EXPECT_EQ(reply_probe.hop_count, 4);
  // Two-hop round trip took on the order of the paper's 1.4 s.
  const double secs = ToSeconds(sim_.Now() - start);
  EXPECT_GT(secs, 0.7);
  EXPECT_LT(secs, 3.0);
}

}  // namespace
}  // namespace contory::sm
