// Unit tests for the infrastructure: event envelope/broker, context
// server (repository + long-running queries), regatta service.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/model/vocabulary.hpp"
#include "core/query/parser.hpp"
#include "infra/context_server.hpp"
#include "infra/event_broker.hpp"
#include "infra/regatta_service.hpp"
#include "net/cellular.hpp"
#include "net/medium.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::infra {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(EventEnvelopeTest, PadsTo1696Bytes) {
  // "event notifications whose size is 1696 bytes".
  const auto frame = WrapEvent("topic", Bytes("hello"));
  EXPECT_EQ(frame.size(), kEventNotificationBytes);
}

TEST(EventEnvelopeTest, LargePayloadGrowsEnvelope) {
  const auto frame = WrapEvent("t", std::vector<std::byte>(4000));
  EXPECT_GT(frame.size(), kEventNotificationBytes);
}

TEST(EventEnvelopeTest, RoundTrip) {
  const auto frame = WrapEvent("weather.region-5", Bytes("payload"));
  const auto event = UnwrapEvent(frame);
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->topic, "weather.region-5");
  EXPECT_EQ(event->payload, Bytes("payload"));
}

TEST(EventEnvelopeTest, GarbageRejected) {
  EXPECT_FALSE(UnwrapEvent(std::vector<std::byte>(3)).ok());
}

class InfraFixture : public ::testing::Test {
 protected:
  InfraFixture() {
    node_a_ = medium_.Register("phone-a", {0, 0});
    node_b_ = medium_.Register("phone-b", {100, 0});
    modem_a_ = std::make_unique<net::CellularModem>(sim_, phone_a_, network_,
                                                    node_a_);
    modem_b_ = std::make_unique<net::CellularModem>(sim_, phone_b_, network_,
                                                    node_b_);
    modem_a_->SetRadioOn(true);
    modem_b_->SetRadioOn(true);
  }

  sim::Simulation sim_{41};
  net::Medium medium_;
  net::CellularNetwork network_{sim_};
  phone::SmartPhone phone_a_{sim_, phone::Nokia6630(), "phone-a"};
  phone::SmartPhone phone_b_{sim_, phone::Nokia6630(), "phone-b"};
  net::NodeId node_a_{}, node_b_{};
  std::unique_ptr<net::CellularModem> modem_a_, modem_b_;
};

class EventBrokerTest : public InfraFixture {
 protected:
  EventBrokerTest() : broker_(sim_, network_, "fuego.hiit.fi") {}
  EventBroker broker_;
};

TEST_F(EventBrokerTest, PublishReachesSubscriber) {
  EventClient client_a{*modem_a_, "fuego.hiit.fi"};
  EventClient client_b{*modem_b_, "fuego.hiit.fi"};
  std::string received;
  client_b.Subscribe("weather", [&](const Event& e) {
    received.assign(reinterpret_cast<const char*>(e.payload.data()),
                    e.payload.size());
  });
  sim_.RunFor(30s);
  EXPECT_EQ(broker_.SubscriberCount("weather"), 1u);
  client_a.Publish("weather", Bytes("wind 6kt"));
  sim_.RunFor(30s);
  EXPECT_EQ(received, "wind 6kt");
  EXPECT_EQ(broker_.events_published(), 1u);
}

TEST_F(EventBrokerTest, NoEchoToPublisher) {
  EventClient client_a{*modem_a_, "fuego.hiit.fi"};
  int self_events = 0;
  client_a.Subscribe("t", [&](const Event&) { ++self_events; });
  sim_.RunFor(30s);
  client_a.Publish("t", Bytes("x"));
  sim_.RunFor(30s);
  EXPECT_EQ(self_events, 0);
}

TEST_F(EventBrokerTest, UnsubscribeStopsDelivery) {
  EventClient client_a{*modem_a_, "fuego.hiit.fi"};
  EventClient client_b{*modem_b_, "fuego.hiit.fi"};
  int events = 0;
  client_b.Subscribe("t", [&](const Event&) { ++events; });
  sim_.RunFor(30s);
  client_b.Unsubscribe("t");
  sim_.RunFor(30s);
  client_a.Publish("t", Bytes("x"));
  sim_.RunFor(30s);
  EXPECT_EQ(events, 0);
  EXPECT_EQ(broker_.SubscriberCount("t"), 0u);
}

TEST_F(EventBrokerTest, PublishAcksFailureWhenRadioOff) {
  EventClient client_a{*modem_a_, "fuego.hiit.fi"};
  modem_a_->SetRadioOn(false);
  Status status;
  client_a.Publish("t", Bytes("x"), [&](Status s) { status = s; });
  sim_.RunFor(5s);
  EXPECT_FALSE(status.ok());
}

CxtItem MakeItem(const std::string& type, double value, SimTime now,
                 const std::string& id) {
  CxtItem item;
  item.id = id;
  item.type = type;
  item.value = value;
  item.timestamp = now;
  item.metadata.accuracy = 0.2;
  return item;
}

class ContextServerTest : public InfraFixture {
 protected:
  ContextServerTest() : server_(sim_, network_, "infra.dynamos.fi") {}

  /// Sends a store request from modem A; runs until acked.
  void StoreViaModem(const std::string& entity, const CxtItem& item,
                     std::optional<GeoPoint> location = std::nullopt) {
    ByteWriter w;
    w.WriteU8(static_cast<std::uint8_t>(ServerOp::kStore));
    w.WriteString(entity);
    w.WriteBool(location.has_value());
    if (location.has_value()) {
      w.WriteF64(location->lat);
      w.WriteF64(location->lon);
    }
    item.Encode(w);
    if (w.size() < kEventNotificationBytes) {
      w.WritePadding(kEventNotificationBytes - w.size());
    }
    bool done = false;
    modem_a_->SendRequest("infra.dynamos.fi", std::move(w).Take(),
                          [&](Result<std::vector<std::byte>> r) {
                            ASSERT_TRUE(r.ok());
                            done = true;
                          });
    while (!done && sim_.Step()) {
    }
  }

  std::vector<CxtItem> QueryViaModem(const query::CxtQuery& q) {
    ByteWriter w;
    w.WriteU8(static_cast<std::uint8_t>(ServerOp::kQuery));
    const auto qbytes = q.Serialize();
    w.WriteU32(static_cast<std::uint32_t>(qbytes.size()));
    w.WriteRaw(qbytes);
    if (w.size() < kEventNotificationBytes) {
      w.WritePadding(kEventNotificationBytes - w.size());
    }
    std::vector<CxtItem> items;
    bool done = false;
    modem_b_->SendRequest(
        "infra.dynamos.fi", std::move(w).Take(),
        [&](Result<std::vector<std::byte>> r) {
          ASSERT_TRUE(r.ok());
          ByteReader reader{*r};
          ASSERT_EQ(reader.ReadU8().value(), 1);
          const auto count = reader.ReadU32().value();
          for (std::uint32_t i = 0; i < count; ++i) {
            auto item = CxtItem::Deserialize(reader);
            ASSERT_TRUE(item.ok());
            items.push_back(*std::move(item));
          }
          done = true;
        });
    while (!done && sim_.Step()) {
    }
    return items;
  }

  query::CxtQuery Q(const std::string& text) {
    auto q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    q->id = sim_.ids().NextId("q");
    return *std::move(q);
  }

  ContextServer server_;
};

TEST_F(ContextServerTest, StoreAndQueryRoundTrip) {
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 14.0, sim_.Now(), "i-1"));
  EXPECT_EQ(server_.stored_count(), 1u);
  const auto items = QueryViaModem(Q("SELECT temperature DURATION 1 min"));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, CxtValue{14.0});
  EXPECT_EQ(items[0].source.kind, SourceKind::kExtInfra);
  EXPECT_EQ(items[0].source.address, "infra.dynamos.fi");
}

TEST_F(ContextServerTest, NewestItemPerEntityWins) {
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 10.0, sim_.Now(), "i-1"));
  sim_.RunFor(5s);
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 12.0, sim_.Now(), "i-2"));
  const auto items = QueryViaModem(Q("SELECT temperature DURATION 1 min"));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, CxtValue{12.0});
}

TEST_F(ContextServerTest, MultipleEntitiesAllReport) {
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 10.0, sim_.Now(), "i-1"));
  StoreViaModem("boat-2",
                MakeItem(vocab::kTemperature, 12.0, sim_.Now(), "i-2"));
  const auto items = QueryViaModem(Q("SELECT temperature DURATION 1 min"));
  EXPECT_EQ(items.size(), 2u);
}

TEST_F(ContextServerTest, FreshnessFiltersStale) {
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 10.0, sim_.Now(), "i-1"));
  sim_.RunFor(2min);
  const auto items = QueryViaModem(
      Q("SELECT temperature FRESHNESS 30 sec DURATION 1 min"));
  EXPECT_TRUE(items.empty());
}

TEST_F(ContextServerTest, WhereFilters) {
  auto precise = MakeItem(vocab::kTemperature, 10.0, sim_.Now(), "i-1");
  precise.metadata.accuracy = 0.1;
  auto sloppy = MakeItem(vocab::kTemperature, 11.0, sim_.Now(), "i-2");
  sloppy.metadata.accuracy = 0.8;
  StoreViaModem("boat-1", precise);
  StoreViaModem("boat-2", sloppy);
  const auto items = QueryViaModem(
      Q("SELECT temperature WHERE accuracy<=0.2 DURATION 1 min"));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, CxtValue{10.0});
}

TEST_F(ContextServerTest, RegionDestinationMatchesProducerLocation) {
  // Two boats, one inside the queried region.
  StoreViaModem("boat-in",
                MakeItem(vocab::kWind, 6.0, sim_.Now(), "i-1"),
                GeoPoint{60.15, 24.90});
  StoreViaModem("boat-out",
                MakeItem(vocab::kWind, 9.0, sim_.Now(), "i-2"),
                GeoPoint{60.40, 25.40});
  const auto items = QueryViaModem(
      Q("SELECT wind FROM extInfra region(60.15, 24.90, 2000) "
        "DURATION 1 min"));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, CxtValue{6.0});
}

TEST_F(ContextServerTest, EntityDestinationMatchesEntity) {
  StoreViaModem("friend-7",
                MakeItem(vocab::kLocation, 1.0, sim_.Now(), "i-1"));
  StoreViaModem("stranger",
                MakeItem(vocab::kLocation, 2.0, sim_.Now(), "i-2"));
  const auto items = QueryViaModem(
      Q("SELECT location FROM extInfra entity(\"friend-7\") "
        "DURATION 1 min"));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, CxtValue{1.0});
}

TEST_F(ContextServerTest, RingBufferEvictsOldest) {
  ContextServerConfig cfg;
  cfg.max_items_per_key = 4;
  ContextServer small{sim_, network_, "small.fi", cfg};
  for (int i = 0; i < 10; ++i) {
    small.StoreDirect(
        {MakeItem(vocab::kWind, i, sim_.Now(), "i-" + std::to_string(i)),
         "boat", std::nullopt});
  }
  EXPECT_EQ(small.stored_count(), 4u);
}

TEST_F(ContextServerTest, RegisteredPeriodicQueryPushes) {
  // Modem B registers a periodic query; modem A stores; pushes arrive on B
  // each EVERY period.
  auto q = Q("SELECT temperature DURATION 10 min EVERY 30 sec");
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(ServerOp::kRegisterQuery));
  const auto qbytes = q.Serialize();
  w.WriteU32(static_cast<std::uint32_t>(qbytes.size()));
  w.WriteRaw(qbytes);
  bool registered = false;
  modem_b_->SendRequest("infra.dynamos.fi", std::move(w).Take(),
                        [&](Result<std::vector<std::byte>> r) {
                          ASSERT_TRUE(r.ok());
                          registered = true;
                        });
  while (!registered && sim_.Step()) {
  }
  EXPECT_EQ(server_.active_query_count(), 1u);

  int pushes = 0;
  modem_b_->SetPushHandler([&](const std::vector<std::byte>& frame) {
    const auto event = UnwrapEvent(frame);
    ASSERT_TRUE(event.ok());
    EXPECT_EQ(event->topic, "cxt." + q.id);
    ++pushes;
  });
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 14.0, sim_.Now(), "i-1"));
  sim_.RunFor(3min);
  EXPECT_GE(pushes, 4);  // ~6 periods, allowing connection latencies
}

TEST_F(ContextServerTest, RegisteredEventQueryFiresOnCondition) {
  auto q = Q("SELECT temperature DURATION 10 min EVENT AVG(temperature)>25");
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(ServerOp::kRegisterQuery));
  const auto qbytes = q.Serialize();
  w.WriteU32(static_cast<std::uint32_t>(qbytes.size()));
  w.WriteRaw(qbytes);
  bool registered = false;
  modem_b_->SendRequest("infra.dynamos.fi", std::move(w).Take(),
                        [&](Result<std::vector<std::byte>> r) {
                          ASSERT_TRUE(r.ok());
                          registered = true;
                        });
  while (!registered && sim_.Step()) {
  }
  int pushes = 0;
  modem_b_->SetPushHandler(
      [&](const std::vector<std::byte>&) { ++pushes; });
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 20.0, sim_.Now(), "i-1"));
  sim_.RunFor(30s);
  EXPECT_EQ(pushes, 0);  // avg 20: below threshold
  StoreViaModem("boat-2",
                MakeItem(vocab::kTemperature, 35.0, sim_.Now(), "i-2"));
  sim_.RunFor(30s);
  EXPECT_GE(pushes, 1);  // avg 27.5 > 25
}

TEST_F(ContextServerTest, CancelStopsRegistration) {
  auto q = Q("SELECT temperature DURATION 10 min EVERY 10 sec");
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(ServerOp::kRegisterQuery));
  const auto qbytes = q.Serialize();
  w.WriteU32(static_cast<std::uint32_t>(qbytes.size()));
  w.WriteRaw(qbytes);
  modem_b_->SendRequest("infra.dynamos.fi", std::move(w).Take(),
                        [](Result<std::vector<std::byte>>) {});
  sim_.RunFor(10s);
  ASSERT_EQ(server_.active_query_count(), 1u);

  ByteWriter c;
  c.WriteU8(static_cast<std::uint8_t>(ServerOp::kCancelQuery));
  c.WriteString(q.id);
  modem_b_->SendRequest("infra.dynamos.fi", std::move(c).Take(),
                        [](Result<std::vector<std::byte>>) {});
  sim_.RunFor(10s);
  EXPECT_EQ(server_.active_query_count(), 0u);
}

TEST_F(ContextServerTest, RegistrationExpiresWithDuration) {
  auto q = Q("SELECT temperature DURATION 1 min EVERY 10 sec");
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(ServerOp::kRegisterQuery));
  const auto qbytes = q.Serialize();
  w.WriteU32(static_cast<std::uint32_t>(qbytes.size()));
  w.WriteRaw(qbytes);
  modem_b_->SendRequest("infra.dynamos.fi", std::move(w).Take(),
                        [](Result<std::vector<std::byte>>) {});
  sim_.RunFor(10s);
  ASSERT_EQ(server_.active_query_count(), 1u);
  sim_.RunFor(2min);
  // Expiry is lazy (checked on push ticks), so poke it via a store.
  StoreViaModem("boat-1",
                MakeItem(vocab::kTemperature, 1.0, sim_.Now(), "i-x"));
  EXPECT_EQ(server_.active_query_count(), 0u);
}

class RegattaServiceTest : public InfraFixture {
 protected:
  RegattaServiceTest()
      : service_(sim_, network_, "regatta.dynamos.fi",
                 {GeoPoint{60.150, 24.900}, GeoPoint{60.160, 24.920},
                  GeoPoint{60.170, 24.940}}) {}
  RegattaService service_;
};

TEST_F(RegattaServiceTest, ChecksCheckpointPassage) {
  service_.Report("Aurora", {60.150, 24.900}, 6.0);  // at checkpoint 1
  service_.Report("Borea", {60.100, 24.800}, 7.0);   // nowhere
  const auto standings = service_.Standings();
  ASSERT_EQ(standings.size(), 2u);
  EXPECT_EQ(standings[0].boat, "Aurora");
  EXPECT_EQ(standings[0].checkpoints_passed, 1);
  EXPECT_EQ(standings[1].checkpoints_passed, 0);
}

TEST_F(RegattaServiceTest, EarlierPassageBreaksTies) {
  service_.Report("Slow", {60.150, 24.900}, 5.0);
  sim_.RunFor(1min);
  service_.Report("Fast", {60.150, 24.900}, 8.0);
  const auto standings = service_.Standings();
  EXPECT_EQ(standings[0].boat, "Slow");  // passed first
}

TEST_F(RegattaServiceTest, NearCheckpointWithinRadiusCounts) {
  // ~100 m north of checkpoint 1 (radius 150 m).
  service_.Report("Near", {60.1509, 24.900}, 6.0);
  EXPECT_EQ(service_.Standings()[0].checkpoints_passed, 1);
}

TEST_F(RegattaServiceTest, CheckpointsMustBePassedInOrder) {
  service_.Report("Skipper", {60.170, 24.940}, 6.0);  // checkpoint 3 first
  EXPECT_EQ(service_.Standings()[0].checkpoints_passed, 0);
  service_.Report("Skipper", {60.150, 24.900}, 6.0);  // checkpoint 1
  EXPECT_EQ(service_.Standings()[0].checkpoints_passed, 1);
}

TEST_F(RegattaServiceTest, AverageSpeedTracked) {
  service_.Report("Aurora", {60.0, 24.0}, 4.0);
  service_.Report("Aurora", {60.0, 24.0}, 8.0);
  EXPECT_DOUBLE_EQ(service_.Standings()[0].avg_speed_knots, 6.0);
}

TEST_F(RegattaServiceTest, StandingsEncodingRoundTrips) {
  service_.Report("Aurora", {60.150, 24.900}, 6.0);
  const auto standings = service_.Standings();
  const auto wire = EncodeStandings(standings);
  ByteReader r{wire};
  const auto back = DecodeStandings(r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].boat, "Aurora");
  EXPECT_EQ((*back)[0].checkpoints_passed, 1);
}

TEST_F(RegattaServiceTest, ReportOverModemAndSubscribePushes) {
  // Subscribe from modem B.
  ByteWriter sub;
  sub.WriteU8(static_cast<std::uint8_t>(RegattaOp::kSubscribe));
  bool subscribed = false;
  modem_b_->SendRequest("regatta.dynamos.fi", std::move(sub).Take(),
                        [&](Result<std::vector<std::byte>> r) {
                          ASSERT_TRUE(r.ok());
                          subscribed = true;
                        });
  while (!subscribed && sim_.Step()) {
  }
  int pushes = 0;
  std::vector<RegattaStanding> last;
  modem_b_->SetPushHandler([&](const std::vector<std::byte>& frame) {
    const auto event = UnwrapEvent(frame);
    ASSERT_TRUE(event.ok());
    ByteReader r{event->payload};
    const auto standings = DecodeStandings(r);
    ASSERT_TRUE(standings.ok());
    last = *standings;
    ++pushes;
  });

  // Report a passage from modem A.
  ByteWriter rep;
  rep.WriteU8(static_cast<std::uint8_t>(RegattaOp::kReport));
  rep.WriteString("Aurora");
  rep.WriteF64(60.150);
  rep.WriteF64(24.900);
  rep.WriteF64(6.5);
  if (rep.size() < kEventNotificationBytes) {
    rep.WritePadding(kEventNotificationBytes - rep.size());
  }
  modem_a_->SendRequest("regatta.dynamos.fi", std::move(rep).Take(),
                        [](Result<std::vector<std::byte>>) {});
  sim_.RunFor(1min);
  EXPECT_GE(pushes, 1);
  ASSERT_FALSE(last.empty());
  EXPECT_EQ(last[0].boat, "Aurora");
}

}  // namespace
}  // namespace contory::infra
