// "Field trial" stress test: a DYNAMOS-style fleet — a dozen WiFi-equipped
// boats sailing a regatta leg, each running Contory, publishing readings,
// querying neighbors, and reporting to the infrastructure — run long
// enough for mobility to reshape the MANET several times. Asserts
// sustained operation (no starvation, no runaway state) and bitwise
// determinism across identical runs.
#include <gtest/gtest.h>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

struct TrialOutcome {
  std::size_t total_items = 0;
  std::size_t total_errors = 0;
  std::size_t server_items = 0;
  double total_energy_j = 0.0;
  std::vector<std::size_t> per_boat_items;

  friend bool operator==(const TrialOutcome&, const TrialOutcome&) = default;
};

TrialOutcome RunTrial(std::uint64_t seed) {
  constexpr int kBoats = 12;
  testbed::World world{seed};
  world.AddContextServer("infra.dynamos.fi");

  struct Boat {
    testbed::Device* device = nullptr;
    std::unique_ptr<CollectingClient> app;
    net::Position pos;
    double speed_mps = 0.0;
    double heading = 0.0;
  };
  std::vector<Boat> boats(kBoats);
  Rng scenario_rng{seed};
  for (int i = 0; i < kBoats; ++i) {
    testbed::DeviceOptions opts;
    opts.name = "boat-" + std::to_string(i);
    opts.profile = phone::Nokia9500();
    // Start in a loose cluster so the MANET is connected but multi-hop.
    opts.position = {scenario_rng.Uniform(0, 400),
                     scenario_rng.Uniform(0, 400)};
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.infra_address = "infra.dynamos.fi";
    boats[static_cast<std::size_t>(i)].device = &world.AddDevice(opts);
    boats[static_cast<std::size_t>(i)].app =
        std::make_unique<CollectingClient>();
    boats[static_cast<std::size_t>(i)].pos = opts.position;
    boats[static_cast<std::size_t>(i)].speed_mps =
        scenario_rng.Uniform(2.0, 5.0);
    boats[static_cast<std::size_t>(i)].heading =
        scenario_rng.Uniform(-0.3, 0.3);
  }

  // Every boat: registers as publisher, publishes wind readings, reports
  // to the repository, and runs a periodic neighborhood query.
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks;
  for (auto& boat : boats) {
    EXPECT_TRUE(boat.device->contory().RegisterCxtServer(*boat.app).ok());
    testbed::Device* device = boat.device;
    tasks.push_back(std::make_unique<sim::PeriodicTask>(
        world.sim(), 20s, [&world, device] {
          const auto wind =
              world.environment().Sample(vocab::kWind, device->position());
          if (!wind.ok()) return;
          CxtItem item;
          item.id = world.sim().ids().NextId("w");
          item.type = vocab::kWind;
          item.value = *wind;
          item.timestamp = world.Now();
          item.metadata.accuracy = 0.5;
          (void)device->contory().PublishCxtItem(item, true);
          device->contory().StoreCxtItem(item);
        }));
    auto q = query::QueryBuilder(vocab::kWind)
                 .FromAdHoc(query::AdHocScope::kAllNodes, 3)
                 .Freshness(2min)
                 .For(30min)
                 .Every(45s)
                 .Build();
    q.id = world.sim().ids().NextId("q");
    EXPECT_TRUE(
        boat.device->contory().ProcessCxtQuery(q, *boat.app).ok());
  }

  // Mobility: each boat sails east with its own heading; the cluster
  // stretches into a line over the run, repeatedly changing the topology.
  tasks.push_back(std::make_unique<sim::PeriodicTask>(
      world.sim(), 10s, [&boats] {
        for (auto& boat : boats) {
          boat.pos.x += boat.speed_mps * 10.0 * 0.9;
          boat.pos.y += boat.speed_mps * 10.0 * boat.heading;
          boat.device->MoveTo(boat.pos);
        }
      }));

  world.RunFor(30min);

  TrialOutcome outcome;
  for (auto& boat : boats) {
    outcome.total_items += boat.app->items.size();
    outcome.total_errors += boat.app->errors.size();
    outcome.per_boat_items.push_back(boat.app->items.size());
    outcome.total_energy_j +=
        boat.device->phone().energy().TotalEnergyJoules();
  }
  return outcome;
}

TEST(FieldTrialTest, FleetSustainsContextSharing) {
  const TrialOutcome outcome = RunTrial(4242);
  // Every boat received context from its neighborhood.
  std::size_t starved = 0;
  for (const auto items : outcome.per_boat_items) {
    if (items == 0) ++starved;
  }
  EXPECT_LE(starved, 2u);  // stragglers may sail out of everyone's range
  EXPECT_GT(outcome.total_items, 100u);
  // Errors are allowed (topology churn) but must not dominate.
  EXPECT_LT(outcome.total_errors, outcome.total_items);
}

TEST(FieldTrialTest, EnergyStaysWithinWifiBudget) {
  const TrialOutcome outcome = RunTrial(4242);
  // 12 WiFi phones for 30 min: the ~1.1 W connected drain gives a
  // 12 x 1.12 W x 1800 s ~ 24.2 kJ floor; periodic UMTS reporting keeps
  // the cellular radios in FACH/DCH part-time on top of that. Contory's
  // own traffic must stay a bounded overhead, not a multiplier.
  EXPECT_GT(outcome.total_energy_j, 24'000.0);
  EXPECT_LT(outcome.total_energy_j, 45'000.0);
}

TEST(FieldTrialTest, IdenticalSeedsAreBitwiseIdentical) {
  EXPECT_EQ(RunTrial(777), RunTrial(777));
}

TEST(FieldTrialTest, DifferentSeedsDiffer) {
  EXPECT_NE(RunTrial(777), RunTrial(778));
}

}  // namespace
}  // namespace contory::core
