// Unit tests for the smart-phone model, including the paper's idle power
// ladder (Section 6.1) which the profiles must reproduce exactly.
#include <gtest/gtest.h>

#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::phone {
namespace {

using namespace std::chrono_literals;

class PhoneTest : public ::testing::Test {
 protected:
  sim::Simulation sim_{1};
  SmartPhone phone_{sim_, Nokia6630(), "phone-A"};
};

TEST_F(PhoneTest, BasePowerMatchesPaper) {
  // "A consumption of 5.75 mW is achieved if also the display is off."
  EXPECT_NEAR(phone_.energy().CurrentPowerMilliwatts(), 5.75, 1e-9);
}

TEST_F(PhoneTest, DisplayOnBacklightOffMatchesPaper) {
  phone_.SetDisplayOn(true);
  // "If the back-light is turned off, the consumption decreases to 14.35."
  EXPECT_NEAR(phone_.energy().CurrentPowerMilliwatts(), 14.35, 1e-9);
}

TEST_F(PhoneTest, BacklightOnMatchesPaper) {
  phone_.SetBacklightOn(true);
  // "back-light switched on, display on ... about 76.20 mW."
  EXPECT_NEAR(phone_.energy().CurrentPowerMilliwatts(), 76.20, 1e-9);
}

TEST_F(PhoneTest, BacklightImpliesDisplay) {
  phone_.SetBacklightOn(true);
  EXPECT_TRUE(phone_.display_on());
  phone_.SetDisplayOn(false);
  EXPECT_FALSE(phone_.backlight_on());
  EXPECT_NEAR(phone_.energy().CurrentPowerMilliwatts(), 5.75, 1e-9);
}

TEST_F(PhoneTest, ContoryRuntimeAddsPaperDelta) {
  // BT scan (8.47) + Contory = 10.11 mW; Contory alone adds 1.64 mW.
  phone_.SetContoryRunning(true);
  EXPECT_NEAR(phone_.energy().CurrentPowerMilliwatts(), 5.75 + 1.64, 1e-9);
  phone_.SetContoryRunning(false);
  EXPECT_NEAR(phone_.energy().CurrentPowerMilliwatts(), 5.75, 1e-9);
}

TEST_F(PhoneTest, GsmPagingProducesPeaks) {
  phone_.SetGsmRadioOn(true);
  double max_power = 0.0;
  phone_.energy().SetPowerListener([&](SimTime, double mw) {
    max_power = std::max(max_power, mw);
  });
  sim_.RunFor(5min);
  // "peaks of 450-481 mW" on top of base power.
  EXPECT_GE(max_power, 450.0);
  EXPECT_LE(max_power, 481.0 + 5.75 + 1.0);
}

TEST_F(PhoneTest, GsmPagingPeriodIs50To60s) {
  phone_.SetGsmRadioOn(true);
  std::vector<SimTime> peak_times;
  phone_.energy().SetPowerListener([&](SimTime t, double mw) {
    if (mw > 400.0) peak_times.push_back(t);
  });
  sim_.RunFor(10min);
  ASSERT_GE(peak_times.size(), 8u);
  for (std::size_t i = 1; i < peak_times.size(); ++i) {
    const double gap = ToSeconds(peak_times[i] - peak_times[i - 1]);
    EXPECT_GE(gap, 49.0);
    EXPECT_LE(gap, 62.0);
  }
}

TEST_F(PhoneTest, GsmOffStopsPaging) {
  phone_.SetGsmRadioOn(true);
  sim_.RunFor(2min);
  phone_.SetGsmRadioOn(false);
  const auto mark = phone_.energy().Mark();
  sim_.RunFor(5min);
  // Only base power accrues: 5.75 mW * 300 s = 1.725 J.
  EXPECT_NEAR(phone_.energy().JoulesSince(mark), 1.725, 0.01);
}

TEST_F(PhoneTest, ChargeCpuAddsEnergy) {
  const auto mark = phone_.energy().Mark();
  phone_.ChargeCpu(1s);
  EXPECT_NEAR(phone_.energy().JoulesSince(mark),
              phone_.profile().cpu_active_power_mw / 1e3, 1e-9);
}

TEST_F(PhoneTest, ChargeCpuIgnoresNonPositive) {
  const auto mark = phone_.energy().Mark();
  phone_.ChargeCpu(SimDuration::zero());
  phone_.ChargeCpu(-1s);
  EXPECT_DOUBLE_EQ(phone_.energy().JoulesSince(mark), 0.0);
}

TEST_F(PhoneTest, SerializationTimeGrowsWithSize) {
  const auto small = phone_.SerializationTime(136);
  const auto large = phone_.SerializationTime(1696);
  EXPECT_GT(large, small);
  // ~100 us/byte on the 6630 per the SM break-up calibration.
  EXPECT_NEAR(ToMillis(large - small), (1696 - 136) * 0.1, 1.0);
}

TEST(PhoneProfilesTest, ModelsMatchTestbed) {
  EXPECT_EQ(Nokia6630().model, "Nokia 6630");
  EXPECT_EQ(Nokia6630().cpu_mhz, 220);
  EXPECT_TRUE(Nokia6630().has_cellular_3g);
  EXPECT_FALSE(Nokia6630().has_wifi);

  EXPECT_EQ(Nokia7610().cpu_mhz, 123);
  EXPECT_FALSE(Nokia7610().has_cellular_3g);

  EXPECT_EQ(Nokia9500().ram_mb, 64);
  EXPECT_TRUE(Nokia9500().has_wifi);
}

TEST(PhoneProfilesTest, SlowerCpuSerializesSlower) {
  sim::Simulation sim;
  SmartPhone fast{sim, Nokia6630(), "fast"};
  SmartPhone slow{sim, Nokia7610(), "slow"};
  EXPECT_GT(slow.SerializationTime(1000), fast.SerializationTime(1000));
}

TEST(PhoneProfilesTest, WifiDrainDominatesEverything) {
  // "having WiFi connected is more than 100 times more energy-consuming
  // than having BT in inquiry [scan] mode".
  const PhoneProfile p = Nokia9500();
  EXPECT_GT(p.wifi_connected_power_mw, 100.0 * p.bt_scan_power_mw);
}

TEST(SmartPhoneTest, TwoPhonesHaveIndependentLedgers) {
  sim::Simulation sim;
  SmartPhone a{sim, Nokia6630(), "a"};
  SmartPhone b{sim, Nokia6630(), "b"};
  a.SetBacklightOn(true);
  EXPECT_NEAR(a.energy().CurrentPowerMilliwatts(), 76.20, 1e-9);
  EXPECT_NEAR(b.energy().CurrentPowerMilliwatts(), 5.75, 1e-9);
}

}  // namespace
}  // namespace contory::phone
