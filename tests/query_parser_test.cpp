// Unit tests for the context query language: lexer, parser, builder,
// query object serialization.
#include <gtest/gtest.h>

#include "core/model/vocabulary.hpp"
#include "core/query/lexer.hpp"
#include "core/query/parser.hpp"
#include "core/query/query.hpp"

namespace contory::query {
namespace {

using namespace std::chrono_literals;

TEST(LexerTest, TokenizesKeywordsCaseInsensitively) {
  const auto tokens = Tokenize("select Temperature FROM adHocNetwork");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // + kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "Temperature");
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
  EXPECT_EQ((*tokens)[3].text, "adHocNetwork");
}

TEST(LexerTest, NumbersAndOperators) {
  const auto tokens = Tokenize("accuracy<=0.2 value!=25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<=");
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.2);
  EXPECT_EQ((*tokens)[4].text, "!=");
  EXPECT_DOUBLE_EQ((*tokens)[5].number, 25.0);
}

TEST(LexerTest, StringsAndErrors) {
  const auto ok = Tokenize("entity(\"friend-7\")");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[2].kind, TokenKind::kString);
  EXPECT_EQ((*ok)[2].text, "friend-7");

  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(ParserTest, PaperExampleQuery) {
  // The exact example from Sec. 4.2.
  const auto q = ParseQuery(
      "SELECT temperature "
      "FROM adHocNetwork(10,3) "
      "WHERE accuracy=0.2 "
      "FRESHNESS 30 sec "
      "DURATION 1 hour "
      "EVENT AVG(temperature)>25");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_type, "temperature");
  ASSERT_EQ(q->from.sources.size(), 1u);
  EXPECT_EQ(q->from.sources[0].kind, SourceSel::kAdHocNetwork);
  ASSERT_TRUE(q->from.sources[0].scope.has_value());
  EXPECT_EQ(q->from.sources[0].scope->num_nodes, 10);
  EXPECT_EQ(q->from.sources[0].scope->num_hops, 3);
  ASSERT_TRUE(q->where.has_value());
  EXPECT_EQ(q->where->comparison.field, "accuracy");
  EXPECT_EQ(q->freshness, SimDuration{30s});
  EXPECT_EQ(q->duration.time, SimDuration{1h});
  ASSERT_TRUE(q->event.has_value());
  EXPECT_EQ(q->event->comparison.aggregate, AggregateFn::kAvg);
  EXPECT_EQ(q->event->comparison.field, "temperature");
  EXPECT_EQ(q->mode(), InteractionMode::kEventBased);
}

TEST(ParserTest, MinimalQuery) {
  const auto q = ParseQuery("SELECT location DURATION 10 sec");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->from.IsAuto());
  EXPECT_EQ(q->mode(), InteractionMode::kOnDemand);
}

TEST(ParserTest, PeriodicQueryWithEvery) {
  const auto q = ParseQuery(
      "SELECT location FROM intSensor DURATION 2 hour EVERY 15sec");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->mode(), InteractionMode::kPeriodic);
  EXPECT_EQ(q->every, SimDuration{15s});
  EXPECT_EQ(q->from.sources[0].kind, SourceSel::kIntSensor);
}

TEST(ParserTest, AdHocAllNodes) {
  const auto q = ParseQuery(
      "SELECT temperature FROM adHocNetwork(all,3) DURATION 1 hour");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->from.sources[0].scope->all_nodes());
  EXPECT_EQ(q->from.sources[0].scope->num_hops, 3);
}

TEST(ParserTest, AdHocDefaultScope) {
  const auto q =
      ParseQuery("SELECT temperature FROM adHocNetwork DURATION 1 min");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->from.sources[0].scope.has_value());
  EXPECT_TRUE(q->from.sources[0].scope->all_nodes());
  EXPECT_EQ(q->from.sources[0].scope->num_hops, 1);
}

TEST(ParserTest, SamplesDuration) {
  const auto q = ParseQuery("SELECT speed DURATION 50 samples");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->duration.samples, 50);
  EXPECT_FALSE(q->duration.time.has_value());
}

TEST(ParserTest, MultipleSources) {
  const auto q = ParseQuery(
      "SELECT wind FROM adHocNetwork(all,2), extInfra(\"infra.dynamos.fi\") "
      "DURATION 1 hour EVERY 1 min");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->from.sources.size(), 2u);
  EXPECT_EQ(q->from.sources[1].kind, SourceSel::kExtInfra);
  EXPECT_EQ(q->from.sources[1].address, "infra.dynamos.fi");
}

TEST(ParserTest, RegionAndEntityDestinations) {
  const auto q = ParseQuery(
      "SELECT wind FROM extInfra region(60.1, 24.9, 5000) DURATION 10 min");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->from.sources[0].region.has_value());
  EXPECT_DOUBLE_EQ(q->from.sources[0].region->center.lat, 60.1);
  EXPECT_DOUBLE_EQ(q->from.sources[0].region->radius_m, 5000);

  const auto q2 = ParseQuery(
      "SELECT location FROM extInfra entity(\"friend-7\") DURATION 10 min");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->from.sources[0].entity->entity_id, "friend-7");
}

TEST(ParserTest, BooleanPredicates) {
  const auto q = ParseQuery(
      "SELECT temperature "
      "WHERE accuracy<=0.5 AND (trust=trusted OR correctness>=0.9) "
      "DURATION 1 hour");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->where.has_value());
  EXPECT_EQ(q->where->kind, Predicate::Kind::kAnd);
  ASSERT_EQ(q->where->children.size(), 2u);
  EXPECT_EQ(q->where->children[1].kind, Predicate::Kind::kOr);
}

TEST(ParserTest, NotPredicate) {
  const auto p = ParsePredicate("NOT activity=\"sleeping\"");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->kind, Predicate::Kind::kNot);
}

TEST(ParserTest, TimeUnits) {
  for (const auto& [text, expected] :
       std::vector<std::pair<std::string, SimDuration>>{
           {"500 ms", 500ms},
           {"30 sec", 30s},
           {"30sec", 30s},
           {"2 min", 2min},
           {"1 hour", 1h},
           {"90", 90s},  // default unit: seconds
       }) {
    const auto q =
        ParseQuery("SELECT light DURATION 1 hour FRESHNESS " + text);
    // FRESHNESS comes before DURATION in the grammar; rebuild properly:
    const auto q2 = ParseQuery("SELECT light FRESHNESS " + text +
                               " DURATION 1 hour");
    ASSERT_TRUE(q2.ok()) << text;
    EXPECT_EQ(q2->freshness, expected) << text;
    (void)q;
  }
}

TEST(ParserTest, ErrorsAreDescriptive) {
  const auto missing_select = ParseQuery("DURATION 1 hour");
  EXPECT_FALSE(missing_select.ok());
  EXPECT_NE(missing_select.status().message().find("SELECT"),
            std::string::npos);

  const auto missing_duration = ParseQuery("SELECT temperature");
  EXPECT_FALSE(missing_duration.ok());

  const auto bad_source =
      ParseQuery("SELECT t FROM teleport DURATION 1 hour");
  EXPECT_FALSE(bad_source.ok());
  EXPECT_NE(bad_source.status().message().find("teleport"),
            std::string::npos);

  const auto trailing = ParseQuery("SELECT t DURATION 1 hour banana");
  EXPECT_FALSE(trailing.ok());
}

TEST(ParserTest, EveryAndEventCannotCombine) {
  // Grammar only accepts one of EVERY/EVENT; the second becomes trailing
  // input.
  const auto q = ParseQuery(
      "SELECT t DURATION 1 hour EVERY 10 sec EVENT AVG(t)>5");
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, AggregateInWhereRejected) {
  const auto q =
      ParseQuery("SELECT t WHERE AVG(t)>5 DURATION 1 hour");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("EVENT"), std::string::npos);
}

TEST(QueryTest, ValidateCatchesBadCombos) {
  CxtQuery q;
  EXPECT_FALSE(q.Validate().ok());  // no SELECT
  q.select_type = "temperature";
  EXPECT_FALSE(q.Validate().ok());  // no DURATION
  q.duration.time = SimDuration{1h};
  EXPECT_TRUE(q.Validate().ok());
  q.every = SimDuration{10s};
  q.event = Predicate::Leaf({AggregateFn::kAvg, "t", CompareOp::kGt, 5.0});
  EXPECT_FALSE(q.Validate().ok());  // both EVERY and EVENT
}

TEST(QueryTest, ToStringRoundTripsThroughParse) {
  const auto q = ParseQuery(
      "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 "
      "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25");
  ASSERT_TRUE(q.ok());
  const auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString() << "\n" << q2.status().ToString();
  EXPECT_EQ(q->select_type, q2->select_type);
  EXPECT_EQ(q->from, q2->from);
  EXPECT_EQ(q->where, q2->where);
  EXPECT_EQ(q->freshness, q2->freshness);
  EXPECT_EQ(q->duration, q2->duration);
  EXPECT_EQ(q->event, q2->event);
}

TEST(QueryTest, SerializedSizeMatchesPaper) {
  // "The size of a context query object is 205 bytes."
  auto q = ParseQuery("SELECT temperature DURATION 1 hour");
  ASSERT_TRUE(q.ok());
  q->id = "q-1";
  EXPECT_EQ(q->Serialize().size(), 205u);
}

TEST(QueryTest, SerializeDeserializeRoundTrip) {
  auto q = ParseQuery(
      "SELECT temperature FROM adHocNetwork(10,3), extInfra(\"i.fi\") "
      "region(60.1,24.9,500) WHERE accuracy=0.2 AND trust>=1 "
      "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  q->id = "q-7";
  const auto back = CxtQuery::Deserialize(q->Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, *q);
}

TEST(QueryBuilderTest, BuildsPaperExample) {
  const CxtQuery q = QueryBuilder(vocab::kTemperature)
                         .FromAdHoc(10, 3)
                         .WhereMeta("accuracy", CompareOp::kEq, 0.2)
                         .Freshness(30s)
                         .For(1h)
                         .EventAggregate(AggregateFn::kAvg,
                                         vocab::kTemperature,
                                         CompareOp::kGt, 25.0)
                         .Build();
  EXPECT_EQ(q.select_type, "temperature");
  EXPECT_EQ(q.from.sources[0].scope->num_hops, 3);
  EXPECT_EQ(q.mode(), InteractionMode::kEventBased);
}

TEST(QueryBuilderTest, MultipleWhereTermsAreAnded) {
  const CxtQuery q = QueryBuilder("light")
                         .WhereMeta("accuracy", CompareOp::kLe, 0.5)
                         .WhereMeta("trust", CompareOp::kGe, 1.0)
                         .For(10min)
                         .Build();
  ASSERT_TRUE(q.where.has_value());
  EXPECT_EQ(q.where->kind, Predicate::Kind::kAnd);
}

TEST(QueryBuilderTest, TargetsAttachToLastSource) {
  const CxtQuery q = QueryBuilder("wind")
                         .FromExtInfra("infra.fi")
                         .TargetRegion({60.1, 24.9}, 5000)
                         .For(10min)
                         .Build();
  ASSERT_TRUE(q.from.sources[0].region.has_value());
}

TEST(QueryBuilderTest, InvalidBuildThrows) {
  EXPECT_THROW(QueryBuilder("t").Build(), std::invalid_argument);  // no dur
  EXPECT_THROW(QueryBuilder("t").For(1h).Every(0s).Build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace contory::query
