// Unit tests for the contextRules engine and the ResourcesMonitor's
// monitored variables.
#include <gtest/gtest.h>

#include "core/resources_monitor.hpp"
#include "core/rules.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

VariableLookup FixedVars(
    std::unordered_map<std::string, CxtValue> vars) {
  return [vars = std::move(vars)](const std::string& name) -> Result<CxtValue> {
    const auto it = vars.find(name);
    if (it == vars.end()) return NotFound("no variable " + name);
    return it->second;
  };
}

TEST(RuleVocabularyTest, ParseOpsAndActions) {
  EXPECT_EQ(ParseRuleOp("equal").value(), RuleOp::kEqual);
  EXPECT_EQ(ParseRuleOp("notEqual").value(), RuleOp::kNotEqual);
  EXPECT_EQ(ParseRuleOp("moreThan").value(), RuleOp::kMoreThan);
  EXPECT_EQ(ParseRuleOp("lessThan").value(), RuleOp::kLessThan);
  EXPECT_FALSE(ParseRuleOp("greaterEq").ok());

  EXPECT_EQ(ParseRuleAction("reducePower").value(),
            RuleAction::kReducePower);
  EXPECT_EQ(ParseRuleAction("reduceMemory").value(),
            RuleAction::kReduceMemory);
  EXPECT_EQ(ParseRuleAction("reduceLoad").value(), RuleAction::kReduceLoad);
  EXPECT_FALSE(ParseRuleAction("panic").ok());
}

TEST(RulesEngineTest, PaperExampleBatteryLow) {
  // <batteryLevel, equal, low> -> reducePower.
  RulesEngine engine;
  ContextRule rule;
  rule.name = "battery-low";
  rule.condition =
      RuleExpr::Leaf({"batteryLevel", RuleOp::kEqual, CxtValue{"low"}});
  rule.action = RuleAction::kReducePower;
  engine.AddRule(rule);

  auto active = engine.Evaluate(FixedVars({{"batteryLevel", "low"}}));
  EXPECT_TRUE(active.contains(RuleAction::kReducePower));

  active = engine.Evaluate(FixedVars({{"batteryLevel", "high"}}));
  EXPECT_TRUE(active.empty());
}

TEST(RulesEngineTest, NumericComparisons) {
  RulesEngine engine;
  ContextRule rule;
  rule.condition =
      RuleExpr::Leaf({"batteryPercent", RuleOp::kLessThan, CxtValue{20.0}});
  rule.action = RuleAction::kReducePower;
  engine.AddRule(rule);
  EXPECT_FALSE(engine.Evaluate(FixedVars({{"batteryPercent", 50.0}}))
                   .contains(RuleAction::kReducePower));
  EXPECT_TRUE(engine.Evaluate(FixedVars({{"batteryPercent", 10.0}}))
                  .contains(RuleAction::kReducePower));
}

TEST(RulesEngineTest, AndOrCombinators) {
  const RuleExpr expr = RuleExpr::Or(
      {RuleExpr::And(
           {RuleExpr::Leaf({"batteryLevel", RuleOp::kEqual, CxtValue{"low"}}),
            RuleExpr::Leaf(
                {"activeQueries", RuleOp::kMoreThan, CxtValue{2.0}})}),
       RuleExpr::Leaf({"memoryLevel", RuleOp::kEqual, CxtValue{"high"}})});

  EXPECT_TRUE(RulesEngine::EvalExpr(
      expr, FixedVars({{"batteryLevel", "low"},
                       {"activeQueries", 3.0},
                       {"memoryLevel", "low"}})));
  EXPECT_TRUE(RulesEngine::EvalExpr(
      expr, FixedVars({{"batteryLevel", "high"},
                       {"activeQueries", 0.0},
                       {"memoryLevel", "high"}})));
  EXPECT_FALSE(RulesEngine::EvalExpr(
      expr, FixedVars({{"batteryLevel", "low"},
                       {"activeQueries", 1.0},
                       {"memoryLevel", "medium"}})));
}

TEST(RulesEngineTest, MissingVariableIsFalseNotError) {
  RulesEngine engine;
  ContextRule rule;
  rule.condition =
      RuleExpr::Leaf({"unknownVar", RuleOp::kEqual, CxtValue{1.0}});
  engine.AddRule(rule);
  EXPECT_TRUE(engine.Evaluate(FixedVars({})).empty());
}

TEST(RulesEngineTest, MultipleRulesUnionActions) {
  RulesEngine engine;
  ContextRule a;
  a.condition = RuleExpr::Leaf({"x", RuleOp::kMoreThan, CxtValue{0.0}});
  a.action = RuleAction::kReducePower;
  ContextRule b;
  b.condition = RuleExpr::Leaf({"x", RuleOp::kMoreThan, CxtValue{10.0}});
  b.action = RuleAction::kReduceMemory;
  engine.AddRule(a);
  engine.AddRule(b);
  const auto active = engine.Evaluate(FixedVars({{"x", 20.0}}));
  EXPECT_EQ(active.size(), 2u);
}

TEST(RulesEngineTest, BadExprConstructionThrows) {
  EXPECT_THROW(RuleExpr::And({RuleExpr::Leaf({})}), std::invalid_argument);
  EXPECT_THROW(RuleExpr::Or({}), std::invalid_argument);
}

class MonitorTest : public ::testing::Test {
 protected:
  sim::Simulation sim_{5};
  phone::SmartPhone phone_{sim_, phone::Nokia6630(), "phone"};
  ResourcesMonitor monitor_{sim_, phone_};
};

TEST_F(MonitorTest, BatteryStartsFull) {
  EXPECT_NEAR(monitor_.BatteryPercent(), 100.0, 1e-9);
  EXPECT_EQ(monitor_.BatteryLevel(), "high");
}

TEST_F(MonitorTest, BatteryDrainsWithConsumption) {
  // 12.9 kJ capacity; burn ~11 kJ -> below 20% ("low").
  phone_.energy().AddEnergyJoules(11'000.0);
  EXPECT_LT(monitor_.BatteryPercent(), 20.0);
  EXPECT_EQ(monitor_.BatteryLevel(), "low");
}

TEST_F(MonitorTest, BatteryMediumBand) {
  phone_.energy().AddEnergyJoules(8'000.0);  // ~38% left
  EXPECT_EQ(monitor_.BatteryLevel(), "medium");
}

TEST_F(MonitorTest, LookupExposesVariables) {
  EXPECT_TRUE(monitor_.Lookup("batteryPercent").ok());
  EXPECT_TRUE(monitor_.Lookup("batteryLevel").ok());
  EXPECT_TRUE(monitor_.Lookup("powerDraw").ok());
  EXPECT_TRUE(monitor_.Lookup("memoryItems").ok());
  EXPECT_TRUE(monitor_.Lookup("memoryLevel").ok());
  EXPECT_TRUE(monitor_.Lookup("activeQueries").ok());
  EXPECT_TRUE(monitor_.Lookup("activeProviders").ok());
  EXPECT_FALSE(monitor_.Lookup("bogus").ok());
}

TEST_F(MonitorTest, GaugesFeedVariables) {
  monitor_.SetMemoryGauge([] { return std::size_t{130}; });
  monitor_.SetQueryGauge([] { return std::size_t{4}; });
  EXPECT_EQ(monitor_.Lookup("memoryLevel")->AsString().value(), "high");
  EXPECT_DOUBLE_EQ(monitor_.Lookup("activeQueries")->AsNumber().value(),
                   4.0);
}

TEST_F(MonitorTest, ReferenceFailuresCounted) {
  class FakeRef : public Reference {
   public:
    const char* name() const noexcept override { return "FakeRef"; }
    bool Available() const override { return true; }
    using Reference::NotifyFailure;
  };
  FakeRef ref;
  monitor_.Attach(ref);
  std::string failed_module;
  monitor_.SetFailureHandler(
      [&](const std::string& module, const std::string&) {
        failed_module = module;
      });
  ref.NotifyFailure("boom");
  EXPECT_EQ(monitor_.failures_observed(), 1u);
  EXPECT_EQ(failed_module, "FakeRef");
}

TEST_F(MonitorTest, EndToEndWithRulesEngine) {
  RulesEngine engine;
  ContextRule rule;
  rule.condition =
      RuleExpr::Leaf({"batteryLevel", RuleOp::kEqual, CxtValue{"low"}});
  rule.action = RuleAction::kReducePower;
  engine.AddRule(rule);
  EXPECT_TRUE(engine.Evaluate(monitor_.AsLookup()).empty());
  phone_.energy().AddEnergyJoules(12'000.0);
  EXPECT_TRUE(engine.Evaluate(monitor_.AsLookup())
                  .contains(RuleAction::kReducePower));
}


TEST(RuleParserTest, ParsesSimpleRule) {
  const auto rule = ParseContextRule("IF batteryLevel equal low THEN reducePower");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->action, RuleAction::kReducePower);
  EXPECT_TRUE(RulesEngine::EvalExpr(rule->condition,
                                    FixedVars({{"batteryLevel", "low"}})));
  EXPECT_FALSE(RulesEngine::EvalExpr(rule->condition,
                                     FixedVars({{"batteryLevel", "high"}})));
}

TEST(RuleParserTest, ParsesNumericAndChain) {
  const auto rule = ParseContextRule(
      "IF batteryPercent lessThan 20 AND activeQueries moreThan 2 "
      "THEN reducePower");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(RulesEngine::EvalExpr(
      rule->condition,
      FixedVars({{"batteryPercent", 10.0}, {"activeQueries", 3.0}})));
  EXPECT_FALSE(RulesEngine::EvalExpr(
      rule->condition,
      FixedVars({{"batteryPercent", 10.0}, {"activeQueries", 1.0}})));
}

TEST(RuleParserTest, OrBindsLooserThanAnd) {
  const auto rule = ParseContextRule(
      "IF a equal 1 AND b equal 1 OR c equal 1 THEN reduceLoad");
  ASSERT_TRUE(rule.ok());
  // (a AND b) OR c
  EXPECT_TRUE(RulesEngine::EvalExpr(
      rule->condition,
      FixedVars({{"a", 0.0}, {"b", 0.0}, {"c", 1.0}})));
  EXPECT_TRUE(RulesEngine::EvalExpr(
      rule->condition,
      FixedVars({{"a", 1.0}, {"b", 1.0}, {"c", 0.0}})));
  EXPECT_FALSE(RulesEngine::EvalExpr(
      rule->condition,
      FixedVars({{"a", 1.0}, {"b", 0.0}, {"c", 0.0}})));
}

TEST(RuleParserTest, RejectsMalformedRules) {
  EXPECT_FALSE(ParseContextRule("").ok());
  EXPECT_FALSE(ParseContextRule("batteryLevel equal low").ok());
  EXPECT_FALSE(ParseContextRule("IF batteryLevel equal THEN reducePower").ok());
  EXPECT_FALSE(ParseContextRule("IF batteryLevel equals low THEN reducePower").ok());
  EXPECT_FALSE(ParseContextRule("IF batteryLevel equal low THEN panic").ok());
  EXPECT_FALSE(
      ParseContextRule("IF batteryLevel equal low THEN reducePower extra").ok());
  EXPECT_FALSE(ParseContextRule("IF a equal 1 AND THEN reduceLoad").ok());
}

TEST(RuleParserTest, ParsedRuleWorksInEngine) {
  RulesEngine engine;
  const auto rule = ParseContextRule(
      "IF memoryLevel equal high OR memoryItems moreThan 100 "
      "THEN reduceMemory");
  ASSERT_TRUE(rule.ok());
  engine.AddRule(*rule);
  EXPECT_TRUE(engine.Evaluate(FixedVars({{"memoryLevel", "low"},
                                         {"memoryItems", 130.0}}))
                  .contains(RuleAction::kReduceMemory));
}

}  // namespace
}  // namespace contory::core
