// FlightRecorder tests: delta encoding per metric kind, prefix
// filtering, the bounded ring's wraparound + drop accounting, the
// null-padded columnar ToJson export, and the ResetForTest contract
// (the recorder ring is part of the state a test boundary must clear).
//
// The recorder samples the *global* registry (obs::Observability), so
// every test resets it in SetUp and names its metrics with a
// test-unique prefix — entries persist across tests within the binary
// (handles are stable by design), and the prefix filter keeps each
// test's column universe to its own series.
#include <gtest/gtest.h>

#include <string>

#include "obs/observability.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Observability::ResetForTest(); }
  void TearDown() override { obs::Observability::ResetForTest(); }

  static obs::MetricsRegistry& metrics() {
    return obs::Observability::metrics();
  }
  static obs::FlightRecorder& recorder() {
    return obs::Observability::recorder();
  }

  static void Configure(std::size_t capacity,
                        std::vector<std::string> prefixes) {
    obs::RecorderConfig config;
    config.capacity = capacity;
    config.prefixes = std::move(prefixes);
    recorder().Configure(std::move(config));
  }

  /// Value of column `key` in the most recent frame; fails the test when
  /// the column does not exist.
  static double Last(const std::string& key) {
    const auto& columns = recorder().columns();
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].key != key) continue;
      const auto& values = recorder().frames().back().values;
      EXPECT_LT(i, values.size()) << key << " missing from last frame";
      return i < values.size() ? values[i] : 0.0;
    }
    ADD_FAILURE() << "no column " << key;
    return 0.0;
  }
};

TEST_F(RecorderTest, CountersDeltaGaugesRawHistogramsDerive) {
  Configure(16, {"rta_"});
  obs::Counter& c = metrics().GetCounter("rta_ops_total");
  obs::Gauge& g = metrics().GetGauge("rta_live");
  obs::Histogram& h = metrics().GetHistogram("rta_lat_ms", {}, {1.0, 10.0});

  c.Inc(5);
  g.Set(2.5);
  h.Observe(0.5);
  h.Observe(5.0);
  recorder().Sample(kSimEpoch + 1s);

  // First counter delta is the raw value (last_raw starts at zero).
  EXPECT_DOUBLE_EQ(Last("rta_ops_total"), 5.0);
  EXPECT_DOUBLE_EQ(Last("rta_live"), 2.5);
  EXPECT_DOUBLE_EQ(Last("rta_lat_ms/count"), 2.0);
  EXPECT_GT(Last("rta_lat_ms/p99"), 0.0);

  c.Inc(3);
  g.Set(1.0);
  recorder().Sample(kSimEpoch + 2s);
  EXPECT_DOUBLE_EQ(Last("rta_ops_total"), 3.0);  // delta, not cumulative
  EXPECT_DOUBLE_EQ(Last("rta_live"), 1.0);       // raw
  EXPECT_DOUBLE_EQ(Last("rta_lat_ms/count"), 0.0);

  EXPECT_EQ(recorder().samples_total(), 2u);
  EXPECT_EQ(recorder().frames_dropped(), 0u);
  EXPECT_EQ(recorder().frames().size(), 2u);
}

TEST_F(RecorderTest, PrefixFilterSkipsForeignSeries) {
  Configure(16, {"rtb_keep_"});
  metrics().GetCounter("rtb_keep_total").Inc();
  metrics().GetCounter("rtb_skip_total").Inc();
  recorder().Sample(kSimEpoch + 1s);

  bool saw_keep = false;
  for (const auto& column : recorder().columns()) {
    EXPECT_EQ(column.key.rfind("rtb_keep_", 0), 0u) << column.key;
    if (column.key == "rtb_keep_total") saw_keep = true;
  }
  EXPECT_TRUE(saw_keep);
}

TEST_F(RecorderTest, RingWrapsAndCountsDrops) {
  Configure(4, {"rtc_"});
  obs::Counter& c = metrics().GetCounter("rtc_ticks_total");
  for (int i = 1; i <= 10; ++i) {
    c.Inc();
    recorder().Sample(kSimEpoch + std::chrono::seconds{i});
  }
  EXPECT_EQ(recorder().frames().size(), 4u);
  EXPECT_EQ(recorder().samples_total(), 10u);
  EXPECT_EQ(recorder().frames_dropped(), 6u);
  // Oldest surviving frame is sample #7; deltas survive the drop intact.
  EXPECT_EQ(recorder().frames().front().t, kSimEpoch + 7s);
  EXPECT_DOUBLE_EQ(Last("rtc_ticks_total"), 1.0);

  // Drop accounting is also exported through the self-metrics.
  const obs::Gauge* dropped = metrics().FindGauge("recorder_frames_dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value(), 6.0);
  const obs::Counter* samples =
      metrics().FindCounter("recorder_samples_total");
  ASSERT_NE(samples, nullptr);
  EXPECT_EQ(samples->value(), 10u);
}

TEST_F(RecorderTest, LateColumnsNullPaddedInJson) {
  Configure(8, {"rtd_"});
  metrics().GetCounter("rtd_early_total").Inc();
  recorder().Sample(kSimEpoch + 1s);
  metrics().GetCounter("rtd_late_total").Inc();
  recorder().Sample(kSimEpoch + 2s);

  const std::string json = recorder().ToJson();
  EXPECT_NE(json.find("\"rtd_early_total\""), std::string::npos);
  EXPECT_NE(json.find("\"rtd_late_total\""), std::string::npos);
  // The first frame predates the late column: padded with null so every
  // row has uniform width.
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_NE(json.find("\"sampled\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

TEST_F(RecorderTest, ConfigureClampsCapacityAndClearsRing) {
  Configure(8, {"rte_"});
  metrics().GetCounter("rte_total").Inc();
  recorder().Sample(kSimEpoch + 1s);
  ASSERT_EQ(recorder().frames().size(), 1u);

  // Reconfiguring invalidates the old column universe: ring cleared.
  Configure(0, {"rte_"});
  EXPECT_EQ(recorder().config().capacity, 1u);  // 0 clamps to 1
  EXPECT_TRUE(recorder().frames().empty());
  EXPECT_TRUE(recorder().columns().empty());
  EXPECT_EQ(recorder().samples_total(), 0u);
}

TEST_F(RecorderTest, ResetForTestClearsRing) {
  Configure(8, {"rtf_"});
  metrics().GetCounter("rtf_total").Inc();
  recorder().Sample(kSimEpoch + 1s);
  ASSERT_EQ(recorder().frames().size(), 1u);

  obs::Observability::ResetForTest();
  EXPECT_TRUE(recorder().frames().empty());
  EXPECT_TRUE(recorder().columns().empty());
  EXPECT_EQ(recorder().samples_total(), 0u);
  EXPECT_EQ(recorder().frames_dropped(), 0u);
}

}  // namespace
}  // namespace contory
