// Unit tests for the common substrate: time, rng, status, bytes, stats, id.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.hpp"
#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(ToSeconds(SimDuration{1'500'000}), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(SimDuration{1'500}), 1.5);
  EXPECT_EQ(FromSeconds(2.5), SimDuration{2'500'000});
  EXPECT_EQ(FromMillis(0.078), SimDuration{78});
}

TEST(TimeTest, EpochIsZero) {
  EXPECT_DOUBLE_EQ(ToSeconds(kSimEpoch), 0.0);
}

TEST(TimeTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(SimDuration{500}), "500us");
  EXPECT_EQ(FormatDuration(SimDuration{1'500}), "1.500ms");
  EXPECT_EQ(FormatDuration(SimDuration{2'000'000}), "2.000s");
}

TEST(TimeTest, FormatTime) {
  EXPECT_EQ(FormatTime(kSimEpoch + 155s), "t=155.000s");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto x = rng.UniformInt(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(RngTest, NormalHasRoughlyRightMoments) {
  Rng rng{11};
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialHasRightMean) {
  Rng rng{13};
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.Add(rng.Exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(RngTest, LogNormalIsPositiveAndHeavyTailed) {
  Rng rng{17};
  RunningStats s;
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.LogNormal(6.95, 0.35);
    EXPECT_GT(x, 0.0);
    s.Add(x);
  }
  // Median exp(6.95) ~ 1043; mean is above the median for lognormal.
  EXPECT_GT(s.mean(), 1043.0);
  EXPECT_GT(s.max(), 2000.0);  // tail reaches the paper's 2766 ms range
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng{19};
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / 10'000.0, 0.25, 0.02);
}

TEST(RngTest, JitterStaysWithinSpread) {
  Rng rng{23};
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.Jitter(100.0, 0.05);
    EXPECT_GE(x, 95.0);
    EXPECT_LE(x, 105.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2{31};
  (void)parent2.Next();  // same draws as parent did
  EXPECT_NE(child.Next(), parent2.Next());
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FailureCarriesCodeAndMessage) {
  const Status s = Unavailable("bluetooth radio is off");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "UNAVAILABLE: bluetooth radio is off");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kUnavailable, StatusCode::kDeadlineExceeded,
        StatusCode::kPermissionDenied, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kAlreadyExists,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r{NotFound("nope")};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(BytesTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-42);
  w.WriteF64(3.14159);
  w.WriteBool(true);
  w.WriteString("contory");

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU16().value(), 0x1234);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.ReadF64().value(), 3.14159);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_EQ(r.ReadString().value(), "contory");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, BigEndianOnTheWire) {
  ByteWriter w;
  w.WriteU16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.bytes()[0], std::byte{0x01});
  EXPECT_EQ(w.bytes()[1], std::byte{0x02});
}

TEST(BytesTest, TruncatedReadsFailCleanly) {
  ByteWriter w;
  w.WriteU16(7);
  ByteReader r{w.bytes()};
  EXPECT_FALSE(r.ReadU32().ok());
  EXPECT_EQ(r.ReadU32().status().code(), StatusCode::kInvalidArgument);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter w;
  w.WriteU32(100);  // claims 100 bytes, provides none
  ByteReader r{w.bytes()};
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(BytesTest, PaddingCountsTowardSize) {
  ByteWriter w;
  w.WritePadding(100);
  EXPECT_EQ(w.size(), 100u);
  ByteReader r{w.bytes()};
  EXPECT_TRUE(r.Skip(100).ok());
  EXPECT_FALSE(r.Skip(1).ok());
}

TEST(StatsTest, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, ConfidenceIntervalUsesStudentT) {
  RunningStats s;
  for (const double x : {10.0, 12.0, 11.0, 13.0, 9.0}) s.Add(x);
  // n=5 -> df=4 -> t=2.132; ci = t * sd/sqrt(n).
  const double expected = 2.132 * s.stddev() / std::sqrt(5.0);
  EXPECT_NEAR(s.ConfidenceInterval90(), expected, 1e-9);
}

TEST(StatsTest, CellFormatMatchesPaperStyle) {
  RunningStats s;
  s.Add(140.0);
  s.Add(140.7);
  // n=2 -> df=1 -> t=6.314; sd=0.495 -> ci = 6.314*0.495/sqrt(2) = 2.210.
  EXPECT_EQ(s.ToCell(), "140.350 [2.210]");
}

TEST(StatsTest, SingleSampleHasZeroCi) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.ConfidenceInterval90(), 0.0);
}

TEST(TimeSeriesTest, IntegrationIsTrapezoidal) {
  TimeSeries ts;
  using namespace std::chrono_literals;
  ts.Add(kSimEpoch, 0.0);
  ts.Add(kSimEpoch + 2s, 10.0);
  // Triangle: 0.5 * base(2s) * height(10) = 10.
  EXPECT_DOUBLE_EQ(ts.Integrate(), 10.0);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(), 5.0);
  EXPECT_DOUBLE_EQ(ts.Max(), 10.0);
}

TEST(TimeSeriesTest, TsvDump) {
  TimeSeries ts;
  ts.Add(kSimEpoch + 1s, 2.5);
  EXPECT_EQ(ts.ToTsv(), "1.000\t2.500\n");
}

TEST(TimeSeriesTest, AsciiPlotHasAxis) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) {
    ts.Add(kSimEpoch + std::chrono::seconds{i}, i * 10.0);
  }
  const std::string plot = ts.AsciiPlot(40, 5, "mW");
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find("mW"), std::string::npos);
}

TEST(IdTest, SequentialPerPrefix) {
  IdGenerator ids;
  EXPECT_EQ(ids.NextId("q"), "q-1");
  EXPECT_EQ(ids.NextId("q"), "q-2");
  EXPECT_EQ(ids.NextId("item"), "item-1");
  EXPECT_EQ(ids.NextCounter("q"), 3u);
}

}  // namespace
}  // namespace contory
