// Unit tests for the cellular (UMTS/GPRS) model and its RRC machine.
#include <gtest/gtest.h>

#include <memory>

#include "common/stats.hpp"
#include "net/cellular.hpp"
#include "net/medium.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::net {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> Bytes(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x5a});
}

class CellularTest : public ::testing::Test {
 protected:
  CellularTest() {
    node_ = medium_.Register("phone", {0, 0});
    modem_ = std::make_unique<CellularModem>(sim_, phone_, network_, node_);
    // Echo server: responds with a fixed-size payload.
    EXPECT_TRUE(network_
                    .RegisterServer("infra.dynamos.fi",
                                    [](NodeId, const std::vector<std::byte>&,
                                       CellularNetwork::Respond respond) {
                                      respond(Bytes(1696));
                                    })
                    .ok());
    modem_->SetRadioOn(true);
  }

  /// Sends one request and runs until completion; returns elapsed ms.
  double RoundTripMs(std::size_t request_bytes) {
    const SimTime start = sim_.Now();
    bool done = false;
    modem_->SendRequest("infra.dynamos.fi", Bytes(request_bytes),
                        [&](Result<std::vector<std::byte>> r) {
                          EXPECT_TRUE(r.ok());
                          done = true;
                        });
    while (!done && sim_.Step()) {
    }
    return ToMillis(sim_.Now() - start);
  }

  sim::Simulation sim_{13};
  Medium medium_;
  CellularNetwork network_{sim_};
  phone::SmartPhone phone_{sim_, phone::Nokia6630(), "phone"};
  NodeId node_{};
  std::unique_ptr<CellularModem> modem_;
};

TEST_F(CellularTest, StartsIdle) {
  EXPECT_EQ(modem_->rrc_state(), RrcState::kIdle);
}

TEST_F(CellularTest, ColdRequestLatencyInPaperRange) {
  // Table 1: extInfra getCxtItem 1473 ms avg, range 703-2766 ms.
  RunningStats ms;
  for (int i = 0; i < 10; ++i) {
    // Force a cold connect each time by waiting out the tails.
    sim_.RunFor(60s);
    ASSERT_EQ(modem_->rrc_state(), RrcState::kIdle);
    ms.Add(RoundTripMs(1696));
  }
  EXPECT_GT(ms.mean(), 900.0);
  EXPECT_LT(ms.mean(), 2200.0);
  EXPECT_GT(ms.min(), 500.0);
  EXPECT_LT(ms.max(), 3500.0);
}

TEST_F(CellularTest, WarmRequestsAreMuchFaster) {
  const double cold = RoundTripMs(1696);
  const double warm = RoundTripMs(1696);  // still in DCH
  EXPECT_LT(warm, cold * 0.6);
}

TEST_F(CellularTest, RrcDecaysThroughTailStates) {
  RoundTripMs(1696);
  EXPECT_EQ(modem_->rrc_state(), RrcState::kDchTail);
  sim_.RunFor(9s);
  EXPECT_EQ(modem_->rrc_state(), RrcState::kFach);
  sim_.RunFor(11s);
  EXPECT_EQ(modem_->rrc_state(), RrcState::kIdle);
}

TEST_F(CellularTest, ActivityResetsTailDecay) {
  RoundTripMs(1696);
  sim_.RunFor(7s);  // deep into DCH tail
  RoundTripMs(1696);
  sim_.RunFor(7s);
  EXPECT_NE(modem_->rrc_state(), RrcState::kIdle);
}

TEST_F(CellularTest, OnDemandItemCostsOrderTenJoules) {
  // Table 2: extInfra on-demand getCxtItem = 14.076 J. Dominated by the
  // connection open plus DCH/FACH tails.
  sim_.RunFor(60s);
  const auto mark = phone_.energy().Mark();
  RoundTripMs(1696);
  sim_.RunFor(30s);  // let tails fully decay
  const double joules = phone_.energy().JoulesSince(mark);
  EXPECT_GT(joules, 9.0);
  EXPECT_LT(joules, 19.0);
}

TEST_F(CellularTest, BatchingReducesPerItemEnergy) {
  // "Sending and retrieving larger groups of items in the same time slot
  // largely reduces the energy consumption per item."
  sim_.RunFor(60s);
  const auto mark = phone_.energy().Mark();
  constexpr int kBatch = 10;
  for (int i = 0; i < kBatch; ++i) RoundTripMs(1696);
  sim_.RunFor(30s);
  const double per_item = phone_.energy().JoulesSince(mark) / kBatch;
  EXPECT_LT(per_item, 14.076 / 3.0);
}

TEST_F(CellularTest, PeakPowerIs1000mW) {
  double peak = 0.0;
  phone_.energy().SetPowerListener(
      [&](SimTime, double mw) { peak = std::max(peak, mw); });
  RoundTripMs(1696);
  // "The maximum power consumption ... is 1000 mW" (+ small base).
  EXPECT_GE(peak, 1000.0);
  EXPECT_LE(peak, 1020.0);
}

TEST_F(CellularTest, RadioOffFailsFast) {
  modem_->SetRadioOn(false);
  Status status;
  modem_->SendRequest("infra.dynamos.fi", Bytes(100),
                      [&](Result<std::vector<std::byte>> r) {
                        status = r.status();
                      });
  sim_.RunFor(1s);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(CellularTest, UnknownServerIsNotFound) {
  Status status;
  modem_->SendRequest("nowhere.example",
                      Bytes(100), [&](Result<std::vector<std::byte>> r) {
                        status = r.status();
                      });
  sim_.RunFor(10s);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(CellularTest, SlowServerHitsTimeout) {
  ASSERT_TRUE(network_
                  .RegisterServer("slow.example",
                                  [](NodeId, const std::vector<std::byte>&,
                                     CellularNetwork::Respond) {
                                    // never responds
                                  })
                  .ok());
  Status status;
  modem_->SendRequest(
      "slow.example", Bytes(100),
      [&](Result<std::vector<std::byte>> r) { status = r.status(); }, 5s);
  sim_.RunFor(10s);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(CellularTest, ConnectFailureInjection) {
  sim_.RunFor(60s);
  modem_->SetConnectFailureRate(1.0);
  Status status;
  modem_->SendRequest("infra.dynamos.fi", Bytes(100),
                      [&](Result<std::vector<std::byte>> r) {
                        status = r.status();
                      });
  sim_.RunFor(20s);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(modem_->rrc_state(), RrcState::kIdle);
}

TEST_F(CellularTest, PushReachesHandler) {
  std::size_t pushed = 0;
  modem_->SetPushHandler(
      [&](const std::vector<std::byte>& data) { pushed = data.size(); });
  EXPECT_TRUE(network_.PushToClient(node_, Bytes(1696)).ok());
  sim_.RunFor(30s);
  EXPECT_EQ(pushed, 1696u);
}

TEST_F(CellularTest, PushToOffRadioFails) {
  modem_->SetRadioOn(false);
  EXPECT_EQ(network_.PushToClient(node_, Bytes(10)).code(),
            StatusCode::kUnavailable);
}

TEST_F(CellularTest, PushToUnknownClientFails) {
  EXPECT_EQ(network_.PushToClient(9999, Bytes(10)).code(),
            StatusCode::kNotFound);
}

TEST_F(CellularTest, DuplicateServerRegistrationRejected) {
  const auto status = network_.RegisterServer(
      "infra.dynamos.fi",
      [](NodeId, const std::vector<std::byte>&, CellularNetwork::Respond r) {
        r({});
      });
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST_F(CellularTest, RadioOffDuringConnectFailsWaiters) {
  Status status;
  modem_->SendRequest("infra.dynamos.fi", Bytes(100),
                      [&](Result<std::vector<std::byte>> r) {
                        status = r.status();
                      });
  EXPECT_EQ(modem_->rrc_state(), RrcState::kConnecting);
  modem_->SetRadioOn(false);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace contory::net
