// Hop-level distributed tracing tests: the SM-FINDER hop chain on a
// deterministic line topology. Every migration of a traced SM opens one
// "hop:<n>" span under the issuer's root, closed at the receiver ("ok"),
// on the loss path ("lost: ..."), or never opened at all when the next
// hop is unreachable (noted on the root instead) — so the finished span
// tree reconstructs exactly where a finder's hops went. Also covered
// here: the opt-in next-hop route cache counters, the tracer's
// old-generation compaction under 100k-span churn, and the Chrome
// trace-event export that renders all of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "core/model/cxt_item.hpp"
#include "core/providers/adhoc_provider.hpp"
#include "core/query/parser.hpp"
#include "core/references/wifi_reference.hpp"
#include "net/medium.hpp"
#include "net/wifi.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observability.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"
#include "sm/sm_runtime.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

/// A line of four Contory nodes 80 m apart (100 m WiFi range), each with
/// the finder brick and its home tag — the same per-node setup
/// CityScenario bulk-builds, small enough to predict every hop.
class TraceTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 4;

  void SetUp() override {
    obs::Observability::ResetForTest();
    // Everything below Build() exercises COBS-gated instrumentation in
    // SmRuntime/WifiController; a CONTORY_OBS=OFF compile has nothing to
    // observe. (The local-tracer churn test carries no such gate.)
    if (!COBS_ON()) GTEST_SKIP() << "observability compiled out/disabled";
  }
  void TearDown() override { obs::Observability::ResetForTest(); }

  void Build(sm::SmRuntimeConfig config = {}) {
    for (int i = 0; i < kNodes; ++i) {
      phones_.push_back(std::make_unique<phone::SmartPhone>(
          sim_, phone::Nokia9500(), "trace-" + std::to_string(i)));
      nodes_.push_back(
          medium_.Register("trace-" + std::to_string(i), {i * 80.0, 0}));
      wifis_.push_back(std::make_unique<net::WifiController>(
          sim_, wifi_bus_, *phones_.back(), nodes_.back()));
      wifis_.back()->SetEnabled(true);
      runtimes_.push_back(std::make_unique<sm::SmRuntime>(
          sim_, sm_bus_, *wifis_.back(), config));
      runtimes_.back()->SetParticipating(true);
      core::RegisterFinderBrick(*runtimes_.back());
      runtimes_.back()->tags().Upsert(core::HomeTagName(nodes_.back()), "1");
    }
  }

  /// Publishes a temperature item on node `i`, CityScenario-style.
  void PublishItem(int i) {
    CxtItem item;
    item.id = "trace-item-" + std::to_string(nodes_[i]);
    item.type = "temperature";
    item.value = 21.0;
    item.timestamp = sim_.Now();
    item.source = {SourceKind::kAdHocNetwork,
                   "node:" + std::to_string(nodes_[i])};
    item.metadata.accuracy = 0.5;
    runtimes_[i]->tags().Upsert(core::CxtTagName("temperature"),
                                ToHex(item.Serialize()));
  }

  /// Launches a traced SM-FINDER from node 0 (hop budget 10) and returns
  /// the root span handle; the reply (if any) lands in `reply`.
  std::uint64_t LaunchTracedFinder(const std::string& query_id,
                                   std::optional<sm::SmartMessage>& reply) {
    auto query = query::ParseQuery(
        "SELECT temperature FROM adHocNetwork(all,10) DURATION 1 hour");
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    query->id = query_id;
    core::FinderState state;
    state.query = *query;
    state.remaining_nodes = -1;

    sm::SmartMessage sm;
    sm.id = sim_.ids().NextId("trace-finder");
    sm.code_brick = core::kFinderBrick;
    sm.origin = nodes_[0];
    sm.target_tag = core::CxtTagName("temperature");
    sm.max_hops = 10;
    sm.data = state.Encode();
    const std::uint64_t root =
        obs::Observability::tracer().BeginQuery(query_id, sim_.Now());
    sm.trace_parent = root;
    runtimes_[0]->RegisterReplyHandler(
        sm.id, [&reply](sm::SmartMessage r) { reply = std::move(r); });
    EXPECT_TRUE(runtimes_[0]->Inject(std::move(sm)).ok());
    return root;
  }

  static std::uint64_t CounterValue(const std::string& name) {
    const obs::Counter* c =
        obs::Observability::metrics().FindCounter(name);
    return c == nullptr ? 0 : c->value();
  }

  sim::Simulation sim_{7};
  net::Medium medium_;
  net::WifiBus wifi_bus_{medium_};
  sm::SmBus sm_bus_;
  std::vector<std::unique_ptr<phone::SmartPhone>> phones_;
  std::vector<net::NodeId> nodes_;
  std::vector<std::unique_ptr<net::WifiController>> wifis_;
  std::vector<std::unique_ptr<sm::SmRuntime>> runtimes_;
};

TEST_F(TraceTest, HopChainMatchesReplyHopCount) {
  Build();
  PublishItem(3);  // provider at the far end: 3 hops out, 3 home

  std::optional<sm::SmartMessage> reply;
  const std::uint64_t root = LaunchTracedFinder("q-hops", reply);
  sim_.Run();

  ASSERT_TRUE(reply.has_value());
  ASSERT_GE(reply->hop_count, 2);
  auto& tracer = obs::Observability::tracer();
  ASSERT_NE(tracer.EndQuery(root, sim_.Now(), "ok"), nullptr);

  // Exactly one hop span per hop the reply reports, numbered 1..N, all
  // under the root, each closed "ok" at its receiver with the sender's
  // radio energy metered through its own probe.
  std::vector<obs::Span> hops;
  for (const obs::Span& s : tracer.FinishedFor("q-hops")) {
    if (s.name.rfind("hop:", 0) != 0) continue;
    EXPECT_EQ(s.parent, root);
    EXPECT_EQ(s.status, "ok");
    EXPECT_GE(s.energy_joules(), 0.0);
    EXPECT_GT(s.duration(), SimDuration::zero());
    ASSERT_FALSE(s.notes.empty());
    EXPECT_EQ(s.notes[0].rfind("from:", 0), 0u);
    hops.push_back(s);
  }
  ASSERT_EQ(hops.size(), static_cast<std::size_t>(reply->hop_count));
  std::vector<std::string> names;
  for (const obs::Span& s : hops) names.push_back(s.name);
  std::sort(names.begin(), names.end());
  for (int n = 1; n <= reply->hop_count; ++n) {
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "hop:" + std::to_string(n)),
              names.end());
  }

  // Nothing in flight, nothing stranded in the side table.
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.double_closes(), 0u);
  EXPECT_EQ(sm_bus_.pending_traces(), 0u);
  // Route caching is opt-in; the default config never touches it.
  EXPECT_EQ(CounterValue("sm_route_cache_hits_total"), 0u);
  EXPECT_EQ(CounterValue("sm_route_cache_misses_total"), 0u);
}

TEST_F(TraceTest, UnreachableNextHopNotesRootAndOpensNoHopSpan) {
  Build();
  auto& tracer = obs::Observability::tracer();
  const std::uint64_t root = tracer.BeginQuery("q-dead", sim_.Now());

  sm::SmartMessage sm;
  sm.id = sim_.ids().NextId("trace-dead");
  sm.code_brick = core::kFinderBrick;
  sm.origin = nodes_[0];
  sm.trace_parent = root;
  runtimes_[0]->Migrate(std::move(sm), nodes_[2]);  // 160 m: not a neighbor
  sim_.Run();

  const obs::Span* open_root = tracer.FindOpen(root);
  ASSERT_NE(open_root, nullptr);
  ASSERT_EQ(open_root->notes.size(), 1u);
  EXPECT_EQ(open_root->notes[0],
            "sm-dead:unreachable@" + std::to_string(nodes_[0]));
  EXPECT_EQ(tracer.spans_started(), 1u);  // the root; no hop span
  ASSERT_NE(tracer.EndQuery(root, sim_.Now(), "dead"), nullptr);
}

TEST_F(TraceTest, LostFrameClosesHopSpanWithLossStatus) {
  Build();
  auto& tracer = obs::Observability::tracer();
  const std::uint64_t root = tracer.BeginQuery("q-lost", sim_.Now());

  sm::SmartMessage sm;
  sm.id = sim_.ids().NextId("trace-lost");
  sm.code_brick = core::kFinderBrick;
  sm.origin = nodes_[0];
  sm.trace_parent = root;
  runtimes_[0]->Migrate(std::move(sm), nodes_[1]);
  // The receiver's radio dies while the frame is in flight: the done
  // callback reports the loss and the in-flight hop span must close.
  wifis_[1]->SetEnabled(false);
  sim_.Run();

  EXPECT_EQ(tracer.open_count(), 1u);  // only the root survives
  EXPECT_EQ(sm_bus_.pending_traces(), 0u);
  bool saw_lost_hop = false;
  for (const obs::Span& s : tracer.FinishedFor("q-lost")) {
    if (s.name != "hop:1") continue;
    saw_lost_hop = true;
    EXPECT_EQ(s.parent, root);
    EXPECT_EQ(s.status.rfind("lost: ", 0), 0u) << s.status;
  }
  EXPECT_TRUE(saw_lost_hop);
  ASSERT_NE(tracer.EndQuery(root, sim_.Now(), "timeout"), nullptr);
}

TEST_F(TraceTest, RouteCacheCountsHitsMissesAndEvictions) {
  sm::SmRuntimeConfig config;
  config.route_cache_ttl = 5s;
  config.route_cache_capacity = 1;
  Build(config);
  runtimes_[3]->tags().Upsert("svc.a", "1");
  runtimes_[2]->tags().Upsert("svc.b", "1");

  // Cold lookup: miss, then the cached next hop serves the repeat.
  auto hop = runtimes_[0]->NextHopTowardTag("svc.a");
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(*hop, nodes_[1]);
  EXPECT_EQ(CounterValue("sm_route_cache_misses_total"), 1u);
  ASSERT_TRUE(runtimes_[0]->NextHopTowardTag("svc.a").ok());
  EXPECT_EQ(CounterValue("sm_route_cache_hits_total"), 1u);

  // Capacity 1: inserting a second tag flushes the cache (one eviction).
  ASSERT_TRUE(runtimes_[0]->NextHopTowardTag("svc.b").ok());
  EXPECT_EQ(CounterValue("sm_route_cache_evictions_total"), 1u);
  EXPECT_EQ(CounterValue("sm_route_cache_misses_total"), 2u);
  ASSERT_TRUE(runtimes_[0]->NextHopTowardTag("svc.b").ok());
  EXPECT_EQ(CounterValue("sm_route_cache_hits_total"), 2u);

  // TTL expiry: the entry goes stale and the lookup falls back to BFS.
  sim_.RunFor(6s);
  ASSERT_TRUE(runtimes_[0]->NextHopTowardTag("svc.b").ok());
  EXPECT_EQ(CounterValue("sm_route_cache_hits_total"), 2u);
  EXPECT_EQ(CounterValue("sm_route_cache_misses_total"), 3u);

  // Excluded-node lookups (a finder's outward path) bypass the cache
  // entirely — neither a hit nor a miss is counted.
  ASSERT_TRUE(
      runtimes_[0]->NextHopTowardTag("svc.b", {nodes_[3]}).ok());
  EXPECT_EQ(CounterValue("sm_route_cache_hits_total"), 2u);
  EXPECT_EQ(CounterValue("sm_route_cache_misses_total"), 3u);
}

// Plain TEST: a local tracer needs no topology and no COBS gate, so this
// also runs in the CONTORY_OBS=OFF compile.
TEST(TracerChurnTest, OldGenerationCompactsAndDrainsUnderChurn) {
  // 100k short-lived stage spans under one immortal root: the dense
  // window advances far past the root's chunk, so the root must compact
  // into the old generation — and must leave it once everything closes.
  obs::QueryTracer tracer;
  const std::uint64_t root = tracer.BeginQuery("q-churn", kSimEpoch);
  std::size_t max_old = 0;
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t stage =
        tracer.BeginStage(root, "provision", "adHocNetwork", kSimEpoch);
    ASSERT_NE(stage, 0u);
    ASSERT_NE(tracer.EndStage(stage, kSimEpoch + 1s, "ok"), nullptr);
    max_old = std::max(max_old, tracer.old_generation_size());
  }
  // Only the root ever outlives its chunk; churned spans never pile up.
  EXPECT_EQ(max_old, 1u);
  EXPECT_EQ(tracer.old_generation_size(), 1u);
  EXPECT_EQ(tracer.open_count(), 1u);

  ASSERT_NE(tracer.EndQuery(root, kSimEpoch + 2s, "DONE"), nullptr);
  EXPECT_EQ(tracer.old_generation_size(), 0u);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.double_closes(), 0u);
  // The finished deque stayed bounded and counted what it shed.
  EXPECT_EQ(tracer.finished().size(), tracer.capacity());
  EXPECT_EQ(tracer.spans_dropped(), 100'001u - tracer.capacity());
}

TEST_F(TraceTest, ChromeTraceExportRendersSpansAndCounters) {
  Build();
  PublishItem(3);
  std::optional<sm::SmartMessage> reply;
  const std::uint64_t root = LaunchTracedFinder("q-export", reply);
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  obs::Observability::tracer().EndQuery(root, sim_.Now(), "ok");

  obs::RecorderConfig rec;
  rec.capacity = 8;
  rec.prefixes = {"radio_"};
  obs::Observability::recorder().Configure(std::move(rec));
  obs::Observability::recorder().Sample(sim_.Now());

  const std::string json = obs::ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"q-export\""), std::string::npos);
  EXPECT_NE(json.find("\"hop:1\""), std::string::npos);
  // Hop spans ride their root's track: its id is every hop's tid.
  EXPECT_NE(json.find("\"tid\": " + std::to_string(root)),
            std::string::npos);
  // Recorder columns render as counter tracks under the spans.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("radio_tx_frames_total"), std::string::npos);

  const std::string path = ::testing::TempDir() + "trace_test_export.json";
  ASSERT_TRUE(obs::ExportChromeTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0L);
  std::fclose(f);
}

}  // namespace
}  // namespace contory
