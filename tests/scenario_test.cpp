// Runner semantics: a well-formed spec drives a real testbed and checks
// its invariants; a violated expectation surfaces as a line-numbered
// failure rather than an exception or a silent pass.

#include <gtest/gtest.h>

#include <string>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace contory::scenario {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

RunReport RunText(const std::string& text) {
  auto spec = ParseScenario(text);
  EXPECT_TRUE(spec.ok()) << spec.status().message();
  if (!spec.ok()) return {};
  ScenarioRunner runner;
  return runner.Run(*spec);
}

TEST(ScenarioRunnerTest, TinyInternalSensorScenarioPasses) {
  const RunReport report = RunText(
      "scenario tiny\n"
      "seed 3\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "query q1 on phone-A : SELECT temperature FROM intSensor DURATION 20 "
      "sec EVERY 5 sec\n"
      "run 40s\n"
      "expect q.q1.items >= 2\n"
      "expect q.q1.completions == 1\n"
      "expect d.phone-A.active == 0\n"
      "expect d.phone-A.invalid_transitions == 0\n");
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_TRUE(report.failures.empty());
  EXPECT_GE(report.expects_checked, 4);
}

TEST(ScenarioRunnerTest, ViolatedExpectIsLineNumberedFailure) {
  const RunReport report = RunText(
      "scenario failing\n"
      "seed 3\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "query q1 on phone-A : SELECT temperature FROM intSensor DURATION 20 "
      "sec EVERY 5 sec\n"
      "run 40s\n"
      "expect q.q1.items >= 1000\n");
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_TRUE(Contains(report.failures.front(), "line 6")) << report.failures.front();
  EXPECT_TRUE(Contains(report.failures.front(), "q.q1.items")) << report.failures.front();
}

TEST(ScenarioRunnerTest, FaultStepReachesInjector) {
  const RunReport report = RunText(
      "scenario faulted\n"
      "seed 9\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "fault at=10s sensor.fail temperature@phone-A for=5s\n"
      "query q1 on phone-A : SELECT temperature FROM intSensor DURATION 30 "
      "sec EVERY 5 sec\n"
      "run 60s\n"
      // A bounded fault injects two actions: the fault and its revert.
      "expect injector.injected == 2\n"
      "expect q.q1.completions == 1\n");
  EXPECT_TRUE(report.passed) << report.Summary();
}

TEST(ScenarioRunnerTest, TextExpectationsCompare) {
  const RunReport report = RunText(
      "scenario text-expect\n"
      "seed 3\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "query q1 on phone-A : SELECT temperature FROM intSensor DURATION 20 "
      "sec EVERY 5 sec\n"
      "run 10s\n"
      // mechanism reads the live provisioning set, so check mid-flight.
      "expect q.q1.mechanism contains intSensor\n"
      "run 30s\n"
      "expect q.q1.last_source == intSensor\n"
      "expect q.q1.last_source != extInfra\n");
  EXPECT_TRUE(report.passed) << report.Summary();
}

TEST(ScenarioRunnerTest, GeneratedInternalCaseRunsGreen) {
  auto text = GeneratedSpecText("gen_internal_none_standard_n2", {});
  ASSERT_TRUE(text.ok()) << text.status().message();
  const RunReport report = RunText(*text);
  EXPECT_TRUE(report.passed) << report.Summary();
}

TEST(ScenarioRunnerTest, ReportSummaryNamesCounts) {
  const RunReport report = RunText(
      "scenario summary\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "run 1s\n"
      "expect d.phone-A.active == 0\n");
  EXPECT_TRUE(report.passed);
  EXPECT_TRUE(Contains(report.Summary(), "PASS")) << report.Summary();
}

}  // namespace
}  // namespace contory::scenario
