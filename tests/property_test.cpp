// Property-style parameterized sweeps over the core invariants:
// serialization round-trips, parser idempotence, merge subsumption,
// predicate algebra, simulation determinism, and energy-ledger math.
#include <gtest/gtest.h>

#include "core/contory.hpp"
#include "energy/energy_model.hpp"
#include "sensors/gps.hpp"
#include "sim/simulation.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

// --- CxtItem serialization round-trip over generated items -----------------

class ItemRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

CxtItem GenerateItem(Rng& rng) {
  static const std::vector<std::string> kTypes = {
      vocab::kLocation, vocab::kTemperature, vocab::kWind, vocab::kLight,
      vocab::kActivity, vocab::kBatteryLevel, "customType"};
  CxtItem item;
  item.id = "item-" + std::to_string(rng.Next() % 1'000'000);
  item.type = kTypes[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(kTypes.size()) - 1))];
  if (item.type == vocab::kLocation) {
    item.value = GeoPoint{rng.Uniform(-90, 90), rng.Uniform(-180, 180)};
  } else if (item.type == vocab::kActivity) {
    item.value = rng.Bernoulli(0.5) ? "walking" : "sailing";
  } else {
    item.value = rng.Uniform(-1e6, 1e6);
  }
  item.timestamp = kSimEpoch + SimDuration{rng.UniformInt(0, 1'000'000'000)};
  if (rng.Bernoulli(0.5)) {
    item.lifetime = SimDuration{rng.UniformInt(1, 3'600'000'000)};
  }
  item.source.kind = static_cast<SourceKind>(rng.UniformInt(0, 4));
  item.source.address = "addr-" + std::to_string(rng.Next() % 100);
  if (rng.Bernoulli(0.5)) item.metadata.accuracy = rng.Uniform(0, 10);
  if (rng.Bernoulli(0.5)) item.metadata.correctness = rng.Uniform(0, 1);
  if (rng.Bernoulli(0.5)) item.metadata.precision = rng.Uniform(0, 5);
  if (rng.Bernoulli(0.3)) item.metadata.completeness = rng.Uniform(0, 1);
  item.metadata.trust = static_cast<TrustLevel>(rng.UniformInt(0, 2));
  item.metadata.privacy = static_cast<PrivacyLevel>(rng.UniformInt(0, 2));
  return item;
}

TEST_P(ItemRoundTripTest, SerializeDeserializeIsIdentity) {
  Rng rng{GetParam()};
  for (int i = 0; i < 50; ++i) {
    const CxtItem item = GenerateItem(rng);
    const auto back = CxtItem::Deserialize(item.Serialize());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->id, item.id);
    EXPECT_EQ(back->type, item.type);
    EXPECT_EQ(back->value, item.value);
    EXPECT_EQ(back->timestamp, item.timestamp);
    EXPECT_EQ(back->lifetime, item.lifetime);
    EXPECT_EQ(back->source, item.source);
    EXPECT_EQ(back->metadata, item.metadata);
  }
}

TEST_P(ItemRoundTripTest, KnownTypesHonorEnvelopeSizes) {
  Rng rng{GetParam()};
  for (int i = 0; i < 50; ++i) {
    const CxtItem item = GenerateItem(rng);
    const auto info = CxtVocabulary::Default().Find(item.type);
    if (!info.has_value()) continue;
    EXPECT_GE(item.Serialize().size(), info->envelope_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Query parse/print idempotence -----------------------------------------

class QueryRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryRoundTripTest, ParsePrintParseIsStable) {
  const auto q1 = query::ParseQuery(GetParam());
  ASSERT_TRUE(q1.ok()) << GetParam() << ": " << q1.status().ToString();
  const auto q2 = query::ParseQuery(q1->ToString());
  ASSERT_TRUE(q2.ok()) << q1->ToString();
  EXPECT_EQ(q1->select_type, q2->select_type);
  EXPECT_EQ(q1->from, q2->from);
  EXPECT_EQ(q1->where, q2->where);
  EXPECT_EQ(q1->freshness, q2->freshness);
  EXPECT_EQ(q1->duration, q2->duration);
  EXPECT_EQ(q1->every, q2->every);
  EXPECT_EQ(q1->event, q2->event);
  // And print is a fixed point after one round.
  EXPECT_EQ(q1->ToString(), q2->ToString());
}

TEST_P(QueryRoundTripTest, SerializeDeserializeIsIdentity) {
  auto q = query::ParseQuery(GetParam());
  ASSERT_TRUE(q.ok());
  q->id = "q-prop";
  const auto back = query::CxtQuery::Deserialize(q->Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, *q);
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, QueryRoundTripTest,
    ::testing::Values(
        "SELECT temperature DURATION 1 hour",
        "SELECT location FROM intSensor DURATION 10 min EVERY 5 sec",
        "SELECT wind FROM adHocNetwork(all,3) DURATION 50 samples",
        "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 "
        "FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25",
        "SELECT light FROM extInfra(\"infra.fi\") region(60.1,24.9,500) "
        "DURATION 2 min",
        "SELECT location FROM extInfra entity(\"friend-7\") DURATION 1 min",
        "SELECT noise WHERE value>50 AND (trust=trusted OR "
        "correctness>=0.9) DURATION 1 hour EVERY 1 min",
        "SELECT humidity FROM adHocNetwork(5,2), extInfra DURATION 1 hour",
        "SELECT speed WHERE NOT activity=\"moored\" DURATION 30 sec",
        "SELECT pressure FRESHNESS 500 ms DURATION 2 hour "
        "EVENT MAX(pressure)>=1030"));

// --- Merge subsumption ------------------------------------------------------

struct MergePair {
  const char* a;
  const char* b;
};

class MergeSubsumptionTest : public ::testing::TestWithParam<MergePair> {};

TEST_P(MergeSubsumptionTest, MergedQuerySubsumesBoth) {
  auto a = query::ParseQuery(GetParam().a);
  auto b = query::ParseQuery(GetParam().b);
  ASSERT_TRUE(a.ok() && b.ok());
  a->id = "a";
  b->id = "b";
  const auto m = query::Merge(*a, *b);
  ASSERT_TRUE(m.ok()) << m.status().ToString();

  for (const auto* original : {&*a, &*b}) {
    // FRESHNESS: merged is no stricter than the original.
    if (m->freshness.has_value()) {
      ASSERT_TRUE(original->freshness.has_value());
      EXPECT_GE(*m->freshness, *original->freshness);
    }
    // EVERY: merged is at least as fast.
    if (original->every.has_value()) {
      ASSERT_TRUE(m->every.has_value());
      EXPECT_LE(*m->every, *original->every);
    }
    // DURATION: merged lives at least as long.
    if (m->duration.time.has_value() &&
        original->duration.time.has_value()) {
      EXPECT_GE(*m->duration.time, *original->duration.time);
    }
    // Scope: merged covers at least the original's hops.
    for (std::size_t i = 0; i < original->from.sources.size(); ++i) {
      const auto& orig_scope = original->from.sources[i].scope;
      const auto& merged_scope = m->from.sources[i].scope;
      if (!orig_scope.has_value()) continue;
      ASSERT_TRUE(merged_scope.has_value());
      EXPECT_GE(merged_scope->num_hops, orig_scope->num_hops);
      if (!merged_scope->all_nodes()) {
        ASSERT_FALSE(orig_scope->all_nodes());
        EXPECT_GE(merged_scope->num_nodes, orig_scope->num_nodes);
      }
    }
    // WHERE: merged keeps it only when identical.
    if (m->where.has_value()) EXPECT_EQ(m->where, original->where);
  }
}

TEST_P(MergeSubsumptionTest, MergeIsSymmetricUpToId) {
  auto a = query::ParseQuery(GetParam().a);
  auto b = query::ParseQuery(GetParam().b);
  a->id = "a";
  b->id = "b";
  auto ab = query::Merge(*a, *b);
  auto ba = query::Merge(*b, *a);
  ASSERT_TRUE(ab.ok() && ba.ok());
  ab->id.clear();
  ba->id.clear();
  EXPECT_EQ(ab->freshness, ba->freshness);
  EXPECT_EQ(ab->every, ba->every);
  EXPECT_EQ(ab->duration, ba->duration);
  EXPECT_EQ(ab->where, ba->where);
  EXPECT_EQ(ab->from, ba->from);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MergeSubsumptionTest,
    ::testing::Values(
        MergePair{"SELECT t FROM adHocNetwork(all,3) FRESHNESS 10sec "
                  "DURATION 1hour EVERY 15sec",
                  "SELECT t FROM adHocNetwork(all,1) FRESHNESS 20sec "
                  "DURATION 2hour EVERY 30sec"},
        MergePair{"SELECT t FROM adHocNetwork(5,2) DURATION 1hour "
                  "EVERY 5sec",
                  "SELECT t FROM adHocNetwork(9,4) DURATION 3hour "
                  "EVERY 7sec"},
        MergePair{"SELECT t WHERE accuracy<=0.2 DURATION 1hour EVERY 10sec",
                  "SELECT t WHERE accuracy<=0.5 DURATION 1hour EVERY 9sec"},
        MergePair{"SELECT t WHERE accuracy<=0.2 DURATION 1hour EVERY 8sec",
                  "SELECT t WHERE accuracy<=0.2 DURATION 2hour EVERY 4sec"},
        MergePair{"SELECT t DURATION 30 samples", "SELECT t DURATION "
                                                  "90 samples"},
        MergePair{"SELECT t FRESHNESS 5sec DURATION 1hour "
                  "EVENT AVG(t)>25",
                  "SELECT t FRESHNESS 50sec DURATION 4hour "
                  "EVENT AVG(t)>25"}));

// --- Predicate algebra -------------------------------------------------------

class PredicateAlgebraTest : public ::testing::TestWithParam<std::uint64_t> {
};

query::Predicate GenerateComparison(Rng& rng) {
  query::Comparison c;
  const int pick = static_cast<int>(rng.UniformInt(0, 2));
  c.field = pick == 0 ? "value" : (pick == 1 ? "accuracy" : "correctness");
  c.op = static_cast<query::CompareOp>(rng.UniformInt(0, 5));
  c.literal = rng.Uniform(-10, 10);
  return query::Predicate::Leaf(std::move(c));
}

TEST_P(PredicateAlgebraTest, DoubleNegationIsIdentity) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const query::Predicate p = GenerateComparison(rng);
    const query::Predicate not_not_p =
        query::Predicate::Not(query::Predicate::Not(p));
    CxtItem item;
    item.type = "t";
    item.value = rng.Uniform(-10, 10);
    item.metadata.accuracy = rng.Uniform(0, 10);
    item.metadata.correctness = rng.Uniform(0, 1);
    const auto direct = query::EvalWhere(p, item);
    const auto doubled = query::EvalWhere(not_not_p, item);
    ASSERT_EQ(direct.ok(), doubled.ok());
    if (direct.ok()) EXPECT_EQ(*direct, *doubled);
  }
}

TEST_P(PredicateAlgebraTest, DeMorgan) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const query::Predicate a = GenerateComparison(rng);
    const query::Predicate b = GenerateComparison(rng);
    // NOT (a AND b) == (NOT a) OR (NOT b)
    const auto lhs = query::Predicate::Not(query::Predicate::And({a, b}));
    const auto rhs = query::Predicate::Or(
        {query::Predicate::Not(a), query::Predicate::Not(b)});
    CxtItem item;
    item.type = "t";
    item.value = rng.Uniform(-10, 10);
    item.metadata.accuracy = rng.Uniform(0, 10);
    item.metadata.correctness = rng.Uniform(0, 1);
    const auto l = query::EvalWhere(lhs, item);
    const auto r = query::EvalWhere(rhs, item);
    ASSERT_TRUE(l.ok() && r.ok());
    EXPECT_EQ(*l, *r);
  }
}

TEST_P(PredicateAlgebraTest, EqAndNeArePartition) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    query::Comparison eq;
    eq.field = "value";
    eq.op = query::CompareOp::kEq;
    eq.literal = rng.Uniform(-3, 3);
    query::Comparison ne = eq;
    ne.op = query::CompareOp::kNe;
    CxtItem item;
    item.type = "t";
    item.value = rng.Uniform(-3, 3);
    const auto e = query::EvalWhere(query::Predicate::Leaf(eq), item);
    const auto n = query::EvalWhere(query::Predicate::Leaf(ne), item);
    ASSERT_TRUE(e.ok() && n.ok());
    EXPECT_NE(*e, *n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateAlgebraTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- Simulation determinism ---------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismTest, SameSeedSameTrajectory) {
  const auto run = [&](std::uint64_t seed) {
    sim::Simulation sim{seed};
    Rng rng = sim.rng().Fork();
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 20; ++i) {
      sim.ScheduleAfter(FromMillis(rng.Uniform(1, 100)), [&, i] {
        trace.push_back(sim.Now().time_since_epoch().count() + i);
      });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
  EXPECT_NE(run(GetParam()), run(GetParam() + 1));
}

TEST_P(DeterminismTest, EnergyIntegralMatchesClosedForm) {
  sim::Simulation sim{GetParam()};
  energy::EnergyModel model{sim};
  Rng rng{GetParam()};
  double expected = 0.0;
  double current_mw = 0.0;
  SimTime last = sim.Now();
  for (int i = 0; i < 200; ++i) {
    const auto dwell = FromMillis(rng.Uniform(1, 5'000));
    sim.RunFor(dwell);
    expected += current_mw / 1e3 * ToSeconds(sim.Now() - last);
    last = sim.Now();
    current_mw = rng.Uniform(0, 1'500);
    model.SetComponentPower("load", current_mw);
  }
  sim.RunFor(1s);
  expected += current_mw / 1e3 * ToSeconds(sim.Now() - last);
  EXPECT_NEAR(model.TotalEnergyJoules(), expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(7, 77, 777, 7777));

// --- NMEA round trip across the globe ----------------------------------------

struct NmeaPoint {
  double lat;
  double lon;
};

class NmeaSweepTest : public ::testing::TestWithParam<NmeaPoint> {};

TEST_P(NmeaSweepTest, RoundTripsWithinCentidegree) {
  sensors::GpsFix fix;
  fix.position = {GetParam().lat, GetParam().lon};
  fix.speed_knots = 7.3;
  fix.course_deg = 211.0;
  fix.time = kSimEpoch + 12'345s;
  const auto parsed = sensors::ParseNmeaBurst(sensors::BuildNmeaBurst(fix));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NEAR(parsed->position.lat, fix.position.lat, 1e-4);
  EXPECT_NEAR(parsed->position.lon, fix.position.lon, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Globe, NmeaSweepTest,
    ::testing::Values(NmeaPoint{60.15, 24.90}, NmeaPoint{0.0, 0.0},
                      NmeaPoint{-33.85, 151.21}, NmeaPoint{51.5, -0.12},
                      NmeaPoint{-54.8, -68.3}, NmeaPoint{89.9, 179.9},
                      NmeaPoint{-89.9, -179.9}));

// --- BT segmentation monotonicity -------------------------------------------

class SegmentationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SegmentationTest, WireBytesMonotoneAndBounded) {
  sim::Simulation sim;
  net::Medium medium;
  net::BluetoothBus bus{medium};
  phone::SmartPhone phone{sim, phone::Nokia6630(), "p"};
  const auto node = medium.Register("p", {0, 0});
  net::BluetoothController bt{sim, bus, phone, node};
  const std::size_t n = GetParam();
  EXPECT_GE(bt.WireBytes(n), n);
  EXPECT_GE(bt.WireBytes(n + 1), bt.WireBytes(n));
  // Overhead is bounded by one extra header per payload chunk.
  const auto& p = phone.profile();
  const std::size_t max_overhead =
      (n / static_cast<std::size_t>(p.bt_segment_payload_bytes) + 1) *
      static_cast<std::size_t>(p.bt_segment_overhead_bytes);
  EXPECT_LE(bt.WireBytes(n) - n, max_overhead);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SegmentationTest,
                         ::testing::Values(1, 53, 95, 96, 97, 136, 192, 340,
                                           1000, 4096));

}  // namespace
}  // namespace contory
