// End-to-end CityScenario tests: a small dense city where SM-FINDER
// rounds succeed under mobility, runs are deterministic per seed, energy
// accrues across the fleet, and the grid/mobility metrics surface in the
// MetricsRegistry.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>

#include "obs/observability.hpp"
#include "testbed/city_scenario.hpp"

namespace contory::testbed {
namespace {

using std::chrono::seconds;

CityOptions SmallCity() {
  CityOptions options;
  options.phones = 60;
  options.area_m = 400.0;  // dense: WiFi degree ~ 11 at 100 m range
  options.provider_fraction = 0.3;
  options.seed = 7;
  return options;
}

TEST(CityTest, FinderCollectsProviderItemsUnderMobility) {
  obs::Observability::ResetForTest();
  CityScenario city(SmallCity());
  ASSERT_EQ(city.phone_count(), 60u);
  ASSERT_GT(city.provider_count(), 0u);
  ASSERT_NE(city.mobility(), nullptr);

  std::optional<CityScenario::FinderOutcome> outcome;
  city.LaunchFinder(/*issuer=*/0, /*num_nodes=*/-1, /*num_hops=*/8,
                    seconds{30},
                    [&](CityScenario::FinderOutcome o) { outcome = o; });
  city.sim().RunFor(seconds{40});

  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->replied);
  EXPECT_TRUE(outcome->success);
  EXPECT_GT(outcome->items, 0u);
  EXPECT_GT(outcome->hops, 0);
  EXPECT_LT(outcome->latency, SimDuration{seconds{30}});
  EXPECT_GT(city.mobility()->position_updates(), 0u);
}

TEST(CityTest, RunsAreDeterministicPerSeed) {
  struct Result {
    CityScenario::FinderOutcome outcome;
    double joules = 0.0;
    std::uint64_t moves = 0;
  };
  const auto run = [] {
    obs::Observability::ResetForTest();
    CityScenario city(SmallCity());
    Result r;
    city.LaunchFinder(0, -1, 8, seconds{30},
                      [&](CityScenario::FinderOutcome o) { r.outcome = o; });
    city.sim().RunFor(seconds{40});
    r.joules = city.TotalEnergyJoules();
    r.moves = city.mobility()->position_updates();
    return r;
  };
  const Result a = run();
  const Result b = run();
  EXPECT_EQ(a.outcome.success, b.outcome.success);
  EXPECT_EQ(a.outcome.hops, b.outcome.hops);
  EXPECT_EQ(a.outcome.items, b.outcome.items);
  EXPECT_EQ(a.outcome.latency, b.outcome.latency);
  EXPECT_DOUBLE_EQ(a.joules, b.joules);
  EXPECT_EQ(a.moves, b.moves);
}

TEST(CityTest, NoProvidersMeansNoSuccess) {
  obs::Observability::ResetForTest();
  CityOptions options = SmallCity();
  options.provider_fraction = 0.0;
  CityScenario city(options);
  EXPECT_EQ(city.provider_count(), 0u);

  std::optional<CityScenario::FinderOutcome> outcome;
  city.LaunchFinder(0, -1, 8, seconds{30},
                    [&](CityScenario::FinderOutcome o) { outcome = o; });
  city.sim().RunFor(seconds{40});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->success);
  EXPECT_EQ(outcome->items, 0u);
}

TEST(CityTest, NumNodesBoundsCollectedItems) {
  obs::Observability::ResetForTest();
  CityScenario city(SmallCity());
  std::optional<CityScenario::FinderOutcome> outcome;
  city.LaunchFinder(0, /*num_nodes=*/1, /*num_hops=*/8, seconds{30},
                    [&](CityScenario::FinderOutcome o) { outcome = o; });
  city.sim().RunFor(seconds{40});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_LE(outcome->items, 1u);
}

TEST(CityTest, EnergyAccruesAcrossTheFleet) {
  obs::Observability::ResetForTest();
  CityScenario city(SmallCity());
  city.sim().RunFor(seconds{10});
  const double early = city.TotalEnergyJoules();
  EXPECT_GT(early, 0.0);  // idle + WiFi-connected drain on 60 phones
  city.sim().RunFor(seconds{10});
  EXPECT_GT(city.TotalEnergyJoules(), early);
}

TEST(CityTest, GridAndMobilityMetricsSurface) {
  obs::Observability::ResetForTest();
  CityScenario city(SmallCity());
  std::optional<CityScenario::FinderOutcome> outcome;
  city.LaunchFinder(0, -1, 8, seconds{30},
                    [&](CityScenario::FinderOutcome o) { outcome = o; });
  city.sim().RunFor(seconds{40});

  if (!obs::Observability::Enabled()) GTEST_SKIP() << "obs disabled";
  const auto& metrics = obs::Observability::metrics();
  const auto* queries = metrics.FindCounter("medium_neighbor_queries_total",
                                            {{"backend", "grid"}});
  ASSERT_NE(queries, nullptr);
  EXPECT_GT(queries->value(), 0u);
  const auto* cells = metrics.FindGauge("medium_grid_cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_GT(cells->value(), 0.0);
  const auto* moves = metrics.FindCounter("mobility_position_updates_total");
  ASSERT_NE(moves, nullptr);
  EXPECT_EQ(moves->value(), city.mobility()->position_updates());
}

TEST(CityTest, RefreshTagsKeepsFindersWorking) {
  obs::Observability::ResetForTest();
  CityScenario city(SmallCity());
  city.sim().RunFor(seconds{60});
  city.RefreshTags();  // re-stamp provider items at current sim time
  std::optional<CityScenario::FinderOutcome> outcome;
  city.LaunchFinder(3, -1, 8, seconds{30},
                    [&](CityScenario::FinderOutcome o) { outcome = o; });
  city.sim().RunFor(seconds{40});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->replied);
}

}  // namespace
}  // namespace contory::testbed
