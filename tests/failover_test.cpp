// The Fig. 5 experiment as a test: BT-GPS location provisioning, GPS
// failure, transparent switch to ad hoc provisioning, GPS recovery,
// switch back.
#include <gtest/gtest.h>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest() : world_(500) {
    // The querying phone.
    testbed::DeviceOptions phone_opts;
    phone_opts.name = "phone-A";
    phone_opts.position = {0, 0};
    core::ContextFactoryConfig cfg;
    cfg.recovery_probe_period = 20s;
    phone_opts.factory_config = cfg;
    device_ = &world_.AddDevice(phone_opts);

    // Its BT-GPS, 3 m away (on the same boat).
    gps_ = &world_.AddGps("gps-1", {3, 0});

    // A neighboring device publishing location items over BT (someone
    // else's boat within radio range).
    testbed::DeviceOptions neighbor_opts;
    neighbor_opts.name = "phone-B";
    neighbor_opts.position = {6, 0};
    neighbor_ = &world_.AddDevice(neighbor_opts);
    EXPECT_TRUE(
        neighbor_->contory().RegisterCxtServer(neighbor_client_).ok());
    // The neighbor re-publishes its own location every 5 s.
    publish_task_ = std::make_unique<sim::PeriodicTask>(
        world_.sim(), 5s, [this] {
          CxtItem item;
          item.id = world_.sim().ids().NextId("nb-item");
          item.type = vocab::kLocation;
          item.value = sensors::ToGeo(neighbor_->position());
          item.timestamp = world_.Now();
          item.metadata.accuracy = 30.0;  // coarser than own GPS
          (void)neighbor_->contory().PublishCxtItem(item, true);
        });
  }

  testbed::World world_;
  testbed::Device* device_ = nullptr;
  testbed::Device* neighbor_ = nullptr;
  sensors::GpsDevice* gps_ = nullptr;
  CollectingClient neighbor_client_;
  std::unique_ptr<sim::PeriodicTask> publish_task_;
};

TEST_F(FailoverTest, SwitchesToAdHocAndBack) {
  CollectingClient client;
  const auto id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT location DURATION 20 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Phase 1: GPS provisioning (after ~14 s discovery+SDP+connect).
  world_.RunFor(60s);
  ASSERT_FALSE(client.items.empty());
  EXPECT_TRUE(device_->contory()
                  .CurrentMechanisms(*id)
                  .contains(query::SourceSel::kIntSensor));
  const auto items_phase1 = client.items.size();
  EXPECT_EQ(client.items.back().source.kind, SourceKind::kIntSensor);

  // Phase 2: "After 155 sec, we caused a GPS failure by manually
  // switching off the GPS device."
  gps_->PowerOff();
  world_.RunFor(120s);
  // Contory switched to ad hoc provisioning.
  EXPECT_TRUE(device_->contory()
                  .CurrentMechanisms(*id)
                  .contains(query::SourceSel::kAdHocNetwork));
  EXPECT_GT(client.items.size(), items_phase1);
  EXPECT_EQ(client.items.back().source.kind, SourceKind::kAdHocNetwork);
  ASSERT_FALSE(device_->contory().switch_log().empty());
  EXPECT_EQ(device_->contory().switch_log()[0].from,
            query::SourceSel::kIntSensor);
  EXPECT_EQ(device_->contory().switch_log()[0].to,
            query::SourceSel::kAdHocNetwork);
  // The client was told.
  EXPECT_FALSE(client.errors.empty());

  // Phase 3: "Later on, the GPS device becomes available again. Once the
  // GPS device is discovered, Contory switches back."
  gps_->PowerOn();
  world_.RunFor(180s);
  EXPECT_TRUE(device_->contory()
                  .CurrentMechanisms(*id)
                  .contains(query::SourceSel::kIntSensor));
  EXPECT_GE(device_->contory().switch_log().size(), 2u);
  EXPECT_EQ(device_->contory().switch_log().back().to,
            query::SourceSel::kIntSensor);
  EXPECT_EQ(client.items.back().source.kind, SourceKind::kIntSensor);
}

TEST_F(FailoverTest, DeliveryContinuesThroughFailure) {
  CollectingClient client;
  const auto id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 20 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world_.RunFor(60s);
  gps_->PowerOff();
  const auto at_failure = client.items.size();
  world_.RunFor(3min);
  // "context provisioning should take place without any interruption":
  // the ad hoc path keeps items flowing.
  EXPECT_GT(client.items.size(), at_failure + 10);
}

TEST_F(FailoverTest, NoAlternativeMeansInformError) {
  // Kill the neighbor as well: failover has nowhere to go.
  neighbor_->bt()->SetEnabled(false);
  CollectingClient client;
  const auto id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 20 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world_.RunFor(60s);
  gps_->PowerOff();
  world_.RunFor(2min);
  EXPECT_FALSE(client.errors.empty());
}

TEST_F(FailoverTest, SwitchCostIsBtDiscovery) {
  // "The cost in terms of power consumption of the switches is due mostly
  // to the BT device discovery." Verify the failover window contains an
  // inquiry-powered period on the phone.
  CollectingClient client;
  ASSERT_TRUE(device_->contory()
                  .ProcessCxtQuery(Q(world_.sim(),
                                     "SELECT location DURATION 20 min "
                                     "EVERY 5 sec"),
                                   client)
                  .ok());
  world_.RunFor(60s);
  gps_->PowerOff();
  double peak = 0.0;
  device_->phone().energy().SetPowerListener(
      [&](SimTime, double mw) { peak = std::max(peak, mw); });
  world_.RunFor(2min);
  // Inquiry draws ~360 mW — the discovery peaks Fig. 5 shows (163-292 mW
  // averaged over the meter's 500 ms window).
  EXPECT_GT(peak, 150.0);
}

}  // namespace
}  // namespace contory::core
