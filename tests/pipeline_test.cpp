// Sharded pipeline tests: the lock-free rings, the query-id interner,
// the ShardedQueryTable's partitioning/bounded-log/aggregate-counter
// behavior, cross-shard lifecycle races, and the batch submit path in
// both deterministic and worker mode — including the obs-consistency
// invariant (admitted == completed + live, zero invalid transitions, no
// leaked open spans) at 100k-query scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/ring.hpp"
#include "core/contory.hpp"
#include "fault/fault_injector.hpp"
#include "obs/observability.hpp"
#include "testbed/testbed.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

// --- Rings ------------------------------------------------------------------

TEST(RingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingCapacityFor(0), 2u);
  EXPECT_EQ(RingCapacityFor(1), 2u);
  EXPECT_EQ(RingCapacityFor(2), 2u);
  EXPECT_EQ(RingCapacityFor(3), 4u);
  EXPECT_EQ(RingCapacityFor(1000), 1024u);
  EXPECT_EQ(RingCapacityFor(1024), 1024u);
}

TEST(RingTest, SpscFifoFullEmptyAndWraparound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  // Drain half, refill past the physical end: FIFO order must survive
  // the index wraparound.
  EXPECT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.TryPush(4));
  EXPECT_TRUE(ring.TryPush(5));
  for (int expect = 2; expect <= 5; ++expect) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.TryPop(out));
}

TEST(RingTest, SpscCrossThreadTransfersEverything) {
  SpscRing<std::uint64_t> ring(256);
  constexpr std::uint64_t kItems = 200'000;
  std::uint64_t sum = 0;
  std::thread producer([&ring] {
    for (std::uint64_t i = 1; i <= kItems; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 1;
  for (std::uint64_t got = 0; got < kItems;) {
    std::uint64_t v = 0;
    if (!ring.TryPop(v)) {
      std::this_thread::yield();
      continue;
    }
    // SPSC additionally guarantees order, not just delivery.
    ASSERT_EQ(v, expect);
    ++expect;
    sum += v;
    ++got;
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

TEST(RingTest, MpmcSingleThreadedFifo) {
  MpmcRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  for (int expect = 0; expect < 4; ++expect) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.TryPop(out));
}

TEST(RingTest, MpmcConcurrentProducersConsumersLoseNothing) {
  MpmcRing<std::uint64_t> ring(128);
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 50'000;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> sum{0};

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      const std::uint64_t base = p * kPerProducer;
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        while (!ring.TryPush(base + i)) std::this_thread::yield();
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        std::uint64_t v = 0;
        if (ring.TryPop(v)) {
          sum.fetch_add(v, std::memory_order_relaxed);
          if (consumed.fetch_add(1, std::memory_order_relaxed) + 1 ==
              kProducers * kPerProducer) {
            return;
          }
          continue;
        }
        if (consumed.load(std::memory_order_relaxed) >=
            kProducers * kPerProducer) {
          return;
        }
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::uint64_t expect = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    const std::uint64_t base = p * kPerProducer;
    expect += base * kPerProducer + kPerProducer * (kPerProducer + 1) / 2;
  }
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), expect);
}

// --- QueryIdInterner --------------------------------------------------------

TEST(InternerTest, DenseIdsLookupAndRelease) {
  core::QueryIdInterner interner;
  const auto a = interner.Intern("q-a");
  const auto b = interner.Intern("q-b");
  EXPECT_TRUE(a.created);
  EXPECT_TRUE(b.created);
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(b.id, 2u);

  const auto dup = interner.Intern("q-a");
  EXPECT_FALSE(dup.created);
  EXPECT_EQ(dup.id, a.id);

  EXPECT_EQ(interner.Lookup("q-b"), b.id);
  EXPECT_EQ(interner.Name(b.id), "q-b");
  EXPECT_EQ(interner.Lookup("q-missing"), core::kInvalidQueryId);
  EXPECT_EQ(interner.live(), 2u);

  interner.Release(a.id);
  EXPECT_EQ(interner.Lookup("q-a"), core::kInvalidQueryId);
  EXPECT_EQ(interner.Name(a.id), "");
  EXPECT_EQ(interner.live(), 1u);

  // Re-interning a released name allocates a fresh id, never recycles.
  const auto a2 = interner.Intern("q-a");
  EXPECT_TRUE(a2.created);
  EXPECT_EQ(a2.id, 3u);
  EXPECT_EQ(interner.total_interned(), 3u);
}

TEST(InternerTest, ChurnKeepsLiveSetSmall) {
  core::QueryIdInterner interner;
  // Far more churn than one name chunk holds: the front-chunk recycling
  // path must keep running (this is the memory bound — live names, not
  // names ever interned).
  for (int i = 0; i < 5000; ++i) {
    const auto r = interner.Intern("q-" + std::to_string(i));
    ASSERT_TRUE(r.created);
    interner.Release(r.id);
  }
  EXPECT_EQ(interner.live(), 0u);
  EXPECT_EQ(interner.total_interned(), 5000u);
}

// --- ShardedQueryTable ------------------------------------------------------

class ShardedTableTest : public ::testing::Test {
 protected:
  ShardedTableTest()
      : table_(sim_, core::ShardedQueryTableOptions{
                         .shards = 8, .completion_log_capacity = 0}) {}

  query::CxtQuery MakeQuery(const std::string& id) {
    auto q = query::ParseQuery(
        "SELECT temperature FROM intSensor DURATION 1 min EVERY 30 sec");
    EXPECT_TRUE(q.ok());
    q->id = id;
    return *std::move(q);
  }

  sim::Simulation sim_{11};
  core::CollectingClient client_;
  core::ShardedQueryTable table_;
};

TEST_F(ShardedTableTest, StripesAcrossAllShards) {
  constexpr int kQueries = 64;
  for (int i = 0; i < kQueries; ++i) {
    const auto r = table_.Admit(MakeQuery("q-" + std::to_string(i)), client_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(table_.active_count(), static_cast<std::size_t>(kQueries));
  EXPECT_EQ(table_.shard_count(), 8u);

  // Dense sequential ids round-robin the shards, so every shard holds
  // exactly its share.
  std::size_t total = 0;
  for (std::size_t s = 0; s < table_.shard_count(); ++s) {
    const auto ids = table_.ActiveIdsShard(s);
    EXPECT_EQ(ids.size(), kQueries / 8u) << "shard " << s;
    total += ids.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kQueries));

  std::size_t visited = 0;
  table_.ForEachActive([&visited](const core::QueryRecord&) { ++visited; });
  EXPECT_EQ(visited, static_cast<std::size_t>(kQueries));

  const auto sorted = table_.ActiveIds();
  EXPECT_EQ(sorted.size(), static_cast<std::size_t>(kQueries));
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST_F(ShardedTableTest, DuplicateAdmitIsRefused) {
  ASSERT_TRUE(table_.Admit(MakeQuery("q-dup"), client_).ok());
  const auto r = table_.Admit(MakeQuery("q-dup"), client_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(table_.active_count(), 1u);
}

TEST_F(ShardedTableTest, FindByIdAndByStringAgree) {
  const auto r = table_.Admit(MakeQuery("q-find"), client_);
  ASSERT_TRUE(r.ok());
  core::QueryRecord* by_id = table_.FindById(*r);
  core::QueryRecord* by_name = table_.Find("q-find");
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(by_id, by_name);
  EXPECT_EQ(by_id->qid, *r);
  EXPECT_EQ(table_.FindById(9999), nullptr);
  EXPECT_EQ(table_.Find("q-missing"), nullptr);
}

TEST_F(ShardedTableTest, CompletionLogIsBounded) {
  table_.SetCompletionLogCapacity(8);
  for (int i = 0; i < 20; ++i) {
    const std::string id = "q-" + std::to_string(i);
    ASSERT_TRUE(table_.Admit(MakeQuery(id), client_).ok());
    table_.Finish(id);
  }
  EXPECT_EQ(table_.completions().size(), 8u);
  EXPECT_EQ(table_.completions_dropped(), 12u);
  EXPECT_EQ(table_.total_completed(), 20u);
  EXPECT_EQ(table_.total_admitted(), 20u);
  EXPECT_EQ(table_.active_count(), 0u);
  // The bounded log keeps the newest completions.
  EXPECT_EQ(table_.completions().front().id, "q-12");
  EXPECT_EQ(table_.completions().back().id, "q-19");
}

TEST_F(ShardedTableTest, InvalidTransitionIsRefusedAndCounted) {
  const auto r = table_.Admit(MakeQuery("q-bad"), client_);
  ASSERT_TRUE(r.ok());
  core::QueryRecord* record = table_.FindById(*r);
  ASSERT_NE(record, nullptr);
  // ADMITTED -> FAILING_OVER: failover only leaves ACTIVE, so the edge
  // is illegal (ADMITTED -> DEGRADED, by contrast, is the overload
  // governor's stale fast path).
  EXPECT_FALSE(table_.Transition(*record, core::QueryState::kFailingOver));
  EXPECT_EQ(record->state, core::QueryState::kAdmitted);
  EXPECT_EQ(table_.invalid_transitions(), 1u);
  EXPECT_TRUE(table_.Transition(*record, core::QueryState::kActive));
}

TEST_F(ShardedTableTest, FinishTwiceIsSingleCompletion) {
  ASSERT_TRUE(table_.Admit(MakeQuery("q-once"), client_).ok());
  table_.Finish("q-once");
  table_.Finish("q-once");  // cancel racing an expiry: harmless no-op
  EXPECT_EQ(table_.completions().size(), 1u);
  EXPECT_EQ(table_.total_completed(), 1u);
}

// --- Cross-shard lifecycle races over the full middleware -------------------

class PipelineWorldTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Observability::ResetForTest(); }
  void TearDown() override { obs::Observability::ResetForTest(); }
};

TEST_F(PipelineWorldTest, CancelRacingDurationExpiryIsSingleTerminal) {
  // Both orders of the same-instant race: expiry event before the
  // cancel, and cancel before the expiry event.
  for (const bool cancel_first : {false, true}) {
    testbed::World world{601};
    testbed::DeviceOptions opts;
    opts.with_bt = false;
    opts.with_cellular = false;
    opts.internal_sensors = {vocab::kTemperature};
    auto& device = world.AddDevice(opts);

    core::CollectingClient client;
    std::string id;
    const auto submit = [&] {
      const auto r = device.contory().ProcessCxtQuery(
          Q(world.sim(),
            "SELECT temperature FROM intSensor DURATION 30 sec EVERY 5 sec"),
          client);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      id = *r;
    };
    if (cancel_first) {
      // Scheduled before the submit, so at t=30s the cancel runs before
      // the provider's duration-expiry event.
      world.sim().ScheduleAfter(30s, [&] {
        device.contory().CancelCxtQuery(id);
      });
      submit();
    } else {
      submit();
      world.sim().ScheduleAfter(30s, [&] {
        device.contory().CancelCxtQuery(id);
      });
    }
    world.RunFor(1min);

    const core::QueryTable& table = device.contory().queries();
    EXPECT_EQ(table.active_count(), 0u) << "cancel_first=" << cancel_first;
    EXPECT_EQ(table.invalid_transitions(), 0u);
    EXPECT_EQ(table.total_admitted(), table.total_completed());
    int completions = 0;
    for (const auto& completion : table.completions()) {
      if (completion.id == id) ++completions;
    }
    EXPECT_EQ(completions, 1) << "cancel_first=" << cancel_first;
  }
}

TEST_F(PipelineWorldTest, StopAllAcrossShardsIsSingleTerminalPerQuery) {
  testbed::World world{602};
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  // Few shards + many queries: StopAll must walk every shard's records
  // through the facade finish path without double-finishing any.
  core::ContextFactoryConfig cfg;
  cfg.table_shards = 4;
  cfg.enable_degraded_mode = false;
  opts.factory_config = cfg;
  auto& device = world.AddDevice(opts);

  core::CollectingClient client;
  std::vector<std::string> ids;
  for (int i = 0; i < 24; ++i) {
    const auto r = device.contory().ProcessCxtQuery(
        Q(world.sim(),
          "SELECT temperature FROM intSensor DURATION 10 min EVERY 30 sec"),
        client);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ids.push_back(*r);
  }
  world.RunFor(10s);
  ASSERT_EQ(device.contory().queries().active_count(), 24u);

  device.contory().facade(query::SourceSel::kIntSensor)
      .StopAll(ResourceExhausted("policy suspended the query"));
  world.RunFor(30s);

  const core::QueryTable& table = device.contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  EXPECT_EQ(table.total_completed(), 24u);
  for (const auto& id : ids) {
    int completions = 0;
    for (const auto& completion : table.completions()) {
      if (completion.id == id) ++completions;
    }
    EXPECT_EQ(completions, 1) << id;
  }
}

// --- Batch submit: deterministic and worker modes ---------------------------

std::vector<query::CxtQuery> MakeBatch(sim::Simulation& sim, int n) {
  std::vector<query::CxtQuery> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    queries.push_back(
        Q(sim, "SELECT temperature FROM intSensor DURATION 5 min EVERY 1 min"));
  }
  return queries;
}

testbed::DeviceOptions BatchDeviceOptions() {
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  return opts;
}

TEST_F(PipelineWorldTest, BatchDeterministicMatchesPerQueryLoop) {
  testbed::World world_a{603};
  testbed::World world_b{603};
  auto& device_a = world_a.AddDevice(BatchDeviceOptions());
  auto& device_b = world_b.AddDevice(BatchDeviceOptions());
  core::CollectingClient client_a;
  core::CollectingClient client_b;

  constexpr int kN = 50;
  std::set<std::string> ids_a;
  for (auto& q : MakeBatch(world_a.sim(), kN)) {
    const auto r = device_a.contory().ProcessCxtQuery(std::move(q), client_a);
    ASSERT_TRUE(r.ok());
    ids_a.insert(*r);
  }
  const auto results =
      device_b.contory().ProcessCxtQueryBatch(MakeBatch(world_b.sim(), kN),
                                              client_b);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kN));
  std::set<std::string> ids_b;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ids_b.insert(*r);
  }
  EXPECT_EQ(ids_a, ids_b);  // same generator, same seed, same order
  EXPECT_EQ(device_a.contory().queries().active_count(),
            device_b.contory().queries().active_count());

  world_a.RunFor(10min);
  world_b.RunFor(10min);
  EXPECT_EQ(client_a.items.size(), client_b.items.size());
  EXPECT_EQ(device_a.contory().queries().total_completed(),
            device_b.contory().queries().total_completed());
}

TEST_F(PipelineWorldTest, WorkerModeMatchesDeterministicFinalState) {
  constexpr int kN = 200;
  std::set<std::string> baseline_ids;
  std::size_t baseline_active = 0;
  std::uint64_t baseline_admitted = 0;

  for (const std::size_t workers : {std::size_t{0}, std::size_t{2},
                                    std::size_t{4}}) {
    testbed::World world{604};
    auto& device = world.AddDevice(BatchDeviceOptions());
    core::CollectingClient client;

    const auto results = device.contory().ProcessCxtQueryBatch(
        MakeBatch(world.sim(), kN), client,
        core::ContextFactory::BatchOptions{.workers = workers});
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kN));
    std::set<std::string> ids;
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok()) << "workers=" << workers << ": "
                          << r.status().ToString();
      ids.insert(*r);
    }

    const core::QueryTable& table = device.contory().queries();
    EXPECT_EQ(table.invalid_transitions(), 0u);
    EXPECT_EQ(table.total_admitted(),
              table.total_completed() + table.active_count());
    if (workers == 0) {
      baseline_ids = ids;
      baseline_active = table.active_count();
      baseline_admitted = table.total_admitted();
    } else {
      // Worker mode reorders events but must converge to the identical
      // final state: same ids admitted, same live population.
      EXPECT_EQ(ids, baseline_ids) << "workers=" << workers;
      EXPECT_EQ(table.active_count(), baseline_active);
      EXPECT_EQ(table.total_admitted(), baseline_admitted);
    }
  }
}

TEST_F(PipelineWorldTest, WorkerBatchReportsPerQueryRejections) {
  testbed::World world{605};
  auto& device = world.AddDevice(BatchDeviceOptions());
  core::CollectingClient client;

  auto queries = MakeBatch(world.sim(), 4);
  queries[2].id = queries[1].id;  // duplicate id inside the batch
  const auto results = device.contory().ProcessCxtQueryBatch(
      std::move(queries), client,
      core::ContextFactory::BatchOptions{.workers = 2});
  ASSERT_EQ(results.size(), 4u);
  int ok = 0;
  int duplicate = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
    } else if (r.status().code() == StatusCode::kAlreadyExists) {
      ++duplicate;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(duplicate, 1);
  EXPECT_EQ(device.contory().queries().active_count(), 3u);
  EXPECT_EQ(device.contory().queries().invalid_transitions(), 0u);
}

// The acceptance-scale invariant: at 100k concurrent queries, the obs
// counters and span population stay coherent across shards — admitted ==
// completed + live, no invalid transitions, and once everything is
// cancelled there are no leaked open spans.
TEST_F(PipelineWorldTest, ObsStaysConsistentAcrossShardsAt100k) {
  constexpr int kN = 100'000;
  testbed::World world{606};
  testbed::DeviceOptions opts = BatchDeviceOptions();
  core::ContextFactoryConfig cfg;
  cfg.table_shards = 16;
  // 100k *distinct* real-world queries would not merge; merged
  // mega-clusters also make per-query cancel quadratic (re-merge of the
  // surviving originals), which is not what this test measures.
  cfg.enable_query_merging = false;
  opts.factory_config = cfg;
  auto& device = world.AddDevice(opts);
  core::CollectingClient client;

  const auto results = device.contory().ProcessCxtQueryBatch(
      MakeBatch(world.sim(), kN), client,
      core::ContextFactory::BatchOptions{.workers = 2});
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kN));
  std::vector<std::string> ids;
  ids.reserve(kN);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ids.push_back(*r);
  }

  const core::QueryTable& table = device.contory().queries();
  EXPECT_EQ(table.active_count(), static_cast<std::size_t>(kN));
  EXPECT_EQ(table.total_admitted(),
            table.total_completed() + table.active_count());
  EXPECT_EQ(table.invalid_transitions(), 0u);

  // Compile-time and runtime gate together: a CONTORY_OBS=OFF build
  // never updates the counters this block reads.
  const bool obs_on = COBS_ON();
  if (obs_on) {
    auto& metrics = obs::Observability::metrics();
    EXPECT_DOUBLE_EQ(metrics.GetGauge("queries_live").value(),
                     static_cast<double>(kN));
    EXPECT_EQ(metrics.GetCounter("queries_admitted_total").value(),
              static_cast<std::uint64_t>(kN));
  }

  // Tear every query down and re-check the ledger from the other side.
  for (const auto& id : ids) device.contory().CancelCxtQuery(id);
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.total_completed(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(table.total_admitted(), table.total_completed());
  EXPECT_EQ(table.invalid_transitions(), 0u);
  if (obs_on) {
    auto& metrics = obs::Observability::metrics();
    EXPECT_DOUBLE_EQ(metrics.GetGauge("queries_live").value(), 0.0);
    // No leaked open spans: every root and stage span closed exactly once.
    EXPECT_EQ(obs::Observability::tracer().open_count(), 0u);
    EXPECT_EQ(obs::Observability::tracer().double_closes(), 0u);
  }
}

}  // namespace
}  // namespace contory
