// Unit tests for the CxtProvider base machinery (duration, filtering,
// event windowing, sample counting) via a scripted fake provider, plus
// LocalCxtProvider against the testbed.
#include <gtest/gtest.h>

#include "core/model/vocabulary.hpp"
#include "core/providers/local_provider.hpp"
#include "core/providers/provider.hpp"
#include "core/query/parser.hpp"
#include "testbed/testbed.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

/// Provider whose transport is the test body: items are pushed in
/// manually with Push().
class FakeProvider final : public CxtProvider {
 public:
  using CxtProvider::CxtProvider;
  query::SourceSel kind() const noexcept override {
    return query::SourceSel::kIntSensor;
  }
  const char* transport() const noexcept override { return "fake"; }
  void Push(CxtItem item) { Offer(std::move(item)); }
  void PushPreEvaluated(CxtItem item) { OfferPreEvaluated(std::move(item)); }
  void ForceFail(Status s) { Fail(std::move(s)); }
  void ForceComplete() { CompleteOk(); }

 protected:
  void DoStart() override {}
  void DoStop() override {}
};

CxtItem Item(sim::Simulation& sim, const std::string& type, double value,
             double accuracy = 0.2) {
  CxtItem item;
  item.id = sim.ids().NextId("item");
  item.type = type;
  item.value = value;
  item.timestamp = sim.Now();
  item.metadata.accuracy = accuracy;
  return item;
}

struct Harness {
  explicit Harness(sim::Simulation& sim, const std::string& query_text)
      : sim(sim) {
    CxtProvider::Callbacks callbacks;
    callbacks.deliver = [this](const CxtItem& item) {
      delivered.push_back(item);
    };
    callbacks.finished = [this](Status s) {
      finished = true;
      final_status = std::move(s);
    };
    provider = std::make_unique<FakeProvider>(sim, Q(sim, query_text),
                                              std::move(callbacks));
  }
  sim::Simulation& sim;
  std::unique_ptr<FakeProvider> provider;
  std::vector<CxtItem> delivered;
  bool finished = false;
  Status final_status;
};

TEST(ProviderBaseTest, DeliversMatchingItems) {
  sim::Simulation sim;
  Harness h{sim, "SELECT temperature DURATION 1 hour EVERY 10 sec"};
  h.provider->Start();
  h.provider->Push(Item(sim, "temperature", 14.0));
  EXPECT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.provider->items_delivered(), 1u);
}

TEST(ProviderBaseTest, FiltersWrongType) {
  sim::Simulation sim;
  Harness h{sim, "SELECT temperature DURATION 1 hour EVERY 10 sec"};
  h.provider->Start();
  h.provider->Push(Item(sim, "wind", 5.0));
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_EQ(h.provider->items_offered(), 1u);
}

TEST(ProviderBaseTest, AppliesWhere) {
  sim::Simulation sim;
  Harness h{sim,
            "SELECT temperature WHERE accuracy<=0.3 DURATION 1 hour "
            "EVERY 10 sec"};
  h.provider->Start();
  h.provider->Push(Item(sim, "temperature", 14.0, 0.2));
  h.provider->Push(Item(sim, "temperature", 15.0, 0.9));
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(ProviderBaseTest, AppliesFreshness) {
  sim::Simulation sim;
  Harness h{sim,
            "SELECT temperature FRESHNESS 10 sec DURATION 1 hour "
            "EVERY 10 sec"};
  h.provider->Start();
  auto stale = Item(sim, "temperature", 14.0);
  sim.RunFor(30s);
  h.provider->Push(stale);
  EXPECT_TRUE(h.delivered.empty());
  h.provider->Push(Item(sim, "temperature", 15.0));
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(ProviderBaseTest, DurationTimeCompletes) {
  sim::Simulation sim;
  Harness h{sim, "SELECT temperature DURATION 1 min EVERY 10 sec"};
  h.provider->Start();
  sim.RunFor(2min);
  EXPECT_TRUE(h.finished);
  EXPECT_TRUE(h.final_status.ok());
  EXPECT_FALSE(h.provider->running());
}

TEST(ProviderBaseTest, DurationSamplesCompletes) {
  sim::Simulation sim;
  Harness h{sim, "SELECT temperature DURATION 3 samples EVERY 10 sec"};
  h.provider->Start();
  for (int i = 0; i < 5; ++i) {
    h.provider->Push(Item(sim, "temperature", i));
  }
  EXPECT_TRUE(h.finished);
  EXPECT_TRUE(h.final_status.ok());
  EXPECT_EQ(h.delivered.size(), 3u);  // stops exactly at the target
}

TEST(ProviderBaseTest, EventGatesDelivery) {
  sim::Simulation sim;
  Harness h{sim,
            "SELECT temperature DURATION 1 hour "
            "EVENT AVG(temperature)>25"};
  h.provider->Start();
  h.provider->Push(Item(sim, "temperature", 20.0));
  h.provider->Push(Item(sim, "temperature", 24.0));
  EXPECT_TRUE(h.delivered.empty());  // avg 22
  h.provider->Push(Item(sim, "temperature", 40.0));
  EXPECT_EQ(h.delivered.size(), 1u);  // avg 28 fires
  EXPECT_DOUBLE_EQ(h.delivered[0].value.AsNumber().value(), 40.0);
}

TEST(ProviderBaseTest, PreEvaluatedBypassesEventWindow) {
  sim::Simulation sim;
  Harness h{sim,
            "SELECT temperature DURATION 1 hour "
            "EVENT AVG(temperature)>25"};
  h.provider->Start();
  h.provider->PushPreEvaluated(Item(sim, "temperature", 5.0));
  EXPECT_EQ(h.delivered.size(), 1u);  // server already decided
}

TEST(ProviderBaseTest, FailureReportsOnce) {
  sim::Simulation sim;
  Harness h{sim, "SELECT temperature DURATION 1 hour EVERY 10 sec"};
  h.provider->Start();
  h.provider->ForceFail(Unavailable("radio died"));
  EXPECT_TRUE(h.finished);
  EXPECT_EQ(h.final_status.code(), StatusCode::kUnavailable);
  // A second failure (or the duration timer) must not re-report.
  h.finished = false;
  h.provider->ForceFail(Unavailable("again"));
  sim.RunFor(2h);
  EXPECT_FALSE(h.finished);
}

TEST(ProviderBaseTest, StopIsSilent) {
  sim::Simulation sim;
  Harness h{sim, "SELECT temperature DURATION 1 min EVERY 10 sec"};
  h.provider->Start();
  h.provider->Stop();
  sim.RunFor(5min);
  EXPECT_FALSE(h.finished);
  h.provider->Push(Item(sim, "temperature", 1.0));
  EXPECT_TRUE(h.delivered.empty());  // stopped providers drop items
}

TEST(ProviderBaseTest, UpdateQueryExtendsDuration) {
  sim::Simulation sim;
  Harness h{sim, "SELECT temperature DURATION 1 min EVERY 10 sec"};
  h.provider->Start();
  sim.RunFor(30s);
  auto longer = h.provider->query();
  longer.duration.time = 1h;
  h.provider->UpdateQuery(longer);
  sim.RunFor(2min);
  EXPECT_FALSE(h.finished);  // extended past the original minute
}

TEST(ProviderBaseTest, DefaultPollPeriodTracksClauses) {
  sim::Simulation sim;
  Harness every{sim, "SELECT t DURATION 1 hour EVERY 42 sec"};
  EXPECT_EQ(every.provider->query().every, 42s);

  CxtProvider::Callbacks cb;
  cb.deliver = [](const CxtItem&) {};
  cb.finished = [](Status) {};
  FakeProvider fresh{
      sim, Q(sim, "SELECT t FRESHNESS 30 sec DURATION 1 hour"),
      std::move(cb)};
  (void)fresh;
}

// --- LocalCxtProvider against the testbed ---------------------------------

TEST(LocalProviderTest, SamplesInternalSensorPeriodically) {
  testbed::World world{77};
  testbed::DeviceOptions opts;
  opts.name = "phone-A";
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT temperature FROM intSensor "
                     "DURATION 1 min EVERY 10 sec"),
      client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  world.RunFor(1min + 1s);
  // Immediate first sample + 6 periodic ones (the last at t=60 may race
  // the duration timer, hence the tolerance).
  EXPECT_GE(client.items.size(), 6u);
  EXPECT_LE(client.items.size(), 8u);
  EXPECT_EQ(client.items[0].type, vocab::kTemperature);
  EXPECT_EQ(client.items[0].source.kind, SourceKind::kIntSensor);
}

TEST(LocalProviderTest, OnDemandSamplesOnceAndCompletes) {
  testbed::World world{78};
  testbed::DeviceOptions opts;
  opts.internal_sensors = {vocab::kWind};
  auto& device = world.AddDevice(opts);
  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT wind FROM intSensor DURATION 1 min"), client);
  ASSERT_TRUE(id.ok());
  world.RunFor(5s);
  EXPECT_EQ(client.items.size(), 1u);
  // Query completed: no longer tracked.
  EXPECT_EQ(device.contory().queries().active_count(), 0u);
}

TEST(LocalProviderTest, GpsStreamYieldsLocationItems) {
  testbed::World world{79};
  testbed::DeviceOptions opts;
  opts.name = "phone-A";
  auto& device = world.AddDevice(opts);
  world.AddGps("gps-1", {3, 0});

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT location FROM intSensor "
                     "DURATION 2 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok());
  // Discovery (13 s) + SDP (1.1 s) + connect, then 5 s cadence.
  world.RunFor(2min);
  EXPECT_GE(client.items.size(), 15u);
  EXPECT_TRUE(client.items[0].value.is_geo());
  EXPECT_EQ(client.items[0].source.address, "bt:gps-1");
  // Positions should be near the anchor (device at origin).
  const auto geo = client.items[0].value.AsGeo().value();
  EXPECT_NEAR(geo.lat, sensors::kMapAnchor.lat, 0.01);
}

TEST(LocalProviderTest, NoSensorNoGpsFailsQuery) {
  testbed::World world{80};
  testbed::DeviceOptions opts;
  opts.with_bt = false;  // no GPS path either
  auto& device = world.AddDevice(opts);
  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT humidity FROM intSensor DURATION 1 min"),
      client);
  // With an explicit FROM intSensor and nothing local, submission still
  // succeeds (the facade accepts) but the provider fails fast and the
  // client hears about it.
  world.RunFor(10s);
  if (id.ok()) {
    EXPECT_FALSE(client.errors.empty());
    EXPECT_TRUE(client.items.empty());
  }
}

}  // namespace
}  // namespace contory::core
