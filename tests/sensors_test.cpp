// Unit tests for the sensor substrate: coordinate mapping, environment
// fields, NMEA, and the BT-GPS device (including the Fig. 5 failure mode).
#include <gtest/gtest.h>

#include <memory>

#include "core/model/vocabulary.hpp"
#include "net/bluetooth.hpp"
#include "phone/phone_profiles.hpp"
#include "sensors/environment.hpp"
#include "sensors/gps.hpp"
#include "sensors/sensor.hpp"
#include "sim/simulation.hpp"

namespace contory::sensors {
namespace {

using namespace std::chrono_literals;

TEST(GeoMappingTest, RoundTripsThroughAnchor) {
  const net::Position p{1234.0, -567.0};
  const GeoPoint g = ToGeo(p);
  const net::Position back = FromGeo(g);
  EXPECT_NEAR(back.x, p.x, 0.01);
  EXPECT_NEAR(back.y, p.y, 0.01);
}

TEST(GeoMappingTest, AnchorMapsToItself) {
  const GeoPoint g = ToGeo({0, 0});
  EXPECT_DOUBLE_EQ(g.lat, kMapAnchor.lat);
  EXPECT_DOUBLE_EQ(g.lon, kMapAnchor.lon);
}

TEST(GeoMappingTest, MetricDistancePreserved) {
  const GeoPoint a = ToGeo({0, 0});
  const GeoPoint b = ToGeo({3000, 4000});
  EXPECT_NEAR(DistanceMeters(a, b), 5000.0, 15.0);
}

TEST(EnvironmentFieldTest, HasDefaultFields) {
  sim::Simulation sim{1};
  EnvironmentField field{sim};
  for (const char* type :
       {vocab::kTemperature, vocab::kWind, vocab::kHumidity,
        vocab::kPressure, vocab::kLight, vocab::kNoise}) {
    EXPECT_TRUE(field.Has(type)) << type;
  }
  EXPECT_FALSE(field.Has("flavor"));
  EXPECT_FALSE(field.TrueValue("flavor", {0, 0}, kSimEpoch).ok());
}

TEST(EnvironmentFieldTest, SpatialGradient) {
  sim::Simulation sim{1};
  EnvironmentField field{sim};
  // Default temperature gradient is +0.4/km east.
  const double here =
      field.TrueValue(vocab::kTemperature, {0, 0}, kSimEpoch).value();
  const double east =
      field.TrueValue(vocab::kTemperature, {10'000, 0}, kSimEpoch).value();
  EXPECT_NEAR(east - here, 4.0, 1e-9);
}

TEST(EnvironmentFieldTest, TemporalDrift) {
  sim::Simulation sim{1};
  EnvironmentField field{sim};
  const double morning =
      field.TrueValue(vocab::kTemperature, {0, 0}, kSimEpoch).value();
  const double noon = field
                          .TrueValue(vocab::kTemperature, {0, 0},
                                     kSimEpoch + std::chrono::hours{6})
                          .value();
  EXPECT_NEAR(noon - morning, 4.0, 1e-9);  // quarter period: full amplitude
}

TEST(EnvironmentFieldTest, SamplesAreNoisyButCentered) {
  sim::Simulation sim{2};
  EnvironmentField field{sim};
  const double truth =
      field.TrueValue(vocab::kTemperature, {0, 0}, kSimEpoch).value();
  double sum = 0.0;
  bool any_different = false;
  for (int i = 0; i < 200; ++i) {
    const double s = field.Sample(vocab::kTemperature, {0, 0}).value();
    sum += s;
    if (s != truth) any_different = true;
  }
  EXPECT_TRUE(any_different);
  EXPECT_NEAR(sum / 200.0, truth, 0.1);
}

TEST(EnvironmentFieldTest, ClampsRespected) {
  sim::Simulation sim{3};
  EnvironmentField field{sim};
  FieldConfig tiny;
  tiny.base = 0.5;
  tiny.noise_sigma = 100.0;
  tiny.min = 0.0;
  tiny.max = 1.0;
  field.Configure("clamped", tiny);
  for (int i = 0; i < 100; ++i) {
    const double v = field.Sample("clamped", {0, 0}).value();
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(EnvironmentSensorTest, ProducesWellFormedItems) {
  sim::Simulation sim{4};
  net::Medium medium;
  EnvironmentField field{sim};
  const auto node = medium.Register("boat", {100, 200});
  EnvironmentSensor sensor{sim,  field, medium, node, vocab::kTemperature,
                           "env:temp-1"};
  const auto item = sensor.Sample();
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->type, vocab::kTemperature);
  EXPECT_EQ(item->source.kind, SourceKind::kIntSensor);
  EXPECT_EQ(item->source.address, "env:temp-1");
  EXPECT_EQ(item->timestamp, sim.Now());
  EXPECT_TRUE(item->metadata.accuracy.has_value());
  EXPECT_FALSE(item->id.empty());
}

TEST(EnvironmentSensorTest, FailureInjection) {
  sim::Simulation sim{4};
  net::Medium medium;
  EnvironmentField field{sim};
  const auto node = medium.Register("boat", {0, 0});
  EnvironmentSensor sensor{sim,  field, medium, node, vocab::kWind,
                           "env:wind-1"};
  sensor.SetFailed(true);
  EXPECT_EQ(sensor.Sample().status().code(), StatusCode::kUnavailable);
  sensor.SetFailed(false);
  EXPECT_TRUE(sensor.Sample().ok());
}

TEST(NmeaTest, ChecksumMatchesKnownValue) {
  // Classic reference sentence.
  EXPECT_EQ(NmeaChecksum("GPGGA,,,,,,0,00,,,M,,M,,"), 0x66u);
}

TEST(NmeaTest, BurstIs340Bytes) {
  GpsFix fix;
  fix.position = {60.1520, 24.9090};
  fix.speed_knots = 6.5;
  fix.time = kSimEpoch + 3725s;
  EXPECT_EQ(BuildNmeaBurst(fix).size(), 340u);
}

TEST(NmeaTest, BurstRoundTripsThroughParser) {
  GpsFix fix;
  fix.position = {60.1520, 24.9090};
  fix.speed_knots = 6.5;
  fix.course_deg = 123.0;
  fix.time = kSimEpoch + 3725s;  // 01:02:05
  const auto parsed = ParseNmeaBurst(BuildNmeaBurst(fix));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NEAR(parsed->position.lat, 60.1520, 1e-4);
  EXPECT_NEAR(parsed->position.lon, 24.9090, 1e-4);
  EXPECT_NEAR(parsed->speed_knots, 6.5, 0.01);
  EXPECT_NEAR(parsed->course_deg, 123.0, 0.01);
  EXPECT_EQ(parsed->time, fix.time);
}

TEST(NmeaTest, SouthernWesternHemispheres) {
  GpsFix fix;
  fix.position = {-33.85, -151.21};
  const auto parsed = ParseNmeaBurst(BuildNmeaBurst(fix));
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed->position.lat, -33.85, 1e-4);
  EXPECT_NEAR(parsed->position.lon, -151.21, 1e-4);
}

TEST(NmeaTest, CorruptedBurstRejected) {
  GpsFix fix;
  fix.position = {60.15, 24.9};
  std::string burst = BuildNmeaBurst(fix);
  const auto pos = burst.find("GPRMC");
  burst[pos + 10] ^= 1;  // flip a bit inside the RMC body
  EXPECT_FALSE(ParseNmeaBurst(burst).ok());
  EXPECT_FALSE(ParseNmeaBurst("garbage").ok());
}

class GpsDeviceTest : public ::testing::Test {
 protected:
  GpsDeviceTest() {
    gps_node_ = medium_.Register("gps-1", {2, 0});
    phone_node_ = medium_.Register("phone", {0, 0});
    gps_ = std::make_unique<GpsDevice>(sim_, bus_, gps_node_, "gps-1");
    phone_bt_ = std::make_unique<net::BluetoothController>(
        sim_, bus_, phone_, phone_node_);
    phone_bt_->SetEnabled(true);
  }

  sim::Simulation sim_{31};
  net::Medium medium_;
  net::BluetoothBus bus_{medium_};
  phone::SmartPhone phone_{sim_, phone::Nokia6630(), "phone"};
  net::NodeId gps_node_{}, phone_node_{};
  std::unique_ptr<GpsDevice> gps_;
  std::unique_ptr<net::BluetoothController> phone_bt_;
};

TEST_F(GpsDeviceTest, DiscoverableWhenPoweredOn) {
  gps_->PowerOn();
  std::vector<net::BtDeviceInfo> found;
  phone_bt_->StartInquiry(
      [&](Result<std::vector<net::BtDeviceInfo>> r) { found = r.value(); });
  sim_.RunFor(20s);  // bounded: the GPS fix ticker never drains the queue
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "gps-1");
}

TEST_F(GpsDeviceTest, AdvertisesNmeaService) {
  gps_->PowerOn();
  sim_.RunFor(1s);
  std::vector<net::ServiceRecord> records;
  phone_bt_->DiscoverServices(
      gps_node_, kGpsServiceName,
      [&](Result<std::vector<net::ServiceRecord>> r) {
        records = r.value();
      });
  sim_.RunFor(5s);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].service_name, kGpsServiceName);
}

TEST_F(GpsDeviceTest, StreamsFixesOncePerSecond) {
  gps_->PowerOn();
  sim_.RunFor(1s);
  int bursts = 0;
  std::string last;
  phone_bt_->SetDataHandler([&](net::BtLinkId, net::NodeId,
                                const std::vector<std::byte>& data) {
    ++bursts;
    last.assign(reinterpret_cast<const char*>(data.data()), data.size());
  });
  phone_bt_->Connect(gps_node_, [](Result<net::BtLinkId>) {});
  sim_.RunFor(10s);
  EXPECT_GE(bursts, 8);
  EXPECT_LE(bursts, 11);
  EXPECT_EQ(last.size(), 340u);
  const auto fix = ParseNmeaBurst(last);
  ASSERT_TRUE(fix.ok());
  // GPS sits 2 m from the phone at the anchor: fix within noise bounds.
  EXPECT_NEAR(fix->position.lat, kMapAnchor.lat, 0.001);
}

TEST_F(GpsDeviceTest, PowerOffDropsLinkViaSupervisionTimeout) {
  gps_->PowerOn();
  sim_.RunFor(1s);
  phone_bt_->Connect(gps_node_, [](Result<net::BtLinkId>) {});
  sim_.RunFor(3s);
  bool dropped = false;
  phone_bt_->SetDisconnectHandler(
      [&](net::BtLinkId, net::NodeId) { dropped = true; });
  gps_->PowerOff();
  sim_.RunFor(5s);
  EXPECT_TRUE(dropped);
  EXPECT_FALSE(gps_->powered());
}

TEST_F(GpsDeviceTest, PowerCycleRestoresStreaming) {
  gps_->PowerOn();
  gps_->PowerOff();
  gps_->PowerOn();
  sim_.RunFor(1s);
  int bursts = 0;
  phone_bt_->SetDataHandler(
      [&](net::BtLinkId, net::NodeId, const std::vector<std::byte>&) {
        ++bursts;
      });
  phone_bt_->Connect(gps_node_, [](Result<net::BtLinkId>) {});
  sim_.RunFor(5s);
  EXPECT_GE(bursts, 3);
}

TEST_F(GpsDeviceTest, SpeedDerivedFromMovement) {
  gps_->PowerOn();
  sim_.RunFor(1s);
  std::string last;
  phone_bt_->SetDataHandler([&](net::BtLinkId, net::NodeId,
                                const std::vector<std::byte>& data) {
    last.assign(reinterpret_cast<const char*>(data.data()), data.size());
  });
  phone_bt_->Connect(gps_node_, [](Result<net::BtLinkId>) {});
  // Move the GPS node east at ~5 m/s; keep it within BT range of the
  // phone by moving the phone along.
  for (int i = 0; i < 10; ++i) {
    sim_.RunFor(1s);
    ASSERT_TRUE(medium_.SetPosition(gps_node_, {2.0 + 5.0 * i, 0}).ok());
    ASSERT_TRUE(medium_.SetPosition(phone_node_, {5.0 * i, 0}).ok());
  }
  sim_.RunFor(2s);
  const auto fix = ParseNmeaBurst(last);
  ASSERT_TRUE(fix.ok());
  // 5 m/s ~ 9.7 knots; allow fix-noise slack.
  EXPECT_NEAR(fix->speed_knots, 9.7, 5.0);
}

}  // namespace
}  // namespace contory::sensors
