// Property tests for the spatial-grid Medium: the grid is an index, not
// a semantics change, so every query must be byte-identical to the
// brute-force linear scan (the oracle kept behind use_grid=false) across
// randomized node sets, ranges, filters, and SetPosition/Unregister
// churn. Also pins the NodesWithin ordering contract (nearest first,
// distance ties by ascending NodeId) and the cell-size derivation.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/rng.hpp"
#include "net/medium.hpp"

namespace contory::net {
namespace {

/// Applies the same mutation to both mediums; node ids stay in lockstep
/// because Register assigns them densely in call order.
struct MirroredMediums {
  MirroredMediums() : oracle(MediumOptions{/*use_grid=*/false, 0.0}) {}

  NodeId Register(const std::string& name, Position pos) {
    const NodeId a = grid.Register(name, pos);
    const NodeId b = oracle.Register(name, pos);
    EXPECT_EQ(a, b);
    live.insert(a);
    return a;
  }
  void Unregister(NodeId id) {
    grid.Unregister(id);
    oracle.Unregister(id);
    live.erase(id);
  }
  void SetPosition(NodeId id, Position pos) {
    EXPECT_EQ(grid.SetPosition(id, pos).ok(),
              oracle.SetPosition(id, pos).ok());
  }

  Medium grid;
  Medium oracle;
  std::unordered_set<NodeId> live;
};

Position RandomPos(Rng& rng, double side) {
  return Position{rng.Uniform(0.0, side), rng.Uniform(0.0, side)};
}

class GridOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridOracleTest, ChurnedQueriesAreByteIdentical) {
  Rng rng{GetParam()};
  MirroredMediums m;
  const double side = 500.0;

  // Mixed node population, including exact-duplicate positions so the
  // NodeId tie-break is exercised, and a clustered blob in one cell.
  std::vector<NodeId> ids;
  for (int i = 0; i < 150; ++i) {
    Position pos = RandomPos(rng, side);
    if (i % 10 == 0) pos = Position{100.0, 100.0};       // exact ties
    if (i % 7 == 0) pos = Position{250.0 + (i % 3), 250.0};  // dense cell
    ids.push_back(m.Register("n" + std::to_string(i), pos));
  }
  m.grid.NoteRadioRange(10.0);   // BT-ish
  m.grid.NoteRadioRange(100.0);  // WiFi-ish -> rebuild at sqrt(10*100)
  m.oracle.NoteRadioRange(10.0);
  m.oracle.NoteRadioRange(100.0);

  const std::vector<double> ranges = {0.0, 3.0, 25.0, 100.0, 400.0, 1e9};
  for (int round = 0; round < 40; ++round) {
    // Churn: move a third (mix of small same-cell nudges and jumps),
    // unregister a node, register a replacement.
    for (const NodeId id : ids) {
      if (!m.live.contains(id) || !rng.Bernoulli(0.3)) continue;
      if (rng.Bernoulli(0.5)) {
        const auto pos = m.grid.GetPosition(id);
        ASSERT_TRUE(pos.ok());
        m.SetPosition(id, Position{pos->x + rng.Uniform(-1.0, 1.0),
                                   pos->y + rng.Uniform(-1.0, 1.0)});
      } else {
        m.SetPosition(id, RandomPos(rng, side));
      }
    }
    if (!m.live.empty() && rng.Bernoulli(0.5)) {
      const auto victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1));
      m.Unregister(ids[victim]);
    }
    if (rng.Bernoulli(0.5)) {
      ids.push_back(m.Register("r" + std::to_string(round),
                               RandomPos(rng, side)));
    }

    // Every live node against every range, unfiltered and filtered.
    for (const NodeId center : m.live) {
      for (const double range : ranges) {
        ASSERT_EQ(m.grid.NodesWithin(center, range),
                  m.oracle.NodesWithin(center, range))
            << "center " << center << " range " << range;
        const auto filter = [](NodeId n) { return n % 2 == 0; };
        ASSERT_EQ(m.grid.NodesWithin(center, range, filter),
                  m.oracle.NodesWithin(center, range, filter));
      }
    }
    // InRange / DistanceBetween parity over sampled pairs (including a
    // dead node to hit the error path).
    for (int k = 0; k < 50; ++k) {
      const auto pick = [&] {
        return ids[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))];
      };
      const NodeId a = pick();
      const NodeId b = pick();
      EXPECT_EQ(m.grid.InRange(a, b, 50.0), m.oracle.InRange(a, b, 50.0));
      const auto da = m.grid.DistanceBetween(a, b);
      const auto db = m.oracle.DistanceBetween(a, b);
      ASSERT_EQ(da.ok(), db.ok());
      if (da.ok()) EXPECT_EQ(*da, *db);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridOracleTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

TEST(MediumGridTest, TieBreakIsAscendingNodeId) {
  Medium medium;
  const NodeId center = medium.Register("c", {0, 0});
  // Four nodes exactly 10 m away, registered out of order.
  const NodeId n1 = medium.Register("e", {10, 0});
  const NodeId n2 = medium.Register("w", {-10, 0});
  const NodeId n3 = medium.Register("n", {0, 10});
  const NodeId n4 = medium.Register("s", {0, -10});
  const NodeId near = medium.Register("near", {1, 0});
  EXPECT_EQ(medium.NodesWithin(center, 10.0),
            (std::vector<NodeId>{near, n1, n2, n3, n4}));
}

TEST(MediumGridTest, FilterOnlySeesInRangeNodes) {
  Medium medium;
  const NodeId center = medium.Register("c", {0, 0});
  medium.Register("in", {5, 0});
  medium.Register("out", {500, 0});
  std::vector<NodeId> consulted;
  (void)medium.NodesWithin(center, 10.0, [&](NodeId n) {
    consulted.push_back(n);
    return true;
  });
  ASSERT_EQ(consulted.size(), 1u);
  EXPECT_EQ(medium.GetName(consulted[0]).value_or(""), "in");
}

TEST(MediumGridTest, SetPositionMigratesCells) {
  Medium medium(MediumOptions{true, 50.0});
  const NodeId center = medium.Register("c", {0, 0});
  const NodeId mover = medium.Register("m", {1000, 1000});
  EXPECT_TRUE(medium.NodesWithin(center, 20.0).empty());
  ASSERT_TRUE(medium.SetPosition(mover, {10, 0}).ok());
  EXPECT_EQ(medium.NodesWithin(center, 20.0), std::vector<NodeId>{mover});
  // Same-cell nudge keeps the index coherent too.
  ASSERT_TRUE(medium.SetPosition(mover, {12, 0}).ok());
  const auto d = medium.DistanceBetween(center, mover);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 12.0);
  EXPECT_EQ(medium.NodesWithin(center, 20.0), std::vector<NodeId>{mover});
}

TEST(MediumGridTest, CellSizeDerivesFromNotedRanges) {
  Medium medium;
  EXPECT_DOUBLE_EQ(medium.cell_size_m(), 100.0);  // default before hints
  medium.NoteRadioRange(10.0);
  EXPECT_DOUBLE_EQ(medium.cell_size_m(), 10.0);
  medium.NoteRadioRange(100.0);
  EXPECT_DOUBLE_EQ(medium.cell_size_m(), std::sqrt(10.0 * 100.0));
  // Fixed size ignores hints entirely.
  Medium fixed(MediumOptions{true, 25.0});
  fixed.NoteRadioRange(1000.0);
  EXPECT_DOUBLE_EQ(fixed.cell_size_m(), 25.0);
}

TEST(MediumGridTest, RebuildOnResizePreservesResults) {
  Medium grid;
  Medium oracle(MediumOptions{false, 0.0});
  Rng rng{5};
  std::vector<NodeId> ids;
  for (int i = 0; i < 64; ++i) {
    const Position pos{rng.Uniform(0, 300), rng.Uniform(0, 300)};
    ids.push_back(grid.Register("n", pos));
    oracle.Register("n", pos);
  }
  grid.NoteRadioRange(5.0);  // shrink cells -> full rebuild
  for (const NodeId id : ids) {
    ASSERT_EQ(grid.NodesWithin(id, 40.0), oracle.NodesWithin(id, 40.0));
  }
}

TEST(MediumGridTest, ExtremeCoordinatesClampSafely) {
  Medium grid;
  Medium oracle(MediumOptions{false, 0.0});
  const Position far{1e13, -1e13};
  const Position near{1e13 - 5.0, -1e13};
  for (Medium* m : {&grid, &oracle}) {
    m->Register("far", far);
    m->Register("near", near);
    m->Register("origin", {0, 0});
  }
  for (const NodeId center : grid.AllNodes()) {
    EXPECT_EQ(grid.NodesWithin(center, 10.0),
              oracle.NodesWithin(center, 10.0));
    EXPECT_EQ(grid.NodesWithin(center, 1e20),
              oracle.NodesWithin(center, 1e20));
  }
}

TEST(MediumGridTest, RuntimeToggleMatchesItself) {
  Medium medium;
  Rng rng{11};
  std::vector<NodeId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(
        medium.Register("n", {rng.Uniform(0, 200), rng.Uniform(0, 200)}));
  }
  for (const NodeId center : ids) {
    medium.set_use_grid(true);
    const auto with_grid = medium.NodesWithin(center, 60.0);
    medium.set_use_grid(false);
    EXPECT_EQ(medium.NodesWithin(center, 60.0), with_grid);
    medium.set_use_grid(true);
  }
}

TEST(MediumGridTest, OccupancyIntrospection) {
  Medium medium(MediumOptions{true, 100.0});
  EXPECT_EQ(medium.occupied_cells(), 0u);
  EXPECT_DOUBLE_EQ(medium.mean_cell_occupancy(), 0.0);
  medium.Register("a", {10, 10});
  medium.Register("b", {20, 20});    // same cell
  medium.Register("c", {550, 550});  // different cell
  EXPECT_EQ(medium.occupied_cells(), 2u);
  EXPECT_DOUBLE_EQ(medium.mean_cell_occupancy(), 1.5);
  const NodeId d = medium.Register("d", {560, 560});
  medium.Unregister(d);
  EXPECT_EQ(medium.occupied_cells(), 2u);
}

TEST(MediumGridTest, UnregisterSwapKeepsBackPointersCoherent) {
  // Three nodes in one cell; removing the middle one swap-moves the tail
  // entry. A follow-up move of the swapped node must not corrupt the
  // index (this is the slot back-pointer fix-up path).
  Medium medium(MediumOptions{true, 1000.0});
  const NodeId center = medium.Register("c", {0, 0});
  const NodeId a = medium.Register("a", {1, 0});
  const NodeId b = medium.Register("b", {2, 0});
  medium.Unregister(a);
  ASSERT_TRUE(medium.SetPosition(b, {5000, 5000}).ok());  // cross-cell
  EXPECT_TRUE(medium.NodesWithin(center, 10.0).empty());
  ASSERT_TRUE(medium.SetPosition(b, {3, 0}).ok());
  EXPECT_EQ(medium.NodesWithin(center, 10.0), std::vector<NodeId>{b});
}

}  // namespace
}  // namespace contory::net
