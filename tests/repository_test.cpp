// Unit tests for the local CxtRepository and the CxtAggregator.
#include <gtest/gtest.h>

#include "core/model/vocabulary.hpp"
#include "core/providers/aggregator.hpp"
#include "core/repository.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

CxtItem Item(const std::string& id, const std::string& type, double value,
             SimTime t, std::optional<SimDuration> lifetime = std::nullopt) {
  CxtItem item;
  item.id = id;
  item.type = type;
  item.value = value;
  item.timestamp = t;
  item.lifetime = lifetime;
  return item;
}

TEST(RepositoryTest, StoreAndLatest) {
  sim::Simulation sim;
  CxtRepository repo{sim};
  repo.Store(Item("a", "temperature", 10, sim.Now()));
  sim.RunFor(5s);
  repo.Store(Item("b", "temperature", 12, sim.Now()));
  EXPECT_EQ(repo.Latest("temperature")->id, "b");
  EXPECT_EQ(repo.size(), 2u);
}

TEST(RepositoryTest, LatestMissingTypeFails) {
  sim::Simulation sim;
  CxtRepository repo{sim};
  EXPECT_EQ(repo.Latest("wind").status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, RingEvictsOldestPerType) {
  sim::Simulation sim;
  CxtRepositoryConfig cfg;
  cfg.max_items_per_type = 3;
  CxtRepository repo{sim, cfg};
  for (int i = 0; i < 10; ++i) {
    repo.Store(Item("i" + std::to_string(i), "t", i, sim.Now()));
  }
  EXPECT_EQ(repo.size(), 3u);
  const auto recent = repo.Recent("t");
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].id, "i9");  // newest first
  EXPECT_EQ(recent[2].id, "i7");
}

TEST(RepositoryTest, TypesHaveIndependentRings) {
  sim::Simulation sim;
  CxtRepositoryConfig cfg;
  cfg.max_items_per_type = 2;
  CxtRepository repo{sim, cfg};
  repo.Store(Item("a", "t1", 1, sim.Now()));
  repo.Store(Item("b", "t2", 2, sim.Now()));
  repo.Store(Item("c", "t2", 3, sim.Now()));
  repo.Store(Item("d", "t2", 4, sim.Now()));
  EXPECT_EQ(repo.Recent("t1").size(), 1u);
  EXPECT_EQ(repo.Recent("t2").size(), 2u);
}

TEST(RepositoryTest, ExpiredItemsInvisibleAndPurgeable) {
  sim::Simulation sim;
  CxtRepository repo{sim};
  repo.Store(Item("a", "t", 1, sim.Now(), SimDuration{10s}));
  repo.Store(Item("b", "t", 2, sim.Now()));
  sim.RunFor(20s);
  EXPECT_EQ(repo.Latest("t")->id, "b");
  EXPECT_EQ(repo.Recent("t").size(), 1u);
  EXPECT_EQ(repo.PurgeExpired(), 1u);
  EXPECT_EQ(repo.size(), 1u);
}

TEST(RepositoryTest, RecentHonorsMaxN) {
  sim::Simulation sim;
  CxtRepository repo{sim};
  for (int i = 0; i < 5; ++i) {
    repo.Store(Item("i" + std::to_string(i), "t", i, sim.Now()));
  }
  EXPECT_EQ(repo.Recent("t", 2).size(), 2u);
}

TEST(RepositoryTest, ShrinkReducesCapacityAndContent) {
  sim::Simulation sim;
  CxtRepository repo{sim};  // default 8 per type
  for (int i = 0; i < 8; ++i) {
    repo.Store(Item("i" + std::to_string(i), "t", i, sim.Now()));
  }
  repo.Shrink(2);  // the reduceMemory action
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.capacity_per_type(), 2u);
  repo.Store(Item("x", "t", 99, sim.Now()));
  EXPECT_EQ(repo.size(), 2u);  // stays capped
}

TEST(AggregatorTest, PassThroughDeduplicates) {
  sim::Simulation sim;
  CxtAggregator agg{sim};
  auto item = Item("same-id", "t", 1, sim.Now());
  EXPECT_TRUE(agg.Process(item).has_value());
  EXPECT_FALSE(agg.Process(item).has_value());
}

TEST(AggregatorTest, DedupMemoryIsBounded) {
  sim::Simulation sim;
  AggregatorConfig cfg;
  cfg.dedup_capacity = 4;
  CxtAggregator agg{sim, cfg};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        agg.Process(Item("id-" + std::to_string(i), "t", i, sim.Now()))
            .has_value());
  }
  // id-0 fell out of the dedup window: accepted again.
  EXPECT_TRUE(agg.Process(Item("id-0", "t", 0, sim.Now())).has_value());
}

TEST(AggregatorTest, FusionWeightsByAccuracy) {
  sim::Simulation sim;
  AggregatorConfig cfg;
  cfg.strategy = AggregationStrategy::kFuseNumeric;
  CxtAggregator agg{sim, cfg};

  auto precise = Item("a", vocab::kTemperature, 10.0, sim.Now());
  precise.metadata.accuracy = 0.1;  // weight 10
  auto sloppy = Item("b", vocab::kTemperature, 20.0, sim.Now());
  sloppy.metadata.accuracy = 1.0;  // weight 1

  (void)agg.Process(precise);
  const auto fused = agg.Process(sloppy);
  ASSERT_TRUE(fused.has_value());
  // Weighted mean: (10*10 + 20*1)/11 = 10.909...
  EXPECT_NEAR(fused->value.AsNumber().value(), 10.909, 0.01);
  EXPECT_DOUBLE_EQ(*fused->metadata.accuracy, 0.1);  // best of the inputs
  EXPECT_EQ(fused->source.kind, SourceKind::kApplication);
}

TEST(AggregatorTest, FusionWindowExpires) {
  sim::Simulation sim;
  AggregatorConfig cfg;
  cfg.strategy = AggregationStrategy::kFuseNumeric;
  cfg.fusion_window = 5s;
  CxtAggregator agg{sim, cfg};
  (void)agg.Process(Item("a", "t", 100.0, sim.Now()));
  sim.RunFor(10s);
  const auto fused = agg.Process(Item("b", "t", 10.0, sim.Now()));
  ASSERT_TRUE(fused.has_value());
  // The old reading aged out of the window.
  EXPECT_DOUBLE_EQ(fused->value.AsNumber().value(), 10.0);
}

TEST(AggregatorTest, NonNumericPassesThroughFusion) {
  sim::Simulation sim;
  AggregatorConfig cfg;
  cfg.strategy = AggregationStrategy::kFuseNumeric;
  CxtAggregator agg{sim, cfg};
  CxtItem item;
  item.id = "a";
  item.type = vocab::kActivity;
  item.value = "sailing";
  item.timestamp = sim.Now();
  const auto out = agg.Process(item);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value.AsString().value(), "sailing");
}

}  // namespace
}  // namespace contory::core
