// Unit tests for the simulated WiFi ad hoc radio.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "net/wifi.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::net {
namespace {

using namespace std::chrono_literals;

class WifiTest : public ::testing::Test {
 protected:
  WifiTest() {
    // Three communicators in a line, as in the paper's 2-hop topology.
    node_a_ = medium_.Register("comm-A", {0, 0});
    node_b_ = medium_.Register("comm-B", {80, 0});
    node_c_ = medium_.Register("comm-C", {160, 0});
    wifi_a_ = std::make_unique<WifiController>(sim_, bus_, phone_a_, node_a_);
    wifi_b_ = std::make_unique<WifiController>(sim_, bus_, phone_b_, node_b_);
    wifi_c_ = std::make_unique<WifiController>(sim_, bus_, phone_c_, node_c_);
    wifi_a_->SetEnabled(true);
    wifi_b_->SetEnabled(true);
    wifi_c_->SetEnabled(true);
  }

  sim::Simulation sim_{11};
  Medium medium_;
  WifiBus bus_{medium_};
  phone::SmartPhone phone_a_{sim_, phone::Nokia9500(), "comm-A"};
  phone::SmartPhone phone_b_{sim_, phone::Nokia9500(), "comm-B"};
  phone::SmartPhone phone_c_{sim_, phone::Nokia9500(), "comm-C"};
  NodeId node_a_{}, node_b_{}, node_c_{};
  std::unique_ptr<WifiController> wifi_a_, wifi_b_, wifi_c_;
};

TEST_F(WifiTest, EnableAppliesConstantDrain) {
  // "having WiFi connected at full signal ... average power consumption of
  // 1190 mW" with backlight on: 1113.8 (wifi) + 76.20 (display ladder).
  phone_a_.SetBacklightOn(true);
  EXPECT_NEAR(phone_a_.energy().CurrentPowerMilliwatts(), 1190.0, 0.1);
  wifi_a_->SetEnabled(false);
  EXPECT_NEAR(phone_a_.energy().CurrentPowerMilliwatts(), 76.20, 1e-6);
}

TEST_F(WifiTest, LineTopologyNeighborhoods) {
  // 100 m range, 80 m spacing: A-B and B-C are neighbors, A-C are not.
  EXPECT_TRUE(wifi_a_->IsNeighbor(node_b_));
  EXPECT_FALSE(wifi_a_->IsNeighbor(node_c_));
  EXPECT_TRUE(wifi_b_->IsNeighbor(node_a_));
  EXPECT_TRUE(wifi_b_->IsNeighbor(node_c_));
  EXPECT_EQ(wifi_b_->Neighbors().size(), 2u);
}

TEST_F(WifiTest, DisabledNodeIsNotANeighbor) {
  wifi_b_->SetEnabled(false);
  EXPECT_FALSE(wifi_a_->IsNeighbor(node_b_));
  EXPECT_TRUE(wifi_a_->Neighbors().empty());
}

TEST_F(WifiTest, FrameDeliveredToNeighbor) {
  std::vector<std::byte> received;
  NodeId from = kInvalidNode;
  wifi_b_->SetFrameHandler(
      [&](NodeId f, const std::vector<std::byte>& data) {
        from = f;
        received = data;
      });
  bool ok = false;
  wifi_a_->SendFrame(node_b_, std::vector<std::byte>(500, std::byte{1}),
                     [&](Status s) { ok = s.ok(); });
  sim_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(from, node_a_);
  EXPECT_EQ(received.size(), 500u);
}

TEST_F(WifiTest, FrameToNonNeighborFails) {
  Status status = Status::Ok();
  wifi_a_->SendFrame(node_c_, std::vector<std::byte>(10),
                     [&](Status s) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(WifiTest, FrameWithRadioOffFails) {
  wifi_a_->SetEnabled(false);
  Status status = Status::Ok();
  wifi_a_->SendFrame(node_b_, std::vector<std::byte>(10),
                     [&](Status s) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(WifiTest, FrameLatencyIncludesConnectAndTransfer) {
  const SimTime start = sim_.Now();
  wifi_a_->SendFrame(node_b_, std::vector<std::byte>(1000, std::byte{1}));
  sim_.Run();
  const double ms = ToMillis(sim_.Now() - start);
  // 17 ms connect + 8000 bits / 32 kbps = 250 ms transfer.
  EXPECT_NEAR(ms, 17.0 + 250.0, 10.0);
}

TEST_F(WifiTest, PeerLeavingMidFlightDropsFrame) {
  Status status = Status::Ok();
  wifi_a_->SendFrame(node_b_, std::vector<std::byte>(2000, std::byte{1}),
                     [&](Status s) { status = s; });
  // B moves out of range while the frame is in the air.
  sim_.ScheduleAfter(10ms, [&] {
    ASSERT_TRUE(medium_.SetPosition(node_b_, {5000, 0}).ok());
  });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(WifiTest, InrushTripReportedWhenMeterInserted) {
  wifi_a_->SetEnabled(false);
  phone_a_.battery().SetMeterInserted(true);
  int trips = 0;
  phone_a_.battery().SetTripListener([&](SimTime) { ++trips; });
  wifi_a_->SetEnabled(true);
  // The paper's communicator tripped its protection circuit this way.
  EXPECT_EQ(trips, 1);
  // The radio still joins (the authors reasoned from partial logs).
  EXPECT_TRUE(wifi_a_->enabled());
}

TEST_F(WifiTest, NoTripWithoutMeter) {
  wifi_a_->SetEnabled(false);
  int trips = 0;
  phone_a_.battery().SetTripListener([&](SimTime) { ++trips; });
  wifi_a_->SetEnabled(true);
  EXPECT_EQ(trips, 0);
}

TEST_F(WifiTest, FailureCutsDrainAndReachability) {
  wifi_b_->SetFailed(true);
  EXPECT_FALSE(wifi_b_->enabled());
  EXPECT_FALSE(wifi_a_->IsNeighbor(node_b_));
  EXPECT_DOUBLE_EQ(
      phone_b_.energy().ComponentPowerMilliwatts("wifi.connected"), 0.0);
}

TEST_F(WifiTest, WifiIdleCostDwarfsBtScan) {
  // The headline energy observation: WiFi connected is >100x BT inquiry
  // scan mode. Compare one minute of each.
  const auto mark = phone_a_.energy().Mark();
  sim_.RunFor(60s);
  const double wifi_joules = phone_a_.energy().JoulesSince(mark);
  const double bt_scan_joules = 8.47 / 1e3 * 60.0;  // paper's 8.47 mW
  EXPECT_GT(wifi_joules, 100.0 * bt_scan_joules);
}

}  // namespace
}  // namespace contory::net
