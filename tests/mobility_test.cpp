// Mobility model tests: determinism (same seed -> byte-identical
// trajectories), area bounds, pause/stop semantics, and the commuter
// day cycle (everyone at work mid-day, everyone home again before the
// cycle wraps).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/simulation.hpp"

namespace contory::sim {
namespace {

/// One sim + medium + N scattered nodes, so two instances built with the
/// same seeds are position-for-position comparable.
struct World {
  World(std::size_t n, MobilityArea area, std::uint64_t scatter_seed) {
    Rng scatter{scatter_seed};
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(medium.Register("m" + std::to_string(i),
                                    RandomPointIn(area, scatter)));
    }
  }

  std::vector<net::Position> Positions() const {
    std::vector<net::Position> out;
    for (const net::NodeId id : ids) out.push_back(*medium.GetPosition(id));
    return out;
  }

  Simulation sim{1};
  net::Medium medium;
  std::vector<net::NodeId> ids;
};

void ExpectSamePositions(const std::vector<net::Position>& a,
                         const std::vector<net::Position>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x) << "node " << i;
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y) << "node " << i;
  }
}

TEST(RandomWaypointTest, SameSeedSameTrajectories) {
  const MobilityArea area{300.0, 300.0};
  RandomWaypointConfig config;
  config.area = area;
  const auto run = [&](std::uint64_t seed) {
    World w(25, area, 99);
    RandomWaypoint model(w.sim, w.medium, config, seed);
    for (const net::NodeId id : w.ids) model.Manage(id);
    model.Start();
    w.sim.RunFor(std::chrono::seconds{120});
    return w.Positions();
  };
  ExpectSamePositions(run(42), run(42));
}

TEST(RandomWaypointTest, DifferentSeedDiverges) {
  const MobilityArea area{300.0, 300.0};
  RandomWaypointConfig config;
  config.area = area;
  const auto run = [&](std::uint64_t seed) {
    World w(25, area, 99);
    RandomWaypoint model(w.sim, w.medium, config, seed);
    for (const net::NodeId id : w.ids) model.Manage(id);
    model.Start();
    w.sim.RunFor(std::chrono::seconds{120});
    return w.Positions();
  };
  const auto a = run(42);
  const auto b = run(43);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].x != b[i].x || a[i].y != b[i].y;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomWaypointTest, StaysInsideArea) {
  const MobilityArea area{120.0, 80.0};
  RandomWaypointConfig config;
  config.area = area;
  config.speed_max_mps = 10.0;
  World w(30, area, 5);
  RandomWaypoint model(w.sim, w.medium, config, 7);
  for (const net::NodeId id : w.ids) model.Manage(id);
  model.Start();
  for (int i = 0; i < 30; ++i) {
    w.sim.RunFor(std::chrono::seconds{10});
    for (const net::Position& p : w.Positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, area.width_m);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, area.height_m);
    }
  }
  EXPECT_EQ(model.ticks(), 300u);
  EXPECT_GT(model.position_updates(), 0u);
}

TEST(RandomWaypointTest, PauseHoldsPosition) {
  // Tiny area + fast speed: everyone reaches their waypoint within the
  // first tick, then sits in a long pause.
  const MobilityArea area{10.0, 10.0};
  RandomWaypointConfig config;
  config.area = area;
  config.speed_min_mps = 50.0;
  config.speed_max_mps = 50.0;
  config.pause_min = std::chrono::seconds{1000};
  config.pause_max = std::chrono::seconds{1000};
  World w(10, area, 3);
  RandomWaypoint model(w.sim, w.medium, config, 8);
  for (const net::NodeId id : w.ids) model.Manage(id);
  model.Start();
  w.sim.RunFor(std::chrono::seconds{5});
  const auto parked = w.Positions();
  w.sim.RunFor(std::chrono::seconds{60});
  ExpectSamePositions(parked, w.Positions());
}

TEST(MobilityModelTest, StopHaltsUpdatesAndStartResumes) {
  const MobilityArea area{200.0, 200.0};
  RandomWaypointConfig config;
  config.area = area;
  config.pause_max = SimDuration::zero();  // keep everyone moving
  World w(10, area, 4);
  RandomWaypoint model(w.sim, w.medium, config, 9);
  for (const net::NodeId id : w.ids) model.Manage(id);
  EXPECT_FALSE(model.running());
  model.Start();
  EXPECT_TRUE(model.running());
  w.sim.RunFor(std::chrono::seconds{10});
  const std::uint64_t updates = model.position_updates();
  EXPECT_GT(updates, 0u);
  model.Stop();
  EXPECT_FALSE(model.running());
  w.sim.RunFor(std::chrono::seconds{30});
  EXPECT_EQ(model.position_updates(), updates);
  model.Start();
  w.sim.RunFor(std::chrono::seconds{10});
  EXPECT_GT(model.position_updates(), updates);
}

TEST(MobilityModelTest, ManageIgnoresUnregisteredNodes) {
  World w(2, MobilityArea{50, 50}, 1);
  RandomWaypointConfig config;
  RandomWaypoint model(w.sim, w.medium, config, 2);
  model.Manage(w.ids[0]);
  model.Manage(net::NodeId{424242});  // never registered
  EXPECT_EQ(model.managed_count(), 1u);
}

TEST(CommuterFlowTest, DayPhaseWrapsOverTheDay) {
  World w(1, MobilityArea{100, 100}, 1);
  CommuterFlowConfig config;
  config.day = std::chrono::minutes{10};
  CommuterFlow model(w.sim, w.medium, config, 3);
  EXPECT_DOUBLE_EQ(model.DayPhase(kSimEpoch), 0.0);
  EXPECT_DOUBLE_EQ(model.DayPhase(kSimEpoch + std::chrono::seconds{150}),
                   0.25);
  EXPECT_DOUBLE_EQ(model.DayPhase(kSimEpoch + std::chrono::seconds{750}),
                   0.25);  // second day, same phase
}

TEST(CommuterFlowTest, CommutesOutAndReturnsHome) {
  const MobilityArea area{1000.0, 1000.0};
  CommuterFlowConfig config;
  config.area = area;
  config.day = std::chrono::minutes{10};  // 300 s out, 300 s back
  World w(20, area, 6);
  const auto homes = w.Positions();
  CommuterFlow model(w.sim, w.medium, config, 11);
  for (const net::NodeId id : w.ids) model.Manage(id);
  model.Start();

  // Mid-day: everyone who has a distinct workplace has left home.
  w.sim.RunFor(std::chrono::seconds{295});
  const auto midday = w.Positions();
  std::size_t away = 0;
  for (std::size_t i = 0; i < homes.size(); ++i) {
    if (net::Distance(homes[i], midday[i]) > 1.0) ++away;
  }
  EXPECT_GT(away, homes.size() / 2);

  // End of day (just before the cycle wraps): everyone is back at their
  // exact home — StepToward snaps onto the target, so equality is exact.
  w.sim.RunFor(std::chrono::seconds{295});
  ExpectSamePositions(homes, w.Positions());
}

TEST(CommuterFlowTest, SameSeedSameTrajectories) {
  const MobilityArea area{500.0, 500.0};
  CommuterFlowConfig config;
  config.area = area;
  const auto run = [&] {
    World w(15, area, 21);
    CommuterFlow model(w.sim, w.medium, config, 13);
    for (const net::NodeId id : w.ids) model.Manage(id);
    model.Start();
    w.sim.RunFor(std::chrono::seconds{200});
    return w.Positions();
  };
  ExpectSamePositions(run(), run());
}

TEST(CommuterFlowTest, StaysInsideArea) {
  const MobilityArea area{400.0, 400.0};
  CommuterFlowConfig config;
  config.area = area;
  World w(20, area, 17);
  CommuterFlow model(w.sim, w.medium, config, 19);
  for (const net::NodeId id : w.ids) model.Manage(id);
  model.Start();
  for (int i = 0; i < 20; ++i) {
    w.sim.RunFor(std::chrono::seconds{30});
    for (const net::Position& p : w.Positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, area.width_m);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, area.height_m);
    }
  }
}

}  // namespace
}  // namespace contory::sim
