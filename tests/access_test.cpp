// Unit tests for the AccessController.
#include <gtest/gtest.h>

#include "core/access_controller.hpp"

namespace contory::core {
namespace {

/// Client whose MakeDecision answer is scripted.
class DecidingClient : public Client {
 public:
  void ReceiveCxtItem(const CxtItem&) override {}
  void InformError(const std::string&) override {}
  bool MakeDecision(const std::string& msg) override {
    ++decisions_asked;
    last_question = msg;
    return answer;
  }
  bool answer = true;
  int decisions_asked = 0;
  std::string last_question;
};

TEST(AccessControllerTest, LowSecurityTrustsEveryNewEntity) {
  AccessController access;
  DecidingClient client;
  EXPECT_TRUE(access.Admit("bt:gps-1", &client));
  EXPECT_EQ(client.decisions_asked, 0);  // never consulted
  EXPECT_TRUE(access.IsKnown("bt:gps-1"));
}

TEST(AccessControllerTest, HighSecurityAsksTheApplication) {
  AccessController access;
  access.SetMode(SecurityMode::kHigh);
  DecidingClient client;
  client.answer = true;
  EXPECT_TRUE(access.Admit("bt:stranger", &client));
  EXPECT_EQ(client.decisions_asked, 1);
  EXPECT_NE(client.last_question.find("bt:stranger"), std::string::npos);
}

TEST(AccessControllerTest, HighSecurityRemembersDenial) {
  AccessController access;
  access.SetMode(SecurityMode::kHigh);
  DecidingClient client;
  client.answer = false;
  EXPECT_FALSE(access.Admit("bt:evil", &client));
  EXPECT_TRUE(access.IsBlocked("bt:evil"));
  // Remembered: no second question.
  client.answer = true;
  EXPECT_FALSE(access.Admit("bt:evil", &client));
  EXPECT_EQ(client.decisions_asked, 1);
}

TEST(AccessControllerTest, HighSecurityFailsClosedWithoutClient) {
  AccessController access;
  access.SetMode(SecurityMode::kHigh);
  EXPECT_FALSE(access.Admit("bt:anon", nullptr));
}

TEST(AccessControllerTest, ExplicitBlockOverridesLowSecurity) {
  AccessController access;
  access.Block("bt:banned");
  EXPECT_FALSE(access.Admit("bt:banned", nullptr));
  access.Allow("bt:banned");
  EXPECT_TRUE(access.Admit("bt:banned", nullptr));
}

TEST(AccessControllerTest, ForgetDropsEntry) {
  AccessController access;
  access.Block("bt:x");
  access.Forget("bt:x");
  EXPECT_FALSE(access.IsKnown("bt:x"));
  // Low security re-admits after forgetting.
  EXPECT_TRUE(access.Admit("bt:x", nullptr));
}

TEST(AccessControllerTest, CapacityEvictsColdEntries) {
  AccessControllerConfig cfg;
  cfg.capacity = 4;
  AccessController access{cfg};
  // Touch "hot" often, then flood with one-shot entries.
  for (int i = 0; i < 10; ++i) (void)access.Admit("hot", nullptr);
  for (int i = 0; i < 10; ++i) {
    (void)access.Admit("cold-" + std::to_string(i), nullptr);
  }
  EXPECT_LE(access.known_count(), 4u);
  // "the most recent and the most often accessed sources are kept".
  EXPECT_TRUE(access.IsKnown("cold-9"));
}

TEST(AccessControllerTest, FrequentlyUsedSurvivesEviction) {
  AccessControllerConfig cfg;
  cfg.capacity = 3;
  AccessController access{cfg};
  for (int i = 0; i < 50; ++i) (void)access.Admit("favourite", nullptr);
  (void)access.Admit("one-a", nullptr);
  (void)access.Admit("one-b", nullptr);
  (void)access.Admit("one-c", nullptr);  // forces eviction
  EXPECT_TRUE(access.IsKnown("favourite"));
}

TEST(AccessControllerTest, AccessCountsSurviveModeSwap) {
  AccessController access;
  DecidingClient client;
  EXPECT_TRUE(access.Admit("bt:gps", &client));
  access.SetMode(SecurityMode::kHigh);
  // Already known: admitted without a question even in high mode.
  EXPECT_TRUE(access.Admit("bt:gps", &client));
  EXPECT_EQ(client.decisions_asked, 0);
}

}  // namespace
}  // namespace contory::core
