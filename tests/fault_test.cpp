// Chaos harness tests: the FaultPlan schedule language, the seeded retry
// policy, scripted fault windows on every substrate, graceful degradation
// to stale repository data when failover has nowhere left to go, and
// byte-identical determinism of whole injected timelines.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "core/contory.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "testbed/testbed.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

// --- FaultPlan schedule language ------------------------------------------

TEST(FaultPlanTest, ParsesScheduleDurations) {
  const auto ms = fault::ParseScheduleDuration("250ms");
  ASSERT_TRUE(ms.ok());
  EXPECT_EQ(*ms, 250ms);

  const auto sec = fault::ParseScheduleDuration("13s");
  ASSERT_TRUE(sec.ok());
  EXPECT_EQ(*sec, 13s);

  const auto mins = fault::ParseScheduleDuration("2.5min");
  ASSERT_TRUE(mins.ok());
  EXPECT_EQ(*mins, 150s);

  const auto us = fault::ParseScheduleDuration("90us");
  ASSERT_TRUE(us.ok());
  EXPECT_EQ(us->count(), 90);

  EXPECT_FALSE(fault::ParseScheduleDuration("5").ok());     // no unit
  EXPECT_FALSE(fault::ParseScheduleDuration("ms").ok());    // no number
  EXPECT_FALSE(fault::ParseScheduleDuration("5parsec").ok());
  EXPECT_FALSE(fault::ParseScheduleDuration("-3s").ok());
}

TEST(FaultPlanTest, ParsesScheduleLines) {
  const auto plan = fault::ParseFaultPlan(
      "# Fig. 5 chaos variant\n"
      "\n"
      "at=155s gps.off gps-1 for=145s\n"
      "at=160s bt.loss phone-A rate=0.3 for=2min  # interference\n"
      "at=240s node.leave boat-7\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->size(), 3u);

  const auto& a = plan->actions();
  EXPECT_EQ(a[0].at, kSimEpoch + 155s);
  EXPECT_EQ(a[0].kind, fault::FaultKind::kGpsOff);
  EXPECT_EQ(a[0].target, "gps-1");
  EXPECT_EQ(a[0].duration, 145s);

  EXPECT_EQ(a[1].kind, fault::FaultKind::kBtLoss);
  EXPECT_EQ(a[1].target, "phone-A");
  EXPECT_DOUBLE_EQ(a[1].param, 0.3);
  EXPECT_EQ(a[1].duration, 120s);

  EXPECT_EQ(a[2].kind, fault::FaultKind::kNodeLeave);
  EXPECT_EQ(a[2].duration, SimDuration::zero());
}

TEST(FaultPlanTest, RoundTripsThroughText) {
  fault::FaultPlan plan;
  plan.Window(kSimEpoch + 10s, fault::FaultKind::kWifiLatency, "phone-B",
              30s, 250.0);
  plan.Window(kSimEpoch + 60s, fault::FaultKind::kBrokerOutage,
              "infra.dynamos.fi", 90s);
  plan.Add({kSimEpoch + 200s, fault::FaultKind::kCellOff, "phone-B",
            SimDuration::zero(), 0.0});

  const std::string text = plan.ToText();
  const auto reparsed = fault::ParseFaultPlan(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToText(), text);
  EXPECT_EQ(reparsed->size(), plan.size());
}

TEST(FaultPlanTest, RejectsMalformedLines) {
  // Unknown kind, with the line number in the diagnostic.
  const auto bad_kind = fault::ParseFaultPlan("at=1s gps.explode gps-1\n");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.status().message().find("line 1"), std::string::npos);

  // rate= outside [0, 1].
  EXPECT_FALSE(
      fault::ParseFaultPlan("at=1s bt.loss phone rate=1.5\n").ok());
  // A loss kind without its rate= argument.
  EXPECT_FALSE(fault::ParseFaultPlan("at=1s bt.loss phone\n").ok());
  // Unknown trailing argument.
  EXPECT_FALSE(
      fault::ParseFaultPlan("at=1s gps.off gps-1 until=9s\n").ok());
  // Missing at= prefix.
  EXPECT_FALSE(fault::ParseFaultPlan("5s gps.off gps-1\n").ok());
}

// --- RetryPolicy -----------------------------------------------------------

TEST(RetryPolicyTest, ClassifiesTransience) {
  EXPECT_TRUE(IsTransient(Unavailable("coverage hole")));
  EXPECT_TRUE(IsTransient(DeadlineExceeded("request timed out")));
  EXPECT_FALSE(IsTransient(NotFound("no such source")));
  EXPECT_FALSE(IsTransient(Internal("bug")));
  EXPECT_FALSE(IsTransient(Status::Ok()));
}

TEST(RetryPolicyTest, BackoffSequenceIsDeterministicPerSeed) {
  RetryPolicyConfig cfg;
  cfg.max_attempts = 6;
  cfg.total_deadline = SimDuration::zero();  // unbounded for this test

  const auto collect = [&](std::uint64_t seed) {
    RetryState state{cfg, Rng{seed}};
    state.Begin(kSimEpoch);
    std::vector<std::int64_t> backoffs;
    SimTime now = kSimEpoch;
    for (;;) {
      const auto b = state.NextBackoff(now);
      if (!b.ok()) break;
      backoffs.push_back(b->count());
      now += *b;
    }
    return backoffs;
  };

  const auto a = collect(42);
  const auto b = collect(42);
  EXPECT_EQ(a, b);  // same seed, byte-identical schedule
  ASSERT_EQ(a.size(), 5u);  // max_attempts - 1 retries

  // Jittered exponential growth, capped at max_backoff * (1 + jitter).
  const double cap = static_cast<double>(cfg.max_backoff.count()) *
                     (1.0 + cfg.jitter);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GT(a[i], 0);
    EXPECT_LE(static_cast<double>(a[i]), cap);
  }
  EXPECT_GT(a.back(), a.front());  // it does actually grow
}

TEST(RetryPolicyTest, BudgetExhaustionAndReset) {
  RetryPolicyConfig cfg;
  cfg.max_attempts = 3;
  cfg.jitter = 0.0;
  cfg.total_deadline = SimDuration::zero();
  RetryState state{cfg, Rng{7}};

  state.Begin(kSimEpoch);
  EXPECT_TRUE(state.NextBackoff(kSimEpoch + 1s).ok());
  EXPECT_TRUE(state.NextBackoff(kSimEpoch + 2s).ok());
  const auto spent = state.NextBackoff(kSimEpoch + 3s);
  ASSERT_FALSE(spent.ok());
  EXPECT_EQ(spent.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(state.attempts(), 3);
  EXPECT_EQ(state.retries(), 2);

  // A success resets the budget for the next incident.
  state.Reset();
  state.Begin(kSimEpoch + 10s);
  EXPECT_TRUE(state.NextBackoff(kSimEpoch + 11s).ok());
}

TEST(RetryPolicyTest, TotalDeadlineStopsRetries) {
  RetryPolicyConfig cfg;
  cfg.max_attempts = 100;
  cfg.jitter = 0.0;
  cfg.total_deadline = 5s;
  RetryState state{cfg, Rng{7}};

  state.Begin(kSimEpoch);
  EXPECT_TRUE(state.NextBackoff(kSimEpoch + 1s).ok());
  // Far past the deadline epoch: no further retries are scheduled.
  const auto late = state.NextBackoff(kSimEpoch + 6s);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
}

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjectorTest, ValidatesTargetsEagerly) {
  testbed::World world{7};
  const auto status =
      world.injector().ExecuteText("at=1s gps.off no-such-gps\n");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(world.injector().injected(), 0u);
  EXPECT_TRUE(world.injector().log().empty());
}

TEST(FaultInjectorTest, WindowedFaultAppliesAndReverts) {
  testbed::World world{7};
  testbed::DeviceOptions opts;
  opts.with_contory = false;
  auto& device = world.AddDevice(opts);

  ASSERT_TRUE(
      world.injector().ExecuteText("at=1s bt.fail phone for=2s\n").ok());
  world.RunFor(2s);
  EXPECT_TRUE(device.bt()->failed());
  world.RunFor(2s);
  EXPECT_FALSE(device.bt()->failed());

  // One counted transition each for the fault and its revert.
  EXPECT_EQ(world.injector().injected(), 2u);
  ASSERT_EQ(world.injector().log().size(), 2u);
  const std::string log = world.injector().LogAsText();
  EXPECT_NE(log.find("bt.fail phone on"), std::string::npos);
  EXPECT_NE(log.find("bt.fail phone off"), std::string::npos);
}

TEST(FaultInjectorTest, NodeLeaveUnregistersFromMedium) {
  testbed::World world{7};
  testbed::DeviceOptions opts;
  opts.name = "boat-7";
  opts.with_contory = false;
  auto& device = world.AddDevice(opts);
  const net::NodeId node = device.node();
  ASSERT_TRUE(world.medium().Exists(node));

  ASSERT_TRUE(world.injector().ExecuteText("at=1s node.leave boat-7\n").ok());
  world.RunFor(2s);
  EXPECT_FALSE(world.medium().Exists(node));
  EXPECT_FALSE(world.medium().GetPosition(node).ok());
}

// --- Medium tie-break (deterministic range queries) ------------------------

TEST(MediumTest, NodesWithinBreaksDistanceTiesByNodeId) {
  net::Medium medium;
  const auto center = medium.Register("center", {0, 0});
  // Three equidistant peers (10 m) plus one closer one, registered in an
  // order that does not match the expected output by accident.
  const auto east = medium.Register("east", {10, 0});
  const auto north = medium.Register("north", {0, 10});
  const auto west = medium.Register("west", {-10, 0});
  const auto near = medium.Register("near", {0, 5});

  const auto hits = medium.NodesWithin(center, 20.0);
  // Nearest first; the exact 10 m tie resolves by ascending NodeId.
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0], near);
  EXPECT_EQ(hits[1], east);
  EXPECT_EQ(hits[2], north);
  EXPECT_EQ(hits[3], west);
}

// --- ResourcesMonitor ------------------------------------------------------

class TestReference : public core::Reference {
 public:
  explicit TestReference(const char* name) : name_(name) {}
  [[nodiscard]] const char* name() const noexcept override { return name_; }
  [[nodiscard]] bool Available() const override { return true; }
  void Fire(const std::string& reason) { NotifyFailure(reason); }

 private:
  const char* name_;
};

TEST(ResourcesMonitorTest, LookupRejectsUnknownVariables) {
  sim::Simulation sim{1};
  phone::SmartPhone phone{sim, phone::Nokia6630(), "phone"};
  core::ResourcesMonitor monitor{sim, phone};

  const auto battery = monitor.Lookup("batteryPercent");
  ASSERT_TRUE(battery.ok());
  EXPECT_GT(*battery->AsNumber(), 0.0);

  EXPECT_FALSE(monitor.Lookup("noSuchVariable").ok());
  EXPECT_FALSE(monitor.Lookup("").ok());
}

TEST(ResourcesMonitorTest, CountsFailuresAcrossAttachedReferences) {
  sim::Simulation sim{1};
  phone::SmartPhone phone{sim, phone::Nokia6630(), "phone"};
  core::ResourcesMonitor monitor{sim, phone};

  std::vector<std::string> reported;
  monitor.SetFailureHandler(
      [&](const std::string& module, const std::string& reason) {
        reported.push_back(module + ": " + reason);
      });

  TestReference bt{"BTReference"};
  TestReference cell{"2G/3GReference"};
  monitor.Attach(bt);
  monitor.Attach(cell);
  EXPECT_EQ(monitor.failures_observed(), 0u);

  bt.Fire("inquiry aborted");
  bt.Fire("link supervision timeout");
  cell.Fire("coverage lost");
  EXPECT_EQ(monitor.failures_observed(), 3u);
  ASSERT_EQ(reported.size(), 3u);
  EXPECT_EQ(reported[0], "BTReference: inquiry aborted");
  EXPECT_EQ(reported[2], "2G/3GReference: coverage lost");
}

// --- Network-level fault shims ---------------------------------------------

class BtShimTest : public ::testing::Test {
 protected:
  BtShimTest()
      : sim_(42),
        bus_(medium_),
        node_a_(medium_.Register("a", {0, 0})),
        node_b_(medium_.Register("b", {5, 0})),
        phone_a_(sim_, phone::Nokia6630(), "a"),
        phone_b_(sim_, phone::Nokia6630(), "b"),
        bt_a_(sim_, bus_, phone_a_, node_a_),
        bt_b_(sim_, bus_, phone_b_, node_b_) {
    bt_a_.SetEnabled(true);
    bt_b_.SetEnabled(true);
    bt_a_.Connect(node_b_, [this](Result<net::BtLinkId> link) {
      ASSERT_TRUE(link.ok());
      link_ = *link;
    });
    sim_.RunFor(1s);
    EXPECT_NE(link_, 0u);
  }

  // Sends 40 bytes from a to b; returns the delivery status and whether
  // b's data handler saw the payload.
  std::pair<Status, bool> SendOnce() {
    bool arrived = false;
    bt_b_.SetDataHandler(
        [&](net::BtLinkId, net::NodeId, const std::vector<std::byte>&) {
          arrived = true;
        });
    Status delivered = Internal("never reported");
    bt_a_.Send(link_, std::vector<std::byte>(40),
               [&](Status s) { delivered = s; });
    sim_.RunFor(5s);
    return {delivered, arrived};
  }

  sim::Simulation sim_;
  net::Medium medium_;
  net::BluetoothBus bus_;
  net::NodeId node_a_;
  net::NodeId node_b_;
  phone::SmartPhone phone_a_;
  phone::SmartPhone phone_b_;
  net::BluetoothController bt_a_;
  net::BluetoothController bt_b_;
  net::BtLinkId link_ = 0;
};

TEST_F(BtShimTest, LossRateDropsPayloadsOnTheAir) {
  bt_a_.SetLossRate(1.0);
  const auto [lost_status, lost_arrived] = SendOnce();
  EXPECT_EQ(lost_status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(lost_arrived);
  EXPECT_TRUE(bt_a_.LinkAlive(link_));  // the link itself survives

  bt_a_.SetLossRate(0.0);
  const auto [ok_status, ok_arrived] = SendOnce();
  EXPECT_TRUE(ok_status.ok());
  EXPECT_TRUE(ok_arrived);
}

TEST_F(BtShimTest, ExtraLatencyDelaysDelivery) {
  SimTime arrival{};
  bt_b_.SetDataHandler(
      [&](net::BtLinkId, net::NodeId, const std::vector<std::byte>&) {
        arrival = sim_.Now();
      });

  const SimTime start = sim_.Now();
  bt_a_.Send(link_, std::vector<std::byte>(40));
  sim_.RunFor(5s);
  ASSERT_NE(arrival, SimTime{});
  const SimDuration baseline = arrival - start;

  bt_a_.SetExtraLatency(500ms);
  arrival = SimTime{};
  const SimTime start2 = sim_.Now();
  bt_a_.Send(link_, std::vector<std::byte>(40));
  sim_.RunFor(5s);
  ASSERT_NE(arrival, SimTime{});
  // Transfer times carry per-send jitter, so bound rather than equate:
  // the shim must add its 500 ms on top of a normal-looking transfer.
  EXPECT_GE(arrival - start2, 500ms);
  EXPECT_LT(arrival - start2, baseline + 600ms);
}

TEST(CellularFaultTest, MidTransferAbortReportsUnavailable) {
  testbed::World world{9};
  world.AddContextServer("infra.test");
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_contory = false;
  auto& device = world.AddDevice(opts);
  device.modem()->SetTransferAbortRate(1.0);

  Status outcome = Status::Ok();
  device.modem()->SendRequest(
      "infra.test", std::vector<std::byte>(64),
      [&](Result<std::vector<std::byte>> response) {
        outcome = response.status();
      });
  world.RunFor(30s);
  EXPECT_EQ(outcome.code(), StatusCode::kUnavailable);
  EXPECT_NE(outcome.message().find("mid-transfer"), std::string::npos);
}

TEST(SensorFaultTest, NanBurstPoisonsSamplesOnlyInsideWindow) {
  testbed::World world{11};
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);

  ASSERT_TRUE(world.injector()
                  .ExecuteText("at=30s sensor.nan temperature@phone for=30s\n")
                  .ok());

  core::CollectingClient client;
  ASSERT_TRUE(device.contory()
                  .ProcessCxtQuery(
                      Q(world.sim(),
                        "SELECT temperature FROM intSensor "
                        "DURATION 2 min EVERY 5 sec"),
                      client)
                  .ok());
  world.RunFor(2min);

  int nan_inside = 0;
  for (const CxtItem& item : client.items) {
    const auto number = item.value.AsNumber();
    ASSERT_TRUE(number.ok());
    // Margins around the window edges avoid same-instant event-order
    // ambiguity between the fault transition and a sample.
    if (item.timestamp > kSimEpoch + 31s && item.timestamp < kSimEpoch + 59s) {
      EXPECT_TRUE(std::isnan(*number))
          << "sample at " << FormatTime(item.timestamp);
      ++nan_inside;
    } else if (item.timestamp < kSimEpoch + 29s ||
               item.timestamp > kSimEpoch + 61s) {
      EXPECT_FALSE(std::isnan(*number))
          << "sample at " << FormatTime(item.timestamp);
    }
  }
  EXPECT_GE(nan_inside, 3);
  EXPECT_GT(client.items.size(), 15u);
}

// --- Retry absorbing an infrastructure outage (no failover needed) ---------

TEST(InfraRetryTest, RetriesAbsorbServerOutage) {
  testbed::World world{204};
  auto& server = world.AddContextServer("infra.dynamos.fi");
  infra::StoredItem stored;
  stored.item.id = "seed-1";
  stored.item.type = vocab::kTemperature;
  stored.item.value = 14.0;
  stored.item.timestamp = world.Now();
  stored.item.metadata.accuracy = 0.2;
  stored.entity = "station-1";
  server.StoreDirect(stored);

  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.infra_address = "infra.dynamos.fi";
  core::ContextFactoryConfig cfg;
  cfg.retry.max_attempts = 8;
  cfg.retry.attempt_timeout = 6s;
  cfg.retry.initial_backoff = 500ms;
  cfg.retry.max_backoff = 4s;
  cfg.retry.total_deadline = 120s;
  opts.factory_config = cfg;
  auto& device = world.AddDevice(opts);

  // The server swallows every request for the first 30 s.
  ASSERT_TRUE(world.injector()
                  .ExecuteText("at=0s broker.outage infra.dynamos.fi for=30s\n")
                  .ok());

  core::CollectingClient client;
  ASSERT_TRUE(device.contory()
                  .ProcessCxtQuery(
                      Q(world.sim(),
                        "SELECT temperature FROM extInfra DURATION 2 min"),
                      client)
                  .ok());
  world.RunFor(90s);

  // The retry policy rode out the outage: the item arrived, the client
  // never saw an error, and no failover/degradation was needed.
  ASSERT_FALSE(client.items.empty());
  EXPECT_EQ(client.items.front().source.kind, SourceKind::kExtInfra);
  EXPECT_TRUE(client.errors.empty())
      << "first error: " << client.errors.front();
  EXPECT_GE(device.contory().total_retries(), 1u);
  EXPECT_GE(server.dropped_requests(), 1u);
  EXPECT_EQ(device.contory().degraded_deliveries(), 0u);
}

// --- Graceful degradation (the acceptance scenario) ------------------------

class DegradedModeTest : public ::testing::Test {
 protected:
  DegradedModeTest() : world_(321) {
    testbed::DeviceOptions opts;
    opts.name = "phone-A";
    core::ContextFactoryConfig cfg;
    cfg.recovery_probe_period = 15s;
    opts.factory_config = cfg;
    device_ = &world_.AddDevice(opts);
    gps_ = &world_.AddGps("gps-1", {3, 0});
  }

  testbed::World world_;
  testbed::Device* device_ = nullptr;
  sensors::GpsDevice* gps_ = nullptr;
};

TEST_F(DegradedModeTest, ServesStaleRepositoryDataAndRecovers) {
  core::CollectingClient client;
  const auto id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 20 min EVERY 5 sec"),
      client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Phase 1: healthy GPS provisioning fills the repository.
  world_.RunFor(60s);
  ASSERT_FALSE(client.items.empty());
  EXPECT_FALSE(client.items.back().metadata.staleness_seconds.has_value());
  const std::size_t live_items = client.items.size();

  // Phase 2: the GPS dies; failover to the (empty) ad hoc neighborhood
  // fails too, so the query degrades to the repository. Shortly after,
  // the local BT radio also fails, which keeps the recovery probes from
  // flapping back onto a GPS-less BT stack until both faults revert.
  ASSERT_TRUE(world_.injector()
                  .ExecuteText(
                      "at=60s gps.off gps-1 for=180s\n"
                      "at=80s bt.fail phone-A for=160s\n")
                  .ok());
  world_.RunFor(90s);  // now at t=150s, mid-outage

  EXPECT_TRUE(device_->contory().IsDegraded(*id));
  EXPECT_GT(device_->contory().degraded_deliveries(), 0u);
  EXPECT_GT(client.items.size(), live_items);

  // Stale answers carry explicit, growing staleness metadata.
  std::vector<double> staleness;
  for (std::size_t i = live_items; i < client.items.size(); ++i) {
    const auto& meta = client.items[i].metadata;
    if (meta.staleness_seconds.has_value()) {
      staleness.push_back(*meta.staleness_seconds);
    }
  }
  ASSERT_GE(staleness.size(), 2u);
  EXPECT_GT(staleness.front(), 0.0);
  EXPECT_GT(staleness.back(), staleness.front());

  // The client was told it is living on cached data.
  bool told = false;
  for (const auto& e : client.errors) {
    if (e.find("degraded") != std::string::npos) told = true;
  }
  EXPECT_TRUE(told);

  // Phase 3: the radios return at t=240s; the background probe reassigns
  // the GPS mechanism and live provisioning resumes.
  world_.RunFor(160s);  // now at t=310s
  EXPECT_FALSE(device_->contory().IsDegraded(*id));
  EXPECT_EQ(client.items.back().source.kind, SourceKind::kIntSensor);
  EXPECT_FALSE(client.items.back().metadata.staleness_seconds.has_value());
  bool restored = false;
  for (const auto& e : client.errors) {
    if (e.find("restored") != std::string::npos) restored = true;
  }
  EXPECT_TRUE(restored);
}

TEST_F(DegradedModeTest, OnDemandQueryGetsOneStaleAnswer) {
  // Warm the repository with a periodic query, then switch the GPS off and
  // submit an on-demand query: once GPS and ad hoc discovery both come up
  // empty, it should resolve from cache with staleness metadata instead of
  // erroring.
  core::CollectingClient warm;
  const auto warm_id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 1 min EVERY 5 sec"), warm);
  ASSERT_TRUE(warm_id.ok());
  world_.RunFor(70s);
  ASSERT_FALSE(warm.items.empty());

  gps_->PowerOff();
  world_.RunFor(5s);

  core::CollectingClient client;
  const auto id = device_->contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 2 min"), client);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  world_.RunFor(80s);

  ASSERT_EQ(client.items.size(), 1u);
  ASSERT_TRUE(client.items.front().metadata.staleness_seconds.has_value());
  EXPECT_GT(*client.items.front().metadata.staleness_seconds, 0.0);
  // The on-demand record is finished and removed, not left degraded.
  EXPECT_FALSE(device_->contory().IsDegraded(*id));
}

TEST_F(DegradedModeTest, DisabledDegradedModeFailsHard) {
  core::ContextFactoryConfig cfg;
  cfg.enable_degraded_mode = false;
  testbed::DeviceOptions opts;
  opts.name = "phone-C";
  opts.position = {100, 100};  // out of BT range of the fixture devices
  opts.factory_config = cfg;
  auto& device = world_.AddDevice(opts);

  core::CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world_.sim(), "SELECT location DURATION 5 min EVERY 5 sec"), client);
  ASSERT_TRUE(id.ok());
  world_.RunFor(2min);

  EXPECT_FALSE(client.errors.empty());
  EXPECT_EQ(device.contory().degraded_deliveries(), 0u);
  EXPECT_FALSE(device.contory().IsDegraded(*id));
}

// --- Concurrent faults on a two-hop WiFi route with merged queries ---------

class WifiRouteChaosTest : public ::testing::Test {
 protected:
  WifiRouteChaosTest() : world_(205) {
    // Three communicators in a line, 80 m apart: the paper's 2-hop
    // topology, WiFi-only so every fault lands on the SM route.
    for (int i = 0; i < 3; ++i) {
      testbed::DeviceOptions opts;
      opts.name = "comm-" + std::to_string(i);
      opts.profile = phone::Nokia9500();
      opts.position = {i * 80.0, 0};
      opts.with_bt = false;
      opts.with_wifi = true;
      opts.with_cellular = false;
      devices_.push_back(&world_.AddDevice(opts));
    }
  }

  void PublishRemoteTemperature() {
    ASSERT_TRUE(devices_[2]->contory().RegisterCxtServer(pub_client_).ok());
    CxtItem item;
    item.id = "remote-1";
    item.type = vocab::kTemperature;
    item.value = 19.5;
    item.timestamp = world_.Now();
    item.metadata.accuracy = 0.2;
    ASSERT_TRUE(devices_[2]->contory().PublishCxtItem(item, true).ok());
  }

  testbed::World world_;
  std::vector<testbed::Device*> devices_;
  core::CollectingClient pub_client_;
};

TEST_F(WifiRouteChaosTest, MergedSubscriptionsRideOutConcurrentFaults) {
  PublishRemoteTemperature();

  // Two identical subscriptions from two applications on comm-0: the
  // facade must merge them into a single SM-FINDER cluster.
  core::CollectingClient app_a;
  core::CollectingClient app_b;
  const auto id_a = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(1,2) "
        "DURATION 2 min EVERY 30 sec"),
      app_a);
  const auto id_b = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(1,2) "
        "DURATION 2 min EVERY 30 sec"),
      app_b);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());

  core::Facade& facade =
      devices_[0]->contory().facade(query::SourceSel::kAdHocNetwork);
  EXPECT_EQ(facade.active_original_count(), 2u);
  EXPECT_EQ(facade.active_provider_count(), 1u);

  // Two overlapping fault windows, one per hop: loss on the relay while
  // the querier's own radio is slowed.
  ASSERT_TRUE(world_.injector()
                  .ExecuteText(
                      "at=20s wifi.loss comm-1 rate=0.5 for=35s\n"
                      "at=25s wifi.latency comm-0 ms=200 for=30s\n")
                  .ok());

  world_.RunFor(2min + 15s);

  // Both merged originals kept receiving the remote item across the chaos
  // window, and both lifecycles closed cleanly at DURATION expiry.
  ASSERT_FALSE(app_a.items.empty());
  ASSERT_FALSE(app_b.items.empty());
  EXPECT_EQ(app_a.items.front().value, CxtValue{19.5});
  EXPECT_EQ(app_b.items.front().value, CxtValue{19.5});

  const core::QueryTable& table = devices_[0]->contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  int done_a = 0;
  int done_b = 0;
  for (const auto& completion : table.completions()) {
    if (completion.id == *id_a) ++done_a;
    if (completion.id == *id_b) ++done_b;
  }
  EXPECT_EQ(done_a, 1);
  EXPECT_EQ(done_b, 1);
}

TEST_F(WifiRouteChaosTest, ConcurrentFaultsOnBothHopsTerminateCleanly) {
  PublishRemoteTemperature();

  // Break the relay outright and black-hole the publisher at the same
  // time: no SM round can complete, and the WiFi-only device has no
  // mechanism to fail over to.
  ASSERT_TRUE(world_.injector()
                  .ExecuteText(
                      "at=5s wifi.fail comm-1 for=2min\n"
                      "at=5s wifi.loss comm-2 rate=1.0 for=2min\n")
                  .ok());
  world_.RunFor(10s);

  core::CollectingClient app_a;
  core::CollectingClient app_b;
  const auto id_a = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(1,2) DURATION 40 sec"),
      app_a);
  const auto id_b = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(1,2) DURATION 40 sec"),
      app_b);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());
  EXPECT_EQ(devices_[0]
                ->contory()
                .facade(query::SourceSel::kAdHocNetwork)
                .active_original_count(),
            2u);

  world_.RunFor(90s);

  // Nothing could be delivered, but every lifecycle still ended in
  // exactly one terminal state — no leaks, no invalid transitions.
  EXPECT_TRUE(app_a.items.empty());
  EXPECT_TRUE(app_b.items.empty());

  const core::QueryTable& table = devices_[0]->contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  int done_a = 0;
  int done_b = 0;
  for (const auto& completion : table.completions()) {
    if (completion.id == *id_a) ++done_a;
    if (completion.id == *id_b) ++done_b;
  }
  EXPECT_EQ(done_a, 1);
  EXPECT_EQ(done_b, 1);
}

// --- Determinism (acceptance: two same-seed runs are byte-identical) -------

std::string RunChaosScenario(std::uint64_t seed) {
  testbed::World world{seed};

  testbed::DeviceOptions phone_opts;
  phone_opts.name = "phone-A";
  core::ContextFactoryConfig cfg;
  cfg.recovery_probe_period = 20s;
  phone_opts.factory_config = cfg;
  auto& device = world.AddDevice(phone_opts);
  world.AddGps("gps-1", {3, 0});

  testbed::DeviceOptions neighbor_opts;
  neighbor_opts.name = "phone-B";
  neighbor_opts.position = {6, 0};
  auto& neighbor = world.AddDevice(neighbor_opts);
  core::CollectingClient neighbor_client;
  EXPECT_TRUE(neighbor.contory().RegisterCxtServer(neighbor_client).ok());
  sim::PeriodicTask publish{world.sim(), 5s, [&] {
                              CxtItem item;
                              item.id = world.sim().ids().NextId("nb-item");
                              item.type = vocab::kLocation;
                              item.value =
                                  sensors::ToGeo(neighbor.position());
                              item.timestamp = world.Now();
                              item.metadata.accuracy = 30.0;
                              (void)neighbor.contory().PublishCxtItem(item,
                                                                      true);
                            }};

  EXPECT_TRUE(world.injector()
                  .ExecuteText(
                      "at=30s bt.loss phone-A rate=0.3 for=60s\n"
                      "at=45s gps.off gps-1 for=60s\n"
                      "at=100s bt.latency phone-A ms=250 for=30s\n")
                  .ok());

  core::CollectingClient client;
  EXPECT_TRUE(device.contory()
                  .ProcessCxtQuery(
                      Q(world.sim(),
                        "SELECT location DURATION 5 min EVERY 5 sec"),
                      client)
                  .ok());
  world.RunFor(3min);

  // Everything observable, concatenated: the fault log, every delivered
  // item with its timestamp, every error, every recorded switch.
  std::string out = world.injector().LogAsText();
  for (const CxtItem& item : client.items) {
    out += FormatTime(item.timestamp) + ' ' + item.ToString() + '\n';
  }
  for (const auto& e : client.errors) out += e + '\n';
  for (const auto& s : device.contory().switch_log()) {
    out += FormatTime(s.at) + ' ' + s.query_id + '\n';
  }
  return out;
}

TEST(ChaosDeterminismTest, SameSeedSamePlanIsByteIdentical) {
  const std::string first = RunChaosScenario(777);
  const std::string second = RunChaosScenario(777);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace contory
