// End-to-end integration tests across the full stack: multi-node ad hoc
// provisioning (BT one-hop and WiFi multi-hop SM-FINDER), infrastructure
// queries over UMTS, and multi-mechanism combinations.
#include <gtest/gtest.h>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

namespace contory::core {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

CxtItem TempItem(testbed::World& world, double value,
                 double accuracy = 0.2) {
  CxtItem item;
  item.id = world.sim().ids().NextId("pub");
  item.type = vocab::kTemperature;
  item.value = value;
  item.timestamp = world.Now();
  item.metadata.accuracy = accuracy;
  return item;
}

TEST(BtAdHocIntegrationTest, OneHopOnDemandQuery) {
  testbed::World world{200};
  auto& requester = world.AddDevice({.name = "requester"});
  testbed::DeviceOptions pub_opts;
  pub_opts.name = "publisher";
  pub_opts.position = {5, 0};
  auto& publisher = world.AddDevice(pub_opts);

  CollectingClient pub_client;
  ASSERT_TRUE(publisher.contory().RegisterCxtServer(pub_client).ok());
  ASSERT_TRUE(
      publisher.contory().PublishCxtItem(TempItem(world, 14.5), true).ok());
  world.RunFor(1s);  // BT registration (~140 ms)

  CollectingClient client;
  const auto id = requester.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM adHocNetwork DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  // Inquiry 13 s + SDP 1.1 s.
  world.RunFor(30s);
  ASSERT_EQ(client.items.size(), 1u);
  EXPECT_EQ(client.items[0].value, CxtValue{14.5});
  EXPECT_EQ(client.items[0].source.kind, SourceKind::kAdHocNetwork);
  // On-demand query completed.
  EXPECT_EQ(requester.contory().queries().active_count(), 0u);
}

TEST(BtAdHocIntegrationTest, PeriodicPollsWithoutRediscovery) {
  testbed::World world{201};
  auto& requester = world.AddDevice({.name = "requester"});
  testbed::DeviceOptions pub_opts;
  pub_opts.name = "publisher";
  pub_opts.position = {5, 0};
  auto& publisher = world.AddDevice(pub_opts);
  CollectingClient pub_client;
  ASSERT_TRUE(publisher.contory().RegisterCxtServer(pub_client).ok());

  // Fresh values published every 5 s.
  sim::PeriodicTask republish{world.sim(), 5s, [&] {
    (void)publisher.contory().PublishCxtItem(TempItem(world, 15.0), true);
  }};

  CollectingClient client;
  const auto id = requester.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM adHocNetwork DURATION 5 min EVERY 15 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(2min);
  // Discovery once, then ~(120-15)/15 polls.
  EXPECT_GE(client.items.size(), 5u);
  // The later items came over the poll path; discovery (5+ J) happened
  // once — check the inquiry energy signature loosely via total energy.
  const double joules =
      requester.phone().energy().TotalEnergyJoules();
  EXPECT_LT(joules, 12.0);  // two discoveries would already exceed this
}

TEST(BtAdHocIntegrationTest, WhereFiltersAtRequester) {
  testbed::World world{202};
  auto& requester = world.AddDevice({.name = "requester"});
  testbed::DeviceOptions pub_opts;
  pub_opts.name = "publisher";
  pub_opts.position = {5, 0};
  auto& publisher = world.AddDevice(pub_opts);
  CollectingClient pub_client;
  ASSERT_TRUE(publisher.contory().RegisterCxtServer(pub_client).ok());
  ASSERT_TRUE(publisher.contory()
                  .PublishCxtItem(TempItem(world, 14.5, /*accuracy=*/0.9),
                                  true)
                  .ok());
  world.RunFor(1s);

  CollectingClient client;
  const auto id = requester.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM adHocNetwork WHERE accuracy<=0.3 "
        "DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(30s);
  EXPECT_TRUE(client.items.empty());  // 0.9 accuracy fails the filter
}

class WifiLineTest : public ::testing::Test {
 protected:
  WifiLineTest() : world_(203) {
    // Three communicators in a line, 80 m apart: the paper's 2-hop
    // topology.
    for (int i = 0; i < 3; ++i) {
      testbed::DeviceOptions opts;
      opts.name = "comm-" + std::to_string(i);
      opts.profile = phone::Nokia9500();
      opts.position = {i * 80.0, 0};
      opts.with_bt = false;  // isolate the WiFi path
      opts.with_wifi = true;
      opts.with_cellular = false;
      devices_.push_back(&world_.AddDevice(opts));
    }
  }

  testbed::World world_;
  std::vector<testbed::Device*> devices_;
  CollectingClient pub_client_;
};

TEST_F(WifiLineTest, TwoHopSmFinderRoundTrip) {
  // comm-2 (two hops away) publishes; comm-0 queries with numHops=2.
  ASSERT_TRUE(devices_[2]->contory().RegisterCxtServer(pub_client_).ok());
  CxtItem item;
  item.id = "remote-1";
  item.type = vocab::kTemperature;
  item.value = 19.5;
  item.timestamp = world_.Now();
  item.metadata.accuracy = 0.2;
  ASSERT_TRUE(devices_[2]->contory().PublishCxtItem(item, true).ok());

  CollectingClient client;
  const SimTime start = world_.Now();
  const auto id = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(1,2) DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  world_.RunFor(30s);
  ASSERT_EQ(client.items.size(), 1u);
  EXPECT_EQ(client.items[0].value, CxtValue{19.5});
  EXPECT_EQ(client.items[0].source.address, "node:" +
                                                std::to_string(
                                                    devices_[2]->node()));
  (void)start;
}

TEST_F(WifiLineTest, HopBudgetDiscardsTooDistantResults) {
  // Same layout but numHops=1: the publisher at 2 hops is out of range of
  // interest; the round comes back empty/times out.
  ASSERT_TRUE(devices_[2]->contory().RegisterCxtServer(pub_client_).ok());
  CxtItem item;
  item.id = "remote-1";
  item.type = vocab::kTemperature;
  item.value = 19.5;
  item.timestamp = world_.Now();
  ASSERT_TRUE(devices_[2]->contory().PublishCxtItem(item, true).ok());

  CollectingClient client;
  const auto id = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(1,1) DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  world_.RunFor(1min);
  EXPECT_TRUE(client.items.empty());
}

TEST_F(WifiLineTest, CollectsFromMultipleNodes) {
  // comm-1 and comm-2 both publish; ask for all nodes within 2 hops.
  for (int i : {1, 2}) {
    ASSERT_TRUE(devices_[static_cast<std::size_t>(i)]
                    ->contory()
                    .RegisterCxtServer(pub_client_)
                    .ok());
    CxtItem item;
    item.id = "pub-" + std::to_string(i);
    item.type = vocab::kTemperature;
    item.value = 10.0 + i;
    item.timestamp = world_.Now();
    ASSERT_TRUE(devices_[static_cast<std::size_t>(i)]
                    ->contory()
                    .PublishCxtItem(item, true)
                    .ok());
  }
  CollectingClient client;
  const auto id = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT temperature FROM adHocNetwork(all,2) DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  world_.RunFor(1min);
  EXPECT_EQ(client.items.size(), 2u);
}

TEST_F(WifiLineTest, PeriodicRoundsKeepCollecting) {
  ASSERT_TRUE(devices_[1]->contory().RegisterCxtServer(pub_client_).ok());
  sim::PeriodicTask republish{world_.sim(), 5s, [&] {
    CxtItem item;
    item.id = world_.sim().ids().NextId("pub");
    item.type = vocab::kWind;
    item.value = 6.0;
    item.timestamp = world_.Now();
    (void)devices_[1]->contory().PublishCxtItem(item, true);
  }};
  CollectingClient client;
  const auto id = devices_[0]->contory().ProcessCxtQuery(
      Q(world_.sim(),
        "SELECT wind FROM adHocNetwork(all,1) DURATION 3 min EVERY 20 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world_.RunFor(3min + 5s);
  EXPECT_GE(client.items.size(), 6u);
  EXPECT_EQ(devices_[0]->contory().queries().active_count(), 0u);  // expired
}

TEST(InfraIntegrationTest, OnDemandQueryOverUmts) {
  testbed::World world{204};
  testbed::DeviceOptions opts;
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");
  server.StoreDirect({TempItem(world, 22.0), "boat-7",
                      GeoPoint{60.15, 24.90}});

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(), "SELECT temperature FROM extInfra DURATION 1 min"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(30s);
  ASSERT_EQ(client.items.size(), 1u);
  EXPECT_EQ(client.items[0].source.kind, SourceKind::kExtInfra);
  EXPECT_EQ(client.items[0].source.address, "infra.dynamos.fi");
}

TEST(InfraIntegrationTest, PeriodicRegistrationPushes) {
  testbed::World world{205};
  testbed::DeviceOptions opts;
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");
  server.StoreDirect({TempItem(world, 22.0), "boat-7", std::nullopt});

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM extInfra DURATION 5 min EVERY 30 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(3min);
  EXPECT_GE(client.items.size(), 3u);
  // Cancel tears down the server-side registration too.
  device.contory().CancelCxtQuery(*id);
  world.RunFor(1min);
  EXPECT_EQ(server.active_query_count(), 0u);
}

TEST(InfraIntegrationTest, EventQueryFiresOnCondition) {
  testbed::World world{206};
  testbed::DeviceOptions opts;
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM extInfra DURATION 10 min "
        "EVENT AVG(temperature)>25"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(30s);
  server.StoreDirect({TempItem(world, 20.0), "boat-1", std::nullopt});
  world.RunFor(30s);
  EXPECT_TRUE(client.items.empty());
  server.StoreDirect({TempItem(world, 35.0), "boat-2", std::nullopt});
  world.RunFor(30s);
  EXPECT_FALSE(client.items.empty());
}

TEST(MultiMechanismTest, FromListAssignsBothFacades) {
  testbed::World world{207};
  testbed::DeviceOptions opts;
  opts.name = "requester";
  opts.infra_address = "infra.dynamos.fi";
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");
  server.StoreDirect({TempItem(world, 21.0), "remote-boat", std::nullopt});

  testbed::DeviceOptions pub_opts;
  pub_opts.name = "neighbor";
  pub_opts.position = {5, 0};
  auto& neighbor = world.AddDevice(pub_opts);
  CollectingClient pub_client;
  ASSERT_TRUE(neighbor.contory().RegisterCxtServer(pub_client).ok());
  ASSERT_TRUE(
      neighbor.contory().PublishCxtItem(TempItem(world, 14.0), true).ok());

  CollectingClient client;
  const auto id = device.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT temperature FROM adHocNetwork, extInfra DURATION 2 min"),
      client);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(device.contory().CurrentMechanisms(*id).size(), 2u);
  world.RunFor(1min);
  // Results from both mechanisms (ad hoc 14.0 and infra 21.0).
  ASSERT_GE(client.items.size(), 2u);
  std::set<SourceKind> kinds;
  for (const auto& item : client.items) kinds.insert(item.source.kind);
  EXPECT_TRUE(kinds.contains(SourceKind::kAdHocNetwork));
  EXPECT_TRUE(kinds.contains(SourceKind::kExtInfra));
}

TEST(AuthenticatedAccessTest, LockedTagNeedsKey) {
  testbed::World world{208};
  testbed::DeviceOptions a;
  a.name = "a";
  a.with_bt = false;
  a.with_wifi = true;
  a.with_cellular = false;
  a.profile = phone::Nokia9500();
  auto& requester = world.AddDevice(a);
  testbed::DeviceOptions b = a;
  b.name = "b";
  b.position = {50, 0};
  auto& publisher = world.AddDevice(b);

  CollectingClient pub_client;
  ASSERT_TRUE(publisher.contory().RegisterCxtServer(pub_client).ok());
  CxtItem item;
  item.id = "secret-1";
  item.type = vocab::kLocation;
  item.value = GeoPoint{60.15, 24.9};
  item.timestamp = world.Now();
  ASSERT_TRUE(
      publisher.contory().PublishCxtItem(item, true, "sesame").ok());

  // A finder without the key cannot read the locked tag.
  CollectingClient client;
  const auto id = requester.contory().ProcessCxtQuery(
      Q(world.sim(),
        "SELECT location FROM adHocNetwork(1,1) DURATION 30 sec"),
      client);
  ASSERT_TRUE(id.ok());
  world.RunFor(1min);
  EXPECT_TRUE(client.items.empty());
}

}  // namespace
}  // namespace contory::core
