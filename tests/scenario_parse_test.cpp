// Parser diagnostics: malformed scenario specs must fail with
// line-numbered messages, never crash, and never half-parse.

#include <gtest/gtest.h>

#include <string>

#include "scenario/generator.hpp"
#include "scenario/spec.hpp"

namespace contory::scenario {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string ParseError(const std::string& text) {
  auto spec = ParseScenario(text);
  EXPECT_FALSE(spec.ok()) << "spec unexpectedly parsed";
  if (spec.ok()) return "";
  return std::string(spec.status().message());
}

TEST(ScenarioParseTest, MinimalSpecParses) {
  auto spec = ParseScenario(
      "scenario smoke\n"
      "seed 7\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "query q1 on phone-A : SELECT temperature FROM intSensor DURATION 10 "
      "sec\n"
      "run 20s\n"
      "expect q.q1.items >= 1\n");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec->title, "smoke");
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->steps.size(), 4u);
}

TEST(ScenarioParseTest, QueryOnUnknownDeviceIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "query q1 on phone-B : SELECT temperature FROM intSensor DURATION 10 "
      "sec\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
  EXPECT_TRUE(Contains(msg, "phone-B")) << msg;
}

TEST(ScenarioParseTest, FaultScheduledInThePastIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A\n"
      "run 30s\n"
      "fault at=10s bt.fail phone-A for=5s\n");
  EXPECT_TRUE(Contains(msg, "line 4")) << msg;
  EXPECT_TRUE(Contains(msg, "past")) << msg;
}

TEST(ScenarioParseTest, FaultAtCurrentTimeIsAllowed) {
  auto spec = ParseScenario(
      "scenario t\n"
      "device phone-A\n"
      "run 30s\n"
      "fault at=30s bt.fail phone-A for=5s\n"
      "run 10s\n");
  EXPECT_TRUE(spec.ok()) << spec.status().message();
}

TEST(ScenarioParseTest, ExpectOnUndeclaredQueryIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "run 5s\n"
      "expect q.ghost.items >= 1\n");
  EXPECT_TRUE(Contains(msg, "line 4")) << msg;
  EXPECT_TRUE(Contains(msg, "ghost")) << msg;
}

TEST(ScenarioParseTest, ExpectOnUndeclaredDeviceIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A\n"
      "expect d.phone-Z.active == 0\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
  EXPECT_TRUE(Contains(msg, "phone-Z")) << msg;
}

TEST(ScenarioParseTest, UnknownSelectorPropertyIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "query q1 on phone-A : SELECT temperature FROM intSensor DURATION 10 "
      "sec\n"
      "expect q.q1.bogus >= 1\n");
  EXPECT_TRUE(Contains(msg, "line 4")) << msg;
  EXPECT_TRUE(Contains(msg, "bogus")) << msg;
}

TEST(ScenarioParseTest, MalformedQueryTextIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A\n"
      "query q1 on phone-A : SELEKT nonsense\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
}

TEST(ScenarioParseTest, DuplicateDeviceIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A\n"
      "device phone-A\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
  EXPECT_TRUE(Contains(msg, "duplicate")) << msg;
}

TEST(ScenarioParseTest, UnknownDirectiveIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A\n"
      "teleport phone-A 3,4\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
  EXPECT_TRUE(Contains(msg, "teleport")) << msg;
}

TEST(ScenarioParseTest, WifiRequiresCommunicatorProfile) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A wifi=on\n");
  EXPECT_TRUE(Contains(msg, "line 2")) << msg;
  EXPECT_TRUE(Contains(msg, "9500")) << msg;
}

TEST(ScenarioParseTest, FaultTargetMustMatchKind) {
  // bt.fail against a device declared with bt=off.
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "fault at=5s bt.fail phone-A for=5s\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
}

TEST(ScenarioParseTest, SensorFaultNeedsDeclaredSensor) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "fault at=5s sensor.fail humidity@phone-A for=5s\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
  EXPECT_TRUE(Contains(msg, "humidity")) << msg;
}

TEST(ScenarioParseTest, TextPropertyNeedsOperator) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A bt=off cell=off sensors=temperature\n"
      "query q1 on phone-A : SELECT temperature FROM intSensor DURATION 10 "
      "sec\n"
      "expect q.q1.last_source\n");
  EXPECT_TRUE(Contains(msg, "line 4")) << msg;
}

TEST(ScenarioParseTest, CancelOfUndeclaredQueryIsLineNumbered) {
  const std::string msg = ParseError(
      "scenario t\n"
      "device phone-A\n"
      "cancel nope\n");
  EXPECT_TRUE(Contains(msg, "line 3")) << msg;
  EXPECT_TRUE(Contains(msg, "nope")) << msg;
}

TEST(ScenarioParseTest, CommentsAndBlankLinesAreIgnored) {
  auto spec = ParseScenario(
      "# leading comment\n"
      "scenario t\n"
      "\n"
      "device phone-A  # trailing comment\n"
      "run 5s\n");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec->steps.size(), 2u);
}

TEST(ScenarioParseTest, EveryGeneratedCaseParses) {
  const auto names = GeneratedCaseNames();
  // strategy(3) x fault(3) x priority(3) x nodes(2).
  EXPECT_EQ(names.size(), 54u);
  for (const std::string& name : names) {
    EXPECT_TRUE(IsGeneratedCase(name)) << name;
    auto text = GeneratedSpecText(name, {});
    ASSERT_TRUE(text.ok()) << name << ": " << text.status().message();
    auto spec = ParseScenario(*text);
    EXPECT_TRUE(spec.ok()) << name << ": " << spec.status().message();
  }
}

TEST(ScenarioParseTest, GeneratedCasesParseUnderStressScale) {
  GeneratorOptions options;
  options.node_scale = 3;
  for (const std::string& name : GeneratedCaseNames()) {
    auto text = GeneratedSpecText(name, options);
    ASSERT_TRUE(text.ok()) << name << ": " << text.status().message();
    auto spec = ParseScenario(*text);
    EXPECT_TRUE(spec.ok()) << name << ": " << spec.status().message();
  }
}

TEST(ScenarioParseTest, UnknownGeneratedCaseIsRejected) {
  EXPECT_FALSE(IsGeneratedCase("gen_bogus_case"));
  EXPECT_FALSE(GeneratedSpecText("gen_bogus_case", {}).ok());
}

}  // namespace
}  // namespace contory::scenario
