// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"

namespace contory::sim {
namespace {

using namespace std::chrono_literals;

TEST(SimulationTest, StartsAtEpoch) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), kSimEpoch);
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAfter(30ms, [&] { order.push_back(3); });
  sim.ScheduleAfter(10ms, [&] { order.push_back(1); });
  sim.ScheduleAfter(20ms, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), kSimEpoch + 30ms);
}

TEST(SimulationTest, EqualTimesFireFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAfter(5ms, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulationTest, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen{};
  sim.ScheduleAfter(155s, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, kSimEpoch + 155s);
}

TEST(SimulationTest, PastSchedulingClampsToNow) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAfter(10ms, [&] {
    sim.ScheduleAt(kSimEpoch, [&] {
      fired = true;
      EXPECT_EQ(sim.Now(), kSimEpoch + 10ms);
    });
  });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, NegativeDelayClampsToZero) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAfter(-5s, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), kSimEpoch);
}

TEST(SimulationTest, CancelPreventsDispatch) {
  Simulation sim;
  bool fired = false;
  const TimerId id = sim.ScheduleAfter(10ms, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelUnknownIdIsNoop) {
  Simulation sim;
  sim.Cancel(kInvalidTimer);
  sim.Cancel(999);
  sim.Run();
  EXPECT_EQ(sim.events_dispatched(), 0u);
}

TEST(SimulationTest, CancelAfterFireIsNoop) {
  Simulation sim;
  const TimerId id = sim.ScheduleAfter(1ms, [] {});
  sim.Run();
  sim.Cancel(id);  // must not poison a later event with the same slot
  bool fired = false;
  sim.ScheduleAfter(1ms, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAfter(10ms, [&] { ++count; });
  sim.ScheduleAfter(20ms, [&] { ++count; });
  sim.ScheduleAfter(30ms, [&] { ++count; });
  sim.RunUntil(kSimEpoch + 20ms);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), kSimEpoch + 20ms);
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, RunForIsRelative) {
  Simulation sim;
  sim.RunFor(5s);
  EXPECT_EQ(sim.Now(), kSimEpoch + 5s);
  sim.RunFor(5s);
  EXPECT_EQ(sim.Now(), kSimEpoch + 10s);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.ScheduleAfter(1ms, recurse);
  };
  sim.ScheduleAfter(1ms, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), kSimEpoch + 5ms);
}

TEST(SimulationTest, NullCallbackThrows) {
  Simulation sim;
  EXPECT_THROW(sim.ScheduleAfter(1ms, nullptr), std::invalid_argument);
}

TEST(SimulationTest, RunawayGuardThrows) {
  Simulation sim;
  std::function<void()> forever = [&] { sim.ScheduleAfter(1ms, forever); };
  sim.ScheduleAfter(1ms, forever);
  EXPECT_THROW(sim.Run(1'000), std::runtime_error);
}

TEST(SimulationTest, PendingCountExcludesCancelled) {
  Simulation sim;
  const TimerId a = sim.ScheduleAfter(1ms, [] {});
  sim.ScheduleAfter(2ms, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(PeriodicTaskTest, FiresEveryPeriod) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task{sim, 10ms, [&] { ++ticks; }};
  sim.RunUntil(kSimEpoch + 55ms);
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTaskTest, InitialDelayDiffersFromPeriod) {
  Simulation sim;
  std::vector<SimTime> at;
  PeriodicTask task{sim, 5ms, 10ms, [&] { at.push_back(sim.Now()); }};
  sim.RunUntil(kSimEpoch + 30ms);
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], kSimEpoch + 5ms);
  EXPECT_EQ(at[1], kSimEpoch + 15ms);
  EXPECT_EQ(at[2], kSimEpoch + 25ms);
}

TEST(PeriodicTaskTest, StopFromOwnCallback) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task{sim, 10ms, [&] {
                      if (++ticks == 2) task.Stop();
                    }};
  sim.RunUntil(kSimEpoch + 100ms);
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, DestructionCancels) {
  Simulation sim;
  int ticks = 0;
  {
    PeriodicTask task{sim, 10ms, [&] { ++ticks; }};
    sim.RunUntil(kSimEpoch + 25ms);
  }
  sim.RunUntil(kSimEpoch + 100ms);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTaskTest, SetPeriodFromCallbackTakesEffectNextTick) {
  Simulation sim;
  std::vector<SimTime> at;
  PeriodicTask task{sim, 10ms, [&] {
                      at.push_back(sim.Now());
                      if (at.size() == 1) task.SetPeriod(20ms);
                    }};
  sim.RunUntil(kSimEpoch + 50ms);
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[1], kSimEpoch + 30ms);
  EXPECT_EQ(at[2], kSimEpoch + 50ms);
}

TEST(PeriodicTaskTest, InvalidArgsThrow) {
  Simulation sim;
  EXPECT_THROW(PeriodicTask(sim, 0ms, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTask(sim, 10ms, nullptr), std::invalid_argument);
}

TEST(SimulationTest, RngAndIdsAreOwned) {
  Simulation sim{99};
  const auto a = sim.rng().Next();
  Simulation sim2{99};
  EXPECT_EQ(a, sim2.rng().Next());
  EXPECT_EQ(sim.ids().NextId("x"), "x-1");
}

}  // namespace
}  // namespace contory::sim
