// Observability tests: the MetricsRegistry and QueryTracer in isolation,
// the obs::Clock installation semantics, and the span-lifecycle
// invariants of the instrumented pipeline — every admitted query yields
// exactly one root span with a terminal status, failover/degradation
// produce nested stage spans, and a client cancelling from inside its
// own delivery callback closes the span tree exactly once.
//
// The whole suite runs twice in CI: once with hooks live and once with
// CONTORY_OBS_MODE=off in the environment (runtime disable). Scenario
// tests branch on the active mode, so the "off" run asserts the
// zero-footprint contract instead of skipping.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/contory.hpp"
#include "fault/fault_injector.hpp"
#include "obs/clock.hpp"
#include "obs/observability.hpp"
#include "testbed/testbed.hpp"

namespace contory {
namespace {

using namespace std::chrono_literals;

query::CxtQuery Q(sim::Simulation& sim, const std::string& text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  q->id = sim.ids().NextId("q");
  return *std::move(q);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(ObsMetricsTest, EncodeKeySortsLabels) {
  EXPECT_EQ(obs::MetricsRegistry::EncodeKey("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=\"1\",b=\"2\"}");
  EXPECT_EQ(obs::MetricsRegistry::EncodeKey("m", {}), "m");
}

TEST(ObsMetricsTest, LabelOrderDoesNotSplitMetrics) {
  obs::MetricsRegistry registry;
  obs::Counter& a =
      registry.GetCounter("m", {{"a", "1"}, {"b", "2"}});
  obs::Counter& b =
      registry.GetCounter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ObsMetricsTest, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.GetCounter("x");
  EXPECT_THROW(registry.GetGauge("x"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("x"), std::logic_error);
}

TEST(ObsMetricsTest, HandlesSurviveReset) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("c");
  obs::Gauge& g = registry.GetGauge("g");
  c.Inc(5);
  g.Set(3.0);
  registry.Reset();
  // Values are zeroed but the handles (and lookups) stay valid.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.Inc();
  EXPECT_EQ(&registry.GetCounter("c"), &c);
  ASSERT_NE(registry.FindCounter("c"), nullptr);
  EXPECT_EQ(registry.FindCounter("c")->value(), 1u);
}

TEST(ObsMetricsTest, HistogramPercentilesAndCell) {
  obs::Histogram h{{1.0, 10.0, 100.0}};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);

  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.stats().mean(), 138.875);
  // Percentiles interpolate within the bucket; the overflow bucket
  // reports the true observed maximum.
  EXPECT_LE(h.Percentile(50.0), 10.0);
  EXPECT_GT(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 500.0);
  // The paper's "Avg [90% CI]" cell.
  EXPECT_NE(h.ToCell().find("138.875 ["), std::string::npos);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsMetricsTest, ExportersRenderAllKinds) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests_total", {{"mechanism", "intSensor"}}).Inc(3);
  registry.GetGauge("live").Set(2.0);
  registry.GetHistogram("lat_ms", {}, {1.0, 10.0}).Observe(4.0);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("requests_total{mechanism=\"intSensor\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE live gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("lat_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_ms_count 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_ms_sum 4"), std::string::npos);
}

TEST(ObsMetricsTest, SeriesCapRedirectsToOverflowSeries) {
  obs::MetricsRegistry registry;
  registry.SetSeriesCap(2);
  obs::Counter& c1 = registry.GetCounter("m_total", {{"c", "1"}});
  obs::Counter& c2 = registry.GetCounter("m_total", {{"c", "2"}});
  EXPECT_NE(&c1, &c2);

  // The third distinct label set lands in the "other" overflow series.
  obs::Counter& c3 = registry.GetCounter("m_total", {{"c", "3"}});
  EXPECT_EQ(&c3, &registry.GetCounter("m_total", {{"c", "other"}}));
  c3.Inc(7);
  // Every redirected lookup is counted — the counter measures how often
  // callers hit the cap, not just how many series were refused.
  const obs::Counter* capped =
      registry.FindCounter("metrics_series_capped_total");
  ASSERT_NE(capped, nullptr);
  EXPECT_GE(capped->value(), 1u);
  const std::uint64_t before = capped->value();
  registry.GetCounter("m_total", {{"c", "4"}}).Inc();
  EXPECT_GT(capped->value(), before);
  EXPECT_EQ(registry.FindCounter("m_total", {{"c", "other"}})->value(), 8u);

  // Existing series keep resolving directly, the cap only stops new ones.
  EXPECT_EQ(&registry.GetCounter("m_total", {{"c", "1"}}), &c1);
  // Unlabeled series and other metric names are never capped.
  registry.GetCounter("unlabeled_total").Inc();
  obs::Gauge& g3 = registry.GetGauge("g", {{"c", "3"}});
  EXPECT_NE(&g3, &registry.GetGauge("g", {{"c", "1"}}));

  // SetSeriesCap(0) disables the guard for fresh names.
  registry.SetSeriesCap(0);
  obs::Counter& u3 = registry.GetCounter("uncapped_total", {{"c", "3"}});
  EXPECT_NE(&u3, &registry.GetCounter("uncapped_total", {{"c", "other"}}));
}

TEST(ObsMetricsTest, PrometheusExpositionLints) {
  obs::MetricsRegistry registry;
  registry.SetSeriesCap(2);
  registry.GetCounter("lint_total", {{"z", "9"}, {"a", "1"}}).Inc(3);
  registry.GetCounter("lint_total", {{"a", "2"}, {"z", "8"}}).Inc();
  registry.GetCounter("lint_total", {{"a", "3"}, {"z", "7"}}).Inc();  // other
  registry.GetGauge("lint_live").Set(2.0);
  registry.GetHistogram("lint_ms", {}, {1.0, 10.0}).Observe(0.5);

  const auto is_name = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char ch : s) {
      if (std::isalnum(static_cast<unsigned char>(ch)) == 0 && ch != '_' &&
          ch != ':') {
        return false;
      }
    }
    return std::isdigit(static_cast<unsigned char>(s[0])) == 0;
  };
  // Histogram series render under derived names; TYPE covers the base.
  const auto base_of = [](std::string name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s{suffix};
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        return name.substr(0, name.size() - s.size());
      }
    }
    return name;
  };

  std::set<std::string> typed;
  std::istringstream lines(registry.ToPrometheusText());
  std::string line;
  std::size_t series_seen = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      EXPECT_TRUE(is_name(rest.substr(0, space))) << line;
      const std::string kind = rest.substr(space + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      typed.insert(rest.substr(0, space));
      continue;
    }
    ++series_seen;
    // `name{labels} value` — name valid, labels sorted, value numeric.
    std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    EXPECT_TRUE(is_name(name)) << line;
    EXPECT_TRUE(typed.count(base_of(name)) == 1 || typed.count(name) == 1)
        << "series before its # TYPE: " << line;
    std::size_t value_at = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      ASSERT_NE(close, std::string::npos) << line;
      std::string previous_key;
      std::size_t at = name_end + 1;
      while (at < close) {
        const std::size_t eq = line.find('=', at);
        ASSERT_NE(eq, std::string::npos) << line;
        const std::string key = line.substr(at, eq - at);
        EXPECT_TRUE(is_name(key)) << line;
        EXPECT_LT(previous_key, key) << "labels not sorted: " << line;
        previous_key = key;
        ASSERT_EQ(line[eq + 1], '"') << line;
        const std::size_t end_quote = line.find('"', eq + 2);
        ASSERT_NE(end_quote, std::string::npos) << line;
        at = end_quote + 1;
        if (line[at] == ',') ++at;
      }
      value_at = close + 1;
    }
    ASSERT_EQ(line[value_at], ' ') << line;
    const std::string value = line.substr(value_at + 1);
    ASSERT_FALSE(value.empty()) << line;
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      EXPECT_EQ(*end, '\0') << "unparsable value in: " << line;
    }
  }
  // counter + gauge + histogram bases all declared, series all present.
  EXPECT_GE(typed.size(), 4u);  // lint_total, lint_live, lint_ms, capped
  EXPECT_GE(series_seen, 9u);   // 3 counters + capped + gauge + hist(4+)
}

// --- QueryTracer ------------------------------------------------------------

TEST(ObsTracerTest, RootAndStageLifecycle) {
  obs::QueryTracer tracer;
  const auto root = tracer.BeginQuery("q-1", kSimEpoch);
  ASSERT_NE(root, 0u);
  const auto stage =
      tracer.BeginStage(root, "provision", "intSensor", kSimEpoch + 1s);
  ASSERT_NE(stage, 0u);
  EXPECT_EQ(tracer.open_count(), 2u);
  EXPECT_EQ(tracer.spans_started(), 2u);

  tracer.AddItems(root, 2);
  tracer.AddItems(stage);
  tracer.AddNote(stage, "switch imminent");

  const obs::Span* s = tracer.EndStage(stage, kSimEpoch + 5s, "ok");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->parent, root);
  EXPECT_EQ(s->query_id, "q-1");
  EXPECT_EQ(s->name, "provision");
  EXPECT_EQ(s->mechanism, "intSensor");
  EXPECT_EQ(s->status, "ok");
  EXPECT_EQ(s->duration(), 4s);
  EXPECT_EQ(s->items, 1u);
  ASSERT_EQ(s->notes.size(), 1u);
  EXPECT_EQ(s->notes[0], "switch imminent");
  EXPECT_FALSE(s->open);

  const obs::Span* r = tracer.EndQuery(root, kSimEpoch + 9s, "DONE");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->parent, 0u);
  EXPECT_EQ(r->items, 2u);
  EXPECT_EQ(tracer.open_count(), 0u);

  const auto all = tracer.FinishedFor("q-1");
  ASSERT_EQ(all.size(), 2u);  // completion order: stage first, then root
  EXPECT_EQ(all[0].name, "provision");
  EXPECT_EQ(all[1].name, "query");
}

TEST(ObsTracerTest, UnknownRootYieldsNoopHandle) {
  obs::QueryTracer tracer;
  EXPECT_EQ(tracer.BeginStage(42, "provision", "extInfra", kSimEpoch), 0u);
  EXPECT_EQ(tracer.EndStage(0, kSimEpoch, "ok"), nullptr);
  tracer.AddItems(0);
  tracer.AddNote(0, "nope");
  EXPECT_EQ(tracer.spans_started(), 0u);
  EXPECT_EQ(tracer.double_closes(), 0u);
}

TEST(ObsTracerTest, DoubleCloseIsCounted) {
  obs::QueryTracer tracer;
  const auto root = tracer.BeginQuery("q-1", kSimEpoch);
  ASSERT_NE(tracer.EndQuery(root, kSimEpoch + 1s, "DONE"), nullptr);
  // A second close of a once-valid handle is an instrumentation bug and
  // is counted; a handle that was never issued is ignored.
  EXPECT_EQ(tracer.EndQuery(root, kSimEpoch + 2s, "DONE"), nullptr);
  EXPECT_EQ(tracer.double_closes(), 1u);
  EXPECT_EQ(tracer.EndStage(999, kSimEpoch + 2s, "ok"), nullptr);
  EXPECT_EQ(tracer.double_closes(), 1u);
}

TEST(ObsTracerTest, EnergyProbeSampledAtBoundaries) {
  double energy = 1.5;
  obs::QueryTracer tracer;
  const auto root =
      tracer.BeginQuery("q-1", kSimEpoch, [&] { return energy; });
  const auto stage =
      tracer.BeginStage(root, "provision", "intSensor", kSimEpoch + 1s);

  energy = 3.0;
  const obs::Span* s = tracer.EndStage(stage, kSimEpoch + 2s, "ok");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->energy_start_j, 1.5);
  EXPECT_DOUBLE_EQ(s->energy_end_j, 3.0);
  EXPECT_DOUBLE_EQ(s->energy_joules(), 1.5);

  energy = 5.0;
  const obs::Span* r = tracer.EndQuery(root, kSimEpoch + 3s, "DONE");
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->energy_start_j, 1.5);
  EXPECT_DOUBLE_EQ(r->energy_joules(), 3.5);
}

TEST(ObsTracerTest, CapacityBoundsFinishedSpans) {
  obs::QueryTracer tracer;
  tracer.SetCapacity(2);
  for (int i = 0; i < 3; ++i) {
    const std::string id = "q-" + std::to_string(i);
    tracer.EndQuery(tracer.BeginQuery(id, kSimEpoch), kSimEpoch + 1s, "DONE");
  }
  EXPECT_EQ(tracer.finished().size(), 2u);
  EXPECT_EQ(tracer.spans_dropped(), 1u);
  EXPECT_EQ(tracer.finished().front().query_id, "q-1");  // oldest dropped

  // Capacity 0 still keeps the most recent span so the pointer returned
  // by the closing call stays valid.
  tracer.SetCapacity(0);
  const obs::Span* last = tracer.EndQuery(
      tracer.BeginQuery("q-last", kSimEpoch), kSimEpoch + 1s, "DONE");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->query_id, "q-last");
  EXPECT_EQ(tracer.finished().size(), 1u);
}

TEST(ObsTracerTest, NoteOpenRootsAnnotatesOnlyRoots) {
  obs::QueryTracer tracer;
  const auto root_a = tracer.BeginQuery("q-a", kSimEpoch);
  const auto root_b = tracer.BeginQuery("q-b", kSimEpoch);
  const auto stage =
      tracer.BeginStage(root_a, "provision", "intSensor", kSimEpoch);
  tracer.NoteOpenRoots("fault:bt.fail:phone:on");

  const obs::Span* sa = tracer.FindOpen(root_a);
  const obs::Span* sb = tracer.FindOpen(root_b);
  const obs::Span* ss = tracer.FindOpen(stage);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  ASSERT_NE(ss, nullptr);
  ASSERT_EQ(sa->notes.size(), 1u);
  EXPECT_EQ(sa->notes[0], "fault:bt.fail:phone:on");
  EXPECT_EQ(sb->notes.size(), 1u);
  EXPECT_TRUE(ss->notes.empty());
}

// --- obs::Clock -------------------------------------------------------------

TEST(ObsClockTest, TokenGuardedInstallation) {
  ASSERT_FALSE(obs::Clock::installed());
  EXPECT_EQ(obs::Clock::Now(), kSimEpoch);  // fallback with no source

  const auto t1 = obs::Clock::Install([] { return kSimEpoch + 5s; });
  const auto t2 = obs::Clock::Install([] { return kSimEpoch + 9s; });
  EXPECT_EQ(obs::Clock::Now(), kSimEpoch + 9s);

  // A stale token cannot strand the newer installation.
  obs::Clock::Uninstall(t1);
  EXPECT_TRUE(obs::Clock::installed());
  EXPECT_EQ(obs::Clock::Now(), kSimEpoch + 9s);

  obs::Clock::Uninstall(t2);
  EXPECT_FALSE(obs::Clock::installed());
  EXPECT_EQ(obs::Clock::Now(), kSimEpoch);
}

TEST(ObsClockTest, WorldInstallsItsSimulation) {
  ASSERT_FALSE(obs::Clock::installed());
  {
    testbed::World world{7};
    world.RunFor(42s);
    // One installation point: the tracer, op-latency metrics and log
    // prefix all read the same simulated clock.
    EXPECT_TRUE(obs::Clock::installed());
    EXPECT_EQ(obs::Clock::Now(), world.Now());
    EXPECT_EQ(obs::Clock::Now(), kSimEpoch + 42s);
  }
  EXPECT_FALSE(obs::Clock::installed());
}

// --- Instrumented-pipeline scenarios ----------------------------------------

/// Runs every scenario in the mode CI selected: hooks live (default) or
/// runtime-disabled (CONTORY_OBS_MODE=off). A CONTORY_OBS=OFF compile
/// behaves like the disabled mode.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Observability::ResetForTest();
    const char* mode = std::getenv("CONTORY_OBS_MODE");
    if (mode != nullptr && std::string(mode) == "off") {
      obs::Observability::Enable(false);
    }
  }
  void TearDown() override { obs::Observability::ResetForTest(); }

  /// True when instrumentation is active for this run (compiled in and
  /// runtime-enabled); scenario tests assert the zero-footprint contract
  /// otherwise.
  static bool HooksLive() { return COBS_ON(); }

  static obs::MetricsRegistry& metrics() {
    return obs::Observability::metrics();
  }
  static obs::QueryTracer& tracer() { return obs::Observability::tracer(); }

  static std::uint64_t CounterValue(const std::string& name,
                                    const obs::Labels& labels = {}) {
    const obs::Counter* c = metrics().FindCounter(name, labels);
    return c == nullptr ? 0 : c->value();
  }
  static double GaugeValue(const std::string& name) {
    const obs::Gauge* g = metrics().FindGauge(name);
    return g == nullptr ? 0.0 : g->value();
  }
};

TEST_F(ObsTest, PeriodicQueryYieldsOneRootSpanWithTerminalStatus) {
  testbed::World world{91};
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);

  core::CollectingClient client;
  auto q = Q(world.sim(),
             "SELECT temperature FROM intSensor DURATION 30 sec EVERY 5 sec");
  const std::string id = q.id;
  ASSERT_TRUE(device.contory().ProcessCxtQuery(std::move(q), client).ok());
  world.RunFor(40s);

  ASSERT_FALSE(client.items.empty());
  EXPECT_EQ(device.contory().queries().active_count(), 0u);

  if (!HooksLive()) {
    EXPECT_EQ(tracer().spans_started(), 0u);
    EXPECT_EQ(metrics().FindCounter("queries_admitted_total"), nullptr);
    return;
  }

  EXPECT_EQ(tracer().open_count(), 0u);
  EXPECT_EQ(tracer().double_closes(), 0u);

  const auto spans = tracer().FinishedFor(id);
  std::size_t roots = 0;
  const obs::Span* root = nullptr;
  const obs::Span* provision = nullptr;
  for (const obs::Span& s : spans) {
    if (s.name == "query") {
      ++roots;
      root = &s;
    }
    if (s.name == "provision") provision = &s;
  }
  EXPECT_EQ(roots, 1u);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->status, "ACTIVE");  // finished from ACTIVE at expiry
  EXPECT_EQ(root->items, client.items.size());
  EXPECT_GE(root->duration(), 30s);
  // The energy probe attributed the device's consumption to the query.
  EXPECT_GT(root->energy_joules(), 0.0);
  ASSERT_NE(provision, nullptr);
  EXPECT_EQ(provision->mechanism, "intSensor");
  // The facade reported a clean duration expiry before the table's
  // terminal close cascade ran, so the stage closed with its own status.
  EXPECT_EQ(provision->status, "ok");
  EXPECT_EQ(provision->items, client.items.size());

  EXPECT_EQ(CounterValue("queries_admitted_total"), 1u);
  EXPECT_DOUBLE_EQ(GaugeValue("queries_live"), 0.0);
  EXPECT_EQ(CounterValue("items_delivered_total",
                         {{"mechanism", "intSensor"}}),
            client.items.size());
  EXPECT_EQ(CounterValue("queries_completed_total", {{"state", "ACTIVE"}}),
            1u);
  EXPECT_EQ(CounterValue("providers_created_total",
                         {{"mechanism", "intSensor"}}),
            1u);
  const obs::Histogram* first = metrics().FindHistogram(
      "first_delivery_latency_ms", {{"mechanism", "intSensor"}});
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->count(), 1u);
}

TEST_F(ObsTest, RuntimeDisableSuppressesEveryHook) {
  obs::Observability::Enable(false);
  {
    testbed::World world{42};
    testbed::DeviceOptions opts;
    opts.with_bt = false;
    opts.with_cellular = false;
    opts.internal_sensors = {vocab::kTemperature};
    auto& device = world.AddDevice(opts);

    core::CollectingClient client;
    ASSERT_TRUE(
        device.contory()
            .ProcessCxtQuery(
                Q(world.sim(),
                  "SELECT temperature FROM intSensor DURATION 1 min"),
                client)
            .ok());
    world.RunFor(30s);
    // The pipeline itself is unaffected by the disabled instrumentation.
    EXPECT_EQ(client.items.size(), 1u);
    EXPECT_EQ(device.contory().queries().active_count(), 0u);
  }
  EXPECT_EQ(tracer().spans_started(), 0u);
  const obs::Counter* admitted =
      metrics().FindCounter("queries_admitted_total");
  if (admitted != nullptr) {
    EXPECT_EQ(admitted->value(), 0u);
  }
}

/// Cancels its own query from inside the delivery callback — the
/// reentrancy trap: CancelCxtQuery erases the QueryRecord while an
/// OnFacadeDelivery frame still holds a reference to it.
class CancelingClient : public core::Client {
 public:
  void ReceiveCxtItem(const CxtItem& item) override {
    items.push_back(item);
    if (items.size() == 1 && factory != nullptr) {
      factory->CancelCxtQuery(query_id);
    }
  }
  void InformError(const std::string& msg) override {
    errors.push_back(msg);
  }
  bool MakeDecision(const std::string&) override { return true; }

  core::ContextFactory* factory = nullptr;
  std::string query_id;
  std::vector<CxtItem> items;
  std::vector<std::string> errors;
};

TEST_F(ObsTest, ReentrantCancelClosesSpansExactlyOnce) {
  testbed::World world{92};
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);

  CancelingClient client;
  auto q = Q(world.sim(),
             "SELECT temperature FROM intSensor DURATION 5 min EVERY 5 sec");
  client.factory = &device.contory();
  client.query_id = q.id;
  const std::string id = q.id;
  ASSERT_TRUE(device.contory().ProcessCxtQuery(std::move(q), client).ok());
  world.RunFor(60s);

  // The cancel took effect at the first delivery and the lifecycle
  // terminated exactly once.
  EXPECT_EQ(client.items.size(), 1u);
  const core::QueryTable& table = device.contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  int done = 0;
  for (const auto& completion : table.completions()) {
    if (completion.id == id) ++done;
  }
  EXPECT_EQ(done, 1);

  if (!HooksLive()) {
    EXPECT_EQ(tracer().spans_started(), 0u);
    return;
  }

  EXPECT_EQ(tracer().open_count(), 0u);
  EXPECT_EQ(tracer().double_closes(), 0u);
  EXPECT_EQ(CounterValue("queries_cancelled_total"), 1u);
  EXPECT_DOUBLE_EQ(GaugeValue("queries_live"), 0.0);

  std::size_t roots = 0;
  bool cancelled_note = false;
  for (const obs::Span& s : tracer().FinishedFor(id)) {
    if (s.name != "query") continue;
    ++roots;
    for (const std::string& note : s.notes) {
      if (note == "cancelled") cancelled_note = true;
    }
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_TRUE(cancelled_note);
}

TEST_F(ObsTest, RefusedTransitionSurfacesInRegistry) {
  testbed::World world{93};
  testbed::DeviceOptions opts;
  opts.with_bt = false;
  opts.with_cellular = false;
  opts.internal_sensors = {vocab::kTemperature};
  auto& device = world.AddDevice(opts);

  core::CollectingClient client;
  auto q = Q(world.sim(),
             "SELECT temperature FROM intSensor DURATION 5 min EVERY 5 sec");
  const std::string id = q.id;
  ASSERT_TRUE(device.contory().ProcessCxtQuery(std::move(q), client).ok());
  world.RunFor(1s);

  core::QueryRecord* record = device.contory().queries().Find(id);
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->state, core::QueryState::kActive);
  // ACTIVE -> ADMITTED is not an edge of the lifecycle state machine.
  EXPECT_FALSE(device.contory().queries().Transition(
      *record, core::QueryState::kAdmitted));
  EXPECT_EQ(record->state, core::QueryState::kActive);  // unchanged
  EXPECT_EQ(device.contory().queries().invalid_transitions(), 1u);

  if (HooksLive()) {
    EXPECT_EQ(CounterValue("query_invalid_transitions_total"), 1u);
  } else {
    EXPECT_EQ(metrics().FindCounter("query_invalid_transitions_total"),
              nullptr);
  }
  device.contory().CancelCxtQuery(id);
}

TEST_F(ObsTest, DegradedLifecycleProducesNestedStageSpans) {
  // The DegradedModeTest acceptance scenario, re-examined through the
  // tracer: healthy GPS provisioning, total mechanism loss, stale-served
  // degraded window, recovery once the radios return.
  testbed::World world{321};
  testbed::DeviceOptions opts;
  opts.name = "phone-A";
  core::ContextFactoryConfig cfg;
  cfg.recovery_probe_period = 15s;
  opts.factory_config = cfg;
  auto& device = world.AddDevice(opts);
  world.AddGps("gps-1", {3, 0});

  core::CollectingClient client;
  auto q = Q(world.sim(), "SELECT location DURATION 20 min EVERY 5 sec");
  const std::string id = q.id;
  ASSERT_TRUE(device.contory().ProcessCxtQuery(std::move(q), client).ok());
  world.RunFor(60s);
  ASSERT_FALSE(client.items.empty());

  ASSERT_TRUE(world.injector()
                  .ExecuteText(
                      "at=60s gps.off gps-1 for=180s\n"
                      "at=80s bt.fail phone-A for=160s\n")
                  .ok());
  world.RunFor(90s);  // t=150s: mid-outage, degraded

  ASSERT_TRUE(device.contory().IsDegraded(id));
  if (HooksLive()) {
    EXPECT_DOUBLE_EQ(GaugeValue("queries_degraded"), 1.0);
    // The 60-80 s window (GPS off, BT still up) lets the recovery probe
    // flap once onto the GPS-less BT stack, so degrade can count twice.
    EXPECT_GE(CounterValue("queries_degraded_total"), 1u);
    EXPECT_GE(CounterValue("provider_failures_total",
                           {{"mechanism", "intSensor"}}),
              1u);
    // The open root recorded the fault windows it lived through.
    const core::QueryRecord* record = device.contory().queries().Find(id);
    ASSERT_NE(record, nullptr);
    const obs::Span* root = tracer().FindOpen(record->obs.root);
    ASSERT_NE(root, nullptr);
    bool saw_gps_fault = false;
    for (const std::string& note : root->notes) {
      if (note == "fault:gps.off:gps-1:on") saw_gps_fault = true;
    }
    EXPECT_TRUE(saw_gps_fault);
  }

  world.RunFor(160s);  // t=310s: recovered
  ASSERT_FALSE(device.contory().IsDegraded(id));

  if (!HooksLive()) {
    EXPECT_EQ(tracer().spans_started(), 0u);
    return;
  }

  EXPECT_DOUBLE_EQ(GaugeValue("queries_degraded"), 0.0);
  EXPECT_GE(CounterValue("degraded_recoveries_total"), 1u);
  EXPECT_EQ(CounterValue("degraded_recoveries_total"),
            CounterValue("queries_degraded_total"));  // every degrade ended
  EXPECT_GE(CounterValue("degraded_deliveries_total"), 1u);

  // The stage spans closed along the way tell the whole story: the
  // intSensor window that died, the failover that found nothing and
  // degraded, and the degraded window that ended in recovery.
  bool provision_failed = false;
  bool failover_degraded = false;
  bool degraded_recovered = false;
  for (const obs::Span& s : tracer().FinishedFor(id)) {
    if (s.name == "provision" && s.mechanism == "intSensor" &&
        s.status.rfind("failed", 0) == 0) {
      provision_failed = true;
    }
    if (s.name == "failover" && s.status == "degraded") {
      failover_degraded = true;
    }
    if (s.name == "degraded" && s.status.rfind("recovered:", 0) == 0) {
      EXPECT_GT(s.items, 0u);  // the stale deliveries landed on this span
      degraded_recovered = true;
    }
  }
  EXPECT_TRUE(provision_failed);
  EXPECT_TRUE(failover_degraded);
  EXPECT_TRUE(degraded_recovered);

  device.contory().CancelCxtQuery(id);
  EXPECT_EQ(tracer().open_count(), 0u);
  EXPECT_EQ(tracer().double_closes(), 0u);
  std::size_t roots = 0;
  for (const obs::Span& s : tracer().FinishedFor(id)) {
    if (s.name == "query") ++roots;
  }
  EXPECT_EQ(roots, 1u);
}

TEST_F(ObsTest, ChaosFaultWindowsLandInMetrics) {
  // The WifiRouteChaosTest topology: three WiFi-only communicators in a
  // line, remote temperature published on the far one. A warm-up phase
  // fills the querier's repository; then the publisher's radio drops
  // every frame for a while, and finally the querier's own radio fails
  // outright, forcing the subscription into degraded mode.
  testbed::World world{205};
  std::vector<testbed::Device*> devices;
  for (int i = 0; i < 3; ++i) {
    testbed::DeviceOptions opts;
    opts.name = "comm-" + std::to_string(i);
    opts.profile = phone::Nokia9500();
    opts.position = {i * 80.0, 0};
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.with_cellular = false;
    devices.push_back(&world.AddDevice(opts));
  }
  core::CollectingClient pub_client;
  ASSERT_TRUE(devices[2]->contory().RegisterCxtServer(pub_client).ok());
  CxtItem item;
  item.id = "remote-1";
  item.type = vocab::kTemperature;
  item.value = 19.5;
  item.timestamp = world.Now();
  item.metadata.accuracy = 0.2;
  ASSERT_TRUE(devices[2]->contory().PublishCxtItem(item, true).ok());

  core::CollectingClient app;
  auto q = Q(world.sim(),
             "SELECT temperature FROM adHocNetwork(1,2) "
             "DURATION 3 min EVERY 15 sec");
  const std::string id = q.id;
  ASSERT_TRUE(devices[0]->contory().ProcessCxtQuery(std::move(q), app).ok());
  world.RunFor(25s);
  ASSERT_FALSE(app.items.empty());  // repository warm before the chaos

  ASSERT_TRUE(world.injector()
                  .ExecuteText(
                      "at=30s wifi.loss comm-2 rate=1.0 for=20s\n"
                      "at=60s wifi.fail comm-0 for=10min\n")
                  .ok());
  world.RunFor(175s);  // t=200s: past the 3 min duration

  const core::QueryTable& table = devices[0]->contory().queries();
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(table.invalid_transitions(), 0u);
  EXPECT_GT(devices[0]->contory().degraded_deliveries(), 0u);

  if (!HooksLive()) {
    EXPECT_EQ(tracer().spans_started(), 0u);
    EXPECT_EQ(metrics().FindCounter("faults_injected_total",
                                    {{"kind", "wifi.fail"},
                                     {"phase", "enter"}}),
              nullptr);
    return;
  }

  // Fault windows are visible end to end: injected faults, frames the
  // loss window ate, the provider failure they caused, and the degraded
  // window the query died in.
  EXPECT_EQ(CounterValue("faults_injected_total",
                         {{"kind", "wifi.loss"}, {"phase", "enter"}}),
            1u);
  EXPECT_EQ(CounterValue("faults_injected_total",
                         {{"kind", "wifi.fail"}, {"phase", "enter"}}),
            1u);
  EXPECT_GE(CounterValue("radio_frames_lost_total", {{"radio", "wifi"}}),
            1u);
  EXPECT_GE(CounterValue("radio_tx_frames_total", {{"radio", "wifi"}}), 1u);
  EXPECT_GE(CounterValue("provider_failures_total",
                         {{"mechanism", "adHocNetwork"}}),
            1u);
  EXPECT_EQ(CounterValue("queries_degraded_total"), 1u);
  EXPECT_GE(CounterValue("degraded_deliveries_total"), 1u);
  EXPECT_EQ(CounterValue("queries_completed_total", {{"state", "DEGRADED"}}),
            1u);
  EXPECT_DOUBLE_EQ(GaugeValue("queries_degraded"), 0.0);
  EXPECT_DOUBLE_EQ(GaugeValue("queries_live"), 0.0);
  EXPECT_GE(CounterValue("items_delivered_total",
                         {{"mechanism", "adHocNetwork"}}),
            app.items.size() > 0 ? 1u : 0u);

  // publishCxtItem on the ad hoc transport was timed via obs::Clock.
  const obs::Histogram* publish = metrics().FindHistogram(
      "op_latency_ms", {{"op", "publishCxtItem"},
                        {"mechanism", "adHocNetwork"},
                        {"transport", "wifi"}});
  ASSERT_NE(publish, nullptr);
  EXPECT_GE(publish->count(), 1u);

  EXPECT_EQ(tracer().open_count(), 0u);
  EXPECT_EQ(tracer().double_closes(), 0u);
  std::size_t roots = 0;
  bool degraded_window = false;
  for (const obs::Span& s : tracer().FinishedFor(id)) {
    if (s.name == "query") {
      ++roots;
      EXPECT_EQ(s.status, "DEGRADED");
    }
    if (s.name == "degraded") degraded_window = true;
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_TRUE(degraded_window);
}

TEST_F(ObsTest, ResetForTestLeavesNoRetainedSpansOrFrames) {
  // Tracer calls below go straight at the singleton (no COBS gate), so
  // this holds in the disabled run too: reset must drain every piece of
  // retained observability state — the open window, the old-generation
  // map, the finished deque, and the recorder ring.
  auto& tr = tracer();
  const std::uint64_t root = tr.BeginQuery("q-reset", kSimEpoch);
  // Enough sequential churn to advance the dense window far past the
  // root's chunk, forcing it into the old generation.
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t stage =
        tr.BeginStage(root, "provision", "intSensor", kSimEpoch);
    ASSERT_NE(tr.EndStage(stage, kSimEpoch, "ok"), nullptr);
  }
  EXPECT_EQ(tr.old_generation_size(), 1u);
  EXPECT_EQ(tr.open_count(), 1u);

  obs::RecorderConfig config;
  config.capacity = 4;
  obs::Observability::recorder().Configure(std::move(config));
  metrics().GetCounter("reset_probe_total").Inc();
  obs::Observability::recorder().Sample(kSimEpoch + 1s);
  ASSERT_FALSE(obs::Observability::recorder().frames().empty());

  obs::Observability::ResetForTest();
  EXPECT_EQ(tr.open_count(), 0u);
  EXPECT_EQ(tr.old_generation_size(), 0u);
  EXPECT_TRUE(tr.finished().empty());
  EXPECT_EQ(tr.spans_started(), 0u);
  EXPECT_EQ(tr.spans_dropped(), 0u);
  EXPECT_TRUE(obs::Observability::recorder().frames().empty());
  EXPECT_EQ(obs::Observability::recorder().samples_total(), 0u);
  // Closing the stale pre-reset handle is a no-op, not a double close.
  EXPECT_EQ(tr.EndQuery(root, kSimEpoch + 2s, "late"), nullptr);
}

}  // namespace
}  // namespace contory
