// Unit tests for query aggregation: clustering, merging, post-extraction.
#include <gtest/gtest.h>

#include "core/model/vocabulary.hpp"
#include "core/query/merge.hpp"
#include "core/query/parser.hpp"

namespace contory::query {
namespace {

using namespace std::chrono_literals;

CxtQuery Q(const std::string& text, const std::string& id) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  q->id = id;
  return *std::move(q);
}

TEST(MergeTest, PaperExampleMergesExactly) {
  // The q1/q2/q3 example from Sec. 4.3.
  const CxtQuery q1 = Q(
      "SELECT temperature FROM adHocNetwork(all,3) "
      "FRESHNESS 10sec DURATION 1hour EVERY 15sec",
      "q1");
  const CxtQuery q2 = Q(
      "SELECT temperature FROM adHocNetwork(all,1) "
      "FRESHNESS 20sec DURATION 2hour EVERY 30sec",
      "q2");
  const auto q3 = Merge(q1, q2);
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  EXPECT_EQ(q3->select_type, "temperature");
  ASSERT_TRUE(q3->from.sources[0].scope.has_value());
  EXPECT_TRUE(q3->from.sources[0].scope->all_nodes());
  EXPECT_EQ(q3->from.sources[0].scope->num_hops, 3);   // max
  EXPECT_EQ(q3->freshness, SimDuration{20s});          // max
  EXPECT_EQ(q3->duration.time, SimDuration{2h});       // max
  EXPECT_EQ(q3->every, SimDuration{15s});              // min
  EXPECT_EQ(q3->id, "q1+q2");
}

TEST(MergeTest, DifferentSelectNeverMerges) {
  const CxtQuery a = Q("SELECT temperature DURATION 1hour", "a");
  const CxtQuery b = Q("SELECT wind DURATION 1hour", "b");
  EXPECT_EQ(QueryDistance(a, b),
            std::numeric_limits<double>::infinity());
  EXPECT_FALSE(Mergeable(a, b));
  EXPECT_FALSE(Merge(a, b).ok());
}

TEST(MergeTest, DifferentModesDoNotMerge) {
  const CxtQuery periodic =
      Q("SELECT t DURATION 1hour EVERY 10sec", "p");
  const CxtQuery on_demand = Q("SELECT t DURATION 1hour", "o");
  EXPECT_FALSE(Mergeable(periodic, on_demand));
}

TEST(MergeTest, DifferentEventsDoNotMerge) {
  const CxtQuery a = Q("SELECT t DURATION 1hour EVENT AVG(t)>25", "a");
  const CxtQuery b = Q("SELECT t DURATION 1hour EVENT AVG(t)>30", "b");
  EXPECT_FALSE(Mergeable(a, b));
}

TEST(MergeTest, IdenticalEventsMerge) {
  const CxtQuery a =
      Q("SELECT t FRESHNESS 10sec DURATION 1hour EVENT AVG(t)>25", "a");
  const CxtQuery b =
      Q("SELECT t FRESHNESS 30sec DURATION 2hour EVENT AVG(t)>25", "b");
  const auto m = Merge(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->event, a.event);
  EXPECT_EQ(m->freshness, SimDuration{30s});
}

TEST(MergeTest, NumNodesWidensToMax) {
  const CxtQuery a =
      Q("SELECT t FROM adHocNetwork(5,2) DURATION 1hour EVERY 10sec", "a");
  const CxtQuery b =
      Q("SELECT t FROM adHocNetwork(10,1) DURATION 1hour EVERY 10sec", "b");
  const auto m = Merge(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->from.sources[0].scope->num_nodes, 10);
  EXPECT_EQ(m->from.sources[0].scope->num_hops, 2);
}

TEST(MergeTest, DifferentWhereIsDroppedForPostExtraction) {
  const CxtQuery a =
      Q("SELECT t WHERE accuracy<=0.2 DURATION 1hour EVERY 10sec", "a");
  const CxtQuery b =
      Q("SELECT t WHERE accuracy<=0.5 DURATION 1hour EVERY 10sec", "b");
  const auto m = Merge(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->where.has_value());
}

TEST(MergeTest, IdenticalWhereIsKept) {
  const CxtQuery a =
      Q("SELECT t WHERE accuracy<=0.2 DURATION 1hour EVERY 10sec", "a");
  const CxtQuery b =
      Q("SELECT t WHERE accuracy<=0.2 DURATION 2hour EVERY 20sec", "b");
  const auto m = Merge(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->where.has_value());
}

TEST(MergeTest, MissingFreshnessMeansUnconstrained) {
  const CxtQuery a = Q("SELECT t FRESHNESS 10sec DURATION 1hour", "a");
  const CxtQuery b = Q("SELECT t DURATION 1hour", "b");
  const auto m = Merge(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->freshness.has_value());
}

TEST(MergeTest, SampleDurationsTakeMax) {
  const CxtQuery a = Q("SELECT t DURATION 50 samples", "a");
  const CxtQuery b = Q("SELECT t DURATION 80 samples", "b");
  const auto m = Merge(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->duration.samples, 80);
}

TEST(MergeTest, DifferentRegionsDoNotMerge) {
  const CxtQuery a = Q(
      "SELECT wind FROM extInfra region(60.1,24.9,500) DURATION 1hour", "a");
  const CxtQuery b = Q(
      "SELECT wind FROM extInfra region(61.0,25.0,500) DURATION 1hour", "b");
  EXPECT_FALSE(Mergeable(a, b));
}

TEST(MergeTest, StricterPolicyStopsDistantQueries) {
  MergePolicy strict;
  strict.threshold = 0.1;
  strict.w_every = 1.0;
  const CxtQuery a = Q("SELECT t DURATION 1hour EVERY 1sec", "a");
  const CxtQuery b = Q("SELECT t DURATION 1hour EVERY 60sec", "b");
  EXPECT_TRUE(Mergeable(a, b));  // default paper policy: same SELECT
  EXPECT_FALSE(Mergeable(a, b, strict));
}

TEST(PostExtractTest, AppliesOriginalWhere) {
  const CxtQuery strict =
      Q("SELECT temperature WHERE accuracy<=0.2 DURATION 1hour", "s");
  CxtItem precise;
  precise.type = "temperature";
  precise.value = 20.0;
  precise.timestamp = kSimEpoch;
  precise.metadata.accuracy = 0.1;
  CxtItem sloppy = precise;
  sloppy.metadata.accuracy = 0.4;
  EXPECT_TRUE(PostExtract(strict, precise, kSimEpoch));
  EXPECT_FALSE(PostExtract(strict, sloppy, kSimEpoch));
}

TEST(PostExtractTest, AppliesOriginalFreshness) {
  const CxtQuery q = Q("SELECT t FRESHNESS 10sec DURATION 1hour", "q");
  CxtItem item;
  item.type = "t";
  item.timestamp = kSimEpoch;
  EXPECT_TRUE(PostExtract(q, item, kSimEpoch + 5s));
  EXPECT_FALSE(PostExtract(q, item, kSimEpoch + 15s));
}

TEST(PostExtractTest, RejectsWrongTypeAndExpired) {
  const CxtQuery q = Q("SELECT t DURATION 1hour", "q");
  CxtItem wrong;
  wrong.type = "other";
  wrong.timestamp = kSimEpoch;
  EXPECT_FALSE(PostExtract(q, wrong, kSimEpoch));
  CxtItem expired;
  expired.type = "t";
  expired.timestamp = kSimEpoch;
  expired.lifetime = SimDuration{1s};
  EXPECT_FALSE(PostExtract(q, expired, kSimEpoch + 2s));
}

TEST(ClusterTest, GroupsBySelectUnderDefaultPolicy) {
  const std::vector<CxtQuery> queries = {
      Q("SELECT temperature DURATION 1hour EVERY 10sec", "a"),
      Q("SELECT wind DURATION 1hour", "b"),
      Q("SELECT temperature DURATION 2hour EVERY 30sec", "c"),
      Q("SELECT wind DURATION 2hour", "d"),
      Q("SELECT location DURATION 1hour", "e"),
  };
  const auto clusters = ClusterQueries(queries);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(clusters[1], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(clusters[2], (std::vector<std::size_t>{4}));
}

TEST(ClusterTest, MergeAllFoldsCluster) {
  const std::vector<CxtQuery> queries = {
      Q("SELECT t FRESHNESS 10sec DURATION 1hour EVERY 15sec", "a"),
      Q("SELECT t FRESHNESS 20sec DURATION 2hour EVERY 30sec", "b"),
      Q("SELECT t FRESHNESS 5sec DURATION 3hour EVERY 60sec", "c"),
  };
  const auto merged = MergeAll(queries);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->freshness, SimDuration{20s});
  EXPECT_EQ(merged->duration.time, SimDuration{3h});
  EXPECT_EQ(merged->every, SimDuration{15s});
}

TEST(ClusterTest, MergeAllEmptyFails) {
  EXPECT_FALSE(MergeAll({}).ok());
}

}  // namespace
}  // namespace contory::query
