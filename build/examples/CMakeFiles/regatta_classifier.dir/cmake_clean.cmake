file(REMOVE_RECURSE
  "CMakeFiles/regatta_classifier.dir/regatta_classifier.cpp.o"
  "CMakeFiles/regatta_classifier.dir/regatta_classifier.cpp.o.d"
  "regatta_classifier"
  "regatta_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regatta_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
