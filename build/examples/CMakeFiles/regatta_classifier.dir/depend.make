# Empty dependencies file for regatta_classifier.
# This may be replaced when dependencies are built.
