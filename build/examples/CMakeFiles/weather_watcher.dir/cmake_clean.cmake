file(REMOVE_RECURSE
  "CMakeFiles/weather_watcher.dir/weather_watcher.cpp.o"
  "CMakeFiles/weather_watcher.dir/weather_watcher.cpp.o.d"
  "weather_watcher"
  "weather_watcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_watcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
