# Empty compiler generated dependencies file for weather_watcher.
# This may be replaced when dependencies are built.
