file(REMOVE_RECURSE
  "CMakeFiles/policy_demo.dir/policy_demo.cpp.o"
  "CMakeFiles/policy_demo.dir/policy_demo.cpp.o.d"
  "policy_demo"
  "policy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
