# Empty dependencies file for policy_demo.
# This may be replaced when dependencies are built.
