file(REMOVE_RECURSE
  "CMakeFiles/cellular_test.dir/cellular_test.cpp.o"
  "CMakeFiles/cellular_test.dir/cellular_test.cpp.o.d"
  "cellular_test"
  "cellular_test.pdb"
  "cellular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
