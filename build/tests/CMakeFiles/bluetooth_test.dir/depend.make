# Empty dependencies file for bluetooth_test.
# This may be replaced when dependencies are built.
