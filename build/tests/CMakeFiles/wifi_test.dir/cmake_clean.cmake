file(REMOVE_RECURSE
  "CMakeFiles/wifi_test.dir/wifi_test.cpp.o"
  "CMakeFiles/wifi_test.dir/wifi_test.cpp.o.d"
  "wifi_test"
  "wifi_test.pdb"
  "wifi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
