file(REMOVE_RECURSE
  "CMakeFiles/publisher_test.dir/publisher_test.cpp.o"
  "CMakeFiles/publisher_test.dir/publisher_test.cpp.o.d"
  "publisher_test"
  "publisher_test.pdb"
  "publisher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publisher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
