file(REMOVE_RECURSE
  "CMakeFiles/fieldtrial_test.dir/fieldtrial_test.cpp.o"
  "CMakeFiles/fieldtrial_test.dir/fieldtrial_test.cpp.o.d"
  "fieldtrial_test"
  "fieldtrial_test.pdb"
  "fieldtrial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldtrial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
