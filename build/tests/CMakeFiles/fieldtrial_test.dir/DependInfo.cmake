
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fieldtrial_test.cpp" "tests/CMakeFiles/fieldtrial_test.dir/fieldtrial_test.cpp.o" "gcc" "tests/CMakeFiles/fieldtrial_test.dir/fieldtrial_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/contory_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
