# Empty compiler generated dependencies file for fieldtrial_test.
# This may be replaced when dependencies are built.
