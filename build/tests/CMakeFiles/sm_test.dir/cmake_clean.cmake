file(REMOVE_RECURSE
  "CMakeFiles/sm_test.dir/sm_test.cpp.o"
  "CMakeFiles/sm_test.dir/sm_test.cpp.o.d"
  "sm_test"
  "sm_test.pdb"
  "sm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
