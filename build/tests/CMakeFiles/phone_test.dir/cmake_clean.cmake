file(REMOVE_RECURSE
  "CMakeFiles/phone_test.dir/phone_test.cpp.o"
  "CMakeFiles/phone_test.dir/phone_test.cpp.o.d"
  "phone_test"
  "phone_test.pdb"
  "phone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
