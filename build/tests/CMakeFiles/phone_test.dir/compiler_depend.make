# Empty compiler generated dependencies file for phone_test.
# This may be replaced when dependencies are built.
