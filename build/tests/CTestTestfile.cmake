# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/phone_test[1]_include.cmake")
include("/root/repo/build/tests/bluetooth_test[1]_include.cmake")
include("/root/repo/build/tests/wifi_test[1]_include.cmake")
include("/root/repo/build/tests/cellular_test[1]_include.cmake")
include("/root/repo/build/tests/sm_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/query_parser_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/sensors_test[1]_include.cmake")
include("/root/repo/build/tests/infra_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/access_test[1]_include.cmake")
include("/root/repo/build/tests/repository_test[1]_include.cmake")
include("/root/repo/build/tests/provider_test[1]_include.cmake")
include("/root/repo/build/tests/facade_test[1]_include.cmake")
include("/root/repo/build/tests/factory_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/fieldtrial_test[1]_include.cmake")
include("/root/repo/build/tests/publisher_test[1]_include.cmake")
