# Empty compiler generated dependencies file for contory_common.
# This may be replaced when dependencies are built.
