file(REMOVE_RECURSE
  "CMakeFiles/contory_common.dir/common/bytes.cpp.o"
  "CMakeFiles/contory_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/contory_common.dir/common/id.cpp.o"
  "CMakeFiles/contory_common.dir/common/id.cpp.o.d"
  "CMakeFiles/contory_common.dir/common/logging.cpp.o"
  "CMakeFiles/contory_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/contory_common.dir/common/rng.cpp.o"
  "CMakeFiles/contory_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/contory_common.dir/common/stats.cpp.o"
  "CMakeFiles/contory_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/contory_common.dir/common/status.cpp.o"
  "CMakeFiles/contory_common.dir/common/status.cpp.o.d"
  "CMakeFiles/contory_common.dir/common/time.cpp.o"
  "CMakeFiles/contory_common.dir/common/time.cpp.o.d"
  "libcontory_common.a"
  "libcontory_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
