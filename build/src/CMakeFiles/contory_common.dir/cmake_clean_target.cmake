file(REMOVE_RECURSE
  "libcontory_common.a"
)
