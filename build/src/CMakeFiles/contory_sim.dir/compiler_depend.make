# Empty compiler generated dependencies file for contory_sim.
# This may be replaced when dependencies are built.
