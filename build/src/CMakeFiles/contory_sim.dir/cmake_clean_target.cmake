file(REMOVE_RECURSE
  "libcontory_sim.a"
)
