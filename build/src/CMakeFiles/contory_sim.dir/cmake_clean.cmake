file(REMOVE_RECURSE
  "CMakeFiles/contory_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/contory_sim.dir/sim/simulation.cpp.o.d"
  "libcontory_sim.a"
  "libcontory_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
