
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/model/cxt_item.cpp" "src/CMakeFiles/contory_model.dir/core/model/cxt_item.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/model/cxt_item.cpp.o.d"
  "/root/repo/src/core/model/cxt_value.cpp" "src/CMakeFiles/contory_model.dir/core/model/cxt_value.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/model/cxt_value.cpp.o.d"
  "/root/repo/src/core/model/metadata.cpp" "src/CMakeFiles/contory_model.dir/core/model/metadata.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/model/metadata.cpp.o.d"
  "/root/repo/src/core/model/vocabulary.cpp" "src/CMakeFiles/contory_model.dir/core/model/vocabulary.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/model/vocabulary.cpp.o.d"
  "/root/repo/src/core/query/ast.cpp" "src/CMakeFiles/contory_model.dir/core/query/ast.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/query/ast.cpp.o.d"
  "/root/repo/src/core/query/lexer.cpp" "src/CMakeFiles/contory_model.dir/core/query/lexer.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/query/lexer.cpp.o.d"
  "/root/repo/src/core/query/merge.cpp" "src/CMakeFiles/contory_model.dir/core/query/merge.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/query/merge.cpp.o.d"
  "/root/repo/src/core/query/parser.cpp" "src/CMakeFiles/contory_model.dir/core/query/parser.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/query/parser.cpp.o.d"
  "/root/repo/src/core/query/predicate.cpp" "src/CMakeFiles/contory_model.dir/core/query/predicate.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/query/predicate.cpp.o.d"
  "/root/repo/src/core/query/query.cpp" "src/CMakeFiles/contory_model.dir/core/query/query.cpp.o" "gcc" "src/CMakeFiles/contory_model.dir/core/query/query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/contory_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
