file(REMOVE_RECURSE
  "libcontory_model.a"
)
