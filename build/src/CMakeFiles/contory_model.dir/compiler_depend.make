# Empty compiler generated dependencies file for contory_model.
# This may be replaced when dependencies are built.
