file(REMOVE_RECURSE
  "CMakeFiles/contory_model.dir/core/model/cxt_item.cpp.o"
  "CMakeFiles/contory_model.dir/core/model/cxt_item.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/model/cxt_value.cpp.o"
  "CMakeFiles/contory_model.dir/core/model/cxt_value.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/model/metadata.cpp.o"
  "CMakeFiles/contory_model.dir/core/model/metadata.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/model/vocabulary.cpp.o"
  "CMakeFiles/contory_model.dir/core/model/vocabulary.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/query/ast.cpp.o"
  "CMakeFiles/contory_model.dir/core/query/ast.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/query/lexer.cpp.o"
  "CMakeFiles/contory_model.dir/core/query/lexer.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/query/merge.cpp.o"
  "CMakeFiles/contory_model.dir/core/query/merge.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/query/parser.cpp.o"
  "CMakeFiles/contory_model.dir/core/query/parser.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/query/predicate.cpp.o"
  "CMakeFiles/contory_model.dir/core/query/predicate.cpp.o.d"
  "CMakeFiles/contory_model.dir/core/query/query.cpp.o"
  "CMakeFiles/contory_model.dir/core/query/query.cpp.o.d"
  "libcontory_model.a"
  "libcontory_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
