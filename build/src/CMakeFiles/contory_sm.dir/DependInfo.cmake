
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sm/sm_runtime.cpp" "src/CMakeFiles/contory_sm.dir/sm/sm_runtime.cpp.o" "gcc" "src/CMakeFiles/contory_sm.dir/sm/sm_runtime.cpp.o.d"
  "/root/repo/src/sm/smart_message.cpp" "src/CMakeFiles/contory_sm.dir/sm/smart_message.cpp.o" "gcc" "src/CMakeFiles/contory_sm.dir/sm/smart_message.cpp.o.d"
  "/root/repo/src/sm/tag_space.cpp" "src/CMakeFiles/contory_sm.dir/sm/tag_space.cpp.o" "gcc" "src/CMakeFiles/contory_sm.dir/sm/tag_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/contory_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
