file(REMOVE_RECURSE
  "libcontory_sm.a"
)
