# Empty dependencies file for contory_sm.
# This may be replaced when dependencies are built.
