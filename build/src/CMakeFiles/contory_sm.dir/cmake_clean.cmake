file(REMOVE_RECURSE
  "CMakeFiles/contory_sm.dir/sm/sm_runtime.cpp.o"
  "CMakeFiles/contory_sm.dir/sm/sm_runtime.cpp.o.d"
  "CMakeFiles/contory_sm.dir/sm/smart_message.cpp.o"
  "CMakeFiles/contory_sm.dir/sm/smart_message.cpp.o.d"
  "CMakeFiles/contory_sm.dir/sm/tag_space.cpp.o"
  "CMakeFiles/contory_sm.dir/sm/tag_space.cpp.o.d"
  "libcontory_sm.a"
  "libcontory_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
