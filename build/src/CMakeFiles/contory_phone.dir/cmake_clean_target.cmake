file(REMOVE_RECURSE
  "libcontory_phone.a"
)
