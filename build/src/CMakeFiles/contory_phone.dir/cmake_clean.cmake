file(REMOVE_RECURSE
  "CMakeFiles/contory_phone.dir/phone/phone_profiles.cpp.o"
  "CMakeFiles/contory_phone.dir/phone/phone_profiles.cpp.o.d"
  "CMakeFiles/contory_phone.dir/phone/smart_phone.cpp.o"
  "CMakeFiles/contory_phone.dir/phone/smart_phone.cpp.o.d"
  "libcontory_phone.a"
  "libcontory_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
