# Empty dependencies file for contory_phone.
# This may be replaced when dependencies are built.
