file(REMOVE_RECURSE
  "libcontory_energy.a"
)
