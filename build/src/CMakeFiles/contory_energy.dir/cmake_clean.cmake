file(REMOVE_RECURSE
  "CMakeFiles/contory_energy.dir/energy/battery.cpp.o"
  "CMakeFiles/contory_energy.dir/energy/battery.cpp.o.d"
  "CMakeFiles/contory_energy.dir/energy/energy_model.cpp.o"
  "CMakeFiles/contory_energy.dir/energy/energy_model.cpp.o.d"
  "CMakeFiles/contory_energy.dir/energy/power_meter.cpp.o"
  "CMakeFiles/contory_energy.dir/energy/power_meter.cpp.o.d"
  "libcontory_energy.a"
  "libcontory_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
