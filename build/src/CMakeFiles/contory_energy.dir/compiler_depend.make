# Empty compiler generated dependencies file for contory_energy.
# This may be replaced when dependencies are built.
