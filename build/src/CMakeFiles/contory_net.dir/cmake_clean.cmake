file(REMOVE_RECURSE
  "CMakeFiles/contory_net.dir/net/bluetooth.cpp.o"
  "CMakeFiles/contory_net.dir/net/bluetooth.cpp.o.d"
  "CMakeFiles/contory_net.dir/net/cellular.cpp.o"
  "CMakeFiles/contory_net.dir/net/cellular.cpp.o.d"
  "CMakeFiles/contory_net.dir/net/medium.cpp.o"
  "CMakeFiles/contory_net.dir/net/medium.cpp.o.d"
  "CMakeFiles/contory_net.dir/net/wifi.cpp.o"
  "CMakeFiles/contory_net.dir/net/wifi.cpp.o.d"
  "libcontory_net.a"
  "libcontory_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
