file(REMOVE_RECURSE
  "libcontory_net.a"
)
