# Empty dependencies file for contory_net.
# This may be replaced when dependencies are built.
