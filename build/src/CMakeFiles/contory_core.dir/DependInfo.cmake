
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_controller.cpp" "src/CMakeFiles/contory_core.dir/core/access_controller.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/access_controller.cpp.o.d"
  "/root/repo/src/core/context_factory.cpp" "src/CMakeFiles/contory_core.dir/core/context_factory.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/context_factory.cpp.o.d"
  "/root/repo/src/core/facade.cpp" "src/CMakeFiles/contory_core.dir/core/facade.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/facade.cpp.o.d"
  "/root/repo/src/core/providers/adhoc_provider.cpp" "src/CMakeFiles/contory_core.dir/core/providers/adhoc_provider.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/providers/adhoc_provider.cpp.o.d"
  "/root/repo/src/core/providers/aggregator.cpp" "src/CMakeFiles/contory_core.dir/core/providers/aggregator.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/providers/aggregator.cpp.o.d"
  "/root/repo/src/core/providers/infra_provider.cpp" "src/CMakeFiles/contory_core.dir/core/providers/infra_provider.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/providers/infra_provider.cpp.o.d"
  "/root/repo/src/core/providers/local_provider.cpp" "src/CMakeFiles/contory_core.dir/core/providers/local_provider.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/providers/local_provider.cpp.o.d"
  "/root/repo/src/core/providers/provider.cpp" "src/CMakeFiles/contory_core.dir/core/providers/provider.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/providers/provider.cpp.o.d"
  "/root/repo/src/core/publisher.cpp" "src/CMakeFiles/contory_core.dir/core/publisher.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/publisher.cpp.o.d"
  "/root/repo/src/core/query_manager.cpp" "src/CMakeFiles/contory_core.dir/core/query_manager.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/query_manager.cpp.o.d"
  "/root/repo/src/core/references/bt_reference.cpp" "src/CMakeFiles/contory_core.dir/core/references/bt_reference.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/references/bt_reference.cpp.o.d"
  "/root/repo/src/core/references/cellular_reference.cpp" "src/CMakeFiles/contory_core.dir/core/references/cellular_reference.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/references/cellular_reference.cpp.o.d"
  "/root/repo/src/core/references/internal_reference.cpp" "src/CMakeFiles/contory_core.dir/core/references/internal_reference.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/references/internal_reference.cpp.o.d"
  "/root/repo/src/core/references/wifi_reference.cpp" "src/CMakeFiles/contory_core.dir/core/references/wifi_reference.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/references/wifi_reference.cpp.o.d"
  "/root/repo/src/core/repository.cpp" "src/CMakeFiles/contory_core.dir/core/repository.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/repository.cpp.o.d"
  "/root/repo/src/core/resources_monitor.cpp" "src/CMakeFiles/contory_core.dir/core/resources_monitor.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/resources_monitor.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/CMakeFiles/contory_core.dir/core/rules.cpp.o" "gcc" "src/CMakeFiles/contory_core.dir/core/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/contory_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/contory_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
