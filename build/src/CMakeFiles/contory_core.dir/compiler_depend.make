# Empty compiler generated dependencies file for contory_core.
# This may be replaced when dependencies are built.
