file(REMOVE_RECURSE
  "libcontory_core.a"
)
