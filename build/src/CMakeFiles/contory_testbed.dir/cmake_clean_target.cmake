file(REMOVE_RECURSE
  "libcontory_testbed.a"
)
