# Empty dependencies file for contory_testbed.
# This may be replaced when dependencies are built.
