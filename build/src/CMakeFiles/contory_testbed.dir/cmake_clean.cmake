file(REMOVE_RECURSE
  "CMakeFiles/contory_testbed.dir/testbed/testbed.cpp.o"
  "CMakeFiles/contory_testbed.dir/testbed/testbed.cpp.o.d"
  "libcontory_testbed.a"
  "libcontory_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
