# Empty dependencies file for contory_sensors.
# This may be replaced when dependencies are built.
