file(REMOVE_RECURSE
  "CMakeFiles/contory_sensors.dir/sensors/environment.cpp.o"
  "CMakeFiles/contory_sensors.dir/sensors/environment.cpp.o.d"
  "CMakeFiles/contory_sensors.dir/sensors/gps.cpp.o"
  "CMakeFiles/contory_sensors.dir/sensors/gps.cpp.o.d"
  "CMakeFiles/contory_sensors.dir/sensors/sensor.cpp.o"
  "CMakeFiles/contory_sensors.dir/sensors/sensor.cpp.o.d"
  "libcontory_sensors.a"
  "libcontory_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
