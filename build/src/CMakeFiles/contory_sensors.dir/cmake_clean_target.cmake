file(REMOVE_RECURSE
  "libcontory_sensors.a"
)
