file(REMOVE_RECURSE
  "libcontory_infra.a"
)
