# Empty dependencies file for contory_infra.
# This may be replaced when dependencies are built.
