file(REMOVE_RECURSE
  "CMakeFiles/contory_infra.dir/infra/context_server.cpp.o"
  "CMakeFiles/contory_infra.dir/infra/context_server.cpp.o.d"
  "CMakeFiles/contory_infra.dir/infra/event_broker.cpp.o"
  "CMakeFiles/contory_infra.dir/infra/event_broker.cpp.o.d"
  "CMakeFiles/contory_infra.dir/infra/regatta_service.cpp.o"
  "CMakeFiles/contory_infra.dir/infra/regatta_service.cpp.o.d"
  "libcontory_infra.a"
  "libcontory_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contory_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
