# Empty compiler generated dependencies file for fig4_extinfra_power.
# This may be replaced when dependencies are built.
