file(REMOVE_RECURSE
  "CMakeFiles/fig5_failover.dir/fig5_failover.cpp.o"
  "CMakeFiles/fig5_failover.dir/fig5_failover.cpp.o.d"
  "fig5_failover"
  "fig5_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
