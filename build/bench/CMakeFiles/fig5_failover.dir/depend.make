# Empty dependencies file for fig5_failover.
# This may be replaced when dependencies are built.
