# Empty dependencies file for ablation_codecache.
# This may be replaced when dependencies are built.
