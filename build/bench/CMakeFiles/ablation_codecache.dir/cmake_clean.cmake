file(REMOVE_RECURSE
  "CMakeFiles/ablation_codecache.dir/ablation_codecache.cpp.o"
  "CMakeFiles/ablation_codecache.dir/ablation_codecache.cpp.o.d"
  "ablation_codecache"
  "ablation_codecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
