# Empty dependencies file for baseline_power.
# This may be replaced when dependencies are built.
