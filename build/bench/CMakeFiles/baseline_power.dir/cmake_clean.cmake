file(REMOVE_RECURSE
  "CMakeFiles/baseline_power.dir/baseline_power.cpp.o"
  "CMakeFiles/baseline_power.dir/baseline_power.cpp.o.d"
  "baseline_power"
  "baseline_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
