#include "scenario/spec.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "core/query/parser.hpp"

namespace contory::scenario {
namespace {

using fault::ParseScheduleDuration;

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

/// Strips a trailing comment ('#' preceded by start-of-line or space).
std::string StripComment(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' && (i == 0 || std::isspace(line[i - 1]) != 0)) {
      return line.substr(0, i);
    }
  }
  return line;
}

Status LineError(int line, const std::string& what) {
  return InvalidArgument("line " + std::to_string(line) + ": " + what);
}

Result<double> ParseNumber(int line, const std::string& token) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) {
      return LineError(line, "bad number '" + token + "'");
    }
    return v;
  } catch (const std::exception&) {
    return LineError(line, "bad number '" + token + "'");
  }
}

Result<net::Position> ParsePos(int line, const std::string& token) {
  const auto comma = token.find(',');
  if (comma == std::string::npos) {
    return LineError(line, "position must be <x>,<y>, got '" + token + "'");
  }
  const auto x = ParseNumber(line, token.substr(0, comma));
  if (!x.ok()) return x.status();
  const auto y = ParseNumber(line, token.substr(comma + 1));
  if (!y.ok()) return y.status();
  return net::Position{*x, *y};
}

Result<bool> ParseOnOff(int line, const std::string& key,
                        const std::string& value) {
  if (value == "on") return true;
  if (value == "off") return false;
  return LineError(line, key + "= expects on|off, got '" + value + "'");
}

Result<SimDuration> ParseDur(int line, const std::string& token) {
  auto d = ParseScheduleDuration(token);
  if (!d.ok()) {
    return LineError(line, std::string(d.status().message()));
  }
  return *d;
}

/// key=value split; returns false when the token has no '='.
bool SplitKv(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

/// Parse-time symbol tables for cross-reference validation.
struct Symbols {
  struct Device {
    bool bt = false;
    bool wifi = false;
    bool cell = false;
    std::set<std::string> sensors;
  };
  std::map<std::string, Device> devices;
  std::set<std::string> gps;
  std::set<std::string> servers;
  std::set<std::string> queries;
};

Status ValidateFaultTarget(int line, const fault::FaultAction& action,
                           const Symbols& sym) {
  using fault::FaultKind;
  const std::string& t = action.target;
  const auto device = sym.devices.find(t);
  switch (action.kind) {
    case FaultKind::kBtFail:
    case FaultKind::kBtLoss:
    case FaultKind::kBtLatency:
      if (device == sym.devices.end() || !device->second.bt) {
        return LineError(line, "fault target '" + t +
                                   "' is not a declared device with bt=on");
      }
      return Status::Ok();
    case FaultKind::kWifiFail:
    case FaultKind::kWifiLoss:
    case FaultKind::kWifiLatency:
      if (device == sym.devices.end() || !device->second.wifi) {
        return LineError(line, "fault target '" + t +
                                   "' is not a declared device with wifi=on");
      }
      return Status::Ok();
    case FaultKind::kCellOff:
    case FaultKind::kCellConnectFail:
    case FaultKind::kCellAbort:
      if (device == sym.devices.end() || !device->second.cell) {
        return LineError(line, "fault target '" + t +
                                   "' is not a declared device with cell=on");
      }
      return Status::Ok();
    case FaultKind::kSensorFail:
    case FaultKind::kSensorNan: {
      const auto at = t.find('@');
      if (at == std::string::npos) {
        return LineError(line, "sensor fault target must be <type>@<device>");
      }
      const std::string type = t.substr(0, at);
      const auto owner = sym.devices.find(t.substr(at + 1));
      if (owner == sym.devices.end() ||
          !owner->second.sensors.contains(type)) {
        return LineError(line, "no declared sensor '" + t + "'");
      }
      return Status::Ok();
    }
    case FaultKind::kGpsOff:
      if (!sym.gps.contains(t)) {
        return LineError(line, "'" + t + "' is not a declared gps");
      }
      return Status::Ok();
    case FaultKind::kBrokerOutage:
      if (!sym.servers.contains(t)) {
        return LineError(line, "'" + t + "' is not a declared server");
      }
      return Status::Ok();
    case FaultKind::kNodeLeave:
      if (!sym.devices.contains(t) && !sym.gps.contains(t)) {
        return LineError(line, "'" + t + "' is not a declared device or gps");
      }
      return Status::Ok();
  }
  return LineError(line, "unhandled fault kind");
}

const std::set<std::string> kQueryNumProps = {
    "items",      "stale_items", "fresh_items",          "errors",
    "completions", "submitted",  "refused",              "degraded",
    "active",     "retry_hint",  "staleness_increasing"};
const std::set<std::string> kQueryTextProps = {"last_source", "mechanism",
                                               "error_text"};
const std::set<std::string> kDeviceProps = {
    "active",   "invalid_transitions", "completed",
    "admitted", "switches",            "retries",
    "degraded_deliveries", "providers"};
const std::set<std::string> kFacades = {"intSensor", "extInfra",
                                        "adHocNetwork"};

Result<ExpectSpec::Op> ParseOp(int line, const std::string& token) {
  using Op = ExpectSpec::Op;
  if (token == "==") return Op::kEq;
  if (token == "!=") return Op::kNe;
  if (token == ">=") return Op::kGe;
  if (token == "<=") return Op::kLe;
  if (token == ">") return Op::kGt;
  if (token == "<") return Op::kLt;
  if (token == "contains") return Op::kContains;
  return LineError(line, "unknown comparison '" + token + "'");
}

Result<ExpectSpec> ParseExpect(int line,
                               const std::vector<std::string>& tokens,
                               const Symbols& sym) {
  if (tokens.size() < 2) {
    return LineError(line, "expect needs a selector");
  }
  ExpectSpec e;
  e.line = line;
  e.raw = tokens[1];

  // Decompose the dotted selector.
  std::vector<std::string> parts;
  {
    std::string part;
    std::istringstream in(tokens[1]);
    while (std::getline(in, part, '.')) parts.push_back(part);
  }
  if (parts.empty()) return LineError(line, "empty selector");

  if (parts[0] == "q") {
    if (parts.size() != 3) {
      return LineError(line, "query selector must be q.<name>.<property>");
    }
    if (!sym.queries.contains(parts[1])) {
      return LineError(line, "invariant on undeclared query '" + parts[1] +
                                 "'");
    }
    e.domain = ExpectSpec::Domain::kQuery;
    e.entity = parts[1];
    e.property = parts[2];
    if (!kQueryNumProps.contains(e.property) &&
        !kQueryTextProps.contains(e.property)) {
      return LineError(line, "unknown query property '" + e.property + "'");
    }
  } else if (parts[0] == "d") {
    if (parts.size() != 3 && parts.size() != 4) {
      return LineError(line,
                       "device selector must be d.<name>.<property>[.facade]");
    }
    if (!sym.devices.contains(parts[1])) {
      return LineError(line, "invariant on undeclared device '" + parts[1] +
                                 "'");
    }
    e.domain = ExpectSpec::Domain::kDevice;
    e.entity = parts[1];
    e.property = parts[2];
    if (parts.size() == 4) {
      if (e.property != "originals" && e.property != "providers") {
        return LineError(line, "only originals/providers take a facade");
      }
      if (!kFacades.contains(parts[3])) {
        return LineError(line, "unknown facade '" + parts[3] + "'");
      }
      e.facade = parts[3];
    } else if (!kDeviceProps.contains(e.property)) {
      return LineError(line, "unknown device property '" + e.property + "'");
    }
  } else if (parts[0] == "tracer") {
    if (parts.size() != 2 ||
        (parts[1] != "open_spans" && parts[1] != "double_closes")) {
      return LineError(line,
                       "tracer selector must be tracer.open_spans or "
                       "tracer.double_closes");
    }
    e.domain = ExpectSpec::Domain::kTracer;
    e.property = parts[1];
  } else if (parts[0] == "injector") {
    if (parts.size() != 2 || parts[1] != "injected") {
      return LineError(line, "injector selector must be injector.injected");
    }
    e.domain = ExpectSpec::Domain::kInjector;
    e.property = parts[1];
  } else if (parts[0] == "metric") {
    if (parts.size() != 2 || parts[1].empty()) {
      return LineError(line, "metric selector must be metric.<name>");
    }
    e.domain = ExpectSpec::Domain::kMetric;
    e.entity = parts[1];
  } else {
    return LineError(line, "unknown selector domain '" + parts[0] +
                               "' (expected q/d/tracer/injector/metric)");
  }

  const bool text_prop = e.domain == ExpectSpec::Domain::kQuery &&
                         kQueryTextProps.contains(e.property);

  if (tokens.size() == 2) {
    // Bare selector: truthy.
    if (text_prop) {
      return LineError(line, "'" + e.property + "' needs an operator");
    }
    e.op = ExpectSpec::Op::kGe;
    e.number = 1.0;
    return e;
  }
  if (tokens.size() != 4) {
    return LineError(line, "expect wants: expect <selector> <op> <value>");
  }
  const auto op = ParseOp(line, tokens[2]);
  if (!op.ok()) return op.status();
  e.op = *op;

  if (text_prop || e.op == ExpectSpec::Op::kContains) {
    if (!text_prop) {
      return LineError(line, "'contains' only applies to string properties");
    }
    if (e.op != ExpectSpec::Op::kEq && e.op != ExpectSpec::Op::kNe &&
        e.op != ExpectSpec::Op::kContains) {
      return LineError(line, "string properties support ==, != and contains");
    }
    e.is_text = true;
    e.text = tokens[3];
    return e;
  }
  const auto number = ParseNumber(line, tokens[3]);
  if (!number.ok()) return number.status();
  e.number = *number;
  return e;
}

}  // namespace

Result<ScenarioSpec> ParseScenario(const std::string& text) {
  ScenarioSpec spec;
  Symbols sym;
  std::set<std::string> clients;
  SimDuration offset = SimDuration::zero();

  std::istringstream in(text);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(in, raw_line)) {
    ++line_no;
    const std::string line = StripComment(raw_line);
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    Step step;
    step.line = line_no;

    if (directive == "scenario") {
      std::string title;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (!title.empty()) title += ' ';
        title += tokens[i];
      }
      spec.title = title;
      continue;
    }

    if (directive == "seed") {
      if (tokens.size() != 2) return LineError(line_no, "seed <uint64>");
      try {
        spec.seed = std::stoull(tokens[1]);
      } catch (const std::exception&) {
        return LineError(line_no, "bad seed '" + tokens[1] + "'");
      }
      continue;
    }

    if (directive == "device") {
      if (tokens.size() < 2) return LineError(line_no, "device needs a name");
      DeviceSpec d;
      d.line = line_no;
      d.name = tokens[1];
      if (sym.devices.contains(d.name)) {
        return LineError(line_no, "duplicate device '" + d.name + "'");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key;
        std::string value;
        if (!SplitKv(tokens[i], key, value)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                        "'");
        }
        if (key == "profile") {
          if (value != "6630" && value != "9500") {
            return LineError(line_no, "profile= expects 6630|9500");
          }
          d.profile = value;
        } else if (key == "pos") {
          auto p = ParsePos(line_no, value);
          if (!p.ok()) return p.status();
          d.position = *p;
        } else if (key == "bt" || key == "wifi" || key == "cell") {
          auto b = ParseOnOff(line_no, key, value);
          if (!b.ok()) return b.status();
          (key == "bt" ? d.bt : key == "wifi" ? d.wifi : d.cell) = *b;
        } else if (key == "sensors") {
          std::string sensor;
          std::istringstream list(value);
          while (std::getline(list, sensor, '+')) {
            if (!sensor.empty()) d.sensors.push_back(sensor);
          }
          if (d.sensors.empty()) {
            return LineError(line_no, "sensors= lists types joined with '+'");
          }
        } else if (key == "infra") {
          d.infra_address = value;
        } else if (key == "merging") {
          auto b = ParseOnOff(line_no, key, value);
          if (!b.ok()) return b.status();
          d.factory.enable_query_merging = *b;
        } else if (key == "degraded") {
          auto b = ParseOnOff(line_no, key, value);
          if (!b.ok()) return b.status();
          d.factory.enable_degraded_mode = *b;
        } else if (key == "probe") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          d.factory.recovery_probe_period = *dur;
        } else if (key == "retries") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          d.factory.retry.max_attempts = static_cast<int>(*n);
        } else if (key == "retry_deadline") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          d.factory.retry.total_deadline = *dur;
        } else if (key == "retry_timeout") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          d.factory.retry.attempt_timeout = *dur;
        } else if (key == "retry_backoff") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          d.factory.retry.initial_backoff = *dur;
        } else if (key == "retry_backoff_max") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          d.factory.retry.max_backoff = *dur;
        } else if (key == "admit_rate") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          d.factory.overload.admit_rate_per_s = *n;
        } else if (key == "admit_burst") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          d.factory.overload.admit_burst = *n;
        } else if (key == "shed_high") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          d.factory.overload.shed_high_watermark =
              static_cast<std::size_t>(*n);
        } else if (key == "shed_standard") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          d.factory.overload.shed_standard_watermark =
              static_cast<std::size_t>(*n);
        } else if (key == "stale_fastpath") {
          auto b = ParseOnOff(line_no, key, value);
          if (!b.ok()) return b.status();
          d.factory.overload.stale_fast_path = *b;
        } else if (key == "stale_max_age") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          d.factory.overload.stale_answer_max_age = *dur;
        } else {
          return LineError(line_no, "unknown device key '" + key + "'");
        }
      }
      if (d.wifi && d.profile != "9500") {
        return LineError(line_no,
                         "wifi=on needs profile=9500 (communicator class)");
      }
      Symbols::Device entry;
      entry.bt = d.bt;
      entry.wifi = d.wifi;
      entry.cell = d.cell;
      entry.sensors.insert(d.sensors.begin(), d.sensors.end());
      sym.devices.emplace(d.name, std::move(entry));
      step.kind = Step::Kind::kDevice;
      step.device = std::move(d);
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "gps") {
      if (tokens.size() != 3) {
        return LineError(line_no, "gps <name> pos=<x>,<y>");
      }
      GpsSpec g;
      g.line = line_no;
      g.name = tokens[1];
      if (sym.gps.contains(g.name)) {
        return LineError(line_no, "duplicate gps '" + g.name + "'");
      }
      std::string key;
      std::string value;
      if (!SplitKv(tokens[2], key, value) || key != "pos") {
        return LineError(line_no, "gps <name> pos=<x>,<y>");
      }
      auto p = ParsePos(line_no, value);
      if (!p.ok()) return p.status();
      g.position = *p;
      sym.gps.insert(g.name);
      step.kind = Step::Kind::kGps;
      step.gps = std::move(g);
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "server") {
      if (tokens.size() != 2) return LineError(line_no, "server <addr>");
      if (sym.servers.contains(tokens[1])) {
        return LineError(line_no, "duplicate server '" + tokens[1] + "'");
      }
      sym.servers.insert(tokens[1]);
      step.kind = Step::Kind::kServer;
      step.server = {line_no, tokens[1]};
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "feed") {
      if (tokens.size() < 4) {
        return LineError(line_no,
                         "feed <addr> type=<type> every=<dur> value=<num>");
      }
      FeedSpec f;
      f.line = line_no;
      f.server = tokens[1];
      if (!sym.servers.contains(f.server)) {
        return LineError(line_no, "'" + f.server +
                                      "' is not a declared server");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key;
        std::string value;
        if (!SplitKv(tokens[i], key, value)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                        "'");
        }
        if (key == "type") {
          f.type = value;
        } else if (key == "every") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          f.every = *dur;
        } else if (key == "value") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          f.value = *n;
        } else if (key == "accuracy") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          f.accuracy = *n;
        } else {
          return LineError(line_no, "unknown feed key '" + key + "'");
        }
      }
      if (f.type.empty() || f.every == SimDuration::zero()) {
        return LineError(line_no, "feed needs type= and every=");
      }
      step.kind = Step::Kind::kFeed;
      step.feed = std::move(f);
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "publish") {
      if (tokens.size() < 3) {
        return LineError(line_no, "publish <device> type=<type> ...");
      }
      PublishSpec p;
      p.line = line_no;
      p.device = tokens[1];
      if (!sym.devices.contains(p.device)) {
        return LineError(line_no, "'" + p.device +
                                      "' is not a declared device");
      }
      bool once = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "once") {
          once = true;
          continue;
        }
        if (tokens[i] == "location") {
          p.location = true;
          continue;
        }
        std::string key;
        std::string value;
        if (!SplitKv(tokens[i], key, value)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                        "'");
        }
        if (key == "type") {
          p.type = value;
        } else if (key == "every") {
          auto dur = ParseDur(line_no, value);
          if (!dur.ok()) return dur.status();
          p.every = *dur;
        } else if (key == "value") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          p.value = *n;
        } else if (key == "accuracy") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          p.accuracy = *n;
        } else {
          return LineError(line_no, "unknown publish key '" + key + "'");
        }
      }
      if (p.type.empty()) return LineError(line_no, "publish needs type=");
      if (once && p.every != SimDuration::zero()) {
        return LineError(line_no, "publish takes once or every=, not both");
      }
      if (!once && p.every == SimDuration::zero()) {
        return LineError(line_no, "publish needs once or every=<dur>");
      }
      step.kind = Step::Kind::kPublish;
      step.publish = std::move(p);
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "warm") {
      if (tokens.size() != 4) {
        return LineError(line_no, "warm <device> type=<type> value=<num>");
      }
      WarmSpec w;
      w.line = line_no;
      w.device = tokens[1];
      if (!sym.devices.contains(w.device)) {
        return LineError(line_no, "'" + w.device +
                                      "' is not a declared device");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key;
        std::string value;
        if (!SplitKv(tokens[i], key, value)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                        "'");
        }
        if (key == "type") {
          w.type = value;
        } else if (key == "value") {
          auto n = ParseNumber(line_no, value);
          if (!n.ok()) return n.status();
          w.value = *n;
        } else {
          return LineError(line_no, "unknown warm key '" + key + "'");
        }
      }
      if (w.type.empty()) return LineError(line_no, "warm needs type=");
      step.kind = Step::Kind::kWarm;
      step.warm = std::move(w);
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "fault") {
      // The remainder of the line is one FaultPlan schedule line.
      std::string schedule;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (!schedule.empty()) schedule += ' ';
        schedule += tokens[i];
      }
      auto plan = fault::ParseFaultPlan(schedule + "\n");
      if (!plan.ok()) {
        std::string msg(plan.status().message());
        // Replace the plan's own "fault plan line 1: " prefix with this
        // spec's line number.
        const std::string prefix = "fault plan line 1: ";
        if (msg.rfind(prefix, 0) == 0) msg = msg.substr(prefix.size());
        return LineError(line_no, msg);
      }
      if (plan->size() != 1) {
        return LineError(line_no, "fault takes exactly one schedule line");
      }
      const fault::FaultAction& action = plan->actions().front();
      if (auto s = ValidateFaultTarget(line_no, action, sym); !s.ok()) {
        return s;
      }
      if (action.at < kSimEpoch + offset) {
        return LineError(
            line_no,
            "fault at " + FormatTime(action.at) +
                " is in the simulation's past (timeline already at " +
                FormatTime(kSimEpoch + offset) + ")");
      }
      step.kind = Step::Kind::kFault;
      step.fault = action;
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "query") {
      // query <name> on <device> [client=<name>] : <query text>
      const auto colon = line.find(" : ");
      if (colon == std::string::npos) {
        return LineError(line_no,
                         "query <name> on <device> [client=<c>] : <text>");
      }
      const std::vector<std::string> head =
          Tokenize(line.substr(0, colon));
      if (head.size() < 4 || head[2] != "on") {
        return LineError(line_no,
                         "query <name> on <device> [client=<c>] : <text>");
      }
      QuerySpec q;
      q.line = line_no;
      q.name = head[1];
      q.device = head[3];
      if (sym.queries.contains(q.name)) {
        return LineError(line_no, "duplicate query '" + q.name + "'");
      }
      if (!sym.devices.contains(q.device)) {
        return LineError(line_no, "query on undeclared device '" + q.device +
                                      "'");
      }
      for (std::size_t i = 4; i < head.size(); ++i) {
        std::string key;
        std::string value;
        if (!SplitKv(head[i], key, value) || key != "client") {
          return LineError(line_no, "unknown query argument '" + head[i] +
                                        "'");
        }
        q.client = value;
      }
      q.text = line.substr(colon + 3);
      auto parsed = query::ParseQuery(q.text);
      if (!parsed.ok()) {
        return LineError(line_no, "bad query: " +
                                      std::string(
                                          parsed.status().message()));
      }
      q.parsed = *std::move(parsed);
      sym.queries.insert(q.name);
      if (!q.client.empty()) clients.insert(q.client);
      step.kind = Step::Kind::kQuery;
      step.query = std::move(q);
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "run") {
      if (tokens.size() != 2) return LineError(line_no, "run <dur>");
      auto dur = ParseDur(line_no, tokens[1]);
      if (!dur.ok()) return dur.status();
      offset += *dur;
      step.kind = Step::Kind::kRun;
      step.run = *dur;
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "cancel") {
      if (tokens.size() != 2) return LineError(line_no, "cancel <query>");
      if (!sym.queries.contains(tokens[1])) {
        return LineError(line_no, "cancel of undeclared query '" + tokens[1] +
                                      "'");
      }
      step.kind = Step::Kind::kCancel;
      step.target = tokens[1];
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "stopall") {
      if (tokens.size() != 2) return LineError(line_no, "stopall <device>");
      if (!sym.devices.contains(tokens[1])) {
        return LineError(line_no, "stopall on undeclared device '" +
                                      tokens[1] + "'");
      }
      step.kind = Step::Kind::kStopAll;
      step.target = tokens[1];
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "move") {
      if (tokens.size() != 3) return LineError(line_no, "move <device> <x>,<y>");
      if (!sym.devices.contains(tokens[1])) {
        return LineError(line_no, "move of undeclared device '" + tokens[1] +
                                      "'");
      }
      auto p = ParsePos(line_no, tokens[2]);
      if (!p.ok()) return p.status();
      step.kind = Step::Kind::kMove;
      step.target = tokens[1];
      step.move_pos = *p;
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "policy") {
      if (tokens.size() != 3) {
        return LineError(line_no, "policy <device> reduceLoad|reducePower");
      }
      if (!sym.devices.contains(tokens[1])) {
        return LineError(line_no, "policy on undeclared device '" +
                                      tokens[1] + "'");
      }
      step.kind = Step::Kind::kPolicy;
      step.target = tokens[1];
      if (tokens[2] == "reduceLoad") {
        step.policy_action = core::RuleAction::kReduceLoad;
      } else if (tokens[2] == "reducePower") {
        step.policy_action = core::RuleAction::kReducePower;
      } else {
        return LineError(line_no, "unknown policy action '" + tokens[2] +
                                      "'");
      }
      spec.steps.push_back(std::move(step));
      continue;
    }

    if (directive == "expect") {
      auto e = ParseExpect(line_no, tokens, sym);
      if (!e.ok()) return e.status();
      step.kind = Step::Kind::kExpect;
      step.expect = *std::move(e);
      spec.steps.push_back(std::move(step));
      continue;
    }

    return LineError(line_no, "unknown directive '" + directive + "'");
  }

  spec.total_run = offset;
  return spec;
}

}  // namespace contory::scenario
