#include "scenario/runner.hpp"

#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "core/pipeline/overload_governor.hpp"
#include "obs/observability.hpp"
#include "sensors/sensor.hpp"
#include "testbed/testbed.hpp"

namespace contory::scenario {
namespace {

std::string OpName(ExpectSpec::Op op) {
  switch (op) {
    case ExpectSpec::Op::kEq: return "==";
    case ExpectSpec::Op::kNe: return "!=";
    case ExpectSpec::Op::kGe: return ">=";
    case ExpectSpec::Op::kLe: return "<=";
    case ExpectSpec::Op::kGt: return ">";
    case ExpectSpec::Op::kLt: return "<";
    case ExpectSpec::Op::kContains: return "contains";
  }
  return "?";
}

bool CompareNumber(double lhs, ExpectSpec::Op op, double rhs) {
  switch (op) {
    case ExpectSpec::Op::kEq: return lhs == rhs;
    case ExpectSpec::Op::kNe: return lhs != rhs;
    case ExpectSpec::Op::kGe: return lhs >= rhs;
    case ExpectSpec::Op::kLe: return lhs <= rhs;
    case ExpectSpec::Op::kGt: return lhs > rhs;
    case ExpectSpec::Op::kLt: return lhs < rhs;
    case ExpectSpec::Op::kContains: return false;
  }
  return false;
}

bool CompareText(const std::string& lhs, ExpectSpec::Op op,
                 const std::string& rhs) {
  switch (op) {
    case ExpectSpec::Op::kEq: return lhs == rhs;
    case ExpectSpec::Op::kNe: return lhs != rhs;
    case ExpectSpec::Op::kContains:
      return lhs.find(rhs) != std::string::npos;
    default:
      return false;
  }
}

std::string FormatNumber(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

query::SourceSel FacadeKind(const std::string& name) {
  if (name == "intSensor") return query::SourceSel::kIntSensor;
  if (name == "extInfra") return query::SourceSel::kExtInfra;
  return query::SourceSel::kAdHocNetwork;
}

/// One submitted query's bookkeeping. The client pointer is shared when
/// the spec named a shared client; item/error selectors then read the
/// combined vectors.
struct QueryRun {
  const QuerySpec* spec = nullptr;
  testbed::Device* device = nullptr;
  core::CollectingClient* client = nullptr;
  std::string id;
  Status submit_status;
};

struct RunState {
  std::unique_ptr<testbed::World> world;
  std::map<std::string, testbed::Device*> devices;
  std::map<std::string, sensors::GpsDevice*> gps;
  std::map<std::string, infra::ContextServer*> servers;
  /// Stable addresses: clients are handed to the factory by reference.
  std::deque<core::CollectingClient> clients;
  std::map<std::string, core::CollectingClient*> shared_clients;
  /// Per-device publisher client, registered once via RegisterCxtServer.
  std::map<std::string, core::CollectingClient*> publishers;
  std::map<std::string, QueryRun> queries;
  /// Feed/publish drivers; destroyed before the World (declared after).
  std::deque<sim::PeriodicTask> tasks;
};

class Execution {
 public:
  Execution(const ScenarioSpec& spec, const RunnerOptions& options)
      : spec_(spec), options_(options) {}

  RunReport Go() {
    obs::Observability::ResetForTest();
    st_.world = std::make_unique<testbed::World>(spec_.seed);
    for (const Step& step : spec_.steps) ExecuteStep(step);
    FinalAudit();
    report_.passed = report_.failures.empty();
    return std::move(report_);
  }

 private:
  void Fail(int line, const std::string& what) {
    report_.failures.push_back("line " + std::to_string(line) + ": " + what);
  }

  void Note(const std::string& what) {
    if (options_.verbose) report_.log.push_back(what);
  }

  void ExecuteStep(const Step& step) {
    switch (step.kind) {
      case Step::Kind::kDevice: return DoDevice(step.device);
      case Step::Kind::kGps: return DoGps(step.gps);
      case Step::Kind::kServer: return DoServer(step.server);
      case Step::Kind::kFeed: return DoFeed(step.feed);
      case Step::Kind::kPublish: return DoPublish(step);
      case Step::Kind::kWarm: return DoWarm(step.warm);
      case Step::Kind::kFault: return DoFault(step);
      case Step::Kind::kQuery: return DoQuery(step.query);
      case Step::Kind::kRun:
        Note("run " + FormatDuration(step.run));
        st_.world->RunFor(step.run);
        return;
      case Step::Kind::kCancel: return DoCancel(step);
      case Step::Kind::kStopAll: return DoStopAll(step);
      case Step::Kind::kMove:
        st_.devices.at(step.target)->MoveTo(step.move_pos);
        return;
      case Step::Kind::kPolicy: return DoPolicy(step);
      case Step::Kind::kExpect: return DoExpect(step.expect);
    }
  }

  void DoDevice(const DeviceSpec& d) {
    testbed::DeviceOptions opts;
    opts.name = d.name;
    opts.profile =
        d.profile == "9500" ? phone::Nokia9500() : phone::Nokia6630();
    opts.position = d.position;
    opts.with_bt = d.bt;
    opts.with_wifi = d.wifi;
    opts.with_cellular = d.cell;
    opts.internal_sensors = d.sensors;
    opts.infra_address = d.infra_address;
    opts.factory_config = d.factory;
    st_.devices[d.name] = &st_.world->AddDevice(std::move(opts));
    Note("device " + d.name);
  }

  void DoGps(const GpsSpec& g) {
    st_.gps[g.name] = &st_.world->AddGps(g.name, g.position);
    Note("gps " + g.name);
  }

  void DoServer(const ServerSpec& s) {
    st_.servers[s.address] = &st_.world->AddContextServer(s.address);
    Note("server " + s.address);
  }

  void DoFeed(const FeedSpec& f) {
    infra::ContextServer* server = st_.servers.at(f.server);
    sim::Simulation* sim = &st_.world->sim();
    st_.tasks.emplace_back(*sim, f.every, [server, sim, f] {
      infra::StoredItem stored;
      stored.item.id = sim->ids().NextId("feed");
      stored.item.type = f.type;
      stored.item.value = f.value;
      stored.item.timestamp = sim->Now();
      stored.item.metadata.accuracy = f.accuracy;
      stored.item.source = {SourceKind::kExtInfra, server->address()};
      stored.entity = "station-1";
      server->StoreDirect(std::move(stored));
    });
    Note("feed " + f.type + " -> " + f.server);
  }

  void DoPublish(const Step& step) {
    const PublishSpec& p = step.publish;
    testbed::Device* dev = st_.devices.at(p.device);
    core::CollectingClient*& pub = st_.publishers[p.device];
    if (pub == nullptr) {
      st_.clients.emplace_back();
      pub = &st_.clients.back();
      if (Status s = dev->contory().RegisterCxtServer(*pub); !s.ok()) {
        Fail(step.line, "publisher registration failed: " +
                            std::string(s.message()));
        return;
      }
    }
    testbed::World* world = st_.world.get();
    auto publish_once = [dev, world, p]() -> Status {
      CxtItem item;
      item.id = p.every == SimDuration::zero()
                    ? "pub-" + p.device + "-" + p.type
                    : world->sim().ids().NextId("pub");
      item.type = p.type;
      if (p.location) {
        item.value = sensors::ToGeo(dev->position());
      } else {
        item.value = p.value;
      }
      item.timestamp = world->Now();
      item.metadata.accuracy = p.accuracy;
      return dev->contory().PublishCxtItem(item, true);
    };
    if (p.every == SimDuration::zero()) {
      if (Status s = publish_once(); !s.ok()) {
        Fail(step.line, "publish failed: " + std::string(s.message()));
      }
    } else {
      st_.tasks.emplace_back(st_.world->sim(), p.every,
                             [publish_once] { (void)publish_once(); });
    }
    Note("publish " + p.type + " on " + p.device);
  }

  void DoWarm(const WarmSpec& w) {
    testbed::Device* dev = st_.devices.at(w.device);
    CxtItem item;
    item.id = st_.world->sim().ids().NextId("warm");
    item.type = w.type;
    item.value = w.value;
    item.timestamp = st_.world->Now();
    dev->contory().repository().Store(std::move(item));
    Note("warm " + w.type + " on " + w.device);
  }

  void DoFault(const Step& step) {
    fault::FaultPlan plan;
    plan.Add(step.fault);
    if (Status s = st_.world->injector().Execute(plan); !s.ok()) {
      Fail(step.line, "fault rejected: " + std::string(s.message()));
      return;
    }
    Note("fault " + step.fault.ToString());
  }

  void DoQuery(const QuerySpec& q) {
    testbed::Device* dev = st_.devices.at(q.device);
    core::CollectingClient* client = nullptr;
    if (q.client.empty()) {
      st_.clients.emplace_back();
      client = &st_.clients.back();
    } else {
      core::CollectingClient*& shared = st_.shared_clients[q.client];
      if (shared == nullptr) {
        st_.clients.emplace_back();
        shared = &st_.clients.back();
      }
      client = shared;
    }
    query::CxtQuery parsed = q.parsed;
    parsed.id = st_.world->sim().ids().NextId("q");
    QueryRun run;
    run.spec = &q;
    run.device = dev;
    run.client = client;
    run.id = parsed.id;
    auto result = dev->contory().ProcessCxtQuery(std::move(parsed), *client);
    run.submit_status = result.ok() ? Status::Ok() : result.status();
    if (result.ok()) run.id = *result;
    st_.queries[q.name] = std::move(run);
    Note("query " + q.name + (result.ok() ? " admitted" : " refused"));
  }

  void DoCancel(const Step& step) {
    QueryRun& run = st_.queries.at(step.target);
    if (run.submit_status.ok()) {
      run.device->contory().CancelCxtQuery(run.id);
    }
    Note("cancel " + step.target);
  }

  void DoStopAll(const Step& step) {
    core::ContextFactory& factory = st_.devices.at(step.target)->contory();
    for (auto kind :
         {query::SourceSel::kIntSensor, query::SourceSel::kExtInfra,
          query::SourceSel::kAdHocNetwork}) {
      factory.facade(kind).StopAll(
          ResourceExhausted("policy suspended the query"));
    }
    Note("stopall " + step.target);
  }

  void DoPolicy(const Step& step) {
    core::ContextRule rule;
    rule.name = "scenario-policy";
    // Always-true condition: batteryPercent < 101 holds on any device,
    // so the action engages at the next policy tick.
    rule.condition = core::RuleExpr::Leaf(
        {"batteryPercent", core::RuleOp::kLessThan, CxtValue{101.0}});
    rule.action = step.policy_action;
    st_.devices.at(step.target)->contory().AddControlPolicy(std::move(rule));
    Note("policy " + step.target);
  }

  // --- Expect evaluation -------------------------------------------------

  void DoExpect(const ExpectSpec& e) {
    ++report_.expects_checked;
    if (e.domain == ExpectSpec::Domain::kTracer && !COBS_ON()) {
      report_.log.push_back("line " + std::to_string(e.line) +
                            ": tracer expect skipped (obs disabled)");
      return;
    }
    if (e.is_text) {
      const std::string actual = TextValue(e);
      if (!CompareText(actual, e.op, e.text)) {
        Fail(e.line, "expect " + e.raw + " " + OpName(e.op) + " " + e.text +
                         " — actual \"" + actual + "\"");
      }
      return;
    }
    const double actual = NumberValue(e);
    if (!CompareNumber(actual, e.op, e.number)) {
      Fail(e.line, "expect " + e.raw + " " + OpName(e.op) + " " +
                       FormatNumber(e.number) + " — actual " +
                       FormatNumber(actual));
    }
  }

  std::string TextValue(const ExpectSpec& e) {
    const QueryRun& run = st_.queries.at(e.entity);
    if (e.property == "last_source") {
      if (run.client->items.empty()) return "(none)";
      return SourceKindName(run.client->items.back().source.kind);
    }
    if (e.property == "mechanism") {
      std::string joined;
      for (auto kind : run.device->contory().CurrentMechanisms(run.id)) {
        if (!joined.empty()) joined += '+';
        joined += query::SourceSelName(kind);
      }
      return joined;
    }
    // error_text: the submit refusal (if any) plus every InformError.
    std::string joined(run.submit_status.ok() ? ""
                                              : run.submit_status.message());
    for (const std::string& err : run.client->errors) {
      if (!joined.empty()) joined += " | ";
      joined += err;
    }
    return joined;
  }

  double NumberValue(const ExpectSpec& e) {
    switch (e.domain) {
      case ExpectSpec::Domain::kQuery: return QueryNumber(e);
      case ExpectSpec::Domain::kDevice: return DeviceNumber(e);
      case ExpectSpec::Domain::kTracer:
        return e.property == "open_spans"
                   ? static_cast<double>(
                         obs::Observability::tracer().open_count())
                   : static_cast<double>(
                         obs::Observability::tracer().double_closes());
      case ExpectSpec::Domain::kInjector:
        return static_cast<double>(st_.world->injector().injected());
      case ExpectSpec::Domain::kMetric: {
        auto& registry = obs::Observability::metrics();
        if (const auto* counter = registry.FindCounter(e.entity)) {
          return static_cast<double>(counter->value());
        }
        if (const auto* gauge = registry.FindGauge(e.entity)) {
          return gauge->value();
        }
        return 0.0;
      }
    }
    return 0.0;
  }

  double QueryNumber(const ExpectSpec& e) {
    const QueryRun& run = st_.queries.at(e.entity);
    const auto& items = run.client->items;
    auto stale_count = [&items] {
      std::size_t n = 0;
      for (const CxtItem& item : items) {
        if (item.metadata.staleness_seconds.has_value()) ++n;
      }
      return n;
    };
    if (e.property == "items") return static_cast<double>(items.size());
    if (e.property == "stale_items") {
      return static_cast<double>(stale_count());
    }
    if (e.property == "fresh_items") {
      return static_cast<double>(items.size() - stale_count());
    }
    if (e.property == "errors") {
      return static_cast<double>(run.client->errors.size());
    }
    if (e.property == "completions") {
      std::size_t n = 0;
      for (const auto& done : run.device->contory().queries().completions()) {
        if (done.id == run.id) ++n;
      }
      return static_cast<double>(n);
    }
    if (e.property == "submitted") return run.submit_status.ok() ? 1 : 0;
    if (e.property == "refused") return run.submit_status.ok() ? 0 : 1;
    if (e.property == "degraded") {
      return run.submit_status.ok() &&
                     run.device->contory().IsDegraded(run.id)
                 ? 1
                 : 0;
    }
    if (e.property == "active") {
      return run.submit_status.ok() &&
                     run.device->contory().queries().interner().Lookup(
                         run.id) != core::kInvalidQueryId
                 ? 1
                 : 0;
    }
    if (e.property == "retry_hint") {
      if (core::OverloadGovernor::ParseRetryAfterSeconds(
              std::string(run.submit_status.message())) > 0) {
        return 1;
      }
      for (const std::string& err : run.client->errors) {
        if (core::OverloadGovernor::ParseRetryAfterSeconds(err) > 0) return 1;
      }
      return 0;
    }
    // staleness_increasing: the degraded answers' reported age grows
    // monotonically over the window (Fig. 5's "stale but honest" check).
    double prev = -1.0;
    bool grew = false;
    bool monotone = true;
    for (const CxtItem& item : items) {
      if (!item.metadata.staleness_seconds.has_value()) continue;
      const double age = *item.metadata.staleness_seconds;
      if (prev >= 0.0) {
        if (age < prev) monotone = false;
        if (age > prev) grew = true;
      }
      prev = age;
    }
    return monotone && grew ? 1 : 0;
  }

  double DeviceNumber(const ExpectSpec& e) {
    core::ContextFactory& factory = st_.devices.at(e.entity)->contory();
    if (!e.facade.empty()) {
      core::Facade& facade = factory.facade(FacadeKind(e.facade));
      return static_cast<double>(e.property == "originals"
                                     ? facade.active_original_count()
                                     : facade.active_provider_count());
    }
    if (e.property == "active") {
      return static_cast<double>(factory.queries().active_count());
    }
    if (e.property == "invalid_transitions") {
      return static_cast<double>(factory.queries().invalid_transitions());
    }
    if (e.property == "completed") {
      return static_cast<double>(factory.queries().total_completed());
    }
    if (e.property == "admitted") {
      return static_cast<double>(factory.queries().total_admitted());
    }
    if (e.property == "switches") {
      return static_cast<double>(factory.switch_log().size());
    }
    if (e.property == "retries") {
      return static_cast<double>(factory.total_retries());
    }
    if (e.property == "degraded_deliveries") {
      return static_cast<double>(factory.degraded_deliveries());
    }
    return static_cast<double>(factory.active_provider_count());
  }

  /// Invariants every scenario must satisfy, checked without being asked:
  /// no device ever made an invalid lifecycle transition, the tracer
  /// never closed a span twice, and once every query table is empty no
  /// root span may remain open (the span-leak audit).
  void FinalAudit() {
    bool quiescent = true;
    for (const auto& [name, dev] : st_.devices) {
      if (!dev->has_contory()) continue;
      const auto invalid = dev->contory().queries().invalid_transitions();
      if (invalid != 0) {
        report_.failures.push_back(
            "post-run audit: device " + name + " made " +
            std::to_string(invalid) + " invalid lifecycle transition(s)");
      }
      if (dev->contory().queries().active_count() != 0) quiescent = false;
    }
    if (!COBS_ON()) return;
    auto& tracer = obs::Observability::tracer();
    if (tracer.double_closes() != 0) {
      report_.failures.push_back(
          "post-run audit: tracer recorded " +
          std::to_string(tracer.double_closes()) + " double close(s)");
    }
    if (quiescent && tracer.open_count() != 0) {
      report_.failures.push_back(
          "post-run audit: " + std::to_string(tracer.open_count()) +
          " tracer span(s) still open with no live queries (leak)");
    }
  }

  const ScenarioSpec& spec_;
  const RunnerOptions& options_;
  RunState st_;
  RunReport report_;
};

}  // namespace

std::string RunReport::Summary() const {
  std::ostringstream out;
  out << (passed ? "PASS" : "FAIL") << " (" << expects_checked
      << " invariants";
  if (!failures.empty()) out << ", " << failures.size() << " failed";
  out << ")";
  return out.str();
}

RunReport ScenarioRunner::Run(const ScenarioSpec& spec) {
  Execution execution(spec, options_);
  return execution.Go();
}

}  // namespace contory::scenario
