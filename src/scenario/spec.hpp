// Declarative scenario specs: data-driven fault x strategy x policy x
// scale testing.
//
// A ScenarioSpec is a small, line-oriented description of a complete
// experiment — devices with profiles and positions, infrastructure
// services, publishers, a FaultPlan timeline, queries with
// strategy/priority/freshness clauses, and the invariants the run must
// satisfy (delivery counts, terminal query states, metric bounds, zero
// invalid transitions, zero leaked tracer spans). One ScenarioRunner
// executes any spec against the existing testbed/pipeline seams, so a
// new chaos scenario is tens of lines of text instead of a bespoke C++
// test file, and coverage can grow combinatorially (see generator.hpp).
//
//   # Fig. 5 degradation, as a spec
//   scenario fault to degraded and back
//   seed 321
//   device phone-A probe=15s
//   gps gps-1 pos=3,0
//   query q1 on phone-A : SELECT location DURATION 20 min EVERY 5 sec
//   fault at=60s gps.off gps-1 for=180s
//   fault at=80s bt.fail phone-A for=160s
//   run 150s
//   expect q.q1.degraded
//   expect q.q1.stale_items >= 2
//   run 160s
//   expect q.q1.degraded == 0
//   expect q.q1.last_source == intSensor
//
// Grammar (one directive per line; '#' starts a comment):
//
//   scenario <free title>
//   seed <uint64>
//   device <name> [profile=6630|9500] [pos=<x>,<y>] [bt|wifi|cell=on|off]
//          [sensors=<type>+<type>...] [infra=<addr>] [merging=on|off]
//          [degraded=on|off] [probe=<dur>] [retries=<n>]
//          [retry_deadline=<dur>] [retry_timeout=<dur>]
//          [retry_backoff=<dur>] [retry_backoff_max=<dur>]
//          [admit_rate=<num>] [admit_burst=<num>]
//          [shed_high=<n>] [shed_standard=<n>] [stale_fastpath=on|off]
//          [stale_max_age=<dur>]
//   gps <name> pos=<x>,<y>
//   server <addr>
//   feed <addr> type=<type> every=<dur> value=<num> [accuracy=<num>]
//   publish <device> type=<type> [every=<dur>|once] [value=<num>|location]
//           [accuracy=<num>]
//   warm <device> type=<type> value=<num>
//   fault <FaultPlan schedule line>          (docs/FAULTS.md; absolute at=)
//   query <name> on <device> [client=<shared>] : <query text>
//   run <dur>
//   cancel <query>
//   stopall <device>
//   move <device> <x>,<y>
//   policy <device> reduceLoad|reducePower
//   expect <selector> [<op> <value>]         (bare selector means ">= 1")
//
// Every cross-reference (fault targets, query devices, expect subjects)
// is validated at parse time with line-numbered diagnostics, and fault
// times are checked against the cumulative `run` offset so a fault can
// never be scheduled in the simulation's past. See docs/SCENARIOS.md
// for the full invariant catalog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "core/context_factory.hpp"
#include "core/query/query.hpp"
#include "fault/fault_plan.hpp"
#include "net/medium.hpp"

namespace contory::scenario {

struct DeviceSpec {
  int line = 0;
  std::string name;
  std::string profile = "6630";  // "6630" | "9500"
  net::Position position{0, 0};
  bool bt = true;
  bool wifi = false;
  bool cell = true;
  std::vector<std::string> sensors;
  std::string infra_address;
  core::ContextFactoryConfig factory;
};

struct GpsSpec {
  int line = 0;
  std::string name;
  net::Position position{0, 0};
};

struct ServerSpec {
  int line = 0;
  std::string address;
};

/// A station feed storing directly into an infrastructure server (the
/// extInfra warm path the fig5_chaos sweep uses).
struct FeedSpec {
  int line = 0;
  std::string server;
  std::string type;
  SimDuration every{};
  double value = 0.0;
  double accuracy = 0.2;
};

/// An ad hoc publisher on a device: registers as a context server and
/// publishes one item (once) or periodically. `location` publishes the
/// device's own (moving) position instead of a fixed number.
struct PublishSpec {
  int line = 0;
  std::string device;
  std::string type;
  SimDuration every{};  // zero = once, immediately
  bool location = false;
  double value = 0.0;
  double accuracy = 1.0;
};

/// Seeds the device's local repository (stale-answer fast-path setup).
struct WarmSpec {
  int line = 0;
  std::string device;
  std::string type;
  double value = 0.0;
};

struct QuerySpec {
  int line = 0;
  std::string name;
  std::string device;
  /// Shared client name; empty = a dedicated client for this query.
  /// Sharing matters for token buckets (charged per client) and merge
  /// scenarios; item/error selectors then read the shared client's
  /// combined vectors.
  std::string client;
  std::string text;
  query::CxtQuery parsed;
};

/// One checked invariant. Selector domains:
///   q.<query>.<prop>    prop: items, stale_items, fresh_items, errors,
///                       completions, submitted, refused, degraded,
///                       active, retry_hint, staleness_increasing,
///                       last_source (str), mechanism (str),
///                       error_text (str)
///   d.<device>.<prop>   prop: active, invalid_transitions, completed,
///                       admitted, switches, retries,
///                       degraded_deliveries, providers,
///                       originals.<facade>, providers.<facade>
///   tracer.open_spans | tracer.double_closes
///   injector.injected
///   metric.<name>       registry counter/gauge by exact unlabeled name
struct ExpectSpec {
  enum class Domain : std::uint8_t {
    kQuery,
    kDevice,
    kTracer,
    kInjector,
    kMetric,
  };
  enum class Op : std::uint8_t { kEq, kNe, kGe, kLe, kGt, kLt, kContains };

  int line = 0;
  std::string raw;       // the selector text, for failure messages
  Domain domain = Domain::kQuery;
  std::string entity;    // query/device/metric name
  std::string property;  // e.g. "items"
  std::string facade;    // for d.<dev>.originals.<facade>
  Op op = Op::kGe;
  double number = 1.0;
  std::string text;      // string rhs (contains / string ==)
  bool is_text = false;
};

struct Step {
  enum class Kind : std::uint8_t {
    kDevice,
    kGps,
    kServer,
    kFeed,
    kPublish,
    kWarm,
    kFault,
    kQuery,
    kRun,
    kCancel,
    kStopAll,
    kMove,
    kPolicy,
    kExpect,
  };

  Kind kind = Kind::kRun;
  int line = 0;
  DeviceSpec device;
  GpsSpec gps;
  ServerSpec server;
  FeedSpec feed;
  PublishSpec publish;
  WarmSpec warm;
  fault::FaultAction fault;
  QuerySpec query;
  SimDuration run{};
  std::string target;  // cancel: query name; stopall/move/policy: device
  net::Position move_pos{};
  core::RuleAction policy_action = core::RuleAction::kReduceLoad;
  ExpectSpec expect;
};

struct ScenarioSpec {
  std::string title;
  std::uint64_t seed = 1;
  /// Executed strictly in order; `run` steps advance the sim clock.
  std::vector<Step> steps;
  /// Total of all `run` durations (the scenario's sim-time length).
  SimDuration total_run{};
};

/// Parses a scenario spec. Failures carry "line N:" diagnostics for the
/// offending directive — unknown devices, malformed clauses, queries
/// that fail the query-language parser, faults scheduled in the past,
/// invariants on undeclared queries, and so on.
[[nodiscard]] Result<ScenarioSpec> ParseScenario(const std::string& text);

}  // namespace contory::scenario
