#include "scenario/generator.hpp"

#include <array>
#include <cstdint>
#include <sstream>

namespace contory::scenario {
namespace {

constexpr std::array<const char*, 3> kStrategies = {"internal", "extinfra",
                                                    "adhoc"};
constexpr std::array<const char*, 3> kFaults = {"none", "flap", "outage"};
constexpr std::array<const char*, 3> kPriorities = {"interactive", "standard",
                                                    "background"};
constexpr std::array<int, 2> kNodeCounts = {2, 6};

/// Stable 64-bit FNV-1a: per-case seeds must not depend on stdlib
/// hashing details, only on the case name.
std::uint64_t StableHash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct CaseParams {
  std::string strategy;
  std::string fault;
  std::string priority;
  int nodes = 0;
};

bool ParseName(const std::string& name, CaseParams& p) {
  std::istringstream in(name);
  std::string gen, strategy, fault, priority, nodes;
  if (!std::getline(in, gen, '_') || gen != "gen") return false;
  if (!std::getline(in, strategy, '_')) return false;
  if (!std::getline(in, fault, '_')) return false;
  if (!std::getline(in, priority, '_')) return false;
  if (!std::getline(in, nodes)) return false;
  bool known = false;
  for (const char* s : kStrategies) known |= strategy == s;
  if (!known) return false;
  known = false;
  for (const char* f : kFaults) known |= fault == f;
  if (!known) return false;
  known = false;
  for (const char* pr : kPriorities) known |= priority == pr;
  if (!known) return false;
  for (const int n : kNodeCounts) {
    if (nodes == "n" + std::to_string(n)) {
      p = {strategy, fault, priority, n};
      return true;
    }
  }
  return false;
}

void CommonTail(std::ostringstream& out, const std::string& fault) {
  out << "expect q.q0.submitted == 1\n"
      << "expect q.q0.completions == 1\n"
      << "expect q.q0.active == 0\n"
      << "expect d.phone-0.invalid_transitions == 0\n";
  if (fault != "none") out << "expect injector.injected >= 1\n";
}

std::string InternalSpec(const CaseParams& p, int n) {
  std::ostringstream out;
  for (int i = 0; i < n; ++i) {
    // probe=10s: a faulted query sits in degraded mode until the recovery
    // probe reattaches the sensor, and only then can its duration expire —
    // the default 30 s probe doesn't fit the 90 s run budget.
    out << "device phone-" << i
        << " bt=off cell=off sensors=temperature probe=10s\n";
  }
  out << "query q0 on phone-0 : SELECT temperature FROM intSensor "
         "DURATION 60 sec EVERY 5 sec PRIORITY "
      << p.priority << "\n";
  if (p.fault == "flap") {
    out << "fault at=20s sensor.fail temperature@phone-0 for=15s\n";
  } else if (p.fault == "outage") {
    out << "fault at=10s sensor.fail temperature@phone-0 for=40s\n";
  }
  out << "run 90s\n";
  out << "expect q.q0.items >= 1\n";
  if (p.fault == "none") out << "expect q.q0.items >= 10\n";
  CommonTail(out, p.fault);
  return out.str();
}

std::string ExtInfraSpec(const CaseParams& p, int n) {
  std::ostringstream out;
  out << "server infra.dynamos.fi\n"
      << "feed infra.dynamos.fi type=temperature every=5s value=14\n";
  for (int i = 0; i < n; ++i) {
    out << "device phone-" << i
        << " bt=off cell=on infra=infra.dynamos.fi retries=6"
           " retry_timeout=6s retry_backoff=500ms retry_backoff_max=4s"
           " retry_deadline=120s\n";
  }
  out << "query q0 on phone-0 : SELECT temperature FROM extInfra "
         "DURATION 60 sec EVERY 10 sec PRIORITY "
      << p.priority << "\n";
  if (p.fault == "flap") {
    out << "fault at=15s cell.abort phone-0 rate=0.8 for=20s\n";
  } else if (p.fault == "outage") {
    out << "fault at=12s broker.outage infra.dynamos.fi for=30s\n";
  }
  out << "run 100s\n";
  if (p.fault == "none") out << "expect q.q0.items >= 2\n";
  CommonTail(out, p.fault);
  return out.str();
}

std::string AdHocSpec(const CaseParams& p, int n) {
  std::ostringstream out;
  for (int i = 0; i < n; ++i) {
    out << "device phone-" << i << " profile=9500 bt=off cell=off wifi=on"
        << " pos=" << (80 * i) << ",0\n";
  }
  // The far end of the WiFi line publishes one retained item the
  // SM-FINDER rounds must fetch across n-1 hops.
  out << "publish phone-" << (n - 1)
      << " type=temperature once value=19.5 accuracy=0.2\n";
  out << "query q0 on phone-0 : SELECT temperature FROM adHocNetwork(1,"
      << (n - 1)
      << ") DURATION 60 sec EVERY 30 sec PRIORITY " << p.priority << "\n";
  if (p.fault == "flap") {
    out << "fault at=20s wifi.loss phone-1 rate=0.5 for=20s\n";
  } else if (p.fault == "outage") {
    out << "fault at=10s wifi.fail phone-1 for=45s\n";
  }
  out << "run 2min\n";
  if (p.fault == "none") out << "expect q.q0.items >= 1\n";
  CommonTail(out, p.fault);
  return out.str();
}

}  // namespace

std::vector<std::string> GeneratedCaseNames() {
  std::vector<std::string> names;
  names.reserve(kStrategies.size() * kFaults.size() * kPriorities.size() *
                kNodeCounts.size());
  for (const char* strategy : kStrategies) {
    for (const char* fault : kFaults) {
      for (const char* priority : kPriorities) {
        for (const int nodes : kNodeCounts) {
          names.push_back(std::string("gen_") + strategy + "_" + fault +
                          "_" + priority + "_n" + std::to_string(nodes));
        }
      }
    }
  }
  return names;
}

bool IsGeneratedCase(const std::string& name) {
  CaseParams p;
  return ParseName(name, p);
}

Result<std::string> GeneratedSpecText(const std::string& name,
                                      const GeneratorOptions& options) {
  CaseParams p;
  if (!ParseName(name, p)) {
    return InvalidArgument("unknown generated case '" + name + "'");
  }
  const int scale = options.node_scale < 1 ? 1 : options.node_scale;
  const int n = p.nodes * scale;
  std::ostringstream out;
  out << "scenario generated " << p.strategy << " " << p.fault << " "
      << p.priority << " n" << p.nodes << " x" << scale << "\n";
  out << "seed " << (StableHash(name) % 99991 + 1) << "\n";
  if (p.strategy == "internal") {
    out << InternalSpec(p, n);
  } else if (p.strategy == "extinfra") {
    out << ExtInfraSpec(p, n);
  } else {
    out << AdHocSpec(p, n);
  }
  return out.str();
}

}  // namespace contory::scenario
