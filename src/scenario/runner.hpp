// ScenarioRunner: executes a parsed ScenarioSpec against the testbed.
//
// The runner builds a testbed::World from the spec's declarations, drives
// the sim clock through the `run` steps, applies faults through the
// World's FaultInjector, submits queries through each device's
// ContextFactory, and checks every `expect` invariant against the
// QueryTable, facades, switch log, tracer and metrics registry — the same
// seams the bespoke C++ tests read. After the last step it always audits
// the lifecycle invariants no scenario may violate: zero invalid state
// transitions on every device, zero tracer double-closes, and zero open
// root spans once all query tables are empty.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace contory::scenario {

struct RunReport {
  bool passed = true;
  /// One line per failed invariant: "line N: expect <sel> <op> <rhs> —
  /// actual <value>". Setup failures (fault rejected by the injector,
  /// publisher registration refused) land here too.
  std::vector<std::string> failures;
  /// Step-by-step narration (verbose mode) plus skip notes.
  std::vector<std::string> log;
  std::size_t expects_checked = 0;

  [[nodiscard]] std::string Summary() const;
};

struct RunnerOptions {
  bool verbose = false;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerOptions options = {}) : options_(options) {}

  /// Runs one spec in a fresh World (obs registry/tracer reset first).
  [[nodiscard]] RunReport Run(const ScenarioSpec& spec);

 private:
  RunnerOptions options_;
};

}  // namespace contory::scenario
