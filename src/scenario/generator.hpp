// Combinatorial scenario generation: fault × strategy × priority × scale.
//
// Every generated case is an ordinary scenario spec (spec.hpp) produced
// from its name, so `scenario_runner --run=gen_adhoc_flap_standard_n6`
// reproduces exactly what the ctest case executed. The matrix:
//
//   strategy  internal | extinfra | adhoc     (FROM clause / substrate)
//   fault     none | flap | outage            (healthy, transient
//                                              mid-run fault, long
//                                              substrate outage)
//   priority  interactive | standard | background
//   nodes     2 | 6                           (world size; adhoc route
//                                              length grows with it)
//
// = 54 cases, each named gen_<strategy>_<fault>_<priority>_n<nodes> and
// registered individually under the ctest label `scenario`. Node counts
// in the name are logical: GeneratorOptions.node_scale (CONTORY_STRESS
// wiring) multiplies the actual device count without renaming cases, so
// stress runs exercise bigger worlds under the same test identities.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace contory::scenario {

struct GeneratorOptions {
  /// Multiplies each case's logical node count (>= 1).
  int node_scale = 1;
};

/// Every generated case name, in deterministic order.
[[nodiscard]] std::vector<std::string> GeneratedCaseNames();

/// True when `name` belongs to the generated matrix.
[[nodiscard]] bool IsGeneratedCase(const std::string& name);

/// Renders the spec text for one generated case name.
[[nodiscard]] Result<std::string> GeneratedSpecText(
    const std::string& name, const GeneratorOptions& options = {});

}  // namespace contory::scenario
