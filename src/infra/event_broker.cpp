#include "infra/event_broker.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace contory::infra {
namespace {
constexpr const char* kModule = "broker";

std::vector<std::byte> OkResponse() {
  ByteWriter w;
  w.WriteU8(1);
  return std::move(w).Take();
}

std::vector<std::byte> ErrorResponse(const std::string& msg) {
  ByteWriter w;
  w.WriteU8(0);
  w.WriteString(msg);
  return std::move(w).Take();
}

}  // namespace

std::vector<std::byte> WrapEvent(const std::string& topic,
                                 const std::vector<std::byte>& payload) {
  ByteWriter w;
  w.WriteString(topic);
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteRaw(payload);
  // XML envelope verbosity: pad to the observed notification size.
  if (w.size() + 4 < kEventNotificationBytes) {
    const auto pad =
        static_cast<std::uint32_t>(kEventNotificationBytes - w.size() - 4);
    w.WriteU32(pad);
    w.WritePadding(pad);
  } else {
    w.WriteU32(0);
  }
  return std::move(w).Take();
}

Result<Event> UnwrapEvent(const std::vector<std::byte>& wire) {
  ByteReader r{wire};
  Event event;
  auto topic = r.ReadString();
  if (!topic.ok()) return topic.status();
  event.topic = *std::move(topic);
  const auto len = r.ReadU32();
  if (!len.ok()) return len.status();
  event.payload.resize(*len);
  for (auto& b : event.payload) {
    const auto byte = r.ReadU8();
    if (!byte.ok()) return byte.status();
    b = std::byte{*byte};
  }
  return event;
}

EventBroker::EventBroker(sim::Simulation& sim, net::CellularNetwork& network,
                         std::string address)
    : sim_(sim), network_(network), address_(std::move(address)) {
  const Status s = network_.RegisterServer(
      address_, [this](net::NodeId from, const std::vector<std::byte>& req,
                       net::CellularNetwork::Respond respond) {
        HandleRequest(from, req, std::move(respond));
      });
  if (!s.ok()) {
    throw std::invalid_argument("EventBroker: " + s.ToString());
  }
}

EventBroker::~EventBroker() { network_.UnregisterServer(address_); }

std::size_t EventBroker::SubscriberCount(const std::string& topic) const {
  const auto it = subscribers_.find(topic);
  return it == subscribers_.end() ? 0 : it->second.size();
}

void EventBroker::HandleRequest(net::NodeId from,
                                const std::vector<std::byte>& request,
                                net::CellularNetwork::Respond respond) {
  if (outage_) {
    // Dropping `respond` leaves the client's exchange to time out.
    ++dropped_requests_;
    CLOG_DEBUG(kModule, "outage: dropping request from node %u", from);
    return;
  }
  ByteReader r{request};
  const auto op = r.ReadU8();
  if (!op.ok()) {
    respond(ErrorResponse("empty request"));
    return;
  }
  auto topic = r.ReadString();
  if (!topic.ok()) {
    respond(ErrorResponse("missing topic"));
    return;
  }
  switch (static_cast<BrokerOp>(*op)) {
    case BrokerOp::kSubscribe: {
      auto& subs = subscribers_[*topic];
      if (std::find(subs.begin(), subs.end(), from) == subs.end()) {
        subs.push_back(from);
      }
      respond(OkResponse());
      return;
    }
    case BrokerOp::kUnsubscribe: {
      auto& subs = subscribers_[*topic];
      std::erase(subs, from);
      respond(OkResponse());
      return;
    }
    case BrokerOp::kPublish: {
      const auto len = r.ReadU32();
      if (!len.ok()) {
        respond(ErrorResponse("missing payload"));
        return;
      }
      std::vector<std::byte> payload(*len);
      for (auto& b : payload) {
        const auto byte = r.ReadU8();
        if (!byte.ok()) {
          respond(ErrorResponse("truncated payload"));
          return;
        }
        b = std::byte{*byte};
      }
      ++events_published_;
      const auto frame = WrapEvent(*topic, payload);
      for (const net::NodeId sub : subscribers_[*topic]) {
        if (sub == from) continue;  // no echo to the publisher
        const Status s = network_.PushToClient(sub, frame);
        if (!s.ok()) {
          CLOG_DEBUG(kModule, "push to %u failed: %s", sub,
                     s.ToString().c_str());
        }
      }
      respond(OkResponse());
      return;
    }
  }
  respond(ErrorResponse("unknown opcode"));
}

EventClient::EventClient(net::CellularModem& modem,
                         std::string broker_address)
    : modem_(modem), broker_address_(std::move(broker_address)) {
  modem_.SetPushHandler([this](const std::vector<std::byte>& frame) {
    const auto event = UnwrapEvent(frame);
    if (!event.ok()) return;
    const auto it = handlers_.find(event->topic);
    if (it != handlers_.end()) it->second(*event);
  });
}

namespace {

void SendBrokerRequest(net::CellularModem& modem, const std::string& address,
                       std::vector<std::byte> request,
                       std::function<void(Status)> done) {
  modem.SendRequest(
      address, std::move(request),
      [done = std::move(done)](Result<std::vector<std::byte>> response) {
        if (!done) return;
        if (!response.ok()) {
          done(response.status());
          return;
        }
        ByteReader r{*response};
        const auto ok = r.ReadU8();
        if (!ok.ok() || *ok != 1) {
          done(Internal("broker rejected request"));
          return;
        }
        done(Status::Ok());
      });
}

}  // namespace

void EventClient::Publish(const std::string& topic,
                          std::vector<std::byte> payload,
                          std::function<void(Status)> done) {
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(BrokerOp::kPublish));
  w.WriteString(topic);
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteRaw(payload);
  // Envelope size parity with notifications: the request is event-sized.
  if (w.size() < kEventNotificationBytes) {
    w.WritePadding(kEventNotificationBytes - w.size());
  }
  SendBrokerRequest(modem_, broker_address_, std::move(w).Take(),
                    std::move(done));
}

void EventClient::Subscribe(const std::string& topic, EventHandler handler,
                            std::function<void(Status)> done) {
  handlers_[topic] = std::move(handler);
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(BrokerOp::kSubscribe));
  w.WriteString(topic);
  SendBrokerRequest(modem_, broker_address_, std::move(w).Take(),
                    std::move(done));
}

void EventClient::Unsubscribe(const std::string& topic,
                              std::function<void(Status)> done) {
  handlers_.erase(topic);
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(BrokerOp::kUnsubscribe));
  w.WriteString(topic);
  SendBrokerRequest(modem_, broker_address_, std::move(w).Take(),
                    std::move(done));
}

}  // namespace contory::infra
