#include "infra/regatta_service.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "infra/event_broker.hpp"

namespace contory::infra {
namespace {
constexpr const char* kModule = "regatta";
}

void RegattaStanding::Encode(ByteWriter& w) const {
  w.WriteString(boat);
  w.WriteI64(checkpoints_passed);
  w.WriteI64(last_passage.time_since_epoch().count());
  w.WriteF64(last_speed_knots);
  w.WriteF64(avg_speed_knots);
}

Result<RegattaStanding> RegattaStanding::Decode(ByteReader& r) {
  RegattaStanding s;
  auto boat = r.ReadString();
  if (!boat.ok()) return boat.status();
  s.boat = *std::move(boat);
  const auto cp = r.ReadI64();
  if (!cp.ok()) return cp.status();
  s.checkpoints_passed = static_cast<int>(*cp);
  const auto t = r.ReadI64();
  if (!t.ok()) return t.status();
  s.last_passage = SimTime{SimDuration{*t}};
  const auto last = r.ReadF64();
  if (!last.ok()) return last.status();
  s.last_speed_knots = *last;
  const auto avg = r.ReadF64();
  if (!avg.ok()) return avg.status();
  s.avg_speed_knots = *avg;
  return s;
}

std::vector<std::byte> EncodeStandings(
    const std::vector<RegattaStanding>& standings) {
  ByteWriter w;
  w.WriteU32(static_cast<std::uint32_t>(standings.size()));
  for (const auto& s : standings) s.Encode(w);
  return std::move(w).Take();
}

Result<std::vector<RegattaStanding>> DecodeStandings(ByteReader& r) {
  const auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  std::vector<RegattaStanding> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto s = RegattaStanding::Decode(r);
    if (!s.ok()) return s.status();
    out.push_back(*std::move(s));
  }
  return out;
}

RegattaService::RegattaService(sim::Simulation& sim,
                               net::CellularNetwork& network,
                               std::string address,
                               std::vector<GeoPoint> checkpoints,
                               double checkpoint_radius_m)
    : sim_(sim),
      network_(network),
      address_(std::move(address)),
      checkpoints_(std::move(checkpoints)),
      radius_m_(checkpoint_radius_m) {
  const Status s = network_.RegisterServer(
      address_, [this](net::NodeId from, const std::vector<std::byte>& req,
                       net::CellularNetwork::Respond respond) {
        HandleRequest(from, req, std::move(respond));
      });
  if (!s.ok()) {
    throw std::invalid_argument("RegattaService: " + s.ToString());
  }
}

RegattaService::~RegattaService() { network_.UnregisterServer(address_); }

void RegattaService::Report(const std::string& boat, GeoPoint position,
                            double speed_knots) {
  BoatState& state = boats_[boat];
  state.last_speed = speed_knots;
  state.speed_sum += speed_knots;
  ++state.reports;
  bool advanced = false;
  while (state.next_checkpoint < checkpoints_.size() &&
         DistanceMeters(position, checkpoints_[state.next_checkpoint]) <=
             radius_m_) {
    ++state.next_checkpoint;
    state.last_passage = sim_.Now();
    advanced = true;
  }
  if (advanced) {
    CLOG_INFO(kModule, "%s passed checkpoint %zu/%zu", boat.c_str(),
              state.next_checkpoint, checkpoints_.size());
    PushStandings();
  }
}

std::vector<RegattaStanding> RegattaService::Standings() const {
  std::vector<RegattaStanding> out;
  out.reserve(boats_.size());
  for (const auto& [boat, state] : boats_) {
    RegattaStanding s;
    s.boat = boat;
    s.checkpoints_passed = static_cast<int>(state.next_checkpoint);
    s.last_passage = state.last_passage;
    s.last_speed_knots = state.last_speed;
    s.avg_speed_knots =
        state.reports > 0
            ? state.speed_sum / static_cast<double>(state.reports)
            : 0.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const RegattaStanding& a, const RegattaStanding& b) {
              if (a.checkpoints_passed != b.checkpoints_passed) {
                return a.checkpoints_passed > b.checkpoints_passed;
              }
              if (a.last_passage != b.last_passage) {
                return a.last_passage < b.last_passage;
              }
              return a.boat < b.boat;
            });
  return out;
}

void RegattaService::PushStandings() {
  if (subscribers_.empty()) return;
  const auto frame =
      WrapEvent("regatta.standings", EncodeStandings(Standings()));
  for (const net::NodeId sub : subscribers_) {
    (void)network_.PushToClient(sub, frame);
  }
}

void RegattaService::HandleRequest(net::NodeId from,
                                   const std::vector<std::byte>& request,
                                   net::CellularNetwork::Respond respond) {
  const auto nack = [&respond](const std::string& msg) {
    ByteWriter w;
    w.WriteU8(0);
    w.WriteString(msg);
    respond(std::move(w).Take());
  };
  ByteReader r{request};
  const auto op = r.ReadU8();
  if (!op.ok()) {
    nack("empty request");
    return;
  }
  switch (static_cast<RegattaOp>(*op)) {
    case RegattaOp::kReport: {
      auto boat = r.ReadString();
      if (!boat.ok()) {
        nack("missing boat");
        return;
      }
      const auto lat = r.ReadF64();
      const auto lon = r.ReadF64();
      const auto speed = r.ReadF64();
      if (!lat.ok() || !lon.ok() || !speed.ok()) {
        nack("bad report");
        return;
      }
      Report(*boat, GeoPoint{*lat, *lon}, *speed);
      ByteWriter w;
      w.WriteU8(1);
      if (w.size() < kEventNotificationBytes) {
        w.WritePadding(kEventNotificationBytes - w.size());
      }
      respond(std::move(w).Take());
      return;
    }
    case RegattaOp::kStandings: {
      ByteWriter w;
      w.WriteU8(1);
      w.WriteRaw(EncodeStandings(Standings()));
      if (w.size() < kEventNotificationBytes) {
        w.WritePadding(kEventNotificationBytes - w.size());
      }
      respond(std::move(w).Take());
      return;
    }
    case RegattaOp::kSubscribe: {
      if (std::find(subscribers_.begin(), subscribers_.end(), from) ==
          subscribers_.end()) {
        subscribers_.push_back(from);
      }
      ByteWriter w;
      w.WriteU8(1);
      respond(std::move(w).Take());
      return;
    }
  }
  nack("unknown opcode");
}

}  // namespace contory::infra
