// Regatta classification service (the RegattaClassifier backend).
//
// "Virtual checkpoints can be arranged along the route that the boats will
// take during the competition. Each time a boat reaches a checkpoint, the
// RegattaClassifier running on the phone's participant communicates to the
// infrastructure location and speed of the boat (collected using GPS
// sensors). The infrastructure processes this information and provides
// each participant with an updated classification and additional
// statistics of the competition" (Sec. 6.2).
//
// Protocol: kReport (boat, position, speed) -> ack; kStandings -> current
// classification; kSubscribe -> standings pushed after every change.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/model/cxt_value.hpp"
#include "net/cellular.hpp"
#include "sim/simulation.hpp"

namespace contory::infra {

enum class RegattaOp : std::uint8_t {
  kReport = 1,
  kStandings = 2,
  kSubscribe = 3,
};

struct RegattaStanding {
  std::string boat;
  int checkpoints_passed = 0;
  SimTime last_passage{};
  double last_speed_knots = 0.0;
  double avg_speed_knots = 0.0;

  void Encode(ByteWriter& w) const;
  [[nodiscard]] static Result<RegattaStanding> Decode(ByteReader& r);
};

/// Serialization of a full classification (used in responses and pushes).
[[nodiscard]] std::vector<std::byte> EncodeStandings(
    const std::vector<RegattaStanding>& standings);
[[nodiscard]] Result<std::vector<RegattaStanding>> DecodeStandings(
    ByteReader& r);

class RegattaService {
 public:
  RegattaService(sim::Simulation& sim, net::CellularNetwork& network,
                 std::string address, std::vector<GeoPoint> checkpoints,
                 double checkpoint_radius_m = 150.0);
  ~RegattaService();

  RegattaService(const RegattaService&) = delete;
  RegattaService& operator=(const RegattaService&) = delete;

  [[nodiscard]] const std::string& address() const noexcept {
    return address_;
  }

  /// Current classification: winner first ("the current winner of the
  /// regatta"). Ordering: most checkpoints passed, then earliest passage.
  [[nodiscard]] std::vector<RegattaStanding> Standings() const;

  /// Server-side report entry point (also used by the request handler).
  void Report(const std::string& boat, GeoPoint position,
              double speed_knots);

  [[nodiscard]] std::size_t checkpoint_count() const noexcept {
    return checkpoints_.size();
  }

 private:
  struct BoatState {
    std::size_t next_checkpoint = 0;
    SimTime last_passage{};
    double last_speed = 0.0;
    double speed_sum = 0.0;
    std::uint64_t reports = 0;
  };

  void HandleRequest(net::NodeId from, const std::vector<std::byte>& request,
                     net::CellularNetwork::Respond respond);
  void PushStandings();

  sim::Simulation& sim_;
  net::CellularNetwork& network_;
  std::string address_;
  std::vector<GeoPoint> checkpoints_;
  double radius_m_;
  std::map<std::string, BoatState> boats_;
  std::vector<net::NodeId> subscribers_;
};

}  // namespace contory::infra
