// Event-based messaging over cellular (the paper's Fuego middleware).
//
// "The 2G/3GReference offers support for event-based communication by
// using the Fuego middleware ... a scalable distributed event framework
// and XML-based messaging service" (Sec. 5.1). Two pieces matter for the
// reproduction:
//  * the envelope: "cxtItem and cxtQuery objects that are transmitted over
//    UMTS using the event-based platform are encapsulated in event
//    notifications whose size is 1696 bytes" — EventEnvelope pads every
//    message to that size (XML verbosity, faithfully reproduced as cost);
//  * topic-based publish/subscribe with server-initiated notification
//    pushes, which the InfraCxtProvider's long-running queries use.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/cellular.hpp"
#include "sim/simulation.hpp"

namespace contory::infra {

/// The Fuego event notification size observed in the paper.
inline constexpr std::size_t kEventNotificationBytes = 1696;

/// Wraps `payload` into an event notification: topic + payload, padded to
/// kEventNotificationBytes (larger payloads grow the envelope).
[[nodiscard]] std::vector<std::byte> WrapEvent(
    const std::string& topic, const std::vector<std::byte>& payload);

struct Event {
  std::string topic;
  std::vector<std::byte> payload;
};

[[nodiscard]] Result<Event> UnwrapEvent(const std::vector<std::byte>& wire);

/// Server-side pub/sub broker reachable at a CellularNetwork address.
/// Request opcodes: subscribe / unsubscribe / publish; published events
/// are pushed to every subscribed client as envelope frames.
class EventBroker {
 public:
  EventBroker(sim::Simulation& sim, net::CellularNetwork& network,
              std::string address);
  ~EventBroker();

  EventBroker(const EventBroker&) = delete;
  EventBroker& operator=(const EventBroker&) = delete;

  [[nodiscard]] const std::string& address() const noexcept {
    return address_;
  }
  [[nodiscard]] std::size_t SubscriberCount(const std::string& topic) const;
  [[nodiscard]] std::uint64_t events_published() const noexcept {
    return events_published_;
  }

  /// Fault injection: while down, incoming requests are swallowed without
  /// a response, so clients observe a transport timeout (a transient,
  /// retryable kDeadlineExceeded) rather than an application error.
  void SetOutage(bool down) noexcept { outage_ = down; }
  [[nodiscard]] bool in_outage() const noexcept { return outage_; }
  [[nodiscard]] std::uint64_t dropped_requests() const noexcept {
    return dropped_requests_;
  }

 private:
  void HandleRequest(net::NodeId from, const std::vector<std::byte>& request,
                     net::CellularNetwork::Respond respond);

  sim::Simulation& sim_;
  net::CellularNetwork& network_;
  std::string address_;
  std::unordered_map<std::string, std::vector<net::NodeId>> subscribers_;
  std::uint64_t events_published_ = 0;
  bool outage_ = false;
  std::uint64_t dropped_requests_ = 0;
};

/// Client-side helper bound to one modem: publish and subscribe with the
/// envelope handled transparently.
class EventClient {
 public:
  EventClient(net::CellularModem& modem, std::string broker_address);

  /// Publishes payload under topic; `done` reports broker acknowledgement.
  void Publish(const std::string& topic, std::vector<std::byte> payload,
               std::function<void(Status)> done = {});

  using EventHandler = std::function<void(const Event&)>;
  /// Subscribes to a topic; handler fires for each pushed notification.
  void Subscribe(const std::string& topic, EventHandler handler,
                 std::function<void(Status)> done = {});
  void Unsubscribe(const std::string& topic,
                   std::function<void(Status)> done = {});

 private:
  net::CellularModem& modem_;
  std::string broker_address_;
  std::unordered_map<std::string, EventHandler> handlers_;
};

/// Request opcodes shared by broker and client (and reused as a pattern by
/// the ContextServer protocol).
enum class BrokerOp : std::uint8_t {
  kSubscribe = 1,
  kUnsubscribe = 2,
  kPublish = 3,
};

}  // namespace contory::infra
