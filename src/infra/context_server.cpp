#include "infra/context_server.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/query/predicate.hpp"
#include "infra/event_broker.hpp"

namespace contory::infra {

std::vector<std::byte> EncodeStoreRequest(
    const std::string& publisher_name,
    const std::optional<GeoPoint>& position, const CxtItem& item) {
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(ServerOp::kStore));
  w.WriteString(publisher_name);
  w.WriteBool(position.has_value());
  if (position.has_value()) {
    w.WriteF64(position->lat);
    w.WriteF64(position->lon);
  }
  item.Encode(w);
  if (w.size() < kEventNotificationBytes) {
    w.WritePadding(kEventNotificationBytes - w.size());
  }
  return std::move(w).Take();
}

namespace {

constexpr const char* kModule = "cxtserver";

std::string RepoKey(const std::string& entity, const std::string& type) {
  return entity + "\x1f" + type;
}

std::vector<std::byte> Ack() {
  // Acks are small control frames, not full event notifications.
  ByteWriter w;
  w.WriteU8(1);
  w.WritePadding(63);
  return std::move(w).Take();
}

std::vector<std::byte> Nack(const std::string& msg) {
  ByteWriter w;
  w.WriteU8(0);
  w.WriteString(msg);
  return std::move(w).Take();
}

std::vector<std::byte> ItemsResponse(const std::vector<CxtItem>& items) {
  ByteWriter w;
  w.WriteU8(1);
  w.WriteU32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) item.Encode(w);
  if (w.size() < kEventNotificationBytes) {
    w.WritePadding(kEventNotificationBytes - w.size());
  }
  return std::move(w).Take();
}

}  // namespace

ContextServer::ContextServer(sim::Simulation& sim,
                             net::CellularNetwork& network,
                             std::string address,
                             ContextServerConfig config)
    : sim_(sim),
      network_(network),
      address_(std::move(address)),
      config_(config) {
  const Status s = network_.RegisterServer(
      address_, [this](net::NodeId from, const std::vector<std::byte>& req,
                       net::CellularNetwork::Respond respond) {
        HandleRequest(from, req, std::move(respond));
      });
  if (!s.ok()) {
    throw std::invalid_argument("ContextServer: " + s.ToString());
  }
}

ContextServer::~ContextServer() { network_.UnregisterServer(address_); }

void ContextServer::StoreDirect(StoredItem stored) {
  auto& ring = repo_[RepoKey(stored.entity, stored.item.type)];
  ring.push_back(stored);
  ++count_;
  while (ring.size() > config_.max_items_per_key) {
    ring.pop_front();
    --count_;
  }
  EvaluateEventRegistrations(stored);
}

bool ContextServer::Matches(const query::CxtQuery& q, const StoredItem& s,
                            SimTime now) {
  if (s.item.type != q.select_type) return false;
  if (s.item.IsExpired(now)) return false;
  if (q.freshness.has_value() && !s.item.IsFresh(now, *q.freshness)) {
    return false;
  }
  if (q.where.has_value()) {
    const auto match = query::EvalWhere(*q.where, s.item);
    if (!match.ok() || !*match) return false;
  }
  // Destination constraints: if any source names a region or entity, the
  // item must satisfy at least one named destination.
  bool has_dest = false;
  bool dest_ok = false;
  for (const auto& src : q.from.sources) {
    if (src.region.has_value()) {
      has_dest = true;
      if (s.location.has_value() &&
          DistanceMeters(*s.location, src.region->center) <=
              src.region->radius_m) {
        dest_ok = true;
      }
    }
    if (src.entity.has_value()) {
      has_dest = true;
      if (s.entity == src.entity->entity_id) dest_ok = true;
    }
  }
  return !has_dest || dest_ok;
}

std::vector<CxtItem> ContextServer::Evaluate(const query::CxtQuery& q) const {
  const SimTime now = sim_.Now();
  std::vector<CxtItem> out;
  for (const auto& [key, ring] : repo_) {
    // Only the newest matching item per (entity, type): the repository
    // answers "current context", not history.
    for (auto it = ring.rbegin(); it != ring.rend(); ++it) {
      if (now - it->item.timestamp > config_.max_item_age) break;
      if (Matches(q, *it, now)) {
        CxtItem item = it->item;
        item.source = {SourceKind::kExtInfra, address_};
        out.push_back(std::move(item));
        break;
      }
    }
  }
  // Deterministic order: newest first, then by id.
  std::sort(out.begin(), out.end(), [](const CxtItem& a, const CxtItem& b) {
    if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
    return a.id < b.id;
  });
  return out;
}

void ContextServer::PushResults(Registration& reg) {
  if (outage_) return;
  const auto items = Evaluate(reg.query);
  if (items.empty()) return;
  ByteWriter w;
  w.WriteU32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) item.Encode(w);
  const auto frame = WrapEvent("cxt." + reg.query.id, std::move(w).Take());
  const Status s = network_.PushToClient(reg.client, frame);
  if (!s.ok()) {
    CLOG_DEBUG(kModule, "push for %s failed: %s", reg.query.id.c_str(),
               s.ToString().c_str());
  }
  reg.samples_sent += static_cast<int>(items.size());
}

void ContextServer::EvaluateEventRegistrations(const StoredItem& trigger) {
  ExpireRegistrations();
  for (auto& [id, reg] : registrations_) {
    if (!reg.query.event.has_value()) continue;
    if (trigger.item.type != reg.query.select_type) continue;
    // Build the evaluation window: all stored items matching the query.
    std::vector<CxtItem> window;
    for (const auto& [key, ring] : repo_) {
      for (const auto& stored : ring) {
        if (Matches(reg.query, stored, sim_.Now())) {
          window.push_back(stored.item);
        }
      }
    }
    const auto fire = query::EvalEvent(*reg.query.event, window);
    if (fire.ok() && *fire) PushResults(reg);
  }
}

void ContextServer::ExpireRegistrations() {
  for (auto it = registrations_.begin(); it != registrations_.end();) {
    bool expired = sim_.Now() >= it->second.expires;
    if (it->second.query.duration.samples.has_value() &&
        it->second.samples_sent >= *it->second.query.duration.samples) {
      expired = true;
    }
    if (expired) {
      it = registrations_.erase(it);
    } else {
      ++it;
    }
  }
}

void ContextServer::HandleRequest(net::NodeId from,
                                  const std::vector<std::byte>& request,
                                  net::CellularNetwork::Respond respond) {
  if (outage_) {
    // Dropping `respond` leaves the client's exchange to time out.
    ++dropped_requests_;
    CLOG_DEBUG(kModule, "outage: dropping request from node %u", from);
    return;
  }
  ByteReader r{request};
  const auto op = r.ReadU8();
  if (!op.ok()) {
    respond(Nack("empty request"));
    return;
  }
  switch (static_cast<ServerOp>(*op)) {
    case ServerOp::kStore: {
      StoredItem stored;
      auto entity = r.ReadString();
      if (!entity.ok()) {
        respond(Nack("missing entity"));
        return;
      }
      stored.entity = *std::move(entity);
      const auto has_loc = r.ReadBool();
      if (!has_loc.ok()) {
        respond(Nack("missing location flag"));
        return;
      }
      if (*has_loc) {
        const auto lat = r.ReadF64();
        const auto lon = r.ReadF64();
        if (!lat.ok() || !lon.ok()) {
          respond(Nack("bad location"));
          return;
        }
        stored.location = GeoPoint{*lat, *lon};
      }
      auto item = CxtItem::Deserialize(r);
      if (!item.ok()) {
        respond(Nack("bad item: " + item.status().ToString()));
        return;
      }
      stored.item = *std::move(item);
      StoreDirect(std::move(stored));
      respond(Ack());
      return;
    }
    case ServerOp::kQuery: {
      const auto len = r.ReadU32();
      if (!len.ok()) {
        respond(Nack("missing query"));
        return;
      }
      std::vector<std::byte> qbytes(*len);
      for (auto& b : qbytes) {
        const auto byte = r.ReadU8();
        if (!byte.ok()) {
          respond(Nack("truncated query"));
          return;
        }
        b = std::byte{*byte};
      }
      const auto q = query::CxtQuery::Deserialize(qbytes);
      if (!q.ok()) {
        respond(Nack("bad query: " + q.status().ToString()));
        return;
      }
      respond(ItemsResponse(Evaluate(*q)));
      return;
    }
    case ServerOp::kRegisterQuery: {
      const auto len = r.ReadU32();
      if (!len.ok()) {
        respond(Nack("missing query"));
        return;
      }
      std::vector<std::byte> qbytes(*len);
      for (auto& b : qbytes) {
        const auto byte = r.ReadU8();
        if (!byte.ok()) {
          respond(Nack("truncated query"));
          return;
        }
        b = std::byte{*byte};
      }
      auto q = query::CxtQuery::Deserialize(qbytes);
      if (!q.ok()) {
        respond(Nack("bad query: " + q.status().ToString()));
        return;
      }
      Registration reg;
      reg.query = *std::move(q);
      reg.client = from;
      reg.expires = reg.query.duration.time.has_value()
                        ? sim_.Now() + *reg.query.duration.time
                        : sim_.Now() + config_.max_item_age;
      const std::string id = reg.query.id;
      auto [it, inserted] =
          registrations_.insert_or_assign(id, std::move(reg));
      Registration& stored = it->second;
      if (stored.query.every.has_value()) {
        stored.pusher = std::make_unique<sim::PeriodicTask>(
            sim_, *stored.query.every, [this, id] {
              ExpireRegistrations();
              const auto reg_it = registrations_.find(id);
              if (reg_it == registrations_.end()) return;
              PushResults(reg_it->second);
            });
      }
      respond(Ack());
      return;
    }
    case ServerOp::kCancelQuery: {
      auto id = r.ReadString();
      if (!id.ok()) {
        respond(Nack("missing query id"));
        return;
      }
      registrations_.erase(*id);
      respond(Ack());
      return;
    }
  }
  respond(Nack("unknown opcode"));
}

}  // namespace contory::infra
