// External context infrastructure (the extInfra provisioning substrate).
//
// "These shared context services are in charge of discovering suitable
// context sources and processing, storing, and disseminating gathered
// context data. Multiple context providers on different applications can
// pull or subscribe to these services to retrieve context information
// related to certain context entities" (Sec. 2). The DYNAMOS remote
// repository the paper's tests query over UMTS is this component.
//
// Protocol (all frames event-notification sized, see event_broker.hpp):
//   kStore          entity, [location], CxtItem    -> ack
//   kQuery          CxtQuery                       -> ack + items
//   kRegisterQuery  CxtQuery                       -> ack; pushes follow
//   kCancelQuery    query id                       -> ack
//
// Long-running queries: EVERY queries push matching items each period;
// EVENT queries are evaluated against the stored window on every store.
// Registrations expire with the query's DURATION.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "core/model/cxt_item.hpp"
#include "core/query/query.hpp"
#include "net/cellular.hpp"
#include "sim/simulation.hpp"

namespace contory::infra {

enum class ServerOp : std::uint8_t {
  kStore = 1,
  kQuery = 2,
  kRegisterQuery = 3,
  kCancelQuery = 4,
};

/// Client-side encoding of one kStore request frame (the extInfra
/// storeCxtItem round trip), padded to the event-notification size.
[[nodiscard]] std::vector<std::byte> EncodeStoreRequest(
    const std::string& publisher_name,
    const std::optional<GeoPoint>& position, const CxtItem& item);

/// One stored observation: the item plus where/who it came from.
struct StoredItem {
  CxtItem item;
  std::string entity;               // producing entity ("boat-7")
  std::optional<GeoPoint> location; // producer position at store time
};

struct ContextServerConfig {
  /// Ring-buffer depth per (entity, type) key.
  std::size_t max_items_per_key = 32;
  /// Items older than this are dropped from query results even without an
  /// explicit FRESHNESS (repository hygiene).
  SimDuration max_item_age = std::chrono::hours{24};
};

class ContextServer {
 public:
  ContextServer(sim::Simulation& sim, net::CellularNetwork& network,
                std::string address, ContextServerConfig config = {});
  ~ContextServer();

  ContextServer(const ContextServer&) = delete;
  ContextServer& operator=(const ContextServer&) = delete;

  [[nodiscard]] const std::string& address() const noexcept {
    return address_;
  }

  /// Direct (server-side) store, used by infrastructure-resident services
  /// like the weather station feed.
  void StoreDirect(StoredItem stored);

  /// Server-side query evaluation (also used by the request handler).
  [[nodiscard]] std::vector<CxtItem> Evaluate(
      const query::CxtQuery& q) const;

  [[nodiscard]] std::size_t stored_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t active_query_count() const noexcept {
    return registrations_.size();
  }

  /// Fault injection: while down, incoming requests are swallowed without
  /// a response (clients time out — a transient, retryable failure) and
  /// registered-query pushes are suppressed. Registrations and stored
  /// items survive the outage.
  void SetOutage(bool down) noexcept { outage_ = down; }
  [[nodiscard]] bool in_outage() const noexcept { return outage_; }
  [[nodiscard]] std::uint64_t dropped_requests() const noexcept {
    return dropped_requests_;
  }

  /// Does `stored` match query `q` at time `now` (type, freshness, WHERE,
  /// region/entity destinations)? Exposed for tests.
  [[nodiscard]] static bool Matches(const query::CxtQuery& q,
                                    const StoredItem& stored, SimTime now);

 private:
  struct Registration {
    query::CxtQuery query;
    net::NodeId client = net::kInvalidNode;
    SimTime expires{};
    std::unique_ptr<sim::PeriodicTask> pusher;  // EVERY queries
    int samples_sent = 0;
  };

  void HandleRequest(net::NodeId from, const std::vector<std::byte>& request,
                     net::CellularNetwork::Respond respond);
  void PushResults(Registration& reg);
  void EvaluateEventRegistrations(const StoredItem& trigger);
  void ExpireRegistrations();

  sim::Simulation& sim_;
  net::CellularNetwork& network_;
  std::string address_;
  ContextServerConfig config_;
  /// (entity, type) -> recent items, newest last.
  std::unordered_map<std::string, std::deque<StoredItem>> repo_;
  std::size_t count_ = 0;
  std::unordered_map<std::string, Registration> registrations_;
  bool outage_ = false;
  std::uint64_t dropped_requests_ = 0;
};

}  // namespace contory::infra
