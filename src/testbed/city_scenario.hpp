// City-scale scenario builder: 1k-100k lightweight phones on one Medium.
//
// The paper's testbed assembled a handful of full Nokia phones; the
// ROADMAP's city-scale workload needs orders of magnitude more. A full
// testbed::Device carries BT, cellular, the fault-injector registry and a
// whole Contory pipeline per phone — far more than a crowd extra needs.
// CityScenario bulk-constructs *lightweight* phones instead: one shared
// hardware profile, WiFi + Smart-Messages runtime only (the multi-hop
// SM-FINDER substrate), no BT/cellular/Contory wiring. A configurable
// fraction of phones publishes a context tag (the "providers"); every
// phone participates in the SM overlay and exposes its home tag so
// finders can route back.
//
// Movement comes from the sim/mobility models; queries are raw SM-FINDER
// rounds launched straight at the SM runtime — the same code bricks the
// AdHocCxtProvider uses, without per-phone middleware overhead — so the
// scenario measures the *network and runtime* cost of city-scale context
// lookup (success rate, hops, energy), not pipeline bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "net/wifi.hpp"
#include "phone/phone_profiles.hpp"
#include "phone/smart_phone.hpp"
#include "sim/mobility.hpp"
#include "sim/simulation.hpp"
#include "sm/sm_runtime.hpp"

namespace contory::testbed {

struct CityOptions {
  std::size_t phones = 1000;
  /// Square world side; 0 = auto-scale so node density stays constant
  /// (~1 node / 100 m^2-ish: side = 100 * sqrt(phones)), keeping the
  /// WiFi degree — and so the routing difficulty — comparable across
  /// fleet sizes.
  double area_m = 0.0;
  double wifi_range_m = 100.0;
  /// Fraction of phones exposing the context tag (the providers).
  double provider_fraction = 0.25;
  std::string cxt_type = "temperature";
  std::uint64_t seed = 1;

  enum class Mobility : std::uint8_t { kNone, kRandomWaypoint, kCommuter };
  Mobility mobility = Mobility::kRandomWaypoint;
  SimDuration mobility_tick = std::chrono::seconds{1};
  /// RandomWaypoint speeds; CommuterFlow uses its own vehicular speed.
  double speed_min_mps = 0.5;
  double speed_max_mps = 2.0;
  /// Next-hop route cache TTL for every phone's SM runtime (0 = off, the
  /// default — identical routing to the uncached BFS). See
  /// SmRuntimeConfig::route_cache_ttl.
  SimDuration route_cache_ttl{};
};

class CityScenario {
 public:
  explicit CityScenario(CityOptions options);
  ~CityScenario();

  CityScenario(const CityScenario&) = delete;
  CityScenario& operator=(const CityScenario&) = delete;

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Medium& medium() noexcept { return medium_; }
  [[nodiscard]] const CityOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] double area_side_m() const noexcept { return side_m_; }

  [[nodiscard]] std::size_t phone_count() const noexcept {
    return phones_.size();
  }
  [[nodiscard]] std::size_t provider_count() const noexcept {
    return provider_count_;
  }
  [[nodiscard]] net::NodeId node(std::size_t i) const {
    return wifis_.at(i)->node();
  }
  [[nodiscard]] phone::SmartPhone& phone(std::size_t i) {
    return *phones_.at(i);
  }
  [[nodiscard]] sm::SmRuntime& runtime(std::size_t i) {
    return *runtimes_.at(i);
  }
  [[nodiscard]] bool is_provider(std::size_t i) const {
    return provider_flags_.at(i);
  }
  /// nullptr when options.mobility == kNone.
  [[nodiscard]] sim::MobilityModel* mobility() noexcept {
    return mobility_.get();
  }

  /// Outcome of one SM-FINDER round, reported to the launch callback.
  struct FinderOutcome {
    bool success = false;     // >= 1 valid item back before the timeout
    bool replied = false;     // finder made it home at all
    int hops = 0;             // hop_count of the returning SM
    std::size_t items = 0;    // results surviving the hopCnt<=numHops rule
    SimDuration latency{};    // launch -> reply (or timeout)
  };
  using FinderCallback = std::function<void(FinderOutcome)>;

  /// Launches an SM-FINDER for the scenario's context type from phone
  /// `issuer`: same code brick and routing as AdHocCxtProvider's WiFi
  /// transport. `num_nodes` = how many provider items to collect
  /// (-1 = all reachable), `num_hops` = hop budget (0 = unbounded).
  void LaunchFinder(std::size_t issuer, int num_nodes, int num_hops,
                    SimDuration timeout, FinderCallback done);

  /// Re-publishes provider items stamped at the current sim time (for
  /// freshness-sensitive sweeps).
  void RefreshTags();

  /// Sum of every phone's energy ledger, integrated to now (Joules).
  [[nodiscard]] double TotalEnergyJoules() const;

 private:
  void PublishProviderItem(std::size_t i);

  CityOptions options_;
  double side_m_ = 0.0;
  sim::Simulation sim_;
  net::Medium medium_;
  net::WifiBus wifi_bus_;
  sm::SmBus sm_bus_;
  phone::PhoneProfile profile_;  // shared by the whole fleet
  std::vector<std::unique_ptr<phone::SmartPhone>> phones_;
  std::vector<std::unique_ptr<net::WifiController>> wifis_;
  std::vector<std::unique_ptr<sm::SmRuntime>> runtimes_;
  std::vector<bool> provider_flags_;
  std::size_t provider_count_ = 0;
  std::unique_ptr<sim::MobilityModel> mobility_;
  /// obs::Clock installation owned by this scenario (0 = superseded).
  std::uint64_t clock_token_ = 0;
};

}  // namespace contory::testbed
