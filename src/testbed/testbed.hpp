// Experiment testbed builder.
//
// Assembles complete simulated worlds — phones with radios, GPS
// receivers, the environment, the cellular infrastructure, and Contory
// instances — the way the paper's testbed assembled Nokia phones, a
// BT-GPS and a remote repository. Used by the integration tests, every
// bench, and the examples, so that scenario construction lives in one
// audited place.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/contory.hpp"
#include "fault/fault_injector.hpp"
#include "infra/context_server.hpp"
#include "infra/event_broker.hpp"
#include "infra/regatta_service.hpp"
#include "sensors/environment.hpp"
#include "sensors/gps.hpp"

namespace contory::testbed {

struct DeviceOptions {
  std::string name = "phone";
  phone::PhoneProfile profile = phone::Nokia6630();
  net::Position position{0, 0};
  bool with_bt = true;
  bool with_wifi = false;   // 9500-class devices only, and it is expensive
  bool with_cellular = true;
  bool with_contory = true;
  /// Internal environment sensors to register (e.g. {vocab::kTemperature}).
  std::vector<std::string> internal_sensors;
  /// Default extInfra address for this device's queries.
  std::string infra_address;
  core::ContextFactoryConfig factory_config;
};

class World;

/// One simulated device: a phone, its radios, and (optionally) Contory.
class Device {
 public:
  Device(World& world, const DeviceOptions& options);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] phone::SmartPhone& phone() noexcept { return *phone_; }
  [[nodiscard]] net::BluetoothController* bt() noexcept { return bt_.get(); }
  [[nodiscard]] net::WifiController* wifi() noexcept { return wifi_.get(); }
  [[nodiscard]] sm::SmRuntime* sm() noexcept { return sm_.get(); }
  [[nodiscard]] net::CellularModem* modem() noexcept { return modem_.get(); }
  /// Requires with_contory.
  [[nodiscard]] core::ContextFactory& contory() noexcept {
    return *factory_;
  }
  [[nodiscard]] bool has_contory() const noexcept {
    return factory_ != nullptr;
  }

  void MoveTo(net::Position position);
  [[nodiscard]] net::Position position() const;

 private:
  World& world_;
  std::string name_;
  net::NodeId node_;
  std::unique_ptr<phone::SmartPhone> phone_;
  std::unique_ptr<net::BluetoothController> bt_;
  std::unique_ptr<net::WifiController> wifi_;
  std::unique_ptr<sm::SmRuntime> sm_;
  std::unique_ptr<net::CellularModem> modem_;
  std::unique_ptr<core::ContextFactory> factory_;
};

class World {
 public:
  explicit World(std::uint64_t seed = 1);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Medium& medium() noexcept { return medium_; }
  [[nodiscard]] net::BluetoothBus& bt_bus() noexcept { return bt_bus_; }
  [[nodiscard]] net::WifiBus& wifi_bus() noexcept { return wifi_bus_; }
  [[nodiscard]] sm::SmBus& sm_bus() noexcept { return sm_bus_; }
  [[nodiscard]] net::CellularNetwork& cellular() noexcept {
    return cellular_;
  }
  [[nodiscard]] sensors::EnvironmentField& environment() noexcept {
    return environment_;
  }
  /// Chaos harness. Every radio, sensor, GPS and infrastructure service
  /// the builder creates is pre-registered: devices by name ("phone"),
  /// internal sensors as "<type>@<device>", services by address.
  [[nodiscard]] fault::FaultInjector& injector() noexcept {
    return injector_;
  }

  /// Creates a device; returned reference is stable for the World's life.
  Device& AddDevice(DeviceOptions options);
  [[nodiscard]] Device& device(std::size_t index) {
    return *devices_.at(index);
  }
  [[nodiscard]] std::size_t device_count() const noexcept {
    return devices_.size();
  }

  /// Creates a powered-on BT-GPS receiver at `position`.
  sensors::GpsDevice& AddGps(const std::string& name, net::Position position,
                             sensors::GpsConfig config = {});

  /// Infrastructure services (hosted in the fixed network).
  infra::ContextServer& AddContextServer(
      const std::string& address, infra::ContextServerConfig config = {});
  infra::EventBroker& AddEventBroker(const std::string& address);
  infra::RegattaService& AddRegattaService(
      const std::string& address, std::vector<GeoPoint> checkpoints,
      double radius_m = 150.0);

  // Convenience: the shorthand used by most benches/tests.
  void RunFor(SimDuration d) { sim_.RunFor(d); }
  [[nodiscard]] SimTime Now() const { return sim_.Now(); }

 private:
  sim::Simulation sim_;
  net::Medium medium_;
  net::BluetoothBus bt_bus_;
  net::WifiBus wifi_bus_;
  sm::SmBus sm_bus_;
  net::CellularNetwork cellular_;
  sensors::EnvironmentField environment_;
  fault::FaultInjector injector_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<sensors::GpsDevice>> gps_devices_;
  std::vector<std::unique_ptr<infra::ContextServer>> servers_;
  std::vector<std::unique_ptr<infra::EventBroker>> brokers_;
  std::vector<std::unique_ptr<infra::RegattaService>> regattas_;
  /// obs::Clock installation owned by this World (0 = superseded).
  std::uint64_t clock_token_ = 0;
};

}  // namespace contory::testbed
