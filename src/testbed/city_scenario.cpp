#include "testbed/city_scenario.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "common/logging.hpp"
#include "core/model/cxt_item.hpp"
#include "core/providers/adhoc_provider.hpp"
#include "core/query/parser.hpp"
#include "core/references/wifi_reference.hpp"
#include "obs/clock.hpp"
#include "obs/observability.hpp"

namespace contory::testbed {
namespace {

constexpr const char* kModule = "city";

}  // namespace

CityScenario::CityScenario(CityOptions options)
    : options_(std::move(options)),
      sim_(options_.seed),
      wifi_bus_(medium_),
      profile_(phone::Nokia9500()) {
  clock_token_ = obs::Clock::Install([this] { return sim_.Now(); });
  // Constant density unless the caller pinned the area: the WiFi degree
  // (~pi * range^2 * density) stays flat across fleet sizes, so hop
  // counts measure scale, not crowding.
  side_m_ = options_.area_m > 0.0
                ? options_.area_m
                : 100.0 * std::sqrt(static_cast<double>(options_.phones));
  const sim::MobilityArea area{side_m_, side_m_};

  Rng scatter = sim_.rng().Fork();
  phones_.reserve(options_.phones);
  wifis_.reserve(options_.phones);
  runtimes_.reserve(options_.phones);
  provider_flags_.reserve(options_.phones);

  const net::WifiConfig wifi_config{options_.wifi_range_m};
  for (std::size_t i = 0; i < options_.phones; ++i) {
    const net::Position pos = sim::RandomPointIn(area, scatter);
    const net::NodeId node =
        medium_.Register("city-" + std::to_string(i), pos);
    phones_.push_back(std::make_unique<phone::SmartPhone>(
        sim_, profile_, "city-" + std::to_string(i)));
    wifis_.push_back(std::make_unique<net::WifiController>(
        sim_, wifi_bus_, *phones_.back(), node, wifi_config));
    wifis_.back()->SetEnabled(true);
    sm::SmRuntimeConfig rt_config;
    rt_config.route_cache_ttl = options_.route_cache_ttl;
    runtimes_.push_back(std::make_unique<sm::SmRuntime>(
        sim_, sm_bus_, *wifis_.back(), std::move(rt_config)));
    sm::SmRuntime& rt = *runtimes_.back();
    rt.SetParticipating(true);
    core::RegisterFinderBrick(rt);
    // Home tag: finders route back to their issuer by content-based
    // naming, exactly as ContextFactory-equipped phones advertise it.
    rt.tags().Upsert(core::HomeTagName(node), "1");

    const bool provider = scatter.Bernoulli(options_.provider_fraction);
    provider_flags_.push_back(provider);
    if (provider) {
      ++provider_count_;
      PublishProviderItem(i);
    }
  }

  switch (options_.mobility) {
    case CityOptions::Mobility::kNone:
      break;
    case CityOptions::Mobility::kRandomWaypoint: {
      sim::RandomWaypointConfig config;
      config.area = area;
      config.speed_min_mps = options_.speed_min_mps;
      config.speed_max_mps = options_.speed_max_mps;
      config.tick = options_.mobility_tick;
      mobility_ = std::make_unique<sim::RandomWaypoint>(
          sim_, medium_, config, options_.seed ^ 0x9e3779b97f4a7c15ULL);
      break;
    }
    case CityOptions::Mobility::kCommuter: {
      sim::CommuterFlowConfig config;
      config.area = area;
      config.tick = options_.mobility_tick;
      mobility_ = std::make_unique<sim::CommuterFlow>(
          sim_, medium_, config, options_.seed ^ 0x9e3779b97f4a7c15ULL);
      break;
    }
  }
  if (mobility_ != nullptr) {
    for (std::size_t i = 0; i < phone_count(); ++i) {
      mobility_->Manage(node(i));
    }
    mobility_->Start();
  }
  CLOG_INFO(kModule,
            "city built: %zu phones (%zu providers) over %.0f m side, "
            "%zu grid cells",
            phone_count(), provider_count_, side_m_,
            medium_.occupied_cells());
}

CityScenario::~CityScenario() { obs::Clock::Uninstall(clock_token_); }

void CityScenario::PublishProviderItem(std::size_t i) {
  CxtItem item;
  item.id = "city-item-" + std::to_string(node(i));
  item.type = options_.cxt_type;
  // Deterministic pseudo-reading: no rng draw, so republishing never
  // perturbs any other subsystem's stream.
  item.value = 10.0 + static_cast<double>(i % 100) * 0.1;
  item.timestamp = sim_.Now();
  item.source = {SourceKind::kAdHocNetwork,
                 "node:" + std::to_string(node(i))};
  item.metadata.accuracy = 0.5;
  runtimes_[i]->tags().Upsert(core::CxtTagName(options_.cxt_type),
                              ToHex(item.Serialize()));
}

void CityScenario::RefreshTags() {
  for (std::size_t i = 0; i < phone_count(); ++i) {
    if (provider_flags_[i]) PublishProviderItem(i);
  }
}

double CityScenario::TotalEnergyJoules() const {
  double joules = 0.0;
  for (const auto& p : phones_) joules += p->energy().TotalEnergyJoules();
  return joules;
}

void CityScenario::LaunchFinder(std::size_t issuer, int num_nodes,
                                int num_hops, SimDuration timeout,
                                FinderCallback done) {
  sm::SmRuntime& rt = runtime(issuer);

  const std::string scope =
      (num_nodes < 0 ? std::string("all") : std::to_string(num_nodes)) +
      "," + std::to_string(num_hops);
  auto query = query::ParseQuery("SELECT " + options_.cxt_type +
                                 " FROM adHocNetwork(" + scope +
                                 ") DURATION 1 hour");
  if (!query.ok()) {
    CLOG_WARN(kModule, "finder query did not parse: %s",
              query.status().ToString().c_str());
    if (done) done(FinderOutcome{});
    return;
  }
  query->id = sim_.ids().NextId("city-q");

  core::FinderState state;
  state.query = *query;
  state.remaining_nodes = num_nodes < 0 ? -1 : num_nodes;

  sm::SmartMessage sm;
  sm.id = sim_.ids().NextId("city-finder");
  sm.code_brick = core::kFinderBrick;
  sm.origin = rt.node();
  sm.target_tag = core::CxtTagName(options_.cxt_type);
  sm.max_hops = num_hops;
  sm.data = state.Encode();

  struct Pending {
    sim::TimerId timer = sim::kInvalidTimer;
    SimTime launched;
    bool settled = false;
    /// Synthetic tracer root for this finder round (0 = obs off): the
    /// hop chain nests under it, so a city trace shows the full route.
    std::uint64_t root_span = 0;
  };
  auto pending = std::make_shared<Pending>();
  pending->launched = sim_.Now();
  COBS({
    phone::SmartPhone& issuer_phone = phone(issuer);
    pending->root_span = obs::Observability::tracer().BeginQuery(
        query->id, sim_.Now(),
        [&issuer_phone] { return issuer_phone.energy().TotalEnergyJoules(); });
    sm.trace_parent = pending->root_span;
  });

  const std::string finder_id = sm.id;
  rt.RegisterReplyHandler(
      finder_id, [this, pending, num_hops, done](sm::SmartMessage reply) {
        if (pending->settled) return;
        pending->settled = true;
        sim_.Cancel(pending->timer);
        FinderOutcome outcome;
        outcome.replied = true;
        outcome.hops = reply.hop_count;
        outcome.latency = sim_.Now() - pending->launched;
        if (const auto state = core::FinderState::Decode(reply.data);
            state.ok()) {
          for (const auto& collected : state->results) {
            // "if hopCnt>numHops the receiver discards the result" — the
            // same rule AdHocCxtProvider applies to returning finders.
            if (num_hops > 0 && collected.hop > num_hops) continue;
            ++outcome.items;
          }
        }
        outcome.success = outcome.items > 0;
        COBS({
          static obs::Histogram& hops =
              obs::Observability::metrics().GetHistogram(
                  "sm_finder_hops", {}, obs::DefaultHopBounds());
          hops.Observe(static_cast<double>(reply.hop_count));
          auto& tracer = obs::Observability::tracer();
          tracer.AddItems(pending->root_span, outcome.items);
          tracer.EndQuery(pending->root_span, sim_.Now(),
                          outcome.success ? "ok" : "replied-empty");
        });
        if (done) done(outcome);
      });

  pending->timer = sim_.ScheduleAfter(
      timeout,
      [this, pending, issuer, finder_id, done] {
        if (pending->settled) return;
        pending->settled = true;
        runtime(issuer).UnregisterReplyHandler(finder_id);
        FinderOutcome outcome;
        outcome.latency = sim_.Now() - pending->launched;
        COBS(obs::Observability::tracer().EndQuery(pending->root_span,
                                                   sim_.Now(), "timeout"));
        if (done) done(outcome);
      },
      "city.finder_timeout");

  const Status injected = rt.Inject(std::move(sm));
  if (!injected.ok() && !pending->settled) {
    pending->settled = true;
    sim_.Cancel(pending->timer);
    rt.UnregisterReplyHandler(finder_id);
    COBS(obs::Observability::tracer().EndQuery(pending->root_span, sim_.Now(),
                                               "rejected:admission"));
    FinderOutcome outcome;
    if (done) done(outcome);
  }
}

}  // namespace contory::testbed
