#include "testbed/testbed.hpp"

#include "obs/clock.hpp"

namespace contory::testbed {

World::World(std::uint64_t seed)
    : sim_(seed),
      bt_bus_(medium_),
      wifi_bus_(medium_),
      cellular_(sim_),
      environment_(sim_),
      injector_(sim_) {
  // One installation wires the tracer, op-latency metrics and the log
  // prefix to THE same simulated clock (see obs/clock.hpp).
  clock_token_ = obs::Clock::Install([this] { return sim_.Now(); });
}

World::~World() { obs::Clock::Uninstall(clock_token_); }

Device& World::AddDevice(DeviceOptions options) {
  devices_.push_back(std::make_unique<Device>(*this, options));
  return *devices_.back();
}

sensors::GpsDevice& World::AddGps(const std::string& name,
                                  net::Position position,
                                  sensors::GpsConfig config) {
  const net::NodeId node = medium_.Register(name, position);
  gps_devices_.push_back(
      std::make_unique<sensors::GpsDevice>(sim_, bt_bus_, node, name,
                                           config));
  gps_devices_.back()->PowerOn();
  injector_.RegisterGps(name, *gps_devices_.back());
  injector_.RegisterNode(name, medium_, node);
  return *gps_devices_.back();
}

infra::ContextServer& World::AddContextServer(
    const std::string& address, infra::ContextServerConfig config) {
  servers_.push_back(
      std::make_unique<infra::ContextServer>(sim_, cellular_, address,
                                             config));
  infra::ContextServer* server = servers_.back().get();
  injector_.RegisterOutageSwitch(
      address, [server](bool down) { server->SetOutage(down); });
  return *servers_.back();
}

infra::EventBroker& World::AddEventBroker(const std::string& address) {
  brokers_.push_back(
      std::make_unique<infra::EventBroker>(sim_, cellular_, address));
  infra::EventBroker* broker = brokers_.back().get();
  injector_.RegisterOutageSwitch(
      address, [broker](bool down) { broker->SetOutage(down); });
  return *brokers_.back();
}

infra::RegattaService& World::AddRegattaService(
    const std::string& address, std::vector<GeoPoint> checkpoints,
    double radius_m) {
  regattas_.push_back(std::make_unique<infra::RegattaService>(
      sim_, cellular_, address, std::move(checkpoints), radius_m));
  return *regattas_.back();
}

Device::Device(World& world, const DeviceOptions& options)
    : world_(world), name_(options.name) {
  node_ = world_.medium().Register(name_, options.position);
  world_.injector().RegisterNode(name_, world_.medium(), node_);
  phone_ = std::make_unique<phone::SmartPhone>(world_.sim(), options.profile,
                                               name_);
  if (options.with_bt) {
    bt_ = std::make_unique<net::BluetoothController>(
        world_.sim(), world_.bt_bus(), *phone_, node_);
    bt_->SetEnabled(true);
    world_.injector().RegisterBluetooth(name_, *bt_);
  }
  if (options.with_wifi) {
    wifi_ = std::make_unique<net::WifiController>(
        world_.sim(), world_.wifi_bus(), *phone_, node_);
    wifi_->SetEnabled(true);
    sm_ = std::make_unique<sm::SmRuntime>(world_.sim(), world_.sm_bus(),
                                          *wifi_);
    world_.injector().RegisterWifi(name_, *wifi_);
  }
  if (options.with_cellular) {
    modem_ = std::make_unique<net::CellularModem>(
        world_.sim(), *phone_, world_.cellular(), node_);
    modem_->SetRadioOn(true);
    world_.injector().RegisterModem(name_, *modem_);
  }
  if (options.with_contory) {
    core::DeviceServices services;
    services.sim = &world_.sim();
    services.phone = phone_.get();
    services.medium = &world_.medium();
    services.node = node_;
    services.bt = bt_.get();
    services.wifi = wifi_.get();
    services.sm = sm_.get();
    services.modem = modem_.get();
    services.environment = &world_.environment();
    services.default_infra_address = options.infra_address;
    factory_ = std::make_unique<core::ContextFactory>(
        services, options.factory_config);
    for (const std::string& type : options.internal_sensors) {
      auto sensor = std::make_unique<sensors::EnvironmentSensor>(
          world_.sim(), world_.environment(), world_.medium(), node_, type,
          "env:" + type + "@" + name_);
      world_.injector().RegisterSensor(type + "@" + name_, *sensor);
      factory_->internal_reference().RegisterSource(std::move(sensor));
    }
  }
}

Device::~Device() = default;

void Device::MoveTo(net::Position position) {
  (void)world_.medium().SetPosition(node_, position);
}

net::Position Device::position() const {
  return world_.medium().GetPosition(node_).value_or(net::Position{});
}

}  // namespace contory::testbed
