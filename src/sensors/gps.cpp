#include "sensors/gps.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.hpp"
#include "phone/phone_profiles.hpp"
#include "sensors/sensor.hpp"

namespace contory::sensors {
namespace {

constexpr const char* kModule = "gps";
constexpr std::size_t kNmeaBurstBytes = 340;

/// Formats degrees as NMEA ddmm.mmmm / dddmm.mmmm.
void FormatNmeaCoord(double deg, bool is_lon, char* buf, std::size_t len,
                     char* hemi) {
  const double a = std::abs(deg);
  const int whole = static_cast<int>(a);
  const double minutes = (a - whole) * 60.0;
  if (is_lon) {
    std::snprintf(buf, len, "%03d%07.4f", whole, minutes);
    *hemi = deg >= 0 ? 'E' : 'W';
  } else {
    std::snprintf(buf, len, "%02d%07.4f", whole, minutes);
    *hemi = deg >= 0 ? 'N' : 'S';
  }
}

double ParseNmeaCoord(const std::string& field, char hemi, bool is_lon) {
  const double raw = std::strtod(field.c_str(), nullptr);
  const int deg_div = is_lon ? 100 : 100;
  const int whole = static_cast<int>(raw) / deg_div;
  const double minutes = raw - whole * deg_div;
  double deg = whole + minutes / 60.0;
  if (hemi == 'S' || hemi == 'W') deg = -deg;
  return deg;
}

std::string WithChecksum(const std::string& body) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "*%02X\r\n", NmeaChecksum(body));
  return "$" + body + buf;
}

std::vector<std::string> SplitFields(const std::string& body) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : body) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

unsigned NmeaChecksum(std::string_view body) noexcept {
  unsigned x = 0;
  for (const char c : body) x ^= static_cast<unsigned char>(c);
  return x & 0xff;
}

std::string BuildNmeaBurst(const GpsFix& fix) {
  const double secs = ToSeconds(fix.time);
  const int hh = static_cast<int>(secs / 3600) % 24;
  const int mm = static_cast<int>(secs / 60) % 60;
  const double ss = std::fmod(secs, 60.0);

  char lat[16], lon[16];
  char lat_h = 'N', lon_h = 'E';
  FormatNmeaCoord(fix.position.lat, false, lat, sizeof lat, &lat_h);
  FormatNmeaCoord(fix.position.lon, true, lon, sizeof lon, &lon_h);

  char body[160];
  std::snprintf(body, sizeof body,
                "GPGGA,%02d%02d%05.2f,%s,%c,%s,%c,1,08,1.0,2.0,M,20.0,M,,",
                hh, mm, ss, lat, lat_h, lon, lon_h);
  std::string burst = WithChecksum(body);

  std::snprintf(body, sizeof body,
                "GPRMC,%02d%02d%05.2f,A,%s,%c,%s,%c,%05.1f,%05.1f,010706,,",
                hh, mm, ss, lat, lat_h, lon, lon_h, fix.speed_knots,
                fix.course_deg);
  burst += WithChecksum(body);

  // GSV satellite filler until the burst reaches the observed 340 bytes.
  int msg = 1;
  while (burst.size() < kNmeaBurstBytes) {
    std::snprintf(body, sizeof body,
                  "GPGSV,3,%d,08,01,40,083,46,02,17,308,41,12,07,344,39,14,"
                  "22,228,45",
                  msg++);
    std::string sentence = WithChecksum(body);
    if (burst.size() + sentence.size() > kNmeaBurstBytes) {
      sentence.resize(kNmeaBurstBytes - burst.size());
    }
    burst += sentence;
  }
  return burst;
}

Result<GpsFix> ParseNmeaBurst(const std::string& burst) {
  // Find the RMC sentence; it carries position, speed and course.
  const std::size_t start = burst.find("$GPRMC");
  if (start == std::string::npos) {
    return InvalidArgument("no GPRMC sentence in burst");
  }
  const std::size_t star = burst.find('*', start);
  const std::size_t end = burst.find("\r\n", start);
  if (star == std::string::npos || end == std::string::npos || star > end) {
    return InvalidArgument("malformed GPRMC sentence");
  }
  const std::string nmea_body = burst.substr(start + 1, star - start - 1);
  const unsigned want =
      static_cast<unsigned>(std::strtoul(burst.substr(star + 1, 2).c_str(),
                                         nullptr, 16));
  if (NmeaChecksum(nmea_body) != want) {
    return InvalidArgument("GPRMC checksum mismatch");
  }
  const auto fields = SplitFields(nmea_body);
  // GPRMC,time,A,lat,N,lon,E,speed,course,date,,
  if (fields.size() < 10 || fields[2] != "A") {
    return Unavailable("GPRMC reports no valid fix");
  }
  GpsFix fix;
  fix.position.lat = ParseNmeaCoord(fields[3], fields[4].empty() ? 'N'
                                                  : fields[4][0], false);
  fix.position.lon = ParseNmeaCoord(fields[5], fields[6].empty() ? 'E'
                                                  : fields[6][0], true);
  fix.speed_knots = std::strtod(fields[7].c_str(), nullptr);
  fix.course_deg = std::strtod(fields[8].c_str(), nullptr);
  const double t = std::strtod(fields[1].c_str(), nullptr);
  const int hh = static_cast<int>(t) / 10000;
  const int mm = (static_cast<int>(t) / 100) % 100;
  const double ss = std::fmod(t, 100.0);
  fix.time = kSimEpoch + FromSeconds(hh * 3600.0 + mm * 60.0 + ss);
  return fix;
}

GpsDevice::GpsDevice(sim::Simulation& sim, net::BluetoothBus& bus,
                     net::NodeId node, std::string name, GpsConfig config)
    : sim_(sim),
      bus_(bus),
      node_(node),
      name_(std::move(name)),
      config_(config),
      // The receiver's own electronics: an un-metered device model whose
      // only job is powering a BT radio in the simulation.
      device_model_(sim, phone::Nokia6630(), name_ + "-dev"),
      rng_(sim.rng().Fork()) {
  bt_ = std::make_unique<net::BluetoothController>(sim_, bus_, device_model_,
                                                   node_);
}

void GpsDevice::PowerOn() {
  if (powered_) return;
  powered_ = true;
  bt_->SetFailed(false);
  bt_->SetEnabled(true);
  bt_->RegisterService({kGpsServiceName, {}}, [](Result<net::ServiceHandle>) {
  });
  ticker_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.fix_interval, [this] { Tick(); });
  CLOG_INFO(kModule, "%s powered on", name_.c_str());
}

void GpsDevice::PowerOff() {
  if (!powered_) return;
  powered_ = false;
  ticker_.reset();
  bt_->SetFailed(true);  // vanish from the air (Fig. 5)
  CLOG_INFO(kModule, "%s powered off", name_.c_str());
}

void GpsDevice::Tick() {
  const auto pos = bus_.medium().GetPosition(node_);
  if (!pos.ok()) return;

  // Derive speed/course from consecutive positions.
  GpsFix fix;
  if (has_last_pos_) {
    const double dt = ToSeconds(sim_.Now() - last_pos_time_);
    if (dt > 0) {
      const double dx = pos->x - last_pos_.x;
      const double dy = pos->y - last_pos_.y;
      const double mps = std::hypot(dx, dy) / dt;
      fix.speed_knots = mps * 1.9438;
      fix.course_deg = std::fmod(std::atan2(dx, dy) * 180.0 / 3.14159265 +
                                     360.0,
                                 360.0);
    }
  }
  last_pos_ = *pos;
  last_pos_time_ = sim_.Now();
  has_last_pos_ = true;

  // Horizontal fix error.
  net::Position noisy = *pos;
  noisy.x += rng_.Normal(0.0, config_.fix_noise_m);
  noisy.y += rng_.Normal(0.0, config_.fix_noise_m);
  fix.position = ToGeo(noisy);
  fix.time = sim_.Now();

  const std::string burst = BuildNmeaBurst(fix);
  std::vector<std::byte> payload(burst.size());
  std::memcpy(payload.data(), burst.data(), burst.size());

  // Spontaneous drop injection (the field trials' ~1 disconnection/hour).
  if (config_.spontaneous_drop_rate > 0.0 &&
      rng_.Bernoulli(config_.spontaneous_drop_rate)) {
    CLOG_WARN(kModule, "%s spontaneous BT drop", name_.c_str());
    bt_->SetFailed(true);
    bt_->SetFailed(false);
    bt_->SetEnabled(true);
    return;
  }

  // Stream to every connected central.
  for (const net::BtLinkId link : bt_->AliveLinks()) {
    bt_->Send(link, payload);
    ++fixes_sent_;
  }
}

}  // namespace contory::sensors
