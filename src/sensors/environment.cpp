#include "sensors/environment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "core/model/vocabulary.hpp"

namespace contory::sensors {

EnvironmentField::EnvironmentField(sim::Simulation& sim)
    : sim_(sim), noise_(sim.rng().Fork()) {
  using std::chrono::hours;
  fields_[vocab::kTemperature] =
      {18.0, 0.4, -0.2, 4.0, hours{24}, 0.2, -40.0, 60.0};
  fields_[vocab::kWind] = {6.0, 0.3, 0.1, 3.0, hours{6}, 0.5, 0.0, 60.0};
  fields_[vocab::kHumidity] =
      {65.0, -0.5, 0.2, 10.0, hours{24}, 1.0, 0.0, 100.0};
  fields_[vocab::kPressure] =
      {1013.0, 0.05, 0.05, 6.0, hours{48}, 0.3, 900.0, 1100.0};
  fields_[vocab::kLight] =
      {20'000.0, 0.0, 0.0, 19'500.0, hours{24}, 500.0, 0.0, 120'000.0};
  fields_[vocab::kNoise] = {45.0, 1.0, 1.0, 10.0, hours{24}, 2.0, 0.0, 130.0};
}

void EnvironmentField::Configure(const std::string& type,
                                 FieldConfig config) {
  fields_[type] = config;
}

bool EnvironmentField::Has(const std::string& type) const {
  return fields_.contains(type);
}

Result<double> EnvironmentField::TrueValue(const std::string& type,
                                           net::Position p,
                                           SimTime t) const {
  const auto it = fields_.find(type);
  if (it == fields_.end()) {
    return NotFound("no environmental field for '" + type + "'");
  }
  const FieldConfig& f = it->second;
  const double phase = f.drift_period.count() > 0
                           ? 2.0 * std::numbers::pi *
                                 static_cast<double>(
                                     t.time_since_epoch().count()) /
                                 static_cast<double>(f.drift_period.count())
                           : 0.0;
  const double v = f.base + f.gradient_x * p.x / 1e3 +
                   f.gradient_y * p.y / 1e3 +
                   f.drift_amplitude * std::sin(phase);
  return std::clamp(v, f.min, f.max);
}

Result<double> EnvironmentField::Sample(const std::string& type,
                                        net::Position p) {
  const auto truth = TrueValue(type, p, sim_.Now());
  if (!truth.ok()) return truth;
  const auto it = fields_.find(type);
  const double noisy = noise_.Normal(*truth, it->second.noise_sigma);
  return std::clamp(noisy, it->second.min, it->second.max);
}

EnvironmentSensor::EnvironmentSensor(sim::Simulation& sim,
                                     EnvironmentField& field,
                                     net::Medium& medium, net::NodeId node,
                                     std::string type, std::string address)
    : sim_(sim),
      field_(field),
      medium_(medium),
      node_(node),
      type_(std::move(type)),
      address_(std::move(address)) {
  // A sensor's error bound defaults to ~2 sigma of its noise.
  if (field_.Has(type_)) {
    metadata_.accuracy = 0.2;
  }
}

Result<CxtItem> EnvironmentSensor::Sample() {
  if (failed_) return Unavailable("sensor '" + address_ + "' failed");
  const auto pos = medium_.GetPosition(node_);
  if (!pos.ok()) return pos.status();
  const auto value = field_.Sample(type_, *pos);
  if (!value.ok()) return value.status();
  CxtItem item;
  item.id = sim_.ids().NextId("item");
  item.type = type_;
  item.value = nan_burst_ ? std::numeric_limits<double>::quiet_NaN() : *value;
  item.timestamp = sim_.Now();
  item.source = {SourceKind::kIntSensor, address_};
  item.metadata = metadata_;
  return item;
}

}  // namespace contory::sensors
