// Bluetooth GPS receiver (the testbed's InsSirf III).
//
// The device registers an NMEA service in its SDDB; once a phone connects,
// it streams one NMEA burst per second over the link. Bursts are the
// paper's 340 bytes ("GPS-NMEA data are 340 bytes big") — real GGA + RMC
// sentences with checksums, padded with GSV filler to the observed size —
// which is what makes intSensor's periodic energy higher than the ad hoc
// case once BT segmentation applies (Table 2).
//
// PowerOff() reproduces the Fig. 5 failure: the device vanishes from the
// air; the phone's stack notices via its link supervision timeout, and the
// device stops being discoverable until PowerOn().
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "core/model/cxt_value.hpp"
#include "net/bluetooth.hpp"
#include "net/medium.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::sensors {

/// A decoded GPS fix, as the phone-side parser produces it.
struct GpsFix {
  GeoPoint position;
  double speed_knots = 0.0;
  double course_deg = 0.0;
  SimTime time{};
};

/// Builds one NMEA burst (GGA + RMC + GSV filler) padded to 340 bytes.
[[nodiscard]] std::string BuildNmeaBurst(const GpsFix& fix);

/// Parses a burst produced by BuildNmeaBurst (validates checksums).
[[nodiscard]] Result<GpsFix> ParseNmeaBurst(const std::string& burst);

/// NMEA sentence checksum ("*HH" suffix payload).
[[nodiscard]] unsigned NmeaChecksum(std::string_view sentence_body) noexcept;

struct GpsConfig {
  SimDuration fix_interval = std::chrono::seconds{1};
  /// Horizontal fix error applied to each fix (seeded).
  double fix_noise_m = 5.0;
  /// The paper's field logs showed roughly one spontaneous BT
  /// disconnection per hour; rate per fix (0 disables).
  double spontaneous_drop_rate = 0.0;
};

/// The service name the receiver advertises.
inline constexpr const char* kGpsServiceName = "serial.nmea.gps";

class GpsDevice {
 public:
  /// `node` must already be registered in the medium; the device's fixes
  /// report that node's (moving) position. The device carries its own
  /// tiny device model for its BT radio (its battery is not the one the
  /// paper meters).
  GpsDevice(sim::Simulation& sim, net::BluetoothBus& bus, net::NodeId node,
            std::string name, GpsConfig config = {});

  /// Powers the receiver: BT discoverable, NMEA service registered,
  /// streaming to any connected link each fix interval.
  void PowerOn();
  /// The Fig. 5 failure switch.
  void PowerOff();
  [[nodiscard]] bool powered() const noexcept { return powered_; }

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] net::BluetoothController& bt() noexcept { return *bt_; }

  /// Number of NMEA bursts streamed so far (tests/diagnostics).
  [[nodiscard]] std::uint64_t fixes_sent() const noexcept {
    return fixes_sent_;
  }

 private:
  void Tick();

  sim::Simulation& sim_;
  net::BluetoothBus& bus_;
  net::NodeId node_;
  std::string name_;
  GpsConfig config_;
  phone::SmartPhone device_model_;
  std::unique_ptr<net::BluetoothController> bt_;
  std::unique_ptr<sim::PeriodicTask> ticker_;
  Rng rng_;
  bool powered_ = false;
  net::Position last_pos_{};
  SimTime last_pos_time_{};
  bool has_last_pos_ = false;
  std::uint64_t fixes_sent_ = 0;
};

}  // namespace contory::sensors
