// Synthetic environmental fields.
//
// The paper's field trials sensed real weather (temperature, wind,
// humidity, pressure) around sailing boats; we substitute smooth synthetic
// fields over space and time plus seeded sensor noise, so that (a) nearby
// nodes report correlated values — which is what makes sharing context in
// an ad hoc network meaningful — and (b) every value is reproducible.
//
// Each field is: base + spatial gradient + diurnal-ish sinusoidal drift +
// per-sample Gaussian sensor noise.
#pragma once

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/model/cxt_item.hpp"
#include "net/medium.hpp"
#include "sensors/sensor.hpp"
#include "sim/simulation.hpp"

namespace contory::sensors {

struct FieldConfig {
  double base = 0.0;            // value at the anchor at t=0
  double gradient_x = 0.0;      // per km east
  double gradient_y = 0.0;      // per km north
  double drift_amplitude = 0.0; // sinusoidal swing over drift_period
  SimDuration drift_period = std::chrono::hours{24};
  double noise_sigma = 0.0;     // per-sample sensor noise
  double min = -1e300;          // physical clamps
  double max = 1e300;
};

class EnvironmentField {
 public:
  /// Builds the default field set (temperature, wind, humidity, pressure,
  /// light, noise) with plausible Baltic-summer values.
  explicit EnvironmentField(sim::Simulation& sim);

  /// Overrides a field's configuration (tests, scenario design).
  void Configure(const std::string& type, FieldConfig config);
  [[nodiscard]] bool Has(const std::string& type) const;

  /// The noiseless field value at a position and time.
  [[nodiscard]] Result<double> TrueValue(const std::string& type,
                                         net::Position p, SimTime t) const;

  /// One noisy sensor sample at a position, now.
  [[nodiscard]] Result<double> Sample(const std::string& type,
                                      net::Position p);

 private:
  sim::Simulation& sim_;
  mutable Rng noise_;
  std::unordered_map<std::string, FieldConfig> fields_;
};

/// A CxtSource reading one field at a (possibly moving) node's position.
class EnvironmentSensor final : public CxtSource {
 public:
  EnvironmentSensor(sim::Simulation& sim, EnvironmentField& field,
                    net::Medium& medium, net::NodeId node, std::string type,
                    std::string address);

  [[nodiscard]] const std::string& type() const override { return type_; }
  [[nodiscard]] const std::string& address() const override {
    return address_;
  }
  [[nodiscard]] Result<CxtItem> Sample() override;

  /// Failure injection: Sample() returns kUnavailable.
  void SetFailed(bool failed) noexcept { failed_ = failed; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Fault injection: the sensor keeps "working" but every sample carries
  /// a NaN value — the half-broken-hardware case that, unlike a clean
  /// failure, flows through delivery pipelines until a predicate or a
  /// consumer chokes on it.
  void SetNanBurst(bool active) noexcept { nan_burst_ = active; }
  [[nodiscard]] bool nan_burst() const noexcept { return nan_burst_; }

  /// Metadata stamped on produced items (accuracy defaults to the field's
  /// noise sigma).
  [[nodiscard]] Metadata& metadata() noexcept { return metadata_; }

 private:
  sim::Simulation& sim_;
  EnvironmentField& field_;
  net::Medium& medium_;
  net::NodeId node_;
  std::string type_;
  std::string address_;
  Metadata metadata_;
  bool failed_ = false;
  bool nan_burst_ = false;
};

}  // namespace contory::sensors
