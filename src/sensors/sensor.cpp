#include "sensors/sensor.hpp"

#include <cmath>
#include <numbers>

namespace contory::sensors {
namespace {
constexpr double kEarthRadius = 6'371'000.0;
constexpr double kDegToRad = std::numbers::pi / 180.0;
}  // namespace

GeoPoint ToGeo(net::Position p) noexcept {
  const double dlat = p.y / kEarthRadius / kDegToRad;
  const double dlon =
      p.x / (kEarthRadius * std::cos(kMapAnchor.lat * kDegToRad)) / kDegToRad;
  return GeoPoint{kMapAnchor.lat + dlat, kMapAnchor.lon + dlon};
}

net::Position FromGeo(const GeoPoint& g) noexcept {
  const double y = (g.lat - kMapAnchor.lat) * kDegToRad * kEarthRadius;
  const double x = (g.lon - kMapAnchor.lon) * kDegToRad * kEarthRadius *
                   std::cos(kMapAnchor.lat * kDegToRad);
  return net::Position{x, y};
}

}  // namespace contory::sensors
