// Sensor framework: CxtSources and coordinate helpers.
//
// "Context data can be sensed from a large variety of CxtSources such as
// external sensors (e.g., a GPS device), integrated monitors (e.g., a
// power management framework), external servers (e.g., a weather
// station)" (Sec. 4.3). A CxtSource produces context items of one type on
// demand; concrete sources are the environment-field sensors, the BT-GPS
// receiver, and the phone's integrated monitors.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "core/model/cxt_item.hpp"
#include "net/medium.hpp"

namespace contory::sensors {

/// The simulation's local tangent plane is anchored at the Helsinki
/// sailing area the DYNAMOS field trials used; medium x/y meters map to
/// lat/lon around this anchor.
inline constexpr GeoPoint kMapAnchor{60.1500, 24.9000};

/// Converts a simulation position (meters east/north of the anchor) to a
/// geographic coordinate.
[[nodiscard]] GeoPoint ToGeo(net::Position p) noexcept;
/// Inverse of ToGeo.
[[nodiscard]] net::Position FromGeo(const GeoPoint& g) noexcept;

/// A source of context items of a single type.
class CxtSource {
 public:
  virtual ~CxtSource() = default;

  /// The context type this source produces (vocabulary name).
  [[nodiscard]] virtual const std::string& type() const = 0;

  /// Identifier used in produced items' SourceId.
  [[nodiscard]] virtual const std::string& address() const = 0;

  /// Samples the current value. kUnavailable when the sensor is down.
  [[nodiscard]] virtual Result<CxtItem> Sample() = 0;
};

}  // namespace contory::sensors
