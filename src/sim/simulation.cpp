#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

#include "common/logging.hpp"

namespace contory::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

TimerId Simulation::ScheduleAt(SimTime t, Callback cb, std::string label) {
  if (!cb) throw std::invalid_argument("ScheduleAt: null callback");
  if (t < now_) t = now_;  // the past is unreachable; fire "now"
  const TimerId id = next_timer_++;
  queue_.push(Event{t, next_seq_++, id, std::move(cb), std::move(label)});
  return id;
}

TimerId Simulation::ScheduleAfter(SimDuration delay, Callback cb,
                                  std::string label) {
  if (delay < SimDuration::zero()) delay = SimDuration::zero();
  return ScheduleAt(now_ + delay, std::move(cb), std::move(label));
}

void Simulation::Cancel(TimerId id) {
  if (id == kInvalidTimer || id >= next_timer_) return;
  cancelled_.insert(id);
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast, standard
    // practice since pop() destroys the element anyway.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // tombstone
    }
    now_ = ev.at;
    ++dispatched_;
    CLOG_TRACE("sim", "dispatch #%llu %s",
               static_cast<unsigned long long>(dispatched_),
               ev.label.c_str());
    ev.cb();
    return true;
  }
  return false;
}

void Simulation::Run(std::size_t max_events) {
  std::size_t n = 0;
  while (Step()) {
    if (++n >= max_events) {
      throw std::runtime_error(
          "Simulation::Run: event budget exhausted (runaway schedule?)");
    }
  }
}

void Simulation::RunUntil(SimTime t) {
  while (!queue_.empty()) {
    const Event& head = queue_.top();
    if (cancelled_.contains(head.id)) {
      cancelled_.erase(head.id);
      queue_.pop();
      continue;
    }
    if (head.at > t) break;
    Step();
  }
  if (t > now_) now_ = t;
}

void Simulation::RunFor(SimDuration d) { RunUntil(now_ + d); }

PeriodicTask::PeriodicTask(Simulation& sim, SimDuration period,
                           std::function<void()> on_tick)
    : PeriodicTask(sim, period, period, std::move(on_tick)) {}

PeriodicTask::PeriodicTask(Simulation& sim, SimDuration initial_delay,
                           SimDuration period, std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  if (!on_tick_) throw std::invalid_argument("PeriodicTask: null callback");
  if (period_ <= SimDuration::zero()) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
  Arm(initial_delay);
}

PeriodicTask::~PeriodicTask() {
  *alive_ = false;
  Stop();
}

void PeriodicTask::Stop() {
  running_ = false;
  if (pending_ != kInvalidTimer) {
    sim_.Cancel(pending_);
    pending_ = kInvalidTimer;
  }
}

void PeriodicTask::Arm(SimDuration delay) {
  pending_ = sim_.ScheduleAfter(delay, [this, alive = alive_] {
    pending_ = kInvalidTimer;
    if (!running_) return;
    // Run a copy: if the tick destroys this task, the executing closure
    // (and its captures) must outlive the destruction.
    auto tick = on_tick_;
    tick();
    // The tick may have destroyed this task; only then is `this` dead.
    if (!*alive) return;
    // Re-arm after the tick so SetPeriod() from the callback takes effect
    // immediately; a Stop() from the callback is honoured here.
    if (running_) Arm(period_);
  });
}

}  // namespace contory::sim
