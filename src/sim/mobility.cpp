#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "obs/observability.hpp"

namespace contory::sim {
namespace {

/// Straight-line step of at most `step_m` from `from` toward `to`.
/// Returns true when the target was reached this step.
bool StepToward(net::Position& from, net::Position to, double step_m) {
  const double d = net::Distance(from, to);
  if (d <= step_m) {
    from = to;
    return true;
  }
  const double f = step_m / d;
  from.x += (to.x - from.x) * f;
  from.y += (to.y - from.y) * f;
  return false;
}

}  // namespace

net::Position RandomPointIn(const MobilityArea& area, Rng& rng) {
  return net::Position{rng.Uniform(0.0, area.width_m),
                       rng.Uniform(0.0, area.height_m)};
}

MobilityModel::MobilityModel(Simulation& sim, net::Medium& medium,
                             SimDuration tick, std::uint64_t seed)
    : sim_(sim), medium_(medium), tick_(tick), rng_(seed) {}

MobilityModel::~MobilityModel() = default;

void MobilityModel::Manage(net::NodeId id) {
  const auto pos = medium_.GetPosition(id);
  if (!pos.ok()) return;  // unregistered nodes cannot move
  nodes_.push_back(Managed{id, *pos});
  OnManaged(nodes_.size() - 1);
}

void MobilityModel::Start() {
  if (task_ != nullptr) return;
  task_ = std::make_unique<PeriodicTask>(sim_, tick_, [this] { Tick(); });
}

void MobilityModel::Stop() { task_.reset(); }

void MobilityModel::Tick() {
  ++ticks_;
  Advance(ToSeconds(tick_));
}

void MobilityModel::CommitPosition(std::size_t index, net::Position pos) {
  Managed& m = nodes_[index];
  m.pos = pos;
  (void)medium_.SetPosition(m.id, pos);
  ++position_updates_;
  COBS({
    static obs::Counter& updates = obs::Observability::metrics().GetCounter(
        "mobility_position_updates_total");
    updates.Inc();
  });
}

// --- Random waypoint ----------------------------------------------------

RandomWaypoint::RandomWaypoint(Simulation& sim, net::Medium& medium,
                               RandomWaypointConfig config,
                               std::uint64_t seed)
    : MobilityModel(sim, medium, config.tick, seed), config_(config) {}

void RandomWaypoint::PickWaypoint(State& state, net::Position from) {
  state.target = RandomPointIn(config_.area, rng());
  state.speed_mps = rng().Uniform(config_.speed_min_mps,
                                  config_.speed_max_mps);
  (void)from;
}

void RandomWaypoint::OnManaged(std::size_t index) {
  State state;
  PickWaypoint(state, nodes()[index].pos);
  states_.push_back(state);
}

void RandomWaypoint::Advance(double dt_s) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    if (st.pause_left_s > 0.0) {
      st.pause_left_s -= dt_s;
      continue;
    }
    net::Position pos = nodes()[i].pos;
    const bool arrived = StepToward(pos, st.target, st.speed_mps * dt_s);
    CommitPosition(i, pos);
    if (arrived) {
      st.pause_left_s = rng().Uniform(ToSeconds(config_.pause_min),
                                      ToSeconds(config_.pause_max));
      PickWaypoint(st, pos);
    }
  }
}

// --- Commuter flows -----------------------------------------------------

CommuterFlow::CommuterFlow(Simulation& sim, net::Medium& medium,
                           CommuterFlowConfig config, std::uint64_t seed)
    : MobilityModel(sim, medium, config.tick, seed), config_(config) {
  hubs_.reserve(config_.hubs);
  for (std::size_t i = 0; i < config_.hubs; ++i) {
    hubs_.push_back(RandomPointIn(config_.area, rng()));
  }
}

double CommuterFlow::DayPhase(SimTime t) const noexcept {
  const double day_s = ToSeconds(config_.day);
  const double now_s = ToSeconds(t - kSimEpoch);
  return std::fmod(now_s, day_s) / day_s;
}

void CommuterFlow::OnManaged(std::size_t index) {
  State state;
  state.home = nodes()[index].pos;  // where the scenario scattered them
  const net::Position hub =
      hubs_.empty() ? state.home
                    : hubs_[static_cast<std::size_t>(rng().UniformInt(
                          0, static_cast<std::int64_t>(hubs_.size()) - 1))];
  state.work = net::Position{
      std::clamp(hub.x + rng().Normal(0.0, config_.hub_radius_m), 0.0,
                 config_.area.width_m),
      std::clamp(hub.y + rng().Normal(0.0, config_.hub_radius_m), 0.0,
                 config_.area.height_m)};
  state.departure_offset = rng().Uniform(0.0, 0.2);
  states_.push_back(state);
}

void CommuterFlow::Advance(double dt_s) {
  const double phase = DayPhase(sim().Now());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const State& st = states_[i];
    // First half of the day: head to work once your (jittered) departure
    // phase has passed; second half: head home the same way.
    const bool to_work = phase < 0.5;
    const double half_phase = to_work ? phase * 2.0 : (phase - 0.5) * 2.0;
    if (half_phase < st.departure_offset) continue;  // not departed yet
    const net::Position target = to_work ? st.work : st.home;
    net::Position pos = nodes()[i].pos;
    if (pos.x == target.x && pos.y == target.y) continue;  // arrived
    StepToward(pos, target, config_.speed_mps * dt_s);
    CommitPosition(i, pos);
  }
}

}  // namespace contory::sim
