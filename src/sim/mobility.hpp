// Mobility subsystem: deterministic movement models over the Medium.
//
// The paper's field trial moved a handful of sailing boats by hand-fed
// GPS tracks; city-scale scenarios need thousands of phones moving under
// synthetic models instead. Each model manages a set of registered
// Medium nodes and batch-updates their positions from one PeriodicTask
// tick on the simulation event loop, so runs stay exactly reproducible:
//
//   Determinism rules (see docs/ARCHITECTURE.md "Medium & mobility"):
//   1. every stochastic draw comes from the model's own seeded Rng;
//   2. draws happen only at Manage() time and inside Advance(), always
//      iterating managed nodes in Manage() order;
//   3. position writes go through Medium::SetPosition on the sim thread,
//      one batch per tick — the spatial grid migrates cells in place.
//
// Models: RandomWaypoint (pick a waypoint, walk to it, pause, repeat —
// the MANET literature's default) and CommuterFlow (homes scattered over
// the area, workplaces clustered around a few hubs, everyone commuting
// on a shared day cycle — rush-hour density waves for SM-FINDER stress).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/medium.hpp"
#include "sim/simulation.hpp"

namespace contory::sim {

/// Axis-aligned world rectangle [0, width] x [0, height], meters.
struct MobilityArea {
  double width_m = 1000.0;
  double height_m = 1000.0;
};

/// Uniform random point in `area` (used for initial scatter and
/// waypoints; one draw for x, one for y — stream-stable).
[[nodiscard]] net::Position RandomPointIn(const MobilityArea& area, Rng& rng);

class MobilityModel {
 public:
  MobilityModel(Simulation& sim, net::Medium& medium, SimDuration tick,
                std::uint64_t seed);
  virtual ~MobilityModel();

  MobilityModel(const MobilityModel&) = delete;
  MobilityModel& operator=(const MobilityModel&) = delete;

  /// Takes over movement of `id`, starting from its current Medium
  /// position. Nodes advance in Manage() order every tick.
  void Manage(net::NodeId id);

  /// Arms the periodic tick (idempotent). Models start stopped so a
  /// scenario can bulk-Manage its fleet first.
  void Start();
  void Stop();
  [[nodiscard]] bool running() const noexcept { return task_ != nullptr; }

  [[nodiscard]] SimDuration tick() const noexcept { return tick_; }
  [[nodiscard]] std::size_t managed_count() const noexcept {
    return nodes_.size();
  }
  /// Total SetPosition writes issued (the grid-migration traffic).
  [[nodiscard]] std::uint64_t position_updates() const noexcept {
    return position_updates_;
  }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

 protected:
  struct Managed {
    net::NodeId id;
    net::Position pos;  // model-side copy; Medium holds the truth too
  };

  /// Moves every managed node forward by `dt_s` seconds of model time.
  virtual void Advance(double dt_s) = 0;
  /// Called after a node is appended to nodes_ (draw per-node state).
  virtual void OnManaged(std::size_t index) = 0;

  /// Writes a node's new position into the Medium (incremental grid
  /// cell migration) and the model-side copy.
  void CommitPosition(std::size_t index, net::Position pos);

  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Medium& medium() noexcept { return medium_; }
  [[nodiscard]] std::vector<Managed>& nodes() noexcept { return nodes_; }

 private:
  void Tick();

  Simulation& sim_;
  net::Medium& medium_;
  SimDuration tick_;
  Rng rng_;
  std::vector<Managed> nodes_;
  std::unique_ptr<PeriodicTask> task_;
  std::uint64_t position_updates_ = 0;
  std::uint64_t ticks_ = 0;
};

// --- Random waypoint ----------------------------------------------------

struct RandomWaypointConfig {
  MobilityArea area;
  double speed_min_mps = 0.5;  // pedestrian stroll
  double speed_max_mps = 2.0;  // brisk walk
  SimDuration pause_min = SimDuration::zero();
  SimDuration pause_max = std::chrono::seconds{30};
  SimDuration tick = std::chrono::seconds{1};
};

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(Simulation& sim, net::Medium& medium,
                 RandomWaypointConfig config, std::uint64_t seed);

 protected:
  void Advance(double dt_s) override;
  void OnManaged(std::size_t index) override;

 private:
  struct State {
    net::Position target;
    double speed_mps = 1.0;
    double pause_left_s = 0.0;
  };
  void PickWaypoint(State& state, net::Position from);

  RandomWaypointConfig config_;
  std::vector<State> states_;
};

// --- Commuter flows -----------------------------------------------------

struct CommuterFlowConfig {
  MobilityArea area;
  /// Workplaces cluster around this many hub points (drawn once from the
  /// model seed), giving the morning rush its density spikes.
  std::size_t hubs = 4;
  double hub_radius_m = 150.0;
  double speed_mps = 8.0;  // vehicular commute
  /// One simulated day cycle: home -> work -> home per `day`.
  SimDuration day = std::chrono::minutes{10};
  SimDuration tick = std::chrono::seconds{1};
};

class CommuterFlow final : public MobilityModel {
 public:
  CommuterFlow(Simulation& sim, net::Medium& medium,
               CommuterFlowConfig config, std::uint64_t seed);

  /// Phase in [0,1) of the shared day cycle at `t`; first half heads to
  /// work, second half heads home.
  [[nodiscard]] double DayPhase(SimTime t) const noexcept;

 protected:
  void Advance(double dt_s) override;
  void OnManaged(std::size_t index) override;

 private:
  struct State {
    net::Position home;
    net::Position work;
    /// Per-node departure jitter in [0, 0.2) of a half day, so the fleet
    /// does not move in lockstep.
    double departure_offset = 0.0;
  };

  CommuterFlowConfig config_;
  std::vector<net::Position> hubs_;
  std::vector<State> states_;
};

}  // namespace contory::sim
