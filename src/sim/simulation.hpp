// Deterministic discrete-event simulation core.
//
// Everything in the reproduction — radios, sensors, the Contory middleware
// instances themselves — runs as callbacks scheduled on one Simulation.
// Virtual time advances only when the event at the head of the queue is
// dispatched, so runs are exactly reproducible: same seed, same schedule,
// same results.
//
// Ordering guarantee: events fire in (time, insertion-order) order, i.e.
// two events scheduled for the same instant fire in the order they were
// scheduled. This FIFO tiebreak is what makes protocol handshakes stable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace contory::sim {

/// Handle for a scheduled event; used to cancel it before it fires.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Simulation {
 public:
  using Callback = std::function<void()>;

  /// `seed` drives the simulation-owned Rng; every stochastic model forks
  /// its own child stream from it.
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime Now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t` (>= Now(), else clamped to Now()).
  /// `label` is for debugging/tracing only.
  TimerId ScheduleAt(SimTime t, Callback cb, std::string label = {});

  /// Schedules `cb` after a relative delay (negative clamps to zero).
  TimerId ScheduleAfter(SimDuration delay, Callback cb,
                        std::string label = {});

  /// Cancels a pending event. Cancelling an already-fired or invalid id is
  /// a harmless no-op (common when a timeout races its own completion).
  void Cancel(TimerId id);

  /// Dispatches the next event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains or `max_events` is hit (runaway guard).
  void Run(std::size_t max_events = 50'000'000);

  /// Runs events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t);

  /// RunUntil(Now() + d).
  void RunFor(SimDuration d);

  /// Number of events dispatched so far.
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept {
    return dispatched_;
  }
  /// Number of events currently pending (including cancelled tombstones).
  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() - cancelled_.size();
  }

  /// Simulation-wide deterministic RNG; Fork() children per subsystem.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  /// Simulation-wide id namespace ("q-1", "item-42", ...).
  [[nodiscard]] IdGenerator& ids() noexcept { return ids_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // insertion order: FIFO tiebreak at equal times
    TimerId id;
    Callback cb;
    std::string label;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = kSimEpoch;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_ = 1;
  std::uint64_t dispatched_ = 0;
  Rng rng_;
  IdGenerator ids_;
};

/// A repeating timer with RAII cancellation. Fires first after `period`
/// (or `initial_delay` if given), then every `period` until stopped or
/// destroyed. A callback may safely Stop() its own timer, change the
/// period (SetPeriod takes effect from the following tick), or even
/// destroy the PeriodicTask itself (common when a tick discovers its
/// owner has expired).
class PeriodicTask {
 public:
  PeriodicTask(Simulation& sim, SimDuration period,
               std::function<void()> on_tick);
  PeriodicTask(Simulation& sim, SimDuration initial_delay, SimDuration period,
               std::function<void()> on_tick);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Stop();
  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Changes the period; takes effect from the next tick.
  void SetPeriod(SimDuration period) noexcept { period_ = period; }
  [[nodiscard]] SimDuration period() const noexcept { return period_; }

 private:
  void Arm(SimDuration delay);

  Simulation& sim_;
  SimDuration period_;
  std::function<void()> on_tick_;
  TimerId pending_ = kInvalidTimer;
  bool running_ = true;
  /// Outlives `this` inside tick callbacks; flipped false on destruction
  /// so a callback that deletes the task does not re-arm a dead object.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace contory::sim
