// Multimeter emulation (Fluke 189 in the paper's testbed, Fig. 3).
//
// The paper's meter reads current roughly every 500 ms through a 1.8 mV/mA
// shunt, with 0.75% accuracy and 0.15% precision; power is derived from a
// ~4.0965 V battery voltage via Ohm's law. We reproduce the methodology:
// the meter *samples* the phone's instantaneous power on a 500 ms period
// (so sub-sample peaks can be missed, exactly as on the real bench) and
// optionally applies the meter's accuracy error as seeded noise.
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "energy/energy_model.hpp"
#include "sim/simulation.hpp"

namespace contory::energy {

struct PowerMeterConfig {
  SimDuration sample_period = std::chrono::milliseconds{500};
  /// Multiplicative reading error; the Fluke 189 is 0.75% accurate.
  double accuracy_fraction = 0.0075;
  /// When false, readings are exact (useful for deterministic tests).
  bool apply_noise = true;
};

class PowerMeter {
 public:
  PowerMeter(sim::Simulation& sim, const EnergyModel& model,
             PowerMeterConfig config = {});

  /// Begins sampling; the first reading is taken one period from now.
  void Start();
  void Stop();
  [[nodiscard]] bool running() const noexcept { return task_ != nullptr; }

  /// The recorded power trace in mW (what Figs. 4 and 5 plot).
  [[nodiscard]] const TimeSeries& trace() const noexcept { return trace_; }

  /// Energy estimate from the sampled trace (trapezoidal), in Joules.
  /// Differs slightly from EnergyModel::TotalEnergyJoules() by design —
  /// that is the quantization the paper's measurements also have.
  [[nodiscard]] double SampledEnergyJoules() const noexcept {
    return trace_.Integrate() / 1e3;
  }

  /// Clears the recorded trace (keeps sampling if running).
  void Reset() { trace_ = TimeSeries{}; }

 private:
  void TakeSample();

  sim::Simulation& sim_;
  const EnergyModel& model_;
  PowerMeterConfig config_;
  Rng noise_;
  TimeSeries trace_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace contory::energy
