#include "energy/energy_model.hpp"

namespace contory::energy {

void EnergyModel::Accrue() const {
  const SimTime now = sim_.Now();
  if (now > last_accrual_) {
    const double watts = CurrentPowerMilliwatts() / 1e3;
    accrued_joules_ += watts * ToSeconds(now - last_accrual_);
    last_accrual_ = now;
  }
}

void EnergyModel::SetComponentPower(const std::string& name,
                                    double milliwatts) {
  Accrue();
  if (milliwatts == 0.0) {
    components_.erase(name);
  } else {
    components_[name] = milliwatts;
  }
  if (listener_) listener_(sim_.Now(), CurrentPowerMilliwatts());
}

void EnergyModel::AddEnergyJoules(double joules) {
  Accrue();
  accrued_joules_ += joules;
}

double EnergyModel::CurrentPowerMilliwatts() const noexcept {
  double total = 0.0;
  for (const auto& [name, mw] : components_) total += mw;
  return total;
}

double EnergyModel::ComponentPowerMilliwatts(
    const std::string& name) const noexcept {
  const auto it = components_.find(name);
  return it == components_.end() ? 0.0 : it->second;
}

double EnergyModel::TotalEnergyJoules() const {
  Accrue();
  return accrued_joules_;
}

EnergyMarker EnergyModel::Mark() const {
  return EnergyMarker{TotalEnergyJoules(), sim_.Now()};
}

double EnergyModel::JoulesSince(const EnergyMarker& marker) const {
  return TotalEnergyJoules() - marker.joules_at_mark;
}

}  // namespace contory::energy
