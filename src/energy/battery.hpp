// Battery and measurement-circuit model.
//
// Reproduces two effects the paper documents:
//  1. Voltage sag: "under high load the battery deviated less than 2% from
//     4.0965 V for the first hour" — voltage droops slightly with load.
//  2. In-rush cutoff: with the multimeter's shunt resistance in series,
//     the WiFi startup in-rush current dropped the supply voltage enough
//     to trip the phone's protection circuit — "the communicator switched
//     off after less than 30 sec" whenever a WiFi connection was
//     established in the measurement circuit. We model the same trip so
//     the Table 2 WiFi rows are, as in the paper, lower bounds derived
//     from the observed constant current rather than full measurements.
#pragma once

#include <functional>

#include "common/time.hpp"
#include "energy/energy_model.hpp"
#include "sim/simulation.hpp"

namespace contory::energy {

struct BatteryConfig {
  double nominal_voltage = 4.0965;  // V, the paper's measured baseline
  double max_sag_fraction = 0.02;   // <2% deviation under high load
  /// Load (mW) at which sag reaches max_sag_fraction.
  double full_load_milliwatts = 1500.0;
  /// Series shunt of the inserted meter (1.8 mV/mA => 1.8 ohm).
  double meter_shunt_ohms = 1.8;
  /// Supply voltage below which the phone's protection circuit trips.
  double cutoff_voltage = 3.75;
  /// In-rush current multiplier applied at radio power-up transients.
  double inrush_factor = 3.0;
};

class Battery {
 public:
  Battery(sim::Simulation& sim, const EnergyModel& model,
          BatteryConfig config = {});

  /// True while the multimeter is wired in series (adds shunt resistance).
  void SetMeterInserted(bool inserted) noexcept { meter_inserted_ = inserted; }
  [[nodiscard]] bool meter_inserted() const noexcept {
    return meter_inserted_;
  }

  /// Battery terminal voltage under the current steady-state load.
  [[nodiscard]] double TerminalVoltage() const noexcept;

  /// Supply voltage seen by the phone (terminal voltage minus shunt drop).
  [[nodiscard]] double PhoneSupplyVoltage() const noexcept;

  /// Steady-state current draw in mA at the current load.
  [[nodiscard]] double CurrentMilliamps() const noexcept;

  /// Simulates a power-up transient drawing `steady_milliwatts *
  /// inrush_factor` for an instant; returns true if the supply voltage
  /// dipped below the protection threshold (phone would switch off).
  /// Only possible when the meter is inserted, as observed in the paper.
  [[nodiscard]] bool InrushTrips(double steady_milliwatts) const noexcept;

  /// Observer fired when an in-rush trip occurs (benches log it the way
  /// the paper narrates the communicator switching off).
  using TripListener = std::function<void(SimTime)>;
  void SetTripListener(TripListener listener) {
    trip_listener_ = std::move(listener);
  }
  /// Reports a trip through the listener (called by radio models).
  void ReportTrip();

 private:
  sim::Simulation& sim_;
  const EnergyModel& model_;
  BatteryConfig config_;
  bool meter_inserted_ = false;
  TripListener trip_listener_;
};

}  // namespace contory::energy
