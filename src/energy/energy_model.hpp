// Component power-state ledger.
//
// The paper measures energy by inserting a multimeter between phone and
// battery; the phone's draw at any instant is the sum of what its hardware
// components consume in their current states (display on/off, backlight,
// BT idle/inquiry/transfer, WiFi, GSM/UMTS radio, CPU busy). We model that
// directly: each component reports its instantaneous power in milliwatts,
// and the model integrates total power over virtual time into Joules.
// Per-operation energy costs (Table 2) are measured with EnergyMarkers.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace contory::energy {

/// Snapshot handle for differential energy measurements.
struct EnergyMarker {
  double joules_at_mark = 0.0;
  SimTime at;
};

class EnergyModel {
 public:
  explicit EnergyModel(sim::Simulation& sim) : sim_(sim) {}

  EnergyModel(const EnergyModel&) = delete;
  EnergyModel& operator=(const EnergyModel&) = delete;

  /// Sets component `name`'s instantaneous draw. 0 removes the component
  /// from the ledger. Energy accrued at the previous total power is
  /// integrated up to now before the change takes effect.
  void SetComponentPower(const std::string& name, double milliwatts);

  /// Adds a one-shot energy cost (e.g. a CPU burst too short to model as a
  /// state), attributed at the current instant.
  void AddEnergyJoules(double joules);

  /// Sum of all component draws right now, in mW.
  [[nodiscard]] double CurrentPowerMilliwatts() const noexcept;

  /// Draw of one component (0 if absent).
  [[nodiscard]] double ComponentPowerMilliwatts(
      const std::string& name) const noexcept;

  /// Total energy consumed since construction, integrated to now.
  [[nodiscard]] double TotalEnergyJoules() const;

  /// Marks the current (time, energy) point.
  [[nodiscard]] EnergyMarker Mark() const;

  /// Joules consumed since `marker`.
  [[nodiscard]] double JoulesSince(const EnergyMarker& marker) const;

  /// Observer invoked after every power change (PowerMeter uses polling
  /// instead, like the real Fluke; this hook serves tests and traces).
  using PowerListener =
      std::function<void(SimTime t, double total_milliwatts)>;
  void SetPowerListener(PowerListener listener) {
    listener_ = std::move(listener);
  }

  /// The ledger, for diagnostics ("which component is burning the budget").
  [[nodiscard]] const std::map<std::string, double>& components()
      const noexcept {
    return components_;
  }

 private:
  void Accrue() const;

  sim::Simulation& sim_;
  std::map<std::string, double> components_;
  mutable double accrued_joules_ = 0.0;
  mutable SimTime last_accrual_ = kSimEpoch;
  PowerListener listener_;
};

/// RAII power state: adds `milliwatts` on component `name` for the lifetime
/// of the object. Used for transient states like "BT transferring".
class ScopedPower {
 public:
  ScopedPower(EnergyModel& model, std::string name, double milliwatts)
      : model_(&model), name_(std::move(name)) {
    model_->SetComponentPower(name_, milliwatts);
  }
  ~ScopedPower() {
    if (model_ != nullptr) model_->SetComponentPower(name_, 0.0);
  }
  ScopedPower(const ScopedPower&) = delete;
  ScopedPower& operator=(const ScopedPower&) = delete;

 private:
  EnergyModel* model_;
  std::string name_;
};

}  // namespace contory::energy
