#include "energy/power_meter.hpp"

namespace contory::energy {

PowerMeter::PowerMeter(sim::Simulation& sim, const EnergyModel& model,
                       PowerMeterConfig config)
    : sim_(sim),
      model_(model),
      config_(config),
      noise_(sim.rng().Fork()) {}

void PowerMeter::Start() {
  if (task_ != nullptr) return;
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.sample_period, [this] { TakeSample(); });
}

void PowerMeter::Stop() { task_.reset(); }

void PowerMeter::TakeSample() {
  double mw = model_.CurrentPowerMilliwatts();
  if (config_.apply_noise) {
    mw = noise_.Jitter(mw, config_.accuracy_fraction);
  }
  trace_.Add(sim_.Now(), mw);
}

}  // namespace contory::energy
