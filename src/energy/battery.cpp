#include "energy/battery.hpp"

#include <algorithm>

namespace contory::energy {

Battery::Battery(sim::Simulation& sim, const EnergyModel& model,
                 BatteryConfig config)
    : sim_(sim), model_(model), config_(config) {}

double Battery::TerminalVoltage() const noexcept {
  const double load = model_.CurrentPowerMilliwatts();
  const double frac =
      std::min(load / config_.full_load_milliwatts, 1.0);
  return config_.nominal_voltage *
         (1.0 - config_.max_sag_fraction * frac);
}

double Battery::CurrentMilliamps() const noexcept {
  const double v = TerminalVoltage();
  if (v <= 0.0) return 0.0;
  return model_.CurrentPowerMilliwatts() / v;
}

double Battery::PhoneSupplyVoltage() const noexcept {
  double v = TerminalVoltage();
  if (meter_inserted_) {
    // Shunt drop: V = I * R, with I in A and R in ohms.
    v -= (CurrentMilliamps() / 1e3) * config_.meter_shunt_ohms;
  }
  return v;
}

bool Battery::InrushTrips(double steady_milliwatts) const noexcept {
  if (!meter_inserted_) return false;
  const double v = TerminalVoltage();
  if (v <= 0.0) return false;
  const double inrush_ma =
      (steady_milliwatts * config_.inrush_factor) / v;
  const double supply =
      v - (inrush_ma / 1e3) * config_.meter_shunt_ohms;
  return supply < config_.cutoff_voltage;
}

void Battery::ReportTrip() {
  if (trip_listener_) trip_listener_(sim_.Now());
}

}  // namespace contory::energy
