#include "sm/sm_runtime.hpp"

#include <queue>
#include <utility>

#include "common/logging.hpp"
#include "obs/observability.hpp"
#include "phone/smart_phone.hpp"

namespace contory::sm {
namespace {
constexpr const char* kModule = "sm";

obs::Counter& RouteCacheHits() {
  static obs::Counter* c = &obs::Observability::metrics().GetCounter(
      "sm_route_cache_hits_total");
  return *c;
}
obs::Counter& RouteCacheMisses() {
  static obs::Counter* c = &obs::Observability::metrics().GetCounter(
      "sm_route_cache_misses_total");
  return *c;
}
obs::Counter& RouteCacheEvictions() {
  static obs::Counter* c = &obs::Observability::metrics().GetCounter(
      "sm_route_cache_evictions_total");
  return *c;
}
}

SmRuntime* SmBus::Find(net::NodeId id) const noexcept {
  const auto it = runtimes_.find(id);
  return it == runtimes_.end() ? nullptr : it->second;
}

SmRuntime::SmRuntime(sim::Simulation& sim, SmBus& bus,
                     net::WifiController& wifi, SmRuntimeConfig config)
    : sim_(sim),
      bus_(bus),
      wifi_(wifi),
      config_(std::move(config)),
      tags_(sim) {
  bus_.Attach(node(), this);
  wifi_.SetFrameHandler(
      [this](net::NodeId from, const std::vector<std::byte>& wire) {
        Receive(from, wire);
      });
}

SmRuntime::~SmRuntime() { bus_.Detach(node()); }

void SmRuntime::SetParticipating(bool participating) {
  if (participating) {
    tags_.Upsert(config_.participation_tag, "1");
  } else {
    (void)tags_.Delete(config_.participation_tag);
  }
}

bool SmRuntime::participating() const {
  return tags_.Has(config_.participation_tag);
}

void SmRuntime::RegisterCodeBrick(const std::string& brick,
                                  std::size_t code_bytes, Handler handler) {
  if (!handler) throw std::invalid_argument("null code-brick handler");
  bricks_[brick] = {code_bytes, std::move(handler)};
}

bool SmRuntime::HasCodeBrick(const std::string& brick) const {
  return bricks_.contains(brick);
}

std::size_t SmRuntime::CodeBytes(const std::string& brick) const {
  const auto it = bricks_.find(brick);
  return it == bricks_.end() ? 0 : it->second.first;
}

bool SmRuntime::CodeCached(const std::string& brick) const {
  return code_cache_index_.contains(brick);
}

void SmRuntime::TouchCodeCache(const std::string& brick) {
  if (const auto it = code_cache_index_.find(brick);
      it != code_cache_index_.end()) {
    code_cache_lru_.splice(code_cache_lru_.begin(), code_cache_lru_,
                           it->second);
    return;
  }
  code_cache_lru_.push_front(brick);
  code_cache_index_[brick] = code_cache_lru_.begin();
  if (code_cache_lru_.size() > config_.code_cache_capacity) {
    code_cache_index_.erase(code_cache_lru_.back());
    code_cache_lru_.pop_back();
  }
}

Status SmRuntime::Inject(SmartMessage sm) {
  if (resident_ >= config_.max_resident) {
    ++rejected_;
    CLOG_DEBUG(kModule, "node %u admission manager rejected SM %s", node(),
               sm.id.c_str());
    return ResourceExhausted("admission manager: node busy");
  }
  ++admitted_;
  ++resident_;
  TouchCodeCache(sm.code_brick);
  ScheduleExecution(std::move(sm), /*count_in_breakup=*/false);
  return Status::Ok();
}

void SmRuntime::ScheduleExecution(SmartMessage sm, bool count_in_breakup) {
  // Scheduler: the SM waits for a VM thread; the thread-switch overhead is
  // 12-14% of per-hop time in the paper's break-up.
  const SimDuration ts = wifi_.phone().profile().wifi_thread_switch;
  if (count_in_breakup) sm.breakup.thread_switch += ts;
  sim_.ScheduleAfter(ts, [this, sm = std::move(sm)]() mutable {
    --resident_;
    ++executed_;
    const auto it = bricks_.find(sm.code_brick);
    // The hop span covers serialize -> transfer -> thread switch; it
    // closes here, where the SM starts (or fails to start) executing.
    COBS(if (sm.trace_hop != 0) {
      obs::Observability::tracer().EndStage(
          sm.trace_hop, sim_.Now(),
          it == bricks_.end() ? "dead:no-brick" : "ok");
      sm.trace_hop = 0;
    });
    if (it == bricks_.end()) {
      CLOG_WARN(kModule, "node %u has no code brick '%s'; SM %s dies",
                node(), sm.code_brick.c_str(), sm.id.c_str());
      return;
    }
    SmContext ctx{sim_, *this, node()};
    it->second.second(ctx, std::move(sm));
  }, "sm.execute");
}

void SmRuntime::BeginHopSpan(SmartMessage& sm, net::NodeId next) {
  if (sm.trace_parent == 0) return;
  auto& tracer = obs::Observability::tracer();
  phone::SmartPhone& sender = wifi_.phone();
  sm.trace_hop = tracer.BeginHop(
      sm.trace_parent, "hop:" + std::to_string(sm.hop_count), sim_.Now(),
      [&sender] { return sender.energy().TotalEnergyJoules(); });
  if (sm.trace_hop != 0) {
    tracer.AddNote(sm.trace_hop, "from:" + std::to_string(node()) +
                                     " to:" + std::to_string(next));
  }
}

void SmRuntime::CloseHopOnLoss(const std::string& sm_id,
                               const Status& cause) {
  const SmBus::TraceContext ctx = bus_.TakeTrace(sm_id);
  if (ctx.hop != 0) {
    obs::Observability::tracer().EndStage(ctx.hop, sim_.Now(),
                                          "lost: " + cause.ToString());
  }
}

void SmRuntime::Migrate(SmartMessage sm, net::NodeId next) {
  SmRuntime* peer = bus_.Find(next);
  if (peer == nullptr || !wifi_.IsNeighbor(next)) {
    CLOG_DEBUG(kModule, "node %u cannot migrate SM %s to %u; SM dies",
               node(), sm.id.c_str(), next);
    COBS(if (sm.trace_parent != 0) {
      obs::Observability::tracer().AddNote(
          sm.trace_parent, "sm-dead:unreachable@" + std::to_string(node()));
    });
    return;
  }
  const std::size_t code_bytes = CodeBytes(sm.code_brick);
  const bool cached = peer->CodeCached(sm.code_brick);

  sm.hop_count += 1;
  sm.visited.push_back(next);
  COBS(BeginHopSpan(sm, next));

  // Serialization on the local VM (code travels unless cached remotely).
  const std::size_t wire_size = sm.WireBytes(code_bytes, cached);
  const SimDuration ser =
      wifi_.phone().SerializationTime(wire_size);
  wifi_.phone().ChargeCpu(ser);
  sm.breakup.serialize += ser;
  // The frame pays connect + transfer inside WifiController; account them
  // in the SM's own instrumentation too.
  sm.breakup.connect += wifi_.phone().profile().wifi_connect_latency;
  sm.breakup.transfer += wifi_.TransferTime(wire_size);

  // Trace context crosses the air out-of-band (the wire format is load-
  // bearing for transfer timing); the receiver or a loss path takes it.
  COBS(if (sm.trace_parent != 0) {
    bus_.StashTrace(sm.id, {sm.trace_parent, sm.trace_hop});
  });

  auto wire = sm.Serialize(code_bytes, cached);
  sim_.ScheduleAfter(ser, [this, next, id = sm.id,
                           wire = std::move(wire)]() mutable {
    wifi_.SendFrame(next, std::move(wire), [this, next, id](Status s) {
      if (!s.ok()) {
        CLOG_DEBUG(kModule, "node %u migration frame to %u lost: %s",
                   node(), next, s.ToString().c_str());
        COBS(CloseHopOnLoss(id, s));
      }
    });
  }, "sm.serialize");
}

void SmRuntime::Receive(net::NodeId from, const std::vector<std::byte>& wire) {
  (void)from;
  auto sm = SmartMessage::Deserialize(wire);
  if (!sm.ok()) {
    CLOG_WARN(kModule, "node %u dropped malformed SM frame: %s", node(),
              sm.status().ToString().c_str());
    return;
  }
  COBS({
    const SmBus::TraceContext ctx = bus_.TakeTrace(sm->id);
    sm->trace_parent = ctx.parent;
    sm->trace_hop = ctx.hop;
  });
  if (resident_ >= config_.max_resident) {
    ++rejected_;  // admission rejection = silent SM death
    CLOG_DEBUG(kModule, "node %u admission manager rejected SM %s", node(),
               sm->id.c_str());
    COBS(if (sm->trace_hop != 0) {
      obs::Observability::tracer().EndStage(sm->trace_hop, sim_.Now(),
                                            "rejected:admission");
    });
    return;
  }
  ++admitted_;
  ++resident_;
  TouchCodeCache(sm->code_brick);
  ScheduleExecution(*std::move(sm), /*count_in_breakup=*/true);
}

SmRuntime::BfsResult SmRuntime::Bfs(
    const std::unordered_set<net::NodeId>& exclude) const {
  return Bfs(exclude, BfsOptions{});
}

SmRuntime::BfsResult SmRuntime::Bfs(
    const std::unordered_set<net::NodeId>& exclude,
    const BfsOptions& options) const {
  BfsResult result;
  std::queue<net::NodeId> frontier;
  result.depth[node()] = 0;
  result.order.push_back(node());
  frontier.push(node());
  while (!frontier.empty()) {
    const net::NodeId current = frontier.front();
    frontier.pop();
    if (options.max_depth > 0 &&
        result.depth[current] >= options.max_depth) {
      continue;  // bounded radius: do not expand past the hop budget
    }
    const SmRuntime* rt = bus_.Find(current);
    if (rt == nullptr) continue;
    for (const net::NodeId nb : rt->wifi_.Neighbors()) {
      if (result.depth.contains(nb) || exclude.contains(nb)) continue;
      const SmRuntime* nb_rt = bus_.Find(nb);
      if (nb_rt == nullptr || !nb_rt->participating()) continue;
      result.depth[nb] = result.depth[current] + 1;
      result.parent[nb] = current;
      result.order.push_back(nb);
      if (options.stop && options.stop(nb)) return result;
      frontier.push(nb);
    }
  }
  return result;
}

Result<net::NodeId> SmRuntime::NextHopTowardTag(
    const std::string& tag,
    const std::unordered_set<net::NodeId>& exclude) const {
  // Route cache (opt-in): only exclude-free lookups are cacheable — the
  // homeward path resolves the same home tag at every intermediate node
  // of every reply, which is where a city-scale BFS per hop hurts.
  const bool cacheable =
      config_.route_cache_ttl > SimDuration::zero() && exclude.empty();
  if (cacheable) {
    if (const auto it = route_cache_.find(tag); it != route_cache_.end()) {
      const SmRuntime* hop_rt = bus_.Find(it->second.next);
      if (sim_.Now() - it->second.at <= config_.route_cache_ttl &&
          hop_rt != nullptr && hop_rt->participating() &&
          wifi_.IsNeighbor(it->second.next)) {
        COBS(RouteCacheHits().Inc());
        return it->second.next;
      }
      route_cache_.erase(it);  // stale, or the hop moved away
    }
    COBS(RouteCacheMisses().Inc());
  }
  // Discovery order is nearest-first, so the search can stop at the first
  // tagged node: identical result to a full BFS + scan, without touching
  // the rest of a (possibly city-sized) overlay.
  const auto exposes_tag = [this, &tag](net::NodeId n) {
    const SmRuntime* rt = bus_.Find(n);
    return rt != nullptr && rt->tags_.Has(tag);
  };
  const BfsResult bfs =
      Bfs(exclude, BfsOptions{0, [&](net::NodeId n) {
                                return n != node() && exposes_tag(n);
                              }});
  for (const net::NodeId candidate : bfs.order) {  // BFS order = nearest first
    if (candidate == node()) continue;
    const SmRuntime* rt = bus_.Find(candidate);
    if (rt == nullptr || !rt->tags_.Has(tag)) continue;
    // Walk back to the first hop from this node.
    net::NodeId hop = candidate;
    while (bfs.parent.at(hop) != node()) hop = bfs.parent.at(hop);
    if (cacheable) {
      if (route_cache_.size() >= config_.route_cache_capacity &&
          !route_cache_.contains(tag)) {
        route_cache_.clear();
        COBS(RouteCacheEvictions().Inc());
      }
      route_cache_[tag] = RouteEntry{hop, sim_.Now()};
    }
    return hop;
  }
  return NotFound("no reachable node exposes tag '" + tag + "'");
}

Result<int> SmRuntime::HopDistanceToTag(const std::string& tag) const {
  if (tags_.Has(tag)) return 0;
  const auto exposes_tag = [this, &tag](net::NodeId n) {
    const SmRuntime* rt = bus_.Find(n);
    return rt != nullptr && rt->tags_.Has(tag);
  };
  const BfsResult bfs =
      Bfs({}, BfsOptions{0, [&](net::NodeId n) {
                           return n != node() && exposes_tag(n);
                         }});
  for (const net::NodeId candidate : bfs.order) {
    if (candidate == node()) continue;
    const SmRuntime* rt = bus_.Find(candidate);
    if (rt != nullptr && rt->tags_.Has(tag)) return bfs.depth.at(candidate);
  }
  return NotFound("no reachable node exposes tag '" + tag + "'");
}

std::vector<std::pair<net::NodeId, int>> SmRuntime::NodesWithTag(
    const std::string& tag, int max_hops) const {
  const BfsResult bfs = Bfs({}, BfsOptions{max_hops, nullptr});
  std::vector<std::pair<net::NodeId, int>> out;
  for (const net::NodeId candidate : bfs.order) {
    if (candidate == node()) continue;
    const int depth = bfs.depth.at(candidate);
    if (max_hops > 0 && depth > max_hops) continue;
    const SmRuntime* rt = bus_.Find(candidate);
    if (rt != nullptr && rt->tags_.Has(tag)) out.emplace_back(candidate, depth);
  }
  return out;
}

void SmRuntime::RegisterReplyHandler(const std::string& message_id,
                                     ReplyHandler handler) {
  reply_handlers_[message_id] = std::move(handler);
}

void SmRuntime::UnregisterReplyHandler(const std::string& message_id) {
  reply_handlers_.erase(message_id);
}

bool SmRuntime::DeliverReply(SmartMessage sm) {
  const auto it = reply_handlers_.find(sm.id);
  if (it == reply_handlers_.end()) return false;
  // Move the handler out: delivery may re-register (periodic queries).
  ReplyHandler handler = std::move(it->second);
  reply_handlers_.erase(it);
  handler(std::move(sm));
  return true;
}

}  // namespace contory::sm
