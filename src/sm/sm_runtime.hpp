// Smart Messages runtime system.
//
// "To support SM execution, the SM runtime system runs inside a Java
// virtual machine and consists of: (i) admission manager that performs
// admission control and prevents excessive use of resources by incoming
// SMs, (ii) code cache that stores frequently executed code bricks,
// (iii) scheduler that dispatches ready SMs for execution on the Java
// virtual machine, and (iv) tag space" (Sec. 5.1).
//
// One SmRuntime runs per node. Code bricks are handlers registered by
// name on every participating node (the same application is installed
// everywhere); the code cache determines whether a migration must carry
// the brick's bytes. Content-based routing ("nodes ... exposing the
// 'contory' tag will collaborate with each other to forward the SM
// towards the destination") is modelled as hop-by-hop forwarding along
// shortest paths over the participation overlay.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "net/wifi.hpp"
#include "sim/simulation.hpp"
#include "sm/smart_message.hpp"
#include "sm/tag_space.hpp"

namespace contory::sm {

class SmRuntime;

/// Per-simulation registry of SM runtimes, used for migration delivery.
class SmBus {
 public:
  [[nodiscard]] SmRuntime* Find(net::NodeId id) const noexcept;

  /// Trace context ferried across the air gap out-of-band: the wire
  /// format must not change (it sets transfer times and energy), so the
  /// sender stashes the in-flight SM's span handles here and the
  /// receiver takes them back by message id. Entries are erased on
  /// delivery and on every loss path; only a malformed frame (never
  /// produced by our own serializer) could strand one.
  struct TraceContext {
    std::uint64_t parent = 0;
    std::uint64_t hop = 0;
  };
  void StashTrace(const std::string& sm_id, TraceContext ctx) {
    traces_[sm_id] = ctx;
  }
  /// Removes and returns the stashed context ({0,0} when none).
  TraceContext TakeTrace(const std::string& sm_id) {
    const auto it = traces_.find(sm_id);
    if (it == traces_.end()) return {};
    const TraceContext ctx = it->second;
    traces_.erase(it);
    return ctx;
  }
  [[nodiscard]] std::size_t pending_traces() const noexcept {
    return traces_.size();
  }

 private:
  friend class SmRuntime;
  void Attach(net::NodeId id, SmRuntime* rt) { runtimes_[id] = rt; }
  void Detach(net::NodeId id) { runtimes_.erase(id); }
  std::unordered_map<net::NodeId, SmRuntime*> runtimes_;
  std::unordered_map<std::string, TraceContext> traces_;
};

/// Execution context handed to a code-brick handler at the node where the
/// SM currently executes.
struct SmContext {
  sim::Simulation& sim;
  SmRuntime& runtime;
  net::NodeId node;
};

struct SmRuntimeConfig {
  /// Admission manager: maximum SMs resident (queued or executing).
  std::size_t max_resident = 16;
  /// Code cache capacity in bricks (LRU).
  std::size_t code_cache_capacity = 32;
  /// Tag exposed by nodes willing to route Contory SMs.
  std::string participation_tag = "contory";
  /// Next-hop route cache for content-based routing, applied only to
  /// exclude-free lookups (the homeward path of a finder: the same
  /// "contory.node.N" tag is resolved at every intermediate node of
  /// every reply). 0 = disabled — the default, so routing behavior is
  /// bit-identical to the uncached BFS unless a scenario opts in. A hit
  /// requires the entry to be younger than the TTL *and* the cached hop
  /// to still be a participating WiFi neighbor (mobility safety net).
  SimDuration route_cache_ttl{};
  /// Cached tags per node; on overflow the cache is flushed (counted in
  /// sm_route_cache_evictions_total).
  std::size_t route_cache_capacity = 16;
};

class SmRuntime {
 public:
  using Handler = std::function<void(SmContext&, SmartMessage)>;
  /// Callback for SMs that return to their origin with a reply.
  using ReplyHandler = std::function<void(SmartMessage)>;

  SmRuntime(sim::Simulation& sim, SmBus& bus, net::WifiController& wifi,
            SmRuntimeConfig config = {});
  ~SmRuntime();

  SmRuntime(const SmRuntime&) = delete;
  SmRuntime& operator=(const SmRuntime&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return wifi_.node(); }
  [[nodiscard]] TagSpace& tags() noexcept { return tags_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::WifiController& wifi() noexcept { return wifi_; }

  // --- Participation ------------------------------------------------------
  /// Joins/leaves the Contory SM overlay by exposing the participation tag.
  void SetParticipating(bool participating);
  [[nodiscard]] bool participating() const;

  // --- Code bricks ---------------------------------------------------------
  /// Installs a handler for `brick`; `code_bytes` is the wire size the
  /// brick's code adds when it must travel with the SM.
  void RegisterCodeBrick(const std::string& brick, std::size_t code_bytes,
                         Handler handler);
  [[nodiscard]] bool HasCodeBrick(const std::string& brick) const;
  [[nodiscard]] std::size_t CodeBytes(const std::string& brick) const;
  /// True when this node's code cache holds the brick (a migration to this
  /// node can omit the code bytes).
  [[nodiscard]] bool CodeCached(const std::string& brick) const;

  // --- Execution -----------------------------------------------------------
  /// Injects an SM for local execution: admission control, then the
  /// scheduler dispatches it (thread-switch latency), then its handler
  /// runs. kResourceExhausted when the admission manager rejects it.
  Status Inject(SmartMessage sm);

  /// Migrates `sm` to a direct neighbor: pays serialization on this node
  /// (code bytes skipped when cached at `next`), the per-hop connection +
  /// transfer on the air, and admission + scheduling at the receiver.
  /// Increments hop_count and records the node in `visited`. Failures are
  /// silent SM death, as on the real platform — issuers use timeouts:
  /// "If no valid result is received within a certain timeout, the query
  /// is cancelled."
  void Migrate(SmartMessage sm, net::NodeId next);

  // --- Content-based routing ----------------------------------------------
  /// First hop on a shortest path (over participating, WiFi-reachable
  /// nodes) toward the nearest node whose tag space exposes `tag`,
  /// skipping nodes in `exclude`. kNotFound when no such node is
  /// reachable.
  [[nodiscard]] Result<net::NodeId> NextHopTowardTag(
      const std::string& tag,
      const std::unordered_set<net::NodeId>& exclude = {}) const;

  /// Hop distance to the nearest reachable node exposing `tag`
  /// (0 = this node itself exposes it).
  [[nodiscard]] Result<int> HopDistanceToTag(const std::string& tag) const;

  /// All reachable nodes exposing `tag` within `max_hops` (0 = unbounded),
  /// paired with their hop distance, nearest first.
  [[nodiscard]] std::vector<std::pair<net::NodeId, int>> NodesWithTag(
      const std::string& tag, int max_hops = 0) const;

  // --- Replies ---------------------------------------------------------
  /// Registers a handler fired when an SM carrying `message_id` reports
  /// completion at this node (used by SM-FINDER issuers).
  void RegisterReplyHandler(const std::string& message_id,
                            ReplyHandler handler);
  void UnregisterReplyHandler(const std::string& message_id);
  /// Called by brick handlers when an SM has returned home; routes the SM
  /// to the registered reply handler. False when nobody is waiting
  /// (cancelled/timed-out query).
  bool DeliverReply(SmartMessage sm);

  // --- Introspection ---------------------------------------------------
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t resident() const noexcept { return resident_; }

 private:
  void Receive(net::NodeId from, const std::vector<std::byte>& wire);
  /// Scheduler dispatch: thread-switch delay, then run the brick handler.
  /// The delay counts toward the SM's migration break-up only for SMs
  /// that arrived over the air (the paper's per-hop decomposition).
  void ScheduleExecution(SmartMessage sm, bool count_in_breakup);
  void TouchCodeCache(const std::string& brick);

  /// Opens the "hop:<n>" trace span for a traced SM about to migrate to
  /// `next`; probes the *sending* phone's energy ledger. COBS-gated at
  /// the call site.
  void BeginHopSpan(SmartMessage& sm, net::NodeId next);
  /// Closes the in-flight hop span of a lost migration (frame loss,
  /// radio-off, peer gone) and drops its stashed trace context.
  void CloseHopOnLoss(const std::string& sm_id, const Status& cause);

  /// BFS over the participation overlay from this node. Returns parent
  /// pointers; see .cpp for use.
  struct BfsResult {
    std::vector<net::NodeId> order;                     // visit order
    std::unordered_map<net::NodeId, net::NodeId> parent;
    std::unordered_map<net::NodeId, int> depth;
  };
  /// `stop`: halts the search as soon as a just-discovered node satisfies
  /// it — BFS discovery order equals nearest-first scan order, so callers
  /// looking for the nearest match lose nothing by stopping there (a
  /// city-scale overlay would otherwise be fully explored per query).
  /// `max_depth` > 0 bounds the search radius in hops; depths <= the
  /// bound are exact shortest-path distances either way.
  struct BfsOptions {
    int max_depth = 0;
    std::function<bool(net::NodeId)> stop;
  };
  [[nodiscard]] BfsResult Bfs(
      const std::unordered_set<net::NodeId>& exclude) const;
  [[nodiscard]] BfsResult Bfs(const std::unordered_set<net::NodeId>& exclude,
                              const BfsOptions& options) const;

  sim::Simulation& sim_;
  SmBus& bus_;
  net::WifiController& wifi_;
  SmRuntimeConfig config_;
  TagSpace tags_;
  std::unordered_map<std::string, std::pair<std::size_t, Handler>> bricks_;
  std::list<std::string> code_cache_lru_;  // front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator>
      code_cache_index_;
  std::unordered_map<std::string, ReplyHandler> reply_handlers_;
  /// Next-hop cache for exclude-free NextHopTowardTag (mutable: caching
  /// inside a logically-const lookup). Empty unless route_cache_ttl > 0.
  struct RouteEntry {
    net::NodeId next = net::kInvalidNode;
    SimTime at{};
  };
  mutable std::unordered_map<std::string, RouteEntry> route_cache_;
  std::size_t resident_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace contory::sm
