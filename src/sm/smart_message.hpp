// Smart Message representation.
//
// "An SM is a user-defined application, similar to a mobile agent, whose
// execution is sequentially distributed over a series of nodes using
// execution migration ... An SM consists of code bricks, data bricks
// (mobile data explicitly identified in the program), and execution
// control state" (Sec. 5.1). We model code bricks by reference — an id
// naming a handler installed on every Contory node plus the byte size the
// code occupies on the wire (skipped when the receiving node's code cache
// already holds the brick) — data bricks as an opaque payload, and the
// execution control state (hop counter, visited set, routing target) as
// explicit fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "net/medium.hpp"

namespace contory::sm {

/// Accumulated per-migration latency decomposition. The paper reports the
/// break-up: connection 4-5%, serialization 26-33%, thread switching
/// 12-14%, transfer 51-54% of total hop time; benches print ours from
/// these counters.
struct HopBreakup {
  SimDuration connect{};
  SimDuration serialize{};
  SimDuration thread_switch{};
  SimDuration transfer{};

  [[nodiscard]] SimDuration Total() const noexcept {
    return connect + serialize + thread_switch + transfer;
  }
  HopBreakup& operator+=(const HopBreakup& other) noexcept;
};

struct SmartMessage {
  /// Unique message id ("to disambiguate between multiple messages").
  std::string id;
  /// Code brick naming the handler that runs at each visited node.
  std::string code_brick;
  /// Data bricks: serialized application payload (query, results, ...).
  std::vector<std::byte> data;

  // --- Execution control state ------------------------------------------
  net::NodeId origin = net::kInvalidNode;
  /// Content-based routing target: migrate toward nodes exposing this tag.
  std::string target_tag;
  /// "the SM-FINDER maintains a hopCnt that indicates how many hops the
  /// message has traversed until that moment."
  int hop_count = 0;
  /// Routing gives up beyond this many hops (0 = unbounded).
  int max_hops = 0;
  /// Nodes already visited (loop avoidance in application routing).
  std::vector<net::NodeId> visited;

  /// Latency decomposition accumulated across all migrations so far.
  HopBreakup breakup;

  // --- Trace context (observability; never serialized) -------------------
  // Carried out-of-band so instrumentation cannot perturb wire sizes and
  // therefore transfer times/energy. Across the air gap the SmBus keeps a
  // side table keyed by message id (see SmBus::StashTrace/TakeTrace).
  /// Open tracer span (query root or provision stage) this SM's hop
  /// chain nests under; 0 = untraced.
  std::uint64_t trace_parent = 0;
  /// Hop span currently in flight (opened at Migrate, closed at the
  /// receiver or on loss); 0 = none.
  std::uint64_t trace_hop = 0;

  /// Bytes this SM occupies on the wire. Code travels only when the
  /// receiver has not cached the brick.
  [[nodiscard]] std::size_t WireBytes(std::size_t code_bytes,
                                      bool code_cached_at_receiver) const;

  /// Serializes for transport (code bricks are carried by id; the byte
  /// cost of code is modelled via WireBytes padding).
  [[nodiscard]] std::vector<std::byte> Serialize(
      std::size_t code_bytes, bool code_cached_at_receiver) const;
  [[nodiscard]] static Result<SmartMessage> Deserialize(
      const std::vector<std::byte>& wire);
};

}  // namespace contory::sm
