#include "sm/smart_message.hpp"

namespace contory::sm {

HopBreakup& HopBreakup::operator+=(const HopBreakup& other) noexcept {
  connect += other.connect;
  serialize += other.serialize;
  thread_switch += other.thread_switch;
  transfer += other.transfer;
  return *this;
}

namespace {

/// Fixed serialization overhead of the execution control state beyond the
/// explicit fields (J2ME object headers, stream framing).
constexpr std::size_t kControlStateOverhead = 64;

void WriteCore(ByteWriter& w, const SmartMessage& sm) {
  w.WriteString(sm.id);
  w.WriteString(sm.code_brick);
  w.WriteU32(static_cast<std::uint32_t>(sm.data.size()));
  w.WriteRaw(sm.data);
  w.WriteU32(sm.origin);
  w.WriteString(sm.target_tag);
  w.WriteU32(static_cast<std::uint32_t>(sm.hop_count));
  w.WriteU32(static_cast<std::uint32_t>(sm.max_hops));
  w.WriteU32(static_cast<std::uint32_t>(sm.visited.size()));
  for (const auto node : sm.visited) w.WriteU32(node);
  // Breakup counters travel with the control state (they are the SM's own
  // instrumentation, as hopCnt is).
  w.WriteI64(sm.breakup.connect.count());
  w.WriteI64(sm.breakup.serialize.count());
  w.WriteI64(sm.breakup.thread_switch.count());
  w.WriteI64(sm.breakup.transfer.count());
}

}  // namespace

std::size_t SmartMessage::WireBytes(std::size_t code_bytes,
                                    bool code_cached_at_receiver) const {
  ByteWriter w;
  WriteCore(w, *this);
  std::size_t total = w.size() + kControlStateOverhead;
  if (!code_cached_at_receiver) total += code_bytes;
  return total;
}

std::vector<std::byte> SmartMessage::Serialize(
    std::size_t code_bytes, bool code_cached_at_receiver) const {
  ByteWriter w;
  WriteCore(w, *this);
  w.WritePadding(kControlStateOverhead);
  if (!code_cached_at_receiver) w.WritePadding(code_bytes);
  return std::move(w).Take();
}

Result<SmartMessage> SmartMessage::Deserialize(
    const std::vector<std::byte>& wire) {
  ByteReader r{wire};
  SmartMessage sm;
  auto id = r.ReadString();
  if (!id.ok()) return id.status();
  sm.id = *std::move(id);
  auto brick = r.ReadString();
  if (!brick.ok()) return brick.status();
  sm.code_brick = *std::move(brick);
  auto data_len = r.ReadU32();
  if (!data_len.ok()) return data_len.status();
  sm.data.resize(*data_len);
  for (auto& b : sm.data) {
    auto byte = r.ReadU8();
    if (!byte.ok()) return byte.status();
    b = std::byte{*byte};
  }
  auto origin = r.ReadU32();
  if (!origin.ok()) return origin.status();
  sm.origin = *origin;
  auto target = r.ReadString();
  if (!target.ok()) return target.status();
  sm.target_tag = *std::move(target);
  auto hops = r.ReadU32();
  if (!hops.ok()) return hops.status();
  sm.hop_count = static_cast<int>(*hops);
  auto max_hops = r.ReadU32();
  if (!max_hops.ok()) return max_hops.status();
  sm.max_hops = static_cast<int>(*max_hops);
  auto visited_len = r.ReadU32();
  if (!visited_len.ok()) return visited_len.status();
  sm.visited.reserve(*visited_len);
  for (std::uint32_t i = 0; i < *visited_len; ++i) {
    auto node = r.ReadU32();
    if (!node.ok()) return node.status();
    sm.visited.push_back(*node);
  }
  for (SimDuration* d : {&sm.breakup.connect, &sm.breakup.serialize,
                         &sm.breakup.thread_switch, &sm.breakup.transfer}) {
    auto v = r.ReadI64();
    if (!v.ok()) return v.status();
    *d = SimDuration{*v};
  }
  // Remaining bytes are control-state overhead + (possibly) code padding.
  return sm;
}

}  // namespace contory::sm
