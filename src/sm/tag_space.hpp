// Smart Messages tag space.
//
// "The tag space provides a shared memory addressable by names for inter
// SM communication and synchronization ... Tags have a name, similar to a
// file name in a file system, which is used for content-based naming of
// nodes" (Sec. 5.1). Contory publishes context items as tags whose name
// carries the context type and whose value carries value + metadata, e.g.
//   temperatureTag: <name=temperature> <value=14C, 1C, trusted>
// Tags may expire (context lifetime) and may be locked with a key
// (the paper's authenticated access mode for published items).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace contory::sm {

struct Tag {
  std::string name;
  std::string value;
  SimTime created;
  /// Absolute expiry; nullopt = never expires.
  std::optional<SimTime> expires;
  /// Empty key = public access; otherwise readers must present the key.
  std::string access_key;
};

class TagSpace {
 public:
  explicit TagSpace(sim::Simulation& sim) : sim_(sim) {}

  /// Creates or replaces a tag (publishing a fresh context value replaces
  /// the stale one, as re-exposing a tag does on the SM platform).
  void Upsert(std::string name, std::string value,
              std::optional<SimDuration> lifetime = std::nullopt,
              std::string access_key = {});

  /// Reads a public tag. kPermissionDenied for key-locked tags,
  /// kNotFound for absent or expired ones.
  [[nodiscard]] Result<Tag> Read(const std::string& name) const;

  /// Reads a tag presenting an access key (works for public tags too).
  [[nodiscard]] Result<Tag> ReadWithKey(const std::string& name,
                                        const std::string& key) const;

  /// True if a live (non-expired) tag with this name exists, regardless of
  /// access mode — names are visible for routing, values are not.
  [[nodiscard]] bool Has(const std::string& name) const;

  Status Delete(const std::string& name);

  /// All live tags whose name starts with `prefix` (public and locked;
  /// locked tags are returned with an empty value).
  [[nodiscard]] std::vector<Tag> Match(const std::string& prefix) const;

  /// Drops expired tags; returns how many were removed.
  std::size_t PurgeExpired();

  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }

 private:
  [[nodiscard]] bool Expired(const Tag& tag) const noexcept;

  sim::Simulation& sim_;
  std::unordered_map<std::string, Tag> tags_;
};

}  // namespace contory::sm
