#include "sm/tag_space.hpp"

#include <utility>

namespace contory::sm {

bool TagSpace::Expired(const Tag& tag) const noexcept {
  return tag.expires.has_value() && *tag.expires <= sim_.Now();
}

void TagSpace::Upsert(std::string name, std::string value,
                      std::optional<SimDuration> lifetime,
                      std::string access_key) {
  Tag tag;
  tag.name = name;
  tag.value = std::move(value);
  tag.created = sim_.Now();
  if (lifetime.has_value()) tag.expires = sim_.Now() + *lifetime;
  tag.access_key = std::move(access_key);
  tags_[std::move(name)] = std::move(tag);
}

Result<Tag> TagSpace::Read(const std::string& name) const {
  const auto it = tags_.find(name);
  if (it == tags_.end() || Expired(it->second)) {
    return NotFound("no tag named '" + name + "'");
  }
  if (!it->second.access_key.empty()) {
    return PermissionDenied("tag '" + name + "' requires authenticated access");
  }
  return it->second;
}

Result<Tag> TagSpace::ReadWithKey(const std::string& name,
                                  const std::string& key) const {
  const auto it = tags_.find(name);
  if (it == tags_.end() || Expired(it->second)) {
    return NotFound("no tag named '" + name + "'");
  }
  if (!it->second.access_key.empty() && it->second.access_key != key) {
    return PermissionDenied("wrong key for tag '" + name + "'");
  }
  return it->second;
}

bool TagSpace::Has(const std::string& name) const {
  const auto it = tags_.find(name);
  return it != tags_.end() && !Expired(it->second);
}

Status TagSpace::Delete(const std::string& name) {
  return tags_.erase(name) > 0
             ? Status::Ok()
             : NotFound("no tag named '" + name + "'");
}

std::vector<Tag> TagSpace::Match(const std::string& prefix) const {
  std::vector<Tag> out;
  for (const auto& [name, tag] : tags_) {
    if (Expired(tag)) continue;
    if (name.rfind(prefix, 0) == 0) {
      Tag copy = tag;
      if (!copy.access_key.empty()) copy.value.clear();  // value is private
      out.push_back(std::move(copy));
    }
  }
  return out;
}

std::size_t TagSpace::PurgeExpired() {
  std::size_t removed = 0;
  for (auto it = tags_.begin(); it != tags_.end();) {
    if (Expired(it->second)) {
      it = tags_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace contory::sm
