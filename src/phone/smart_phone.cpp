#include "phone/smart_phone.hpp"

#include <utility>

#include "common/logging.hpp"

namespace contory::phone {

SmartPhone::SmartPhone(sim::Simulation& sim, PhoneProfile profile,
                       std::string name)
    : sim_(sim),
      profile_(std::move(profile)),
      name_(std::move(name)),
      energy_(sim),
      battery_(sim, energy_),
      rng_(sim.rng().Fork()) {
  energy_.SetComponentPower(component::kBase, profile_.base_power_mw);
}

SmartPhone::~SmartPhone() {
  sim_.Cancel(paging_timer_);
  sim_.Cancel(paging_off_timer_);
}

void SmartPhone::SetDisplayOn(bool on) {
  display_on_ = on;
  energy_.SetComponentPower(component::kDisplay,
                            on ? profile_.display_power_mw : 0.0);
  if (!on && backlight_on_) SetBacklightOn(false);
}

void SmartPhone::SetBacklightOn(bool on) {
  if (on && !display_on_) SetDisplayOn(true);
  backlight_on_ = on;
  energy_.SetComponentPower(component::kBacklight,
                            on ? profile_.backlight_power_mw : 0.0);
}

void SmartPhone::SetGsmRadioOn(bool on) {
  if (gsm_on_ == on) return;
  gsm_on_ = on;
  if (on) {
    SchedulePagingBurst();
  } else {
    sim_.Cancel(paging_timer_);
    sim_.Cancel(paging_off_timer_);
    paging_timer_ = paging_off_timer_ = sim::kInvalidTimer;
    energy_.SetComponentPower(component::kCellPaging, 0.0);
  }
}

void SmartPhone::SchedulePagingBurst() {
  // "peaks of 450-481 mW and every 50-60 sec" (Sec. 6.1).
  const auto period = SimDuration{rng_.UniformInt(
      profile_.cell_paging_period_lo.count(),
      profile_.cell_paging_period_hi.count())};
  paging_timer_ = sim_.ScheduleAfter(period, [this] {
    if (!gsm_on_) return;
    if (paging_suppressed_) {
      SchedulePagingBurst();
      return;
    }
    const double peak = rng_.Uniform(profile_.cell_paging_peak_mw_lo,
                                     profile_.cell_paging_peak_mw_hi);
    energy_.SetComponentPower(component::kCellPaging, peak);
    paging_off_timer_ = sim_.ScheduleAfter(profile_.cell_paging_burst, [this] {
      energy_.SetComponentPower(component::kCellPaging, 0.0);
    });
    SchedulePagingBurst();
  });
}

void SmartPhone::SetContoryRunning(bool running) {
  energy_.SetComponentPower(
      component::kContoryRuntime,
      running ? profile_.contory_runtime_power_mw : 0.0);
}

void SmartPhone::ChargeCpu(SimDuration busy) {
  if (busy <= SimDuration::zero()) return;
  energy_.AddEnergyJoules(profile_.cpu_active_power_mw / 1e3 *
                          ToSeconds(busy));
}

SimDuration SmartPhone::SerializationTime(std::size_t bytes) const {
  return SimDuration{static_cast<std::int64_t>(
      profile_.serialize_base_us +
      profile_.serialize_us_per_byte * static_cast<double>(bytes))};
}

}  // namespace contory::phone
