#include "phone/phone_profiles.hpp"

namespace contory::phone {

PhoneProfile Nokia6630() {
  PhoneProfile p;
  p.model = "Nokia 6630";
  p.cpu_mhz = 220;
  p.ram_mb = 9;
  p.has_wifi = false;
  p.has_cellular_3g = true;
  return p;
}

PhoneProfile Nokia7610() {
  PhoneProfile p;
  p.model = "Nokia 7610";
  p.cpu_mhz = 123;
  p.ram_mb = 9;
  p.has_wifi = false;
  p.has_cellular_3g = false;  // GPRS only
  // Slower CPU: serialization and local work cost proportionally more.
  p.serialize_us_per_byte = 100.0 * 220.0 / 123.0;
  p.cpu_active_power_mw = 45.0;
  return p;
}

PhoneProfile Nokia9500() {
  PhoneProfile p;
  p.model = "Nokia 9500";
  p.cpu_mhz = 150;
  p.ram_mb = 64;
  p.has_wifi = true;
  p.has_cellular_3g = false;  // EDGE
  p.serialize_us_per_byte = 100.0 * 220.0 / 150.0;
  p.cpu_active_power_mw = 50.0;
  return p;
}

}  // namespace contory::phone
