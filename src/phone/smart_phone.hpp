// Smart-phone device model.
//
// Owns the energy ledger and battery for one testbed phone, exposes the
// user-visible power states the paper toggles between experiments (display,
// backlight, GSM radio), and provides the CPU-cost accounting used by every
// higher layer (serialization bursts, local query processing). The radio
// protocol machines themselves live in net/ and register their own power
// components against this phone's EnergyModel.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "energy/battery.hpp"
#include "energy/energy_model.hpp"
#include "phone/phone_profiles.hpp"
#include "sim/simulation.hpp"

namespace contory::phone {

/// Energy-ledger component names used by the phone itself.
namespace component {
inline constexpr const char* kBase = "base";
inline constexpr const char* kDisplay = "display";
inline constexpr const char* kBacklight = "backlight";
inline constexpr const char* kContoryRuntime = "contory";
inline constexpr const char* kCpu = "cpu";
inline constexpr const char* kCellPaging = "cell.paging";
}  // namespace component

class SmartPhone {
 public:
  /// `name` identifies the phone in logs and traces ("phone-A").
  SmartPhone(sim::Simulation& sim, PhoneProfile profile, std::string name);
  ~SmartPhone();

  SmartPhone(const SmartPhone&) = delete;
  SmartPhone& operator=(const SmartPhone&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const PhoneProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] energy::EnergyModel& energy() noexcept { return energy_; }
  [[nodiscard]] const energy::EnergyModel& energy() const noexcept {
    return energy_;
  }
  [[nodiscard]] energy::Battery& battery() noexcept { return battery_; }

  // --- User-visible power states (the paper's experiment knobs) ---------
  void SetDisplayOn(bool on);
  void SetBacklightOn(bool on);  // implies display on when turned on
  /// Toggles the GSM radio. When on, idle paging bursts (450-481 mW every
  /// 50-60 s) are scheduled, reproducing the Fig. 4 background peaks.
  void SetGsmRadioOn(bool on);
  /// Accounts the Contory middleware's own runtime draw (+1.64 mW).
  void SetContoryRunning(bool running);

  /// Suppresses idle paging bursts while a dedicated channel is active
  /// (the modem pages over DCH; no separate idle-paging wakeups).
  void SetPagingSuppressed(bool suppressed) noexcept {
    paging_suppressed_ = suppressed;
  }

  [[nodiscard]] bool display_on() const noexcept { return display_on_; }
  [[nodiscard]] bool backlight_on() const noexcept { return backlight_on_; }
  [[nodiscard]] bool gsm_radio_on() const noexcept { return gsm_on_; }

  // --- CPU accounting ----------------------------------------------------
  /// Accounts a CPU burst of `busy` at the profile's active power. The
  /// caller is responsible for any completion scheduling; this only adds
  /// the energy (bursts are far shorter than the 500 ms meter period).
  void ChargeCpu(SimDuration busy);

  /// Serialization cost of `bytes` on this phone's VM, per the profile.
  [[nodiscard]] SimDuration SerializationTime(std::size_t bytes) const;

  /// Deterministic per-phone RNG stream (latency jitter etc.).
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  void SchedulePagingBurst();

  sim::Simulation& sim_;
  PhoneProfile profile_;
  std::string name_;
  energy::EnergyModel energy_;
  energy::Battery battery_;
  Rng rng_;
  bool display_on_ = false;
  bool backlight_on_ = false;
  bool gsm_on_ = false;
  bool paging_suppressed_ = false;
  sim::TimerId paging_timer_ = sim::kInvalidTimer;
  sim::TimerId paging_off_timer_ = sim::kInvalidTimer;
};

}  // namespace contory::phone
