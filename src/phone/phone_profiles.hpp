// Smart-phone hardware profiles calibrated against the paper.
//
// Every constant below is tied to a measurement reported in Section 6.1
// (Nokia 6630 for everything except WiFi, Nokia 9500 for WiFi). The idle
// power ladder decomposes the paper's cumulative readings:
//
//   display+backlight on, BT off ........ 76.20 mW
//   backlight off ....................... 14.35 mW
//   display also off ....................  5.75 mW
//   + BT page/inquiry scan ..............  8.47 mW
//   + Contory running ................... 10.11 mW
//
// which yields: base 5.75, display +8.60, backlight +61.85, BT scan +2.72,
// Contory runtime +1.64. Active-state constants are calibrated so that the
// Table 1 latencies and Table 2 energies are reproduced by the protocol
// models (see net/ and the per-field comments).
#pragma once

#include <string>

#include "common/time.hpp"

namespace contory::phone {

struct PhoneProfile {
  std::string model;
  int cpu_mhz = 0;
  int ram_mb = 0;
  bool has_wifi = false;
  bool has_cellular_3g = false;  // WCDMA (6630) vs GPRS/EDGE only

  // --- Idle power ladder (mW), from the in-text measurements ------------
  double base_power_mw = 5.75;        // display off, radios off
  double display_power_mw = 8.60;     // display on, backlight off: +8.60
  double backlight_power_mw = 61.85;  // backlight: 76.20 - 14.35
  double bt_scan_power_mw = 2.72;     // page/inquiry scan: 8.47 - 5.75
  double contory_runtime_power_mw = 1.64;  // 10.11 - 8.47

  // --- CPU -------------------------------------------------------------
  /// Draw while the (J2ME) CPU is busy. Sized so createCxtItem's 78 us of
  /// work is energetically negligible, as in the paper.
  double cpu_active_power_mw = 55.0;
  /// J2ME object-serialization throughput. Calibrated from the SM break-up:
  /// serialization is 26-33% of a ~370 ms per-hop time for a ~1 KB message.
  double serialize_us_per_byte = 100.0;
  double serialize_base_us = 500.0;

  // --- Bluetooth -------------------------------------------------------
  /// Active inquiry (device discovery). 13 s at this draw dominates the
  /// 5.27 J on-demand BT get of Table 2.
  double bt_inquiry_power_mw = 360.0;
  SimDuration bt_inquiry_duration = std::chrono::milliseconds{13'000};
  /// SDP service discovery: ~1.12 s in the paper.
  double bt_sdp_power_mw = 300.0;
  SimDuration bt_sdp_duration = std::chrono::milliseconds{1'120};
  /// Maintained ACL link in low-power (sniff) mode.
  double bt_link_power_mw = 8.0;
  /// Active data transfer burst.
  double bt_transfer_power_mw = 300.0;
  /// Effective application-level BT throughput (J2ME RFCOMM), bits/s.
  double bt_throughput_bps = 57'600.0;
  /// L2CAP-ish segmentation: payload per baseband-visible segment and the
  /// per-segment protocol overhead added on the wire. The paper attributes
  /// the higher intSensor cost to exactly this segmentation of 340 B NMEA.
  int bt_segment_payload_bytes = 96;
  int bt_segment_overhead_bytes = 16;
  /// Per-segment radio overhead energy (TX wakeup, header processing,
  /// reassembly) charged to each endpoint. This is what makes the 340 B
  /// segmented NMEA stream cost visibly more than the 136 B item polls
  /// (Table 2, intSensor vs adHocNetwork periodic).
  double bt_segment_energy_mj = 10.0;
  /// Connection establishment (page) latency once the device is known.
  SimDuration bt_connect_latency = std::chrono::milliseconds{18};
  /// Service-record registration cost: Table 1 reports publishCxtItem
  /// BT-based at 140.359 ms (DataElement + SDDB registration).
  SimDuration bt_register_latency = std::chrono::milliseconds{140};

  // --- WiFi (802.11b, Nokia 9500 only) ----------------------------------
  /// "having WiFi connected at full signal ... drains a constant current of
  /// 300 mA, which leads to an average power consumption of 1190 mW"
  /// (with backlight on). 1190 - 76.20 = 1113.8 attributable to WiFi.
  double wifi_connected_power_mw = 1113.8;
  /// Effective SM-over-WiFi transfer throughput; calibrated so transfer
  /// is 51-54% of SM round-trip time (Table 1 break-up).
  double wifi_throughput_bps = 32'000.0;
  /// Per-hop TCP-ish connection establishment (4-5% of hop time).
  SimDuration wifi_connect_latency = std::chrono::milliseconds{17};
  /// Publishing a context item as an SM tag: "simply creating a new SM
  /// tag and storing its name and value in the TagSpace hashtable" —
  /// Table 1 measures 0.130 ms.
  SimDuration sm_tag_publish_cost = std::chrono::microseconds{130};
  /// J2ME thread-switching overhead per hop (12-14% of hop time).
  SimDuration wifi_thread_switch = std::chrono::milliseconds{48};

  // --- Cellular (GSM/GPRS/UMTS) -----------------------------------------
  /// Paging peaks with the GSM radio on: "peaks of 450-481 mW and every
  /// 50-60 sec".
  double cell_paging_peak_mw_lo = 450.0;
  double cell_paging_peak_mw_hi = 481.0;
  SimDuration cell_paging_period_lo = std::chrono::seconds{50};
  SimDuration cell_paging_period_hi = std::chrono::seconds{60};
  SimDuration cell_paging_burst = std::chrono::milliseconds{700};
  /// Radio-resource-control power states. The 1000 mW DCH figure matches
  /// the paper's "maximum power consumption ... when the connection is
  /// opened and the request for the item is sent, is 1000 mW". Tail timers
  /// are what make the measured 14.076 J per on-demand UMTS item.
  double cell_connect_power_mw = 900.0;
  double cell_dch_power_mw = 1000.0;
  double cell_dch_tail_power_mw = 800.0;
  double cell_fach_power_mw = 450.0;
  SimDuration cell_dch_tail = std::chrono::seconds{8};
  SimDuration cell_fach_tail = std::chrono::seconds{10};
  /// Connection setup latency: lognormal, heavy-tailed — the paper reports
  /// extInfra latencies "ranging from 703 msec up to 2766 msec".
  double cell_connect_mu_ms = 6.95;    // ln-space median ~1043 ms
  double cell_connect_sigma = 0.35;
  /// Uplink/downlink effective throughput (UMTS, application level).
  double cell_throughput_bps = 64'000.0;
  /// One-way core-network + server turnaround.
  SimDuration cell_server_turnaround = std::chrono::milliseconds{120};
};

/// Nokia 6630 (Symbian 8.0a, 220 MHz, WCDMA/EDGE, 9 MB RAM) — the phone
/// used for all measurements except WiFi.
[[nodiscard]] PhoneProfile Nokia6630();

/// Nokia 7610 (Symbian 7.0s, 123 MHz, GPRS, 9 MB RAM).
[[nodiscard]] PhoneProfile Nokia7610();

/// Nokia 9500 communicator (Symbian 7.0s, 150 MHz, WLAN 802.11b/EDGE,
/// 64 MB RAM) — the WiFi-capable testbed device.
[[nodiscard]] PhoneProfile Nokia9500();

}  // namespace contory::phone
