#include "obs/chrome_trace.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "obs/observability.hpp"

namespace contory::obs {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::int64_t Micros(SimTime t) { return t.time_since_epoch().count(); }

/// The id of the tree root `id` transitively belongs to: follow parents
/// while they name *finished* spans; an unknown parent (still open, or
/// dropped from the bounded deque) becomes the track id itself, which
/// still groups siblings together.
std::uint64_t ResolveRoot(
    std::uint64_t id,
    const std::unordered_map<std::uint64_t, std::uint64_t>& parent_of) {
  std::uint64_t cur = id;
  for (;;) {
    const auto it = parent_of.find(cur);
    if (it == parent_of.end() || it->second == 0) return cur;
    cur = it->second;
  }
}

}  // namespace

std::string ChromeTraceJson() {
  const QueryTracer& tracer = Observability::tracer();
  const FlightRecorder& recorder = Observability::recorder();

  std::unordered_map<std::uint64_t, std::uint64_t> parent_of;
  for (const Span& span : tracer.finished()) {
    parent_of[span.id] = span.parent;
  }

  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += event;
  };

  emit("{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"contory\"}}");
  for (const Span& span : tracer.finished()) {
    if (span.parent != 0) continue;
    emit("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(span.id) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         EscapeJson(span.query_id) + "\"}}");
  }

  for (const Span& span : tracer.finished()) {
    std::string name = span.name;
    if (!span.mechanism.empty()) name += ':' + span.mechanism;
    std::string event = "{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
                        std::to_string(ResolveRoot(span.id, parent_of)) +
                        ", \"name\": \"" + EscapeJson(name) +
                        "\", \"cat\": \"span\", \"ts\": " +
                        std::to_string(Micros(span.start)) +
                        ", \"dur\": " +
                        std::to_string((span.end - span.start).count());
    event += ", \"args\": {\"query\": \"" + EscapeJson(span.query_id) +
             "\", \"status\": \"" + EscapeJson(span.status) + "\"";
    event += ", \"energy_j\": " + FormatDouble(span.energy_joules());
    if (span.items != 0) {
      event += ", \"items\": " + std::to_string(span.items);
    }
    if (!span.notes.empty()) {
      std::string notes;
      for (const std::string& note : span.notes) {
        if (!notes.empty()) notes += "; ";
        notes += note;
      }
      event += ", \"notes\": \"" + EscapeJson(notes) + "\"";
    }
    event += "}}";
    emit(event);
  }

  const auto& columns = recorder.columns();
  for (const FlightRecorder::Frame& frame : recorder.frames()) {
    for (std::size_t i = 0; i < frame.values.size() && i < columns.size();
         ++i) {
      emit("{\"ph\": \"C\", \"pid\": 1, \"name\": \"" +
           EscapeJson(columns[i].key) + "\", \"ts\": " +
           std::to_string(Micros(frame.t)) + ", \"args\": {\"value\": " +
           FormatDouble(frame.values[i]) + "}}");
    }
  }

  out += "\n]}\n";
  return out;
}

bool ExportChromeTrace(const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << ChromeTraceJson();
  return static_cast<bool>(file);
}

}  // namespace contory::obs
