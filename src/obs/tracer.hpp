// QueryTracer: per-query lifecycle spans.
//
// Every admitted query owns exactly one root span, opened at admission
// and closed exactly once at the QueryTable's terminal Completion. Child
// spans nest under the root across the pipeline seams:
//
//   query (root) ....... admission -> terminal Completion
//     provision:<mech> .. facade assignment -> facade finished (one per
//                         mechanism ever assigned; carries item counts)
//     failover .......... ACTIVE -> FAILING_OVER window, closed with the
//                         outcome (switched / degraded / exhausted)
//     degraded .......... stale-served window, closed on recovery/finish
//
// Spans carry sim-time start/end, the provisioning mechanism, fault
// annotations (the FaultInjector notes every transition on all open
// roots), and energy attributed through the per-query EnergyProbe (the
// device's energy ledger sampled at open and close) — which is exactly
// the paper's Table 1 (per-operation latency) and Table 2 (per-item
// energy) accounting, per query instead of per bench.
//
// Span times are *simulated* time: admission/planning happen inside one
// simulation event and therefore produce zero-width spans by design;
// the measurable content lives in provision/failover/degraded windows
// and the root's full lifetime.
//
// Cost discipline: spans are identified by plain uint64 handles the
// instrumented objects keep (QueryRecord.obs), and handles are allocated
// sequentially, so open spans live in a dense chunked window indexed by
// (id - base) — opening a span is a couple of sequential cache-line
// writes, with no hashing and no per-span allocation. Long-lived spans
// whose window chunk would otherwise pin memory are compacted into an
// old-generation map (bounded by *concurrently open* spans, not by spans
// ever started).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace contory::obs {

struct Span {
  /// Samples the owning device's cumulative energy (Joules). Set on open
  /// root spans and on hop spans (which meter the *sending* device, not
  /// the query's owner); cleared at close so retained spans never call
  /// into torn-down devices. Plain stage spans read their root's probe.
  std::function<double()> probe;
  std::uint64_t id = 0;
  /// 0 for root spans; the root's id for stage spans.
  std::uint64_t parent = 0;
  std::string query_id;
  /// "query" for roots; "provision", "failover", "degraded", ... else.
  std::string name;
  /// SourceSelName of the mechanism, or "" when not mechanism-bound.
  std::string mechanism;
  SimTime start{};
  SimTime end{};
  /// Terminal status, set at close ("ok", "ACTIVE", "failed: ...").
  std::string status;
  /// Free-form annotations (fault transitions, switches, cancel notes).
  std::vector<std::string> notes;
  double energy_start_j = 0.0;
  double energy_end_j = 0.0;
  /// Context items delivered while this span was open.
  std::uint64_t items = 0;
  bool open = true;

  [[nodiscard]] double energy_joules() const noexcept {
    return energy_end_j - energy_start_j;
  }
  [[nodiscard]] SimDuration duration() const noexcept { return end - start; }
};

class QueryTracer {
 public:
  /// Samples the owning device's cumulative energy (Joules); wired per
  /// query at BeginQuery (the QueryTable holds its factory's probe).
  using EnergyProbe = std::function<double()>;

  QueryTracer() = default;
  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Opens the root span for `query_id`. Returns its handle (never 0).
  std::uint64_t BeginQuery(const std::string& query_id, SimTime now,
                           EnergyProbe probe = {});

  /// BeginQuery for deferred opens: the caller supplies the admission
  /// time and the energy sample captured then, so a root span
  /// materialized after the fact (worker-mode admission defers tracer
  /// work to the simulation thread) still carries its true window.
  std::uint64_t BeginQueryAt(const std::string& query_id, SimTime start,
                             double energy_start_j, EnergyProbe probe = {});

  /// Opens a stage span nested under root `root_id`. Energy is sampled
  /// through the root's probe. Returns 0 (a harmless no-op handle) when
  /// the root is unknown or already closed.
  std::uint64_t BeginStage(std::uint64_t root_id, const char* name,
                           const char* mechanism, SimTime now);

  /// BeginStage for deferred opens: the caller supplies the window's
  /// start time and opening energy sample (captured when the stage
  /// logically began), so materializing an already-running stage does
  /// not misattribute its time or energy window.
  std::uint64_t BeginStageAt(std::uint64_t root_id, const char* name,
                             const char* mechanism, SimTime start,
                             double energy_start_j);

  /// Opens a hop span nested under *any* open span (`parent_id` may be a
  /// root or a stage — SM hop chains hang off the provision span when one
  /// exists). Unlike BeginStage, the span carries its own EnergyProbe:
  /// hops are sent by a different device than the one owning the query
  /// root, so energy is sampled from the sender's ledger at open and
  /// close. Returns 0 when the parent is unknown or already closed.
  std::uint64_t BeginHop(std::uint64_t parent_id, std::string name,
                         SimTime now, EnergyProbe probe = {});

  /// Appends a note to an open span; no-op for unknown/closed handles.
  void AddNote(std::uint64_t span_id, std::string note);
  /// Annotates every open *root* span (fault transitions are global
  /// events; each live query records the faults it lived through).
  void NoteOpenRoots(const std::string& note);
  /// Counts delivered items on an open span.
  void AddItems(std::uint64_t span_id, std::uint64_t n = 1);

  /// Closes a stage span; returns the finished span (valid until the
  /// next tracer call) or nullptr when `span_id` is 0/unknown. Closing
  /// an already-closed span is counted in double_closes().
  const Span* EndStage(std::uint64_t span_id, SimTime now,
                       std::string status);
  /// Closes the root span exactly once; same contract as EndStage.
  const Span* EndQuery(std::uint64_t root_id, SimTime now,
                       std::string status);

  // --- Introspection (tests, exporters, bench/table12_report) ----------
  [[nodiscard]] std::size_t open_count() const noexcept {
    return open_count_;
  }
  /// Finished spans in completion order, bounded by capacity (oldest
  /// dropped first; drops counted in spans_dropped()).
  [[nodiscard]] const std::deque<Span>& finished() const noexcept {
    return finished_;
  }
  /// All finished spans of one query, roots and stages.
  [[nodiscard]] std::vector<Span> FinishedFor(
      const std::string& query_id) const;
  [[nodiscard]] const Span* FindOpen(std::uint64_t span_id) const;
  [[nodiscard]] std::uint64_t spans_started() const noexcept {
    return started_;
  }
  [[nodiscard]] std::uint64_t spans_dropped() const noexcept {
    return dropped_;
  }
  /// Close attempts on already-closed (or force-closed) spans. A nonzero
  /// value means an instrumentation site fired twice for one lifecycle.
  [[nodiscard]] std::uint64_t double_closes() const noexcept {
    return double_closes_;
  }
  /// Long-lived open spans compacted out of the dense window (see
  /// kMaxWindowChunks). Bounded by *concurrently open* spans; tests
  /// assert it drains to zero once everything closes or Reset() runs.
  [[nodiscard]] std::size_t old_generation_size() const noexcept {
    return old_.size();
  }

  void SetCapacity(std::size_t finished_cap);
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  void Reset();

 private:
  /// Open spans live in a dense window of fixed chunks: slot index is
  /// (id - base_), chunks are appended as ids grow and popped from the
  /// front once every span in them has closed. A slot with id == 0 is
  /// empty (pristine: closed slots are reset on close, so reused chunks
  /// never leak stale field values into new spans).
  static constexpr std::size_t kChunkSpans = 256;  // power of two
  /// Window bound: beyond this many chunks the front chunk's still-open
  /// spans are compacted into old_ so churn can't grow memory without
  /// bound (one immortal query must not pin every chunk after it).
  static constexpr std::size_t kMaxWindowChunks = 64;
  static constexpr std::size_t kSpareChunks = 2;
  struct Chunk {
    std::array<Span, kChunkSpans> slots;
    std::size_t live = 0;
  };

  std::uint64_t InsertStage(const Span& root_span, std::uint64_t root_id,
                            const char* name, const char* mechanism,
                            SimTime start, double energy_start_j);
  const Span* Close(std::uint64_t span_id, SimTime now, std::string status,
                    bool is_root);
  void PushFinished(Span&& span);

  /// Slot for freshly-allocated id `id` (always the next sequential id).
  Span& EmplaceOpen(std::uint64_t id);
  [[nodiscard]] Span* FindOpenSlot(std::uint64_t span_id);
  [[nodiscard]] const Span* FindOpenSlot(std::uint64_t span_id) const;
  /// Moves the span out and empties its slot; false when not open.
  bool TakeOpen(std::uint64_t span_id, Span& out);
  void AppendChunk();
  void TrimFront();

  std::deque<std::unique_ptr<Chunk>> window_;
  std::vector<std::unique_ptr<Chunk>> spares_;
  /// Long-lived spans evicted from the window (see kMaxWindowChunks).
  std::unordered_map<std::uint64_t, Span> old_;
  /// Id of window_[0].slots[0]; always chunk-aligned relative to id 1.
  std::uint64_t base_ = 1;
  std::size_t open_count_ = 0;
  std::deque<Span> finished_;
  std::uint64_t next_id_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t double_closes_ = 0;
  std::size_t cap_ = 8192;
};

}  // namespace contory::obs
