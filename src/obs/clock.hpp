// Process-wide simulated-clock accessor.
//
// Several cross-cutting facilities need "the current sim time" without a
// sim::Simulation reference in scope: the log-line prefix
// (Log::SetTimeSource), QueryTracer spans begun from modules that only
// see a reference object, and op-latency metrics recorded in leaf
// components like CxtPublisher. Before this accessor existed each of
// them could be handed a *different* time source (or none), so a bench
// that installed the log clock but not the tracer clock produced spans
// and log lines that disagreed. obs::Clock is the single installation
// point: Install() wires everything, including Log::SetTimeSource, from
// one function, so mismatched sources are impossible by construction.
//
// testbed::World installs its Simulation on construction and uninstalls
// on destruction (token-guarded, so a short-lived inner World cannot
// strand a long-lived outer one without a clock).
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.hpp"

namespace contory::obs {

class Clock {
 public:
  using Source = std::function<SimTime()>;

  /// Installs `now` as THE process-wide sim-time source and wires the
  /// log prefix (Log::SetTimeSource) to the same function. Returns a
  /// token identifying this installation.
  static std::uint64_t Install(Source now);

  /// Removes the source installed under `token`; a no-op when a newer
  /// installation has already replaced it (nested Worlds).
  static void Uninstall(std::uint64_t token);

  [[nodiscard]] static bool installed() noexcept;

  /// Current simulated time; kSimEpoch when nothing is installed.
  [[nodiscard]] static SimTime Now();
};

}  // namespace contory::obs
