#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace contory::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* KindName(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter: return "counter";
    case MetricsRegistry::Kind::kGauge: return "gauge";
    case MetricsRegistry::Kind::kHistogram: return "histogram";
  }
  return "?";
}

/// Prometheus metric names: the label block goes after the name; for
/// histograms the `le` label is appended inside the existing block.
std::string PromSeries(const std::string& name, const Labels& labels,
                       const std::string& extra_label = {}) {
  std::string out = name;
  if (labels.empty() && extra_label.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  if (!extra_label.empty()) {
    if (!first) out += ',';
    out += extra_label;
  }
  out += '}';
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    std::sort(bounds_.begin(), bounds_.end());
  }
}

void Histogram::Observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  stats_.Add(v);
}

double Histogram::Percentile(double p) const noexcept {
  const std::size_t n = stats_.count();
  if (n == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate inside bucket i. The overflow bucket has no upper
    // bound; report the observed maximum instead.
    if (i == bounds_.size()) return stats_.max();
    const double lo = i == 0 ? std::min(stats_.min(), bounds_[0])
                             : bounds_[i - 1];
    const double hi = bounds_[i];
    const double frac =
        (target - before) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return stats_.max();
}

void Histogram::Reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  stats_ = RunningStats{};
}

const std::vector<double>& DefaultLatencyBoundsMs() {
  static const std::vector<double> kBounds{
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,
      25.0, 50.0,  100., 250., 500., 1000., 2500.0, 5000.0, 15000.0, 60000.0};
  return kBounds;
}

const std::vector<double>& DefaultEnergyBoundsJ() {
  static const std::vector<double> kBounds{
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
      0.5,   1.0,    2.5,   5.0,  10.0,  25.0, 50.0};
  return kBounds;
}

const std::vector<double>& DefaultHopBounds() {
  static const std::vector<double> kBounds{1.0,  2.0,  3.0,  4.0,  5.0,
                                           6.0,  7.0,  8.0,  10.0, 12.0,
                                           16.0, 24.0, 32.0, 48.0, 64.0};
  return kBounds;
}

std::string MetricsRegistry::EncodeKey(const std::string& name,
                                       const Labels& labels) {
  std::string key = name;
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

MetricsRegistry::Slot& MetricsRegistry::GetSlot(
    const std::string& name, const Labels& labels, Kind kind,
    const std::vector<double>* bounds) {
  const std::string key = EncodeKey(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + key + "' already registered as " +
                             KindName(it->second.kind));
    }
    return it->second;
  }
  return CreateSlotLocked(name, labels, kind, bounds);
}

MetricsRegistry::Slot& MetricsRegistry::CreateSlotLocked(
    const std::string& name, const Labels& labels, Kind kind,
    const std::vector<double>* bounds) {
  // Cardinality guard: a labeled series past the per-name cap collapses
  // into the "other" overflow series (same keys, every value "other").
  // mu_ is held, so the capped-total counter is resolved inline rather
  // than through the public Get path.
  if (series_cap_ != 0 && !labels.empty()) {
    const bool is_overflow =
        std::all_of(labels.begin(), labels.end(),
                    [](const auto& kv) { return kv.second == "other"; });
    if (!is_overflow) {
      auto& minted = labeled_series_[name];
      if (minted >= series_cap_) {
        Counter& capped =
            *CreateSlotLocked("metrics_series_capped_total", {},
                              Kind::kCounter, nullptr)
                 .counter;
        capped.Inc();
        Labels overflow = labels;
        for (auto& [k, v] : overflow) v = "other";
        const std::string overflow_key = EncodeKey(name, overflow);
        const auto it = entries_.find(overflow_key);
        if (it != entries_.end()) {
          if (it->second.kind != kind) {
            throw std::logic_error("metric '" + overflow_key +
                                   "' already registered as " +
                                   KindName(it->second.kind));
          }
          return it->second;
        }
        return CreateSlotLocked(name, overflow, kind, bounds);
      }
      ++minted;
    }
  }
  Slot slot;
  slot.name = name;
  slot.labels = labels;
  std::sort(slot.labels.begin(), slot.labels.end());
  slot.kind = kind;
  switch (kind) {
    case Kind::kCounter: slot.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: slot.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      slot.histogram = std::make_unique<Histogram>(
          bounds != nullptr ? *bounds : DefaultLatencyBoundsMs());
      break;
  }
  return entries_.emplace(EncodeKey(name, labels), std::move(slot))
      .first->second;
}

void MetricsRegistry::SetSeriesCap(std::size_t cap) {
  const std::lock_guard<std::mutex> lock(mu_);
  series_cap_ = cap;
}

const MetricsRegistry::Slot* MetricsRegistry::FindSlot(
    const std::string& name, const Labels& labels, Kind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(EncodeKey(name, labels));
  if (it == entries_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return *GetSlot(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  return *GetSlot(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::vector<double>& bounds) {
  return *GetSlot(name, labels, Kind::kHistogram, &bounds).histogram;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const Labels& labels) const {
  const Slot* slot = FindSlot(name, labels, Kind::kCounter);
  return slot != nullptr ? slot->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const Labels& labels) const {
  const Slot* slot = FindSlot(name, labels, Kind::kGauge);
  return slot != nullptr ? slot->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  const Slot* slot = FindSlot(name, labels, Kind::kHistogram);
  return slot != nullptr ? slot->histogram.get() : nullptr;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, slot] : entries_) {
    Entry entry;
    entry.name = slot.name;
    entry.labels = slot.labels;
    entry.kind = slot.kind;
    entry.counter = slot.counter.get();
    entry.gauge = slot.gauge.get();
    entry.histogram = slot.histogram.get();
    out.push_back(std::move(entry));
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [key, slot] : entries_) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"";
    out += key;
    out += "\": ";
    switch (slot.kind) {
      case Kind::kCounter:
        out += std::to_string(slot.counter->value());
        break;
      case Kind::kGauge:
        out += FormatDouble(slot.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *slot.histogram;
        out += "{\"count\": " + std::to_string(h.count());
        out += ", \"mean\": " + FormatDouble(h.stats().mean());
        out += ", \"ci90\": " + FormatDouble(h.stats().ConfidenceInterval90());
        out += ", \"min\": " + FormatDouble(h.stats().min());
        out += ", \"max\": " + FormatDouble(h.stats().max());
        out += ", \"p50\": " + FormatDouble(h.Percentile(50));
        out += ", \"p95\": " + FormatDouble(h.Percentile(95));
        out += ", \"p99\": " + FormatDouble(h.Percentile(99));
        out += "}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // Group # TYPE headers by metric name; entries_ is key-sorted so all
  // label variants of one name are adjacent.
  std::string last_name;
  for (const auto& [key, slot] : entries_) {
    if (slot.name != last_name) {
      out += "# TYPE " + slot.name + ' ' + KindName(slot.kind) + '\n';
      last_name = slot.name;
    }
    switch (slot.kind) {
      case Kind::kCounter:
        out += PromSeries(slot.name, slot.labels) + ' ' +
               std::to_string(slot.counter->value()) + '\n';
        break;
      case Kind::kGauge:
        out += PromSeries(slot.name, slot.labels) + ' ' +
               FormatDouble(slot.gauge->value()) + '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *slot.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          out += PromSeries(slot.name + "_bucket", slot.labels,
                            "le=\"" + FormatDouble(h.bounds()[i]) + "\"") +
                 ' ' + std::to_string(cumulative) + '\n';
        }
        cumulative += h.bucket_counts().back();
        out += PromSeries(slot.name + "_bucket", slot.labels,
                          "le=\"+Inf\"") +
               ' ' + std::to_string(cumulative) + '\n';
        out += PromSeries(slot.name + "_sum", slot.labels) + ' ' +
               FormatDouble(h.stats().mean() *
                            static_cast<double>(h.count())) +
               '\n';
        out += PromSeries(slot.name + "_count", slot.labels) + ' ' +
               std::to_string(h.count()) + '\n';
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, slot] : entries_) {
    switch (slot.kind) {
      case Kind::kCounter: slot.counter->Reset(); break;
      case Kind::kGauge: slot.gauge->Reset(); break;
      case Kind::kHistogram: slot.histogram->Reset(); break;
    }
  }
}

}  // namespace contory::obs
