#include "obs/clock.hpp"

#include <utility>

#include "common/logging.hpp"

namespace contory::obs {
namespace {

Clock::Source g_source;
std::uint64_t g_token = 0;

}  // namespace

std::uint64_t Clock::Install(Source now) {
  g_source = std::move(now);
  Log::SetTimeSource(g_source);
  return ++g_token;
}

void Clock::Uninstall(std::uint64_t token) {
  if (token != g_token) return;  // a newer installation owns the clock
  g_source = nullptr;
  Log::SetTimeSource(nullptr);
}

bool Clock::installed() noexcept { return static_cast<bool>(g_source); }

SimTime Clock::Now() { return g_source ? g_source() : kSimEpoch; }

}  // namespace contory::obs
