#include "obs/tracer.hpp"

#include <utility>

namespace contory::obs {

std::uint64_t QueryTracer::BeginQuery(const std::string& query_id,
                                      SimTime now, EnergyProbe probe) {
  const double energy = probe ? probe() : 0.0;
  return BeginQueryAt(query_id, now, energy, std::move(probe));
}

std::uint64_t QueryTracer::BeginQueryAt(const std::string& query_id,
                                        SimTime start, double energy_start_j,
                                        EnergyProbe probe) {
  const std::uint64_t id = next_id_++;
  ++started_;
  Span& span = EmplaceOpen(id);
  span.id = id;
  span.query_id = query_id;
  span.name = "query";
  span.start = start;
  span.energy_start_j = energy_start_j;
  span.probe = std::move(probe);
  return id;
}

std::uint64_t QueryTracer::BeginStage(std::uint64_t root_id, const char* name,
                                      const char* mechanism, SimTime now) {
  const Span* root = FindOpenSlot(root_id);
  if (root == nullptr) return 0;
  return InsertStage(*root, root_id, name, mechanism, now,
                     root->probe ? root->probe() : 0.0);
}

std::uint64_t QueryTracer::BeginStageAt(std::uint64_t root_id,
                                        const char* name,
                                        const char* mechanism, SimTime start,
                                        double energy_start_j) {
  const Span* root = FindOpenSlot(root_id);
  if (root == nullptr) return 0;
  return InsertStage(*root, root_id, name, mechanism, start,
                     energy_start_j);
}

std::uint64_t QueryTracer::InsertStage(const Span& root_span,
                                       std::uint64_t root_id,
                                       const char* name,
                                       const char* mechanism, SimTime start,
                                       double energy_start_j) {
  const std::uint64_t id = next_id_++;
  ++started_;
  // EmplaceOpen may compact the window and relocate the root span; copy
  // what the new span needs from it first.
  std::string query_id = root_span.query_id;
  Span& span = EmplaceOpen(id);
  span.id = id;
  span.parent = root_id;
  span.query_id = std::move(query_id);
  span.name = name;
  if (mechanism != nullptr) span.mechanism = mechanism;
  span.start = start;
  span.energy_start_j = energy_start_j;
  return id;
}

std::uint64_t QueryTracer::BeginHop(std::uint64_t parent_id, std::string name,
                                    SimTime now, EnergyProbe probe) {
  const Span* parent = FindOpenSlot(parent_id);
  if (parent == nullptr) return 0;
  const double energy = probe ? probe() : 0.0;
  // EmplaceOpen may compact the window and relocate the parent span; copy
  // what the new span needs from it first.
  std::string query_id = parent->query_id;
  const std::uint64_t id = next_id_++;
  ++started_;
  Span& span = EmplaceOpen(id);
  span.id = id;
  span.parent = parent_id;
  span.query_id = std::move(query_id);
  span.name = std::move(name);
  span.start = now;
  span.energy_start_j = energy;
  span.probe = std::move(probe);
  return id;
}

void QueryTracer::AddNote(std::uint64_t span_id, std::string note) {
  Span* span = FindOpenSlot(span_id);
  if (span != nullptr) span->notes.push_back(std::move(note));
}

void QueryTracer::NoteOpenRoots(const std::string& note) {
  for (const auto& chunk : window_) {
    for (Span& span : chunk->slots) {
      if (span.id != 0 && span.parent == 0) span.notes.push_back(note);
    }
  }
  for (auto& [id, span] : old_) {
    if (span.parent == 0) span.notes.push_back(note);
  }
}

void QueryTracer::AddItems(std::uint64_t span_id, std::uint64_t n) {
  Span* span = FindOpenSlot(span_id);
  if (span != nullptr) span->items += n;
}

const Span* QueryTracer::EndStage(std::uint64_t span_id, SimTime now,
                                  std::string status) {
  return Close(span_id, now, std::move(status), /*is_root=*/false);
}

const Span* QueryTracer::EndQuery(std::uint64_t root_id, SimTime now,
                                  std::string status) {
  return Close(root_id, now, std::move(status), /*is_root=*/true);
}

const Span* QueryTracer::Close(std::uint64_t span_id, SimTime now,
                               std::string status, bool is_root) {
  if (span_id == 0) return nullptr;  // the no-op handle, by contract
  Span span;
  if (!TakeOpen(span_id, span)) {
    // The id was real if it is below the allocator watermark — that is a
    // second close of a finished span, the bug double_closes() exists to
    // surface. Unknown garbage ids are ignored silently.
    if (span_id < next_id_) ++double_closes_;
    return nullptr;
  }
  span.end = now;
  span.status = std::move(status);
  span.open = false;
  if (is_root) {
    if (span.probe) span.energy_end_j = span.probe();
    // The probe usually references a device owned by some World; drop it
    // with the root so retained spans never call into torn-down objects.
    span.probe = nullptr;
  } else if (span.probe) {
    // Hop spans meter the sending device through their own probe.
    span.energy_end_j = span.probe();
    span.probe = nullptr;
  } else {
    const Span* root = FindOpenSlot(span.parent);
    if (root != nullptr && root->probe) {
      span.energy_end_j = root->probe();
    }
  }
  PushFinished(std::move(span));
  return &finished_.back();
}

Span& QueryTracer::EmplaceOpen(std::uint64_t id) {
  std::size_t offset = static_cast<std::size_t>(id - base_);
  if (offset / kChunkSpans >= window_.size()) {
    AppendChunk();  // may compact the front, moving base_
    offset = static_cast<std::size_t>(id - base_);
  }
  Chunk& chunk = *window_[offset / kChunkSpans];
  Span& span = chunk.slots[offset % kChunkSpans];
  ++chunk.live;
  ++open_count_;
  return span;
}

void QueryTracer::AppendChunk() {
  if (!spares_.empty()) {
    window_.push_back(std::move(spares_.back()));
    spares_.pop_back();
  } else {
    window_.push_back(std::make_unique<Chunk>());
  }
  // Keep the window bounded: spans still open in the oldest chunk move
  // to the old generation, so one immortal query can't pin every chunk
  // allocated after it.
  while (window_.size() > kMaxWindowChunks) {
    Chunk& front = *window_.front();
    for (Span& span : front.slots) {
      if (span.id != 0) {
        old_.emplace(span.id, std::move(span));
        span = Span{};
        --front.live;
      }
    }
    window_.pop_front();
    base_ += kChunkSpans;
  }
}

void QueryTracer::TrimFront() {
  // Only fully-closed, fully-populated chunks are released; the tail
  // chunk (window size 1) is still being filled and keeps its slots.
  while (window_.size() > 1 && window_.front()->live == 0) {
    if (spares_.size() < kSpareChunks) {
      spares_.push_back(std::move(window_.front()));
    }
    window_.pop_front();
    base_ += kChunkSpans;
  }
}

Span* QueryTracer::FindOpenSlot(std::uint64_t span_id) {
  if (span_id >= base_) {
    const std::size_t offset = static_cast<std::size_t>(span_id - base_);
    const std::size_t chunk = offset / kChunkSpans;
    if (chunk >= window_.size()) return nullptr;
    Span& span = window_[chunk]->slots[offset % kChunkSpans];
    return span.id == span_id ? &span : nullptr;
  }
  const auto it = old_.find(span_id);
  return it != old_.end() ? &it->second : nullptr;
}

const Span* QueryTracer::FindOpenSlot(std::uint64_t span_id) const {
  return const_cast<QueryTracer*>(this)->FindOpenSlot(span_id);
}

bool QueryTracer::TakeOpen(std::uint64_t span_id, Span& out) {
  if (span_id >= base_) {
    const std::size_t offset = static_cast<std::size_t>(span_id - base_);
    const std::size_t chunk = offset / kChunkSpans;
    if (chunk >= window_.size()) return false;
    Chunk& c = *window_[chunk];
    Span& span = c.slots[offset % kChunkSpans];
    if (span.id != span_id) return false;
    out = std::move(span);
    // Reset the slot so a reused chunk never leaks stale fields (moved-
    // from SSO strings keep their content) and id 0 marks it empty.
    span = Span{};
    --c.live;
    --open_count_;
    TrimFront();
    return true;
  }
  const auto it = old_.find(span_id);
  if (it == old_.end()) return false;
  out = std::move(it->second);
  old_.erase(it);
  --open_count_;
  return true;
}

void QueryTracer::PushFinished(Span&& span) {
  // cap_ == 0 still keeps the most recent span so the pointer returned
  // by Close() stays valid until the next tracer call.
  const std::size_t keep = cap_ == 0 ? 1 : cap_;
  while (finished_.size() >= keep) {
    finished_.pop_front();
    ++dropped_;
  }
  finished_.push_back(std::move(span));
}

std::vector<Span> QueryTracer::FinishedFor(const std::string& query_id) const {
  std::vector<Span> out;
  for (const Span& span : finished_) {
    if (span.query_id == query_id) out.push_back(span);
  }
  return out;
}

const Span* QueryTracer::FindOpen(std::uint64_t span_id) const {
  return FindOpenSlot(span_id);
}

void QueryTracer::SetCapacity(std::size_t finished_cap) {
  cap_ = finished_cap;
  while (finished_.size() > cap_) {
    finished_.pop_front();
    ++dropped_;
  }
}

void QueryTracer::Reset() {
  window_.clear();
  spares_.clear();
  old_.clear();
  base_ = 1;
  open_count_ = 0;
  finished_.clear();
  next_id_ = 1;
  started_ = 0;
  dropped_ = 0;
  double_closes_ = 0;
}

}  // namespace contory::obs
