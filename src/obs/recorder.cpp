#include "obs/recorder.hpp"

#include <cstdio>
#include <utility>

#include "obs/observability.hpp"

namespace contory::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void FlightRecorder::Configure(RecorderConfig config) {
  config_ = std::move(config);
  if (config_.capacity == 0) config_.capacity = 1;
  Reset();
}

bool FlightRecorder::Matches(const std::string& name) const {
  if (config_.prefixes.empty()) return true;
  for (const std::string& prefix : config_.prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::size_t FlightRecorder::ColumnIndex(const std::string& key,
                                        const char* kind) {
  const auto it = column_index_.find(key);
  if (it != column_index_.end()) return it->second;
  const std::size_t index = columns_.size();
  columns_.push_back(Column{key, kind, 0.0});
  column_index_.emplace(key, index);
  return index;
}

void FlightRecorder::Record(std::size_t column, double value) {
  Frame& frame = frames_.back();
  if (column >= frame.values.size()) frame.values.resize(column + 1, 0.0);
  frame.values[column] = value;
}

void FlightRecorder::Sample(SimTime now) {
  auto& registry = Observability::metrics();
  frames_.push_back(Frame{now, {}});
  frames_.back().values.reserve(columns_.size());
  for (const MetricsRegistry::Entry& entry : registry.Entries()) {
    if (!Matches(entry.name)) continue;
    const std::string key = MetricsRegistry::EncodeKey(entry.name,
                                                       entry.labels);
    switch (entry.kind) {
      case MetricsRegistry::Kind::kCounter: {
        const std::size_t i = ColumnIndex(key, "counter");
        const double raw = static_cast<double>(entry.counter->value());
        Record(i, raw - columns_[i].last_raw);
        columns_[i].last_raw = raw;
        break;
      }
      case MetricsRegistry::Kind::kGauge: {
        const std::size_t i = ColumnIndex(key, "gauge");
        Record(i, entry.gauge->value());
        break;
      }
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        Record(ColumnIndex(key + "/p50", "p50"), h.Percentile(50));
        Record(ColumnIndex(key + "/p99", "p99"), h.Percentile(99));
        const std::size_t i = ColumnIndex(key + "/count", "count");
        const double raw = static_cast<double>(h.count());
        Record(i, raw - columns_[i].last_raw);
        columns_[i].last_raw = raw;
        break;
      }
    }
  }
  ++samples_;
  while (frames_.size() > config_.capacity) {
    frames_.pop_front();
    ++dropped_;
  }
  // Self-metrics (visible in the *next* frame and in final snapshots).
  registry.GetGauge("recorder_frames")
      .Set(static_cast<double>(frames_.size()));
  registry.GetGauge("recorder_columns")
      .Set(static_cast<double>(columns_.size()));
  registry.GetGauge("recorder_frames_dropped")
      .Set(static_cast<double>(dropped_));
  registry.GetCounter("recorder_samples_total").Inc();
}

std::string FlightRecorder::ToJson() const {
  std::string out = "{\n  \"columns\": [";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"' + columns_[i].key + '"';
  }
  out += "],\n  \"kinds\": [";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"' + columns_[i].kind + '"';
  }
  out += "],\n  \"sampled\": " + std::to_string(samples_);
  out += ",\n  \"dropped\": " + std::to_string(dropped_);
  out += ",\n  \"capacity\": " + std::to_string(config_.capacity);
  out += ",\n  \"frames\": [";
  bool first = true;
  for (const Frame& frame : frames_) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"t_ms\": " +
           FormatDouble(ToMillis(frame.t.time_since_epoch())) + ", \"v\": [";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i != 0) out += ", ";
      // Columns that appeared after this frame was sampled have no
      // value here; null keeps the row width uniform for plotters.
      out += i < frame.values.size() ? FormatDouble(frame.values[i])
                                     : std::string("null");
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void FlightRecorder::Reset() {
  columns_.clear();
  column_index_.clear();
  frames_.clear();
  samples_ = 0;
  dropped_ = 0;
}

}  // namespace contory::obs
