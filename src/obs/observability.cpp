#include "obs/observability.hpp"

namespace contory::obs {

std::atomic<bool> Observability::enabled_{true};

MetricsRegistry& Observability::metrics() {
  static MetricsRegistry registry;
  return registry;
}

QueryTracer& Observability::tracer() {
  static QueryTracer tracer;
  return tracer;
}

FlightRecorder& Observability::recorder() {
  static FlightRecorder recorder;
  return recorder;
}

void Observability::ResetForTest() {
  metrics().Reset();
  tracer().Reset();
  recorder().Reset();
  enabled_ = true;
}

}  // namespace contory::obs
