// FlightRecorder: periodic time-series snapshots of the metrics registry.
//
// The registry is a point-in-time snapshot; the paper's evaluation (and
// every bench built on it so far) reports end-of-run aggregates. After
// the city tier, the interesting behavior is *temporal* — shed-level
// oscillation under a spike, grid occupancy under commuter flows, ring
// high-watermarks during a batch — which a final snapshot cannot show.
// The recorder samples a configurable subset of registry series on a sim
// clock tick into a bounded in-memory ring of frames:
//
//   counters   -> per-frame deltas (the increment since the last sample)
//   gauges     -> raw values
//   histograms -> three derived columns: p50, p99, and per-frame count
//                 delta (suffixed "/p50", "/p99", "/count")
//
// The ring is bounded (RecorderConfig::capacity); once full, the oldest
// frame drops and frames_dropped() counts it — the same drop-accounting
// discipline as the tracer's finished deque. ToJson() exports the whole
// ring as a columnar time series; obs::ExportChromeTrace renders it as
// Perfetto counter tracks.
//
// Driving it: contory_obs cannot depend on contory_sim, so the recorder
// exposes a plain Sample(now) and the owner (a bench, a scenario) wires
// it to a sim::PeriodicTask — or calls it at any event boundary it
// likes (scale_queries --overload samples per submit batch, since its
// three phases run on a frozen sim clock).
//
// Threading: Sample() reads histograms, which are simulation-thread-only
// by the registry's contract, so Sample() is simulation-thread-only too.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace contory::obs {

class MetricsRegistry;

struct RecorderConfig {
  /// Frames retained; the oldest drops beyond this (drops counted).
  std::size_t capacity = 1024;
  /// Record only series whose *name* starts with one of these prefixes;
  /// empty records every series in the registry.
  std::vector<std::string> prefixes;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Applies `config` and clears any recorded frames (a new column
  /// universe invalidates old rows).
  void Configure(RecorderConfig config);
  [[nodiscard]] const RecorderConfig& config() const noexcept {
    return config_;
  }

  /// One column of the recording. Columns are discovered at sample time
  /// and only ever appended (a series registered mid-run gets a new
  /// column; frames sampled before it are padded with null in ToJson).
  struct Column {
    /// Registry series key ("name{k=\"v\"}"), plus "/p50" "/p99"
    /// "/count" for histogram-derived columns.
    std::string key;
    /// "counter" (delta), "gauge" (raw), "p50", "p99", "count" (delta).
    std::string kind;
    /// Last raw value seen, for delta encoding.
    double last_raw = 0.0;
  };

  struct Frame {
    SimTime t{};
    /// Indexed like columns(); shorter when columns appeared later.
    std::vector<double> values;
  };

  /// Snapshots every matching registry series at sim time `now`.
  /// Simulation thread only (histograms are not atomic).
  void Sample(SimTime now);

  [[nodiscard]] const std::vector<Column>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::deque<Frame>& frames() const noexcept {
    return frames_;
  }
  [[nodiscard]] std::uint64_t samples_total() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return dropped_;
  }

  /// Columnar export:
  /// {"columns": [...], "kinds": [...], "sampled": N, "dropped": M,
  ///  "frames": [{"t_ms": 12.5, "v": [..., null]}, ...]}
  [[nodiscard]] std::string ToJson() const;

  /// Clears frames, columns, and counters; keeps the configuration.
  void Reset();

 private:
  void Record(std::size_t column, double value);
  [[nodiscard]] bool Matches(const std::string& name) const;
  std::size_t ColumnIndex(const std::string& key, const char* kind);

  RecorderConfig config_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, std::size_t> column_index_;
  std::deque<Frame> frames_;
  std::uint64_t samples_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace contory::obs
