// Chrome trace-event export: finished spans + recorder series as JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Rendering rules:
//   - every finished tracer span becomes one complete event (ph "X"),
//     ts/dur in microseconds of *simulated* time, pid 1, tid = the id of
//     the span's transitively-resolved tree root — so one query's root,
//     provision stages and SM hop chain line up on one track, which is
//     exactly the "where did the FINDER's 15 hops actually go" view;
//   - each root gets a thread_name metadata record naming its query id;
//   - every flight-recorder column becomes a counter track (ph "C") with
//     one event per frame, so the shed-level / live-queries / occupancy
//     curves render under the spans they explain.
//
// Only *finished* spans export (the tracer's bounded deque; drops mean
// the head of a long run is missing — size it with SetCapacity). The
// export is a pure read: it never mutates tracer or recorder state.
#pragma once

#include <string>

namespace contory::obs {

/// The full trace-event JSON document ({"traceEvents": [...], ...}).
[[nodiscard]] std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`; false on I/O failure.
bool ExportChromeTrace(const std::string& path);

}  // namespace contory::obs
