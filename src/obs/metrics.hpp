// MetricsRegistry: counters, gauges and fixed-bucket latency histograms.
//
// The paper's whole evaluation (Sec. 6, Tables 1-2, Figs. 4-5) is
// per-operation latency and per-context-item energy attributed to each
// provisioning mechanism. The registry makes those first-class runtime
// objects instead of bespoke bench code: every metric is labeled (by
// mechanism intSensor/extInfra/adHocNetwork, by pipeline stage, ...),
// histograms carry both fixed buckets (p50/p95/p99) and a Welford
// RunningStats accumulator (common/stats.hpp) so any metric can render
// the paper's "Avg [90% CI]" cell format directly.
//
// Cost discipline (same as CLOG_*): instrumentation sites resolve their
// handle once — Get*() returns a reference that stays valid for the
// registry's lifetime, including across Reset() — and each update is a
// few arithmetic ops on plain members. The simulation is single-threaded
// so there are no locks at all; "lock-cheap" here means free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace contory::obs {

/// Label key/value pairs. Encoded sorted by key, so the same set in any
/// order names the same metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Counters and gauges are lock-free atomics: the worker-mode admission
/// stage (PipelineExecutor) increments them from several threads at once,
/// and a relaxed fetch_add costs the same as the old plain add on the
/// single-threaded deterministic path.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with a parallel Welford accumulator. Bucket i
/// counts observations <= bounds[i]; one implicit overflow bucket counts
/// the rest. Percentiles interpolate linearly inside the bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }
  /// p in (0, 100]; 0 when empty.
  [[nodiscard]] double Percentile(double p) const noexcept;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }
  /// The paper's table cell: "140.359 [0.337]".
  [[nodiscard]] std::string ToCell(int precision = 3) const {
    return stats_.ToCell(precision);
  }
  void Reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  RunningStats stats_;
};

/// Default histogram bounds for latencies in milliseconds: 10 us to 60 s,
/// roughly logarithmic — covers createCxtItem (0.078 ms) through BT
/// device discovery (~13 s).
[[nodiscard]] const std::vector<double>& DefaultLatencyBoundsMs();
/// Default bounds for per-operation energy in Joules: 1 mJ to 50 J
/// (Table 2 spans 0.099 J to 14.076 J).
[[nodiscard]] const std::vector<double>& DefaultEnergyBoundsJ();
/// Default bounds for small hop counts (sm_finder_hops): exact up to 16,
/// then coarse to 64.
[[nodiscard]] const std::vector<double>& DefaultHopBounds();

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. The reference
  /// stays valid for the registry's lifetime (Reset() zeroes values but
  /// never invalidates handles). Requesting an existing name with a
  /// different kind throws std::logic_error.
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::vector<double>& bounds =
                              DefaultLatencyBoundsMs());

  /// Lookup without creation; nullptr when the metric does not exist.
  [[nodiscard]] const Counter* FindCounter(const std::string& name,
                                           const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* FindGauge(const std::string& name,
                                       const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* FindHistogram(
      const std::string& name, const Labels& labels = {}) const;

  /// "name{k="v",...}" — the canonical identity (labels sorted by key).
  [[nodiscard]] static std::string EncodeKey(const std::string& name,
                                             const Labels& labels);

  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    const Counter* counter = nullptr;      // kind == kCounter
    const Gauge* gauge = nullptr;          // kind == kGauge
    const Histogram* histogram = nullptr;  // kind == kHistogram
  };
  /// Every metric, sorted by canonical key (deterministic across runs).
  [[nodiscard]] std::vector<Entry> Entries() const;

  /// One flat JSON object, keys in canonical order; histograms expand to
  /// {count, mean, ci90, min, max, p50, p95, p99}.
  [[nodiscard]] std::string ToJson() const;
  /// Prometheus text exposition (# TYPE lines, _bucket/_sum/_count for
  /// histograms).
  [[nodiscard]] std::string ToPrometheusText() const;

  /// Zeroes every value. Handles handed out by Get*() remain valid.
  void Reset();

  /// Caps how many *labeled* series one metric name may mint (unlabeled
  /// series are never capped). Beyond the cap, Get*() redirects to an
  /// overflow series with every label value replaced by "other" and
  /// bumps `metrics_series_capped_total` — so a per-client gauge like
  /// `overload_bucket_tokens{client}` cannot explode the registry at
  /// city scale. 0 = unlimited. Applies to series created after the
  /// call; existing series are never evicted.
  void SetSeriesCap(std::size_t cap);
  [[nodiscard]] std::size_t series_cap() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return series_cap_;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Slot {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Slot& GetSlot(const std::string& name, const Labels& labels, Kind kind,
                const std::vector<double>* bounds);
  /// Creation half of GetSlot, called with mu_ held. May redirect to the
  /// "other" overflow series when `name` is at its labeled-series cap.
  Slot& CreateSlotLocked(const std::string& name, const Labels& labels,
                         Kind kind, const std::vector<double>* bounds);
  [[nodiscard]] const Slot* FindSlot(const std::string& name,
                                     const Labels& labels, Kind kind) const;

  /// std::map: node-based (stable Slot addresses) and key-sorted
  /// (deterministic exporter output).
  std::map<std::string, Slot> entries_;
  /// Labeled series minted per metric name (overflow series excluded).
  std::map<std::string, std::size_t> labeled_series_;
  std::size_t series_cap_ = 64;
  /// Guards entries_ (slot creation/lookup and exporters). Hot-path
  /// updates go through the handed-out Counter/Gauge atomics and never
  /// take this — the lock only serializes handle resolution, which every
  /// instrumentation site caches, and cold exporter reads. Histograms
  /// are not atomic: Observe() remains simulation-thread-only.
  mutable std::mutex mu_;
};

}  // namespace contory::obs
