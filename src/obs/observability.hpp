// Observability master switch + the COBS() hook macro.
//
// Two gates, mirroring the CLOG_* discipline:
//
//   compile time — the CMake option CONTORY_OBS (default ON). OFF defines
//     CONTORY_OBS_DISABLED and COBS(stmt) becomes `if (false) stmt`:
//     dead-code-eliminated, but still parsed, so an OFF build cannot rot.
//   run time — Observability::Enable(bool) (default ON). When disabled,
//     every COBS() hook costs exactly one predictable branch.
//
// Instrumentation sites therefore always read:
//
//   COBS(Observability::metrics().GetCounter("queries_admitted_total").Inc());
//
// The registry and tracer are process-wide singletons: the simulation is
// single-threaded and the point of the registry is that bench tools and
// tests can read what the pipeline wrote without plumbing a handle
// through every constructor. Tests call ResetForTest() in SetUp.
#pragma once

#include <atomic>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/tracer.hpp"

namespace contory::obs {

class Observability {
 public:
  static void Enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool Enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The process-wide registry/tracer/recorder. Construction is lazy;
  /// references stay valid for the process lifetime.
  [[nodiscard]] static MetricsRegistry& metrics();
  [[nodiscard]] static QueryTracer& tracer();
  [[nodiscard]] static FlightRecorder& recorder();

  /// Zeroes the registry, clears the tracer (open window, old
  /// generation, finished deque) and the recorder ring, re-enables. For
  /// test SetUp and bench run boundaries.
  static void ResetForTest();

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace contory::obs

#if defined(CONTORY_OBS_DISABLED)
// Compiled out: the statement is parsed (so it cannot rot) and discarded.
#define COBS_ON() false
#else
#define COBS_ON() (::contory::obs::Observability::Enabled())
#endif

/// Guard an instrumentation statement: one branch when disabled.
#define COBS(stmt)        \
  do {                    \
    if (COBS_ON()) {      \
      stmt;               \
    }                     \
  } while (false)
