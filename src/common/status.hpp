// Minimal Status / Result types for routine, expected failures.
//
// Per the Core Guidelines (E.2/E.3) we throw exceptions only for contract
// violations and unrecoverable errors; failures that are part of normal
// operation in a mobile environment — a radio that is off, a peer that
// moved out of range, a query that parses but cannot be satisfied — are
// reported through Status / Result<T> so callers are forced to look.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace contory {

/// Broad failure categories used across the middleware and substrates.
enum class StatusCode {
  kOk,
  kInvalidArgument,   // caller passed something malformed (query syntax, ...)
  kNotFound,          // no such query / tag / service / device
  kUnavailable,       // transient: radio off, peer out of range, disconnected
  kDeadlineExceeded,  // timeout waiting for a result
  kPermissionDenied,  // AccessController blocked the interaction
  kResourceExhausted, // control policy or memory/energy budget hit
  kFailedPrecondition,// operation ordering violated (publish before register)
  kAlreadyExists,     // duplicate registration / id collision
  kOverloaded,        // admission shed the request; retry-after hint in msg
  kInternal,          // bug in our own machinery
};

/// Human-readable name of a StatusCode ("UNAVAILABLE").
[[nodiscard]] const char* StatusCodeName(StatusCode code) noexcept;

/// A success/failure outcome with an explanatory message on failure.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() noexcept : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return {}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// "OK" or "UNAVAILABLE: bluetooth radio is off".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status DeadlineExceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status Overloaded(std::string msg) {
  return {StatusCode::kOverloaded, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

/// Thrown by Result<T>::value() on a failed result — a programming error,
/// since callers must check ok() first.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const Status& status)
      : std::logic_error("Result accessed without value: " +
                         status.ToString()) {}
};

/// Either a T or a failure Status. Intentionally tiny — just enough of the
/// absl::StatusOr shape for this code base.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirroring StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Internal("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw BadResultAccess(status_);
    return *value_;
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw BadResultAccess(status_);
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw BadResultAccess(status_);
    return std::move(*value_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// Returns the value or `fallback` when failed.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace contory
