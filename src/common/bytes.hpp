// Wire-format serialization helpers.
//
// The paper reports concrete on-the-wire sizes (a 205-byte cxtQuery, 53-136
// byte cxtItems, 1696-byte Fuego event notifications, 340-byte NMEA bursts)
// and those sizes drive both latency (serialization is 26-33% of SM time)
// and energy (BT packet segmentation). We therefore serialize objects for
// real rather than faking sizes: ByteWriter/ByteReader implement a simple
// big-endian tagged format used by every simulated transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace contory {

/// Append-only big-endian binary encoder.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteF64(double v);
  void WriteBool(bool v);
  /// Length-prefixed (u32) string.
  void WriteString(std::string_view v);
  /// Raw bytes without a length prefix.
  void WriteRaw(std::span<const std::byte> bytes);
  /// Raw zero padding, used to model fixed-size protocol envelopes.
  void WritePadding(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> Take() && { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Lowercase hex encoding of a byte buffer (SM tag values are strings;
/// published context items travel hex-encoded inside tags).
[[nodiscard]] std::string ToHex(std::span<const std::byte> bytes);
/// Inverse of ToHex; rejects odd lengths and non-hex characters.
[[nodiscard]] Result<std::vector<std::byte>> FromHex(std::string_view hex);

/// Sequential decoder over a byte span. All reads are bounds-checked and
/// return Status failures instead of reading past the end, because frames
/// arrive from simulated peers and must be treated as untrusted input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept
      : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> ReadU8();
  [[nodiscard]] Result<std::uint16_t> ReadU16();
  [[nodiscard]] Result<std::uint32_t> ReadU32();
  [[nodiscard]] Result<std::uint64_t> ReadU64();
  [[nodiscard]] Result<std::int64_t> ReadI64();
  [[nodiscard]] Result<double> ReadF64();
  [[nodiscard]] Result<bool> ReadBool();
  [[nodiscard]] Result<std::string> ReadString();
  /// Skips n bytes (e.g. envelope padding).
  [[nodiscard]] Status Skip(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == data_.size(); }

 private:
  [[nodiscard]] Status Require(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace contory
