// Deterministic identifier generation.
//
// Queries, context items, SM messages and event notifications all carry
// unique identifiers ("to disambiguate between multiple messages, a unique
// identifier is associated with each query and with each result", Sec. 5.2).
// Ids are sequential per prefix so logs and tests are stable run-to-run.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace contory {

/// Hands out "prefix-1", "prefix-2", ... deterministically. One instance
/// usually lives in the Simulation so all modules share a numbering space.
class IdGenerator {
 public:
  /// Returns the next id for `prefix`, e.g. NextId("q") -> "q-7".
  [[nodiscard]] std::string NextId(const std::string& prefix);

  /// Returns the next raw counter value for `prefix` (starting at 1).
  [[nodiscard]] std::uint64_t NextCounter(const std::string& prefix);

 private:
  std::unordered_map<std::string, std::uint64_t> counters_;
};

}  // namespace contory
