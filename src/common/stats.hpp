// Statistics helpers used by the evaluation harness.
//
// The paper reports every measurement as "Avg [90% Conf interval]" over
// 5-10 runs; RunningStats reproduces exactly that presentation. TimeSeries
// records (t, value) traces for the Fig. 4 / Fig. 5 power plots.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace contory {

/// Streaming mean/variance accumulator (Welford) with the paper's
/// 90% confidence-interval presentation.
class RunningStats {
 public:
  void Add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the 90% confidence interval of the mean, using
  /// Student's t critical values for small n (the paper's 5-10 runs).
  [[nodiscard]] double ConfidenceInterval90() const noexcept;

  /// "140.359 [0.337]" — the paper's table cell format.
  [[nodiscard]] std::string ToCell(int precision = 3) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A sampled (time, value) trace, e.g. the multimeter's power readings.
class TimeSeries {
 public:
  void Add(SimTime t, double value);

  struct Point {
    SimTime t;
    double value;
  };

  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Maximum value over the whole trace (0 when empty).
  [[nodiscard]] double Max() const noexcept;
  /// Time-weighted average value between consecutive samples (0 when <2).
  [[nodiscard]] double TimeWeightedMean() const noexcept;
  /// Trapezoidal integral of value over time in (value-unit x seconds);
  /// for a power trace in mW this yields millijoules.
  [[nodiscard]] double Integrate() const noexcept;

  /// Renders an ASCII strip chart (for the figure benches), `width` columns
  /// wide and `height` rows tall, labelling the value axis.
  [[nodiscard]] std::string AsciiPlot(int width, int height,
                                      const std::string& value_unit) const;

  /// Dumps "t_seconds\tvalue" lines, suitable for gnuplot.
  [[nodiscard]] std::string ToTsv() const;

 private:
  std::vector<Point> points_;
};

}  // namespace contory
