#include "common/bytes.hpp"

#include <bit>
#include <cstring>

namespace contory {
namespace {

template <typename T>
void AppendBigEndian(std::vector<std::byte>& buf, T v) {
  for (int shift = static_cast<int>(sizeof(T)) * 8 - 8; shift >= 0;
       shift -= 8) {
    buf.push_back(static_cast<std::byte>((v >> shift) & 0xff));
  }
}

template <typename T>
T ReadBigEndian(std::span<const std::byte> data, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v = static_cast<T>((v << 8) | static_cast<T>(data[pos + i]));
  }
  return v;
}

}  // namespace

void ByteWriter::WriteU8(std::uint8_t v) { AppendBigEndian(buf_, v); }
void ByteWriter::WriteU16(std::uint16_t v) { AppendBigEndian(buf_, v); }
void ByteWriter::WriteU32(std::uint32_t v) { AppendBigEndian(buf_, v); }
void ByteWriter::WriteU64(std::uint64_t v) { AppendBigEndian(buf_, v); }

void ByteWriter::WriteI64(std::int64_t v) {
  WriteU64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::WriteF64(double v) {
  WriteU64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

void ByteWriter::WriteString(std::string_view v) {
  WriteU32(static_cast<std::uint32_t>(v.size()));
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size());
}

void ByteWriter::WriteRaw(std::span<const std::byte> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WritePadding(std::size_t n) {
  buf_.insert(buf_.end(), n, std::byte{0});
}

std::string ToHex(std::span<const std::byte> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::byte b : bytes) {
    out.push_back(kDigits[static_cast<unsigned>(b) >> 4]);
    out.push_back(kDigits[static_cast<unsigned>(b) & 0xf]);
  }
  return out;
}

Result<std::vector<std::byte>> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgument("hex string has odd length");
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::byte> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgument("non-hex character in string");
    }
    out.push_back(static_cast<std::byte>((hi << 4) | lo));
  }
  return out;
}

Status ByteReader::Require(std::size_t n) const {
  if (remaining() < n) {
    return InvalidArgument("truncated frame: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

Result<std::uint8_t> ByteReader::ReadU8() {
  if (auto s = Require(1); !s.ok()) return s;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint16_t> ByteReader::ReadU16() {
  if (auto s = Require(2); !s.ok()) return s;
  auto v = ReadBigEndian<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::ReadU32() {
  if (auto s = Require(4); !s.ok()) return s;
  auto v = ReadBigEndian<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::ReadU64() {
  if (auto s = Require(8); !s.ok()) return s;
  auto v = ReadBigEndian<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

Result<std::int64_t> ByteReader::ReadI64() {
  auto v = ReadU64();
  if (!v.ok()) return v.status();
  return std::bit_cast<std::int64_t>(*v);
}

Result<double> ByteReader::ReadF64() {
  auto v = ReadU64();
  if (!v.ok()) return v.status();
  return std::bit_cast<double>(*v);
}

Result<bool> ByteReader::ReadBool() {
  auto v = ReadU8();
  if (!v.ok()) return v.status();
  return *v != 0;
}

Result<std::string> ByteReader::ReadString() {
  auto len = ReadU32();
  if (!len.ok()) return len.status();
  if (auto s = Require(*len); !s.ok()) return s;
  std::string out(*len, '\0');
  std::memcpy(out.data(), data_.data() + pos_, *len);
  pos_ += *len;
  return out;
}

Status ByteReader::Skip(std::size_t n) {
  if (auto s = Require(n); !s.ok()) return s;
  pos_ += n;
  return Status::Ok();
}

}  // namespace contory
