// Deterministic random number generation.
//
// Every stochastic element of the reproduction (radio jitter, UMTS latency
// tails, sensor noise, boat tracks) draws from a seeded generator so that
// tests and benchmarks are exactly reproducible. We use xoshiro256**
// seeded through SplitMix64, the combination recommended by the xoshiro
// authors; it satisfies the UniformRandomBitGenerator concept so it also
// composes with <random> if ever needed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace contory {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is a pure function of
  /// `seed`. Identical seeds yield identical simulations.
  explicit Rng(std::uint64_t seed = 0xc047'0e5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return Next(); }
  std::uint64_t Next() noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Normal (Gaussian) deviate via Box–Muller.
  double Normal(double mean, double stddev) noexcept;

  /// Exponential deviate with the given mean (= 1/rate).
  double Exponential(double mean) noexcept;

  /// Log-normal deviate parameterized by the *underlying* normal's mu and
  /// sigma. Used for heavy-tailed UMTS connection latencies.
  double LogNormal(double mu, double sigma) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) noexcept;

  /// Multiplicative jitter: value * Uniform(1-spread, 1+spread).
  /// Models the paper's "office environment with background noise".
  double Jitter(double value, double spread) noexcept;

  /// Forks an independent child generator; the child's stream is a pure
  /// function of this generator's current state. Use one child per
  /// subsystem so adding draws in one module never perturbs another.
  Rng Fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace contory
