#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace contory {
namespace {

// One-sided 95% Student-t critical values (=> two-sided 90% CI) indexed by
// degrees of freedom 1..30; beyond that we use the normal value 1.645.
constexpr double kT90[31] = {
    0.0,   6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
    1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729,
    1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699,
    1.697};

}  // namespace

void RunningStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ConfidenceInterval90() const noexcept {
  if (n_ < 2) return 0.0;
  const std::size_t df = n_ - 1;
  const double t = df <= 30 ? kT90[df] : 1.645;
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

std::string RunningStats::ToCell(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f [%.*f]", precision, mean(), precision,
                ConfidenceInterval90());
  return buf;
}

void TimeSeries::Add(SimTime t, double value) {
  points_.push_back(Point{t, value});
}

double TimeSeries::Max() const noexcept {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.value);
  return best;
}

double TimeSeries::TimeWeightedMean() const noexcept {
  if (points_.size() < 2) return points_.empty() ? 0.0 : points_[0].value;
  const double span = ToSeconds(points_.back().t - points_.front().t);
  if (span <= 0.0) return points_[0].value;
  return Integrate() / span;
}

double TimeSeries::Integrate() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dt = ToSeconds(points_[i].t - points_[i - 1].t);
    acc += 0.5 * (points_[i].value + points_[i - 1].value) * dt;
  }
  return acc;
}

std::string TimeSeries::AsciiPlot(int width, int height,
                                  const std::string& value_unit) const {
  if (points_.empty() || width < 8 || height < 2) return "(empty trace)\n";
  const double t0 = ToSeconds(points_.front().t);
  const double t1 = ToSeconds(points_.back().t);
  const double tspan = std::max(t1 - t0, 1e-9);
  double vmax = Max();
  if (vmax <= 0.0) vmax = 1.0;

  // Bucket by column, keeping the max per column so short peaks survive.
  std::vector<double> col(static_cast<std::size_t>(width), 0.0);
  for (const auto& p : points_) {
    auto c = static_cast<std::size_t>((ToSeconds(p.t) - t0) / tspan *
                                      (width - 1));
    c = std::min(c, static_cast<std::size_t>(width - 1));
    col[c] = std::max(col[c], p.value);
  }

  std::string out;
  for (int row = height - 1; row >= 0; --row) {
    const double threshold = vmax * (row + 0.5) / height;
    char label[32];
    std::snprintf(label, sizeof label, "%8.1f |", vmax * (row + 1) / height);
    out += label;
    for (int c = 0; c < width; ++c) {
      out += col[static_cast<std::size_t>(c)] >= threshold ? '#' : ' ';
    }
    out += '\n';
  }
  out += "         +";
  out.append(static_cast<std::size_t>(width), '-');
  out += '\n';
  char footer[128];
  std::snprintf(footer, sizeof footer,
                "          %.1fs%*s%.1fs   (y: %s, max %.1f)\n", t0,
                width - 10, "", t1, value_unit.c_str(), Max());
  out += footer;
  return out;
}

std::string TimeSeries::ToTsv() const {
  std::string out;
  char line[64];
  for (const auto& p : points_) {
    std::snprintf(line, sizeof line, "%.3f\t%.3f\n", ToSeconds(p.t), p.value);
    out += line;
  }
  return out;
}

}  // namespace contory
