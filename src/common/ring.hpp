// Bounded lock-free rings for the asynchronous pipeline stages.
//
// Two flavors, both fixed-capacity (power of two) with cache-line-padded
// indices so producer and consumer never false-share:
//
//   SpscRing — single producer, single consumer. Wait-free push/pop; one
//     release store per side plus a cached view of the opposite index
//     (the cache cuts coherence traffic to one miss per wrap in the
//     common case, the classic optimization over a naive Lamport queue).
//
//   MpmcRing — multi producer, multi consumer, Dmitry Vyukov's bounded
//     queue: every slot carries a sequence number that encodes whose
//     turn it is, so producers and consumers claim slots with one
//     fetch_add + one CAS-free publish each. Lock-free (a stalled thread
//     can delay only the slot it claimed, never the whole ring).
//
// Both are Try* interfaces — full/empty return false instead of blocking;
// backpressure policy (spin, yield, shed) belongs to the caller. The
// PipelineExecutor connects admission/planning workers to the facade
// stage with these, and bench/micro_ops tracks their costs in isolation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace contory {

/// Rounds `n` up to the next power of two (minimum 2).
[[nodiscard]] constexpr std::size_t RingCapacityFor(std::size_t n) noexcept {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

inline constexpr std::size_t kCacheLineBytes = 64;

/// Single-producer / single-consumer bounded ring. `T` must be movable
/// and default-constructible. Exactly one thread may call TryPush and
/// exactly one thread may call TryPop (they may be the same thread in
/// deterministic mode).
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpscRing(std::size_t capacity)
      : mask_(RingCapacityFor(capacity) - 1),
        slots_(RingCapacityFor(capacity)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// False when full (capacity items pending).
  [[nodiscard]] bool TryPush(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;  // genuinely full
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// False when empty.
  [[nodiscard]] bool TryPop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // genuinely empty
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate (exact when called from the producer or consumer).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  const std::uint64_t mask_;
  std::vector<T> slots_;
  /// Consumer index + the producer's cached copy of it.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineBytes) std::uint64_t head_cache_ = 0;  // producer-owned
  /// Producer index + the consumer's cached copy of it.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineBytes) std::uint64_t tail_cache_ = 0;  // consumer-owned
};

/// Multi-producer / multi-consumer bounded ring (Vyukov). Any number of
/// threads may push and pop concurrently.
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity)
      : mask_(RingCapacityFor(capacity) - 1),
        cells_(std::make_unique<Cell[]>(RingCapacityFor(capacity))) {
    for (std::uint64_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// False when full.
  [[nodiscard]] bool TryPush(T value) {
    Cell* cell;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        // Our turn: claim the slot by advancing the enqueue cursor.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // slot still holds an unconsumed value: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);  // lost the race
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when empty.
  [[nodiscard]] bool TryPop(T& out) {
    Cell* cell;
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t diff = static_cast<std::int64_t>(seq) -
                                static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // slot not yet published: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate under concurrency; exact when quiescent.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = enqueue_pos_.load(std::memory_order_acquire);
    const std::uint64_t head = dequeue_pos_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  const std::uint64_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace contory
