// Simulated-time types shared by every Contory module.
//
// The whole reproduction runs on a deterministic discrete-event simulation,
// so "time" everywhere in the code base means *virtual* time. We model it
// with std::chrono on a dedicated clock so the type system separates
// simulated instants from wall-clock instants and we get chrono literals
// and arithmetic for free.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace contory {

/// Duration of simulated time. Microsecond resolution is enough to express
/// the paper's finest-grained measurements (createCxtItem = 78 us).
using SimDuration = std::chrono::microseconds;

/// The virtual clock driven by sim::Simulation. Never reads the host clock.
struct SimClock {
  using rep = std::int64_t;
  using period = std::micro;
  using duration = SimDuration;
  using time_point = std::chrono::time_point<SimClock, duration>;
  static constexpr bool is_steady = true;

  // Intentionally no now(): the current instant is owned by the running
  // sim::Simulation, not by a global.
};

/// An instant of simulated time.
using SimTime = SimClock::time_point;

/// The simulation epoch (t = 0).
inline constexpr SimTime kSimEpoch{};

/// Converts a simulated duration to fractional seconds.
[[nodiscard]] constexpr double ToSeconds(SimDuration d) noexcept {
  return std::chrono::duration<double>(d).count();
}

/// Converts a simulated duration to fractional milliseconds.
[[nodiscard]] constexpr double ToMillis(SimDuration d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Converts fractional seconds to a simulated duration (rounded to us).
[[nodiscard]] constexpr SimDuration FromSeconds(double seconds) noexcept {
  return SimDuration{static_cast<std::int64_t>(seconds * 1e6)};
}

/// Converts fractional milliseconds to a simulated duration (rounded to us).
[[nodiscard]] constexpr SimDuration FromMillis(double millis) noexcept {
  return SimDuration{static_cast<std::int64_t>(millis * 1e3)};
}

/// Seconds elapsed since the simulation epoch.
[[nodiscard]] constexpr double ToSeconds(SimTime t) noexcept {
  return ToSeconds(t.time_since_epoch());
}

/// Renders a duration as a compact human-readable string ("1.500s", "30ms").
[[nodiscard]] std::string FormatDuration(SimDuration d);

/// Renders an instant as seconds since epoch ("t=155.000s").
[[nodiscard]] std::string FormatTime(SimTime t);

}  // namespace contory
