#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace contory {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm{seed};
  for (auto& word : s_) word = sm.Next();
}

std::uint64_t Rng::Next() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() noexcept {
  // 53 top bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny relative to 2^64 in
  // every call site (hop counts, node picks), so bias is negligible.
  return lo + static_cast<std::int64_t>(span == 0 ? Next() : Next() % span);
}

double Rng::Normal(double mean, double stddev) noexcept {
  // Box–Muller; one deviate per call keeps the generator stateless beyond s_.
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Exponential(double mean) noexcept {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::LogNormal(double mu, double sigma) noexcept {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Jitter(double value, double spread) noexcept {
  return value * Uniform(1.0 - spread, 1.0 + spread);
}

Rng Rng::Fork() noexcept {
  Rng child{Next()};
  return child;
}

}  // namespace contory
