#include "common/id.hpp"

namespace contory {

std::string IdGenerator::NextId(const std::string& prefix) {
  return prefix + "-" + std::to_string(NextCounter(prefix));
}

std::uint64_t IdGenerator::NextCounter(const std::string& prefix) {
  return ++counters_[prefix];
}

}  // namespace contory
