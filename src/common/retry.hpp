// Unified retry/timeout/backoff policy.
//
// Providers talk to lossy substrates — a BT inquiry while the radio
// flaps, a UMTS request into a coverage hole, an infrastructure server
// mid-outage — and the paper's failover machinery (Fig. 5) is expensive:
// every escalation to the ContextFactory risks a 13 s BT re-discovery or
// a 14 J UMTS reconnect. A bounded, seeded-jitter retry absorbs the
// transient failures that do not warrant reconfiguration, and only then
// escalates Fail() to the factory.
//
// The policy is deliberately simulation-native: backoffs are SimDurations
// on the virtual clock and jitter draws from a forked Rng, so two runs
// with the same seed retry at byte-identical instants.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace contory {

struct RetryPolicyConfig {
  /// Total attempts including the first (1 = never retry).
  int max_attempts = 4;
  /// Backoff before the first retry; doubles (times multiplier) after.
  SimDuration initial_backoff = std::chrono::milliseconds{500};
  double backoff_multiplier = 2.0;
  SimDuration max_backoff = std::chrono::seconds{10};
  /// Multiplicative jitter spread on every backoff (0.2 = +-20%).
  double jitter = 0.2;
  /// Per-attempt transport timeout (passed to SendRequest and friends).
  SimDuration attempt_timeout = std::chrono::seconds{15};
  /// Budget from the first attempt; no retry is scheduled past it
  /// (zero = unbounded).
  SimDuration total_deadline = std::chrono::seconds{60};
};

/// True for failures worth retrying: the operation may succeed if simply
/// repeated (coverage hole, server outage, radio flap). Everything else —
/// kNotFound, kPermissionDenied, kInternal, ... — escalates immediately.
[[nodiscard]] bool IsTransient(const Status& status) noexcept;

/// Tracks one operation's attempts against a RetryPolicyConfig.
class RetryState {
 public:
  RetryState(RetryPolicyConfig config, Rng rng) noexcept
      : config_(config), rng_(rng) {}

  /// Stamps the total-deadline epoch (call when the first attempt starts).
  void Begin(SimTime now) noexcept {
    attempts_ = 1;
    epoch_ = now;
    began_ = true;
  }

  /// If the policy allows another attempt at `now`, records it and returns
  /// the jittered backoff to wait before retrying; otherwise an error
  /// saying which budget ran out.
  Result<SimDuration> NextBackoff(SimTime now);

  /// Attempts recorded so far (>= 1 once Begin was called).
  [[nodiscard]] int attempts() const noexcept { return attempts_; }
  [[nodiscard]] int retries() const noexcept {
    return attempts_ > 0 ? attempts_ - 1 : 0;
  }
  [[nodiscard]] const RetryPolicyConfig& config() const noexcept {
    return config_;
  }

  /// Forgets all attempts (a success resets the budget).
  void Reset() noexcept {
    attempts_ = 0;
    began_ = false;
  }

 private:
  RetryPolicyConfig config_;
  Rng rng_;
  int attempts_ = 0;
  SimTime epoch_{};
  bool began_ = false;
};

}  // namespace contory
