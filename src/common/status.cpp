#include "common/status.hpp"

namespace contory {

const char* StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace contory
