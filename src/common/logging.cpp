#include "common/logging.hpp"

#include <cstdio>
#include <mutex>

namespace contory {
namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;
std::function<SimTime()> g_time_source;
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void Log::SetLevel(LogLevel level) noexcept { g_level = level; }
LogLevel Log::level() noexcept { return g_level; }

void Log::SetSink(Sink sink) {
  const std::lock_guard lock{g_mutex};
  g_sink = std::move(sink);
}

void Log::SetTimeSource(std::function<SimTime()> now) {
  const std::lock_guard lock{g_mutex};
  g_time_source = std::move(now);
}

void Log::Emit(LogLevel level, const char* module, const char* fmt, ...) {
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, args);
  va_end(args);

  const std::lock_guard lock{g_mutex};
  std::string line;
  if (g_time_source) {
    line += FormatTime(g_time_source());
    line += ' ';
  }
  line += LevelName(level);
  line += " [";
  line += module;
  line += "] ";
  line += msg;

  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace contory
