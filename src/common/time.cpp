#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace contory {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double us = static_cast<double>(d.count());
  if (std::abs(us) >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fs", us / 1e6);
  } else if (std::abs(us) >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%ldus", static_cast<long>(d.count()));
  }
  return buf;
}

std::string FormatTime(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.3fs", ToSeconds(t));
  return buf;
}

}  // namespace contory
