// Leveled, sim-time-aware logging.
//
// Kept deliberately tiny: a global level, a pluggable sink (tests capture
// log lines; benches silence them), and printf-style formatting. Log calls
// below the active level cost one branch.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

#include "common/time.hpp"

namespace contory {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide logging configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  static void SetLevel(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;

  /// Replaces the sink (default writes to stderr). Pass nullptr to restore
  /// the default.
  static void SetSink(Sink sink);

  /// Sets the clock used to prefix log lines with simulated time. The
  /// Simulation installs itself here; nullptr removes the prefix.
  static void SetTimeSource(std::function<SimTime()> now);

  /// printf-style emission; prefer the CLOG_* macros below.
  static void Emit(LogLevel level, const char* module, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  [[nodiscard]] static bool Enabled(LogLevel level) noexcept {
    return level >= Log::level();
  }
};

#define CLOG_TRACE(module, ...)                                       \
  do {                                                                \
    if (::contory::Log::Enabled(::contory::LogLevel::kTrace))         \
      ::contory::Log::Emit(::contory::LogLevel::kTrace, module,       \
                           __VA_ARGS__);                              \
  } while (0)
#define CLOG_DEBUG(module, ...)                                       \
  do {                                                                \
    if (::contory::Log::Enabled(::contory::LogLevel::kDebug))         \
      ::contory::Log::Emit(::contory::LogLevel::kDebug, module,       \
                           __VA_ARGS__);                              \
  } while (0)
#define CLOG_INFO(module, ...)                                        \
  do {                                                                \
    if (::contory::Log::Enabled(::contory::LogLevel::kInfo))          \
      ::contory::Log::Emit(::contory::LogLevel::kInfo, module,        \
                           __VA_ARGS__);                              \
  } while (0)
#define CLOG_WARN(module, ...)                                        \
  do {                                                                \
    if (::contory::Log::Enabled(::contory::LogLevel::kWarn))          \
      ::contory::Log::Emit(::contory::LogLevel::kWarn, module,        \
                           __VA_ARGS__);                              \
  } while (0)
#define CLOG_ERROR(module, ...)                                       \
  do {                                                                \
    if (::contory::Log::Enabled(::contory::LogLevel::kError))         \
      ::contory::Log::Emit(::contory::LogLevel::kError, module,       \
                           __VA_ARGS__);                              \
  } while (0)

}  // namespace contory
