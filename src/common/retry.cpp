#include "common/retry.hpp"

#include <algorithm>
#include <cmath>

namespace contory {

bool IsTransient(const Status& status) noexcept {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

Result<SimDuration> RetryState::NextBackoff(SimTime now) {
  if (!began_) Begin(now);
  if (attempts_ >= config_.max_attempts) {
    return ResourceExhausted("retry budget exhausted (" +
                             std::to_string(config_.max_attempts) +
                             " attempts)");
  }
  // Exponential growth from the initial backoff, capped.
  double scale = 1.0;
  for (int i = 1; i < attempts_; ++i) scale *= config_.backoff_multiplier;
  const auto raw = static_cast<double>(config_.initial_backoff.count()) *
                   scale;
  const auto capped =
      std::min(raw, static_cast<double>(config_.max_backoff.count()));
  const auto jittered = SimDuration{static_cast<std::int64_t>(
      rng_.Jitter(capped, std::clamp(config_.jitter, 0.0, 1.0)))};
  if (config_.total_deadline > SimDuration::zero() &&
      now + jittered > epoch_ + config_.total_deadline) {
    return DeadlineExceeded("retry deadline of " +
                            FormatDuration(config_.total_deadline) +
                            " exceeded");
  }
  ++attempts_;
  return jittered;
}

}  // namespace contory
