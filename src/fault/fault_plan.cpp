#include "fault/fault_plan.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>

namespace contory::fault {
namespace {

constexpr std::array<std::pair<FaultKind, const char*>, 14> kKindNames = {{
    {FaultKind::kBtFail, "bt.fail"},
    {FaultKind::kBtLoss, "bt.loss"},
    {FaultKind::kBtLatency, "bt.latency"},
    {FaultKind::kWifiFail, "wifi.fail"},
    {FaultKind::kWifiLoss, "wifi.loss"},
    {FaultKind::kWifiLatency, "wifi.latency"},
    {FaultKind::kCellOff, "cell.off"},
    {FaultKind::kCellConnectFail, "cell.connectfail"},
    {FaultKind::kCellAbort, "cell.abort"},
    {FaultKind::kBrokerOutage, "broker.outage"},
    {FaultKind::kSensorFail, "sensor.fail"},
    {FaultKind::kSensorNan, "sensor.nan"},
    {FaultKind::kGpsOff, "gps.off"},
    {FaultKind::kNodeLeave, "node.leave"},
}};

/// Does this kind carry a rate= / ms= argument?
bool KindTakesParam(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kBtLoss:
    case FaultKind::kBtLatency:
    case FaultKind::kWifiLoss:
    case FaultKind::kWifiLatency:
    case FaultKind::kCellConnectFail:
    case FaultKind::kCellAbort:
      return true;
    default:
      return false;
  }
}

Result<double> ParseNumber(const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) return InvalidArgument("bad number '" + s + "'");
    return v;
  } catch (const std::exception&) {
    return InvalidArgument("bad number '" + s + "'");
  }
}

std::string FormatScheduleDuration(SimDuration d) {
  char buf[48];
  if (d.count() % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds",
                  static_cast<long long>(d.count() / 1'000'000));
  } else if (d.count() % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(d.count() / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(d.count()));
  }
  return buf;
}

}  // namespace

const char* FaultKindName(FaultKind kind) noexcept {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

Result<FaultKind> FaultKindFromName(const std::string& name) {
  for (const auto& [k, n] : kKindNames) {
    if (name == n) return k;
  }
  return InvalidArgument("unknown fault kind '" + name + "'");
}

Result<SimDuration> ParseScheduleDuration(const std::string& token) {
  std::size_t split = 0;
  while (split < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[split])) != 0 ||
          token[split] == '.' || token[split] == '-')) {
    ++split;
  }
  if (split == 0 || split == token.size()) {
    return InvalidArgument("duration '" + token +
                           "' needs a number and a unit suffix");
  }
  const auto number = ParseNumber(token.substr(0, split));
  if (!number.ok()) return number.status();
  if (*number < 0) return InvalidArgument("negative duration '" + token + "'");
  const std::string unit = token.substr(split);
  if (unit == "us") return SimDuration{static_cast<std::int64_t>(*number)};
  if (unit == "ms") return FromMillis(*number);
  if (unit == "s" || unit == "sec") return FromSeconds(*number);
  if (unit == "min") return FromSeconds(*number * 60.0);
  if (unit == "h") return FromSeconds(*number * 3600.0);
  return InvalidArgument("unknown duration unit '" + unit + "'");
}

std::string FaultAction::ToString() const {
  std::string out = "at=" + FormatScheduleDuration(at.time_since_epoch());
  out += ' ';
  out += FaultKindName(kind);
  out += ' ';
  out += target;
  if (duration > SimDuration::zero()) {
    out += " for=" + FormatScheduleDuration(duration);
  }
  if (KindTakesParam(kind)) {
    char buf[48];
    const bool is_latency =
        kind == FaultKind::kBtLatency || kind == FaultKind::kWifiLatency;
    std::snprintf(buf, sizeof buf, " %s=%g", is_latency ? "ms" : "rate",
                  param);
    out += buf;
  }
  return out;
}

std::string FaultPlan::ToText() const {
  std::string out;
  for (const FaultAction& a : actions_) {
    out += a.ToString();
    out += '\n';
  }
  return out;
}

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines{text};
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& msg) {
    return InvalidArgument("fault plan line " + std::to_string(line_no) +
                           ": " + msg);
  };
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream tokens{line};
    std::vector<std::string> parts;
    std::string tok;
    while (tokens >> tok) {
      if (tok[0] == '#') break;  // trailing comment
      parts.push_back(tok);
    }
    if (parts.empty()) continue;
    if (parts.size() < 3) {
      return fail("expected 'at=<dur> <kind> <target> ...'");
    }
    if (parts[0].rfind("at=", 0) != 0) {
      return fail("missing at= prefix in '" + parts[0] + "'");
    }
    const auto at = ParseScheduleDuration(parts[0].substr(3));
    if (!at.ok()) return fail(at.status().message());
    const auto kind = FaultKindFromName(parts[1]);
    if (!kind.ok()) return fail(kind.status().message());
    FaultAction action;
    action.at = kSimEpoch + *at;
    action.kind = *kind;
    action.target = parts[2];
    bool saw_param = false;
    for (std::size_t i = 3; i < parts.size(); ++i) {
      const std::string& p = parts[i];
      if (p.rfind("for=", 0) == 0) {
        const auto d = ParseScheduleDuration(p.substr(4));
        if (!d.ok()) return fail(d.status().message());
        action.duration = *d;
      } else if (p.rfind("rate=", 0) == 0) {
        const auto v = ParseNumber(p.substr(5));
        if (!v.ok()) return fail(v.status().message());
        if (*v < 0.0 || *v > 1.0) return fail("rate out of [0,1]");
        action.param = *v;
        saw_param = true;
      } else if (p.rfind("ms=", 0) == 0) {
        const auto v = ParseNumber(p.substr(3));
        if (!v.ok()) return fail(v.status().message());
        if (*v < 0.0) return fail("negative ms value");
        action.param = *v;
        saw_param = true;
      } else {
        return fail("unknown argument '" + p + "'");
      }
    }
    if (KindTakesParam(*kind) && !saw_param) {
      return fail(std::string(FaultKindName(*kind)) +
                  " needs a rate= or ms= argument");
    }
    plan.Add(std::move(action));
  }
  return plan;
}

}  // namespace contory::fault
