// Deterministic fault injection on a running simulation.
//
// The FaultInjector sits on sim::Simulation and replays a FaultPlan:
// each action is scheduled as an ordinary simulation event, so faults
// interleave with the system under test in the deterministic (time,
// insertion-order) total order every other event obeys. Two runs of the
// same plan against the same seed produce byte-identical event logs —
// which is exactly what the chaos tests assert.
//
// Targets register by name before Execute(); the injector validates the
// whole plan eagerly so a typo fails fast instead of silently skipping a
// fault mid-experiment. testbed::World auto-registers every device
// radio, sensor, GPS and infrastructure service it builds.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fault/fault_plan.hpp"
#include "net/bluetooth.hpp"
#include "net/cellular.hpp"
#include "net/medium.hpp"
#include "net/wifi.hpp"
#include "sensors/environment.hpp"
#include "sensors/gps.hpp"
#include "sim/simulation.hpp"

namespace contory::fault {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulation& sim) : sim_(sim) {}
  ~FaultInjector() { *life_ = false; }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- Target registration (names must be unique per category) ----------
  void RegisterBluetooth(const std::string& name,
                         net::BluetoothController& bt);
  void RegisterWifi(const std::string& name, net::WifiController& wifi);
  void RegisterModem(const std::string& name, net::CellularModem& modem);
  void RegisterSensor(const std::string& name,
                      sensors::EnvironmentSensor& sensor);
  void RegisterGps(const std::string& name, sensors::GpsDevice& gps);
  /// Brokers, context servers — anything with an on/off outage switch.
  void RegisterOutageSwitch(const std::string& name,
                            std::function<void(bool down)> toggle);
  void RegisterNode(const std::string& name, net::Medium& medium,
                    net::NodeId node);

  /// Schedules every action of `plan` (validating targets eagerly).
  /// Windowed actions schedule both the fault and its revert.
  Status Execute(const FaultPlan& plan);
  /// Parses `schedule` and executes it.
  Status ExecuteText(const std::string& schedule);

  // --- Deterministic observability ---------------------------------------
  /// One line per applied fault transition, e.g.
  /// "t=155.000s gps.off gps-1 on". Byte-identical across same-seed runs.
  [[nodiscard]] const std::vector<std::string>& log() const noexcept {
    return log_;
  }
  [[nodiscard]] std::string LogAsText() const;
  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

 private:
  Status Validate(const FaultAction& action) const;
  /// Applies one transition (enter = fault on, !enter = revert).
  void Apply(const FaultAction& action, bool enter);
  void Log(const FaultAction& action, bool enter);

  sim::Simulation& sim_;
  std::map<std::string, net::BluetoothController*> bluetooth_;
  std::map<std::string, net::WifiController*> wifi_;
  std::map<std::string, net::CellularModem*> modems_;
  std::map<std::string, sensors::EnvironmentSensor*> sensors_;
  std::map<std::string, sensors::GpsDevice*> gps_;
  std::map<std::string, std::function<void(bool)>> outages_;
  std::map<std::string, std::pair<net::Medium*, net::NodeId>> nodes_;
  std::vector<std::string> log_;
  std::uint64_t injected_ = 0;
  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::fault
