// Scripted fault schedules.
//
// A FaultPlan is a deterministic list of timed fault actions — radio
// flaps, packet-loss windows, latency spikes, infrastructure outages,
// sensor dropouts, node churn — that a FaultInjector replays against a
// running simulation. Plans are built programmatically or parsed from a
// small line-oriented schedule language:
//
//   # Fig. 5 with an infrastructure outage layered on top
//   at=155s gps.off gps-1 for=145s
//   at=160s broker.outage infra.dynamos.fi for=60s
//   at=160s bt.loss phone-A rate=0.3 for=2min
//   at=200s cell.abort phone-A rate=0.5 for=30s
//   at=240s node.leave boat-7
//
// Grammar per non-comment line:
//   at=<dur> <kind> <target> [for=<dur>] [rate=<num>] [ms=<num>]
// where <dur> is a number with a unit suffix (us, ms, s, sec, min, h).
// `for=` opens a window: the fault is applied at `at` and reverted at
// `at`+`for`; without it the action is permanent (or intrinsically
// one-shot, like node.leave).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"

namespace contory::fault {

enum class FaultKind : std::uint8_t {
  kBtFail,          // bt.fail: BT radio vanishes from the air
  kBtLoss,          // bt.loss: fraction of BT payloads lost (rate=)
  kBtLatency,       // bt.latency: extra per-transfer delay (ms=)
  kWifiFail,        // wifi.fail
  kWifiLoss,        // wifi.loss (rate=)
  kWifiLatency,     // wifi.latency (ms=)
  kCellOff,         // cell.off: GSM/UMTS radio powered down
  kCellConnectFail, // cell.connectfail: connect attempts fail (rate=)
  kCellAbort,       // cell.abort: in-flight transfers abort (rate=)
  kBrokerOutage,    // broker.outage: server swallows requests
  kSensorFail,      // sensor.fail: internal sensor returns errors
  kSensorNan,       // sensor.nan: internal sensor emits NaN samples
  kGpsOff,          // gps.off: BT-GPS powered down (Fig. 5)
  kNodeLeave,       // node.leave: node unregisters from the medium
};

[[nodiscard]] const char* FaultKindName(FaultKind kind) noexcept;
[[nodiscard]] Result<FaultKind> FaultKindFromName(const std::string& name);

struct FaultAction {
  SimTime at{};
  FaultKind kind = FaultKind::kBtFail;
  /// Registered target name: a device/radio name, a sensor address, an
  /// infrastructure address, or a GPS name — resolved by the injector.
  std::string target;
  /// Window length; zero means permanent (node.leave is always permanent).
  SimDuration duration = SimDuration::zero();
  /// rate= or ms= argument, kind-dependent.
  double param = 0.0;

  [[nodiscard]] std::string ToString() const;
};

class FaultPlan {
 public:
  FaultPlan& Add(FaultAction action) {
    actions_.push_back(std::move(action));
    return *this;
  }

  /// Convenience builder: a windowed fault.
  FaultPlan& Window(SimTime at, FaultKind kind, std::string target,
                    SimDuration duration, double param = 0.0) {
    return Add({at, kind, std::move(target), duration, param});
  }

  [[nodiscard]] const std::vector<FaultAction>& actions() const noexcept {
    return actions_;
  }
  [[nodiscard]] bool empty() const noexcept { return actions_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return actions_.size(); }

  /// Renders the plan back into the schedule language.
  [[nodiscard]] std::string ToText() const;

 private:
  std::vector<FaultAction> actions_;
};

/// Parses the schedule language; fails with line-numbered diagnostics.
[[nodiscard]] Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// Parses "250ms", "13s", "2.5min", ... (unit suffix required).
[[nodiscard]] Result<SimDuration> ParseScheduleDuration(
    const std::string& token);

}  // namespace contory::fault
