#include "fault/fault_injector.hpp"

#include <cstdio>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::fault {
namespace {
constexpr const char* kModule = "fault";
}

void FaultInjector::RegisterBluetooth(const std::string& name,
                                      net::BluetoothController& bt) {
  bluetooth_[name] = &bt;
}

void FaultInjector::RegisterWifi(const std::string& name,
                                 net::WifiController& wifi) {
  wifi_[name] = &wifi;
}

void FaultInjector::RegisterModem(const std::string& name,
                                  net::CellularModem& modem) {
  modems_[name] = &modem;
}

void FaultInjector::RegisterSensor(const std::string& name,
                                   sensors::EnvironmentSensor& sensor) {
  sensors_[name] = &sensor;
}

void FaultInjector::RegisterGps(const std::string& name,
                                sensors::GpsDevice& gps) {
  gps_[name] = &gps;
}

void FaultInjector::RegisterOutageSwitch(
    const std::string& name, std::function<void(bool down)> toggle) {
  outages_[name] = std::move(toggle);
}

void FaultInjector::RegisterNode(const std::string& name, net::Medium& medium,
                                 net::NodeId node) {
  nodes_[name] = {&medium, node};
}

Status FaultInjector::Validate(const FaultAction& action) const {
  const auto missing = [&](const char* category) {
    return NotFound("fault target '" + action.target + "' (" + category +
                    ") is not registered for " +
                    FaultKindName(action.kind));
  };
  switch (action.kind) {
    case FaultKind::kBtFail:
    case FaultKind::kBtLoss:
    case FaultKind::kBtLatency:
      if (!bluetooth_.contains(action.target)) return missing("bluetooth");
      break;
    case FaultKind::kWifiFail:
    case FaultKind::kWifiLoss:
    case FaultKind::kWifiLatency:
      if (!wifi_.contains(action.target)) return missing("wifi");
      break;
    case FaultKind::kCellOff:
    case FaultKind::kCellConnectFail:
    case FaultKind::kCellAbort:
      if (!modems_.contains(action.target)) return missing("modem");
      break;
    case FaultKind::kBrokerOutage:
      if (!outages_.contains(action.target)) return missing("outage switch");
      break;
    case FaultKind::kSensorFail:
    case FaultKind::kSensorNan:
      if (!sensors_.contains(action.target)) return missing("sensor");
      break;
    case FaultKind::kGpsOff:
      if (!gps_.contains(action.target)) return missing("gps");
      break;
    case FaultKind::kNodeLeave:
      if (!nodes_.contains(action.target)) return missing("node");
      break;
  }
  return Status::Ok();
}

Status FaultInjector::Execute(const FaultPlan& plan) {
  for (const FaultAction& action : plan.actions()) {
    if (const Status s = Validate(action); !s.ok()) return s;
  }
  for (const FaultAction& action : plan.actions()) {
    sim_.ScheduleAt(action.at, [this, action, life = life_] {
      if (!*life) return;
      Apply(action, /*enter=*/true);
    }, "fault.enter");
    if (action.duration > SimDuration::zero() &&
        action.kind != FaultKind::kNodeLeave) {
      sim_.ScheduleAt(action.at + action.duration,
                      [this, action, life = life_] {
                        if (!*life) return;
                        Apply(action, /*enter=*/false);
                      }, "fault.revert");
    }
  }
  return Status::Ok();
}

Status FaultInjector::ExecuteText(const std::string& schedule) {
  const auto plan = ParseFaultPlan(schedule);
  if (!plan.ok()) return plan.status();
  return Execute(*plan);
}

void FaultInjector::Apply(const FaultAction& action, bool enter) {
  switch (action.kind) {
    case FaultKind::kBtFail:
      bluetooth_.at(action.target)->SetFailed(enter);
      break;
    case FaultKind::kBtLoss:
      bluetooth_.at(action.target)->SetLossRate(enter ? action.param : 0.0);
      break;
    case FaultKind::kBtLatency:
      bluetooth_.at(action.target)
          ->SetExtraLatency(enter ? FromMillis(action.param)
                                  : SimDuration::zero());
      break;
    case FaultKind::kWifiFail:
      wifi_.at(action.target)->SetFailed(enter);
      break;
    case FaultKind::kWifiLoss:
      wifi_.at(action.target)->SetLossRate(enter ? action.param : 0.0);
      break;
    case FaultKind::kWifiLatency:
      wifi_.at(action.target)
          ->SetExtraLatency(enter ? FromMillis(action.param)
                                  : SimDuration::zero());
      break;
    case FaultKind::kCellOff:
      modems_.at(action.target)->SetRadioOn(!enter);
      break;
    case FaultKind::kCellConnectFail:
      modems_.at(action.target)
          ->SetConnectFailureRate(enter ? action.param : 0.0);
      break;
    case FaultKind::kCellAbort:
      modems_.at(action.target)
          ->SetTransferAbortRate(enter ? action.param : 0.0);
      break;
    case FaultKind::kBrokerOutage:
      outages_.at(action.target)(enter);
      break;
    case FaultKind::kSensorFail:
      sensors_.at(action.target)->SetFailed(enter);
      break;
    case FaultKind::kSensorNan:
      sensors_.at(action.target)->SetNanBurst(enter);
      break;
    case FaultKind::kGpsOff:
      if (enter) {
        gps_.at(action.target)->PowerOff();
      } else {
        gps_.at(action.target)->PowerOn();
      }
      break;
    case FaultKind::kNodeLeave: {
      // Churn is permanent: Medium ids are never reused, so a departed
      // node cannot rejoin under the same identity.
      const auto& [medium, node] = nodes_.at(action.target);
      medium->Unregister(node);
      break;
    }
  }
  ++injected_;
  COBS({
    obs::Observability::metrics()
        .GetCounter("faults_injected_total",
                    {{"kind", FaultKindName(action.kind)},
                     {"phase", enter ? "enter" : "revert"}})
        .Inc();
    // Every live query's root span records the fault windows it lived
    // through, so a slow or failed span can be read next to its cause.
    obs::Observability::tracer().NoteOpenRoots(
        std::string("fault:") + FaultKindName(action.kind) + ':' +
        action.target + (enter ? ":on" : ":off"));
  });
  Log(action, enter);
}

void FaultInjector::Log(const FaultAction& action, bool enter) {
  std::string line = FormatTime(sim_.Now());
  line += ' ';
  line += FaultKindName(action.kind);
  line += ' ';
  line += action.target;
  line += enter ? " on" : " off";
  if (enter && action.param != 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " param=%g", action.param);
    line += buf;
  }
  CLOG_INFO(kModule, "%s", line.c_str());
  log_.push_back(std::move(line));
}

std::string FaultInjector::LogAsText() const {
  std::string out;
  for (const std::string& line : log_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace contory::fault
