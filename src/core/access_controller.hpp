// AccessController (Sec. 4.3).
//
// "The AccessController module is responsible for controlling the
// interaction with external sources and requesters of context items. The
// AccessController keeps track of previously connected context sources
// (such as sensors or devices) and also of blocked context sources. This
// list is continuously refreshed so that only the most recent and the
// most often accessed sources are kept in memory. If the application
// requires high-security operating mode, every time a new context source
// is encountered, it is blocked or admitted based on explicit validation
// by the application. In low-security mode, every new entity is trusted."
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "core/client.hpp"

namespace contory::core {

enum class SecurityMode : std::uint8_t { kLow, kHigh };

struct AccessControllerConfig {
  /// Cap on remembered sources (allowed + blocked combined). Eviction
  /// prefers dropping the least-recently-used, least-accessed entries.
  std::size_t capacity = 64;
};

class AccessController {
 public:
  explicit AccessController(AccessControllerConfig config = {});

  void SetMode(SecurityMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] SecurityMode mode() const noexcept { return mode_; }

  /// Decides whether interaction with `source` (a device/sensor/server
  /// address) is allowed. Known-allowed sources pass; known-blocked fail.
  /// Unknown sources: low-security mode admits and remembers; high-
  /// security mode asks `client` (MakeDecision) and remembers the answer.
  /// A null client in high-security mode blocks (fail closed).
  [[nodiscard]] bool Admit(const std::string& source, Client* client);

  /// Administrative overrides.
  void Block(const std::string& source);
  void Allow(const std::string& source);
  void Forget(const std::string& source);

  [[nodiscard]] bool IsKnown(const std::string& source) const;
  [[nodiscard]] bool IsBlocked(const std::string& source) const;
  [[nodiscard]] std::size_t known_count() const noexcept {
    return entries_.size();
  }

 private:
  struct Entry {
    bool allowed = true;
    std::uint64_t accesses = 0;
    std::list<std::string>::iterator lru_pos;
  };

  void Touch(const std::string& source, Entry& entry);
  void Remember(const std::string& source, bool allowed);
  void EvictIfNeeded();

  AccessControllerConfig config_;
  SecurityMode mode_ = SecurityMode::kLow;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
};

}  // namespace contory::core
