// Control policies: contextRules (Sec. 4.3).
//
// "Control policies are formulated as contextRules consisting of a
// condition and an action statements. Conditions are articulated as
// Boolean expressions, and the operators currently supported are equal,
// notEqual, moreThan, and lessThan. An example of condition is
// <batteryLevel, equal, low>. Through and/or operators, elementary
// conditions can be combined to form more complex ones. Whenever a
// condition is positively verified at runtime, the associated action
// becomes active and it is enforced by the ContextFactory. Actions
// currently supported are reducePower, reduceMemory, and reduceLoad."
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/model/cxt_value.hpp"

namespace contory::core {

enum class RuleOp : std::uint8_t { kEqual, kNotEqual, kMoreThan, kLessThan };
enum class RuleAction : std::uint8_t {
  kReducePower,
  kReduceMemory,
  kReduceLoad,
};

[[nodiscard]] const char* RuleOpName(RuleOp op) noexcept;
[[nodiscard]] const char* RuleActionName(RuleAction a) noexcept;
/// Parses "equal"/"notEqual"/"moreThan"/"lessThan" (CxtRulesVocabulary).
[[nodiscard]] Result<RuleOp> ParseRuleOp(const std::string& word);
[[nodiscard]] Result<RuleAction> ParseRuleAction(const std::string& word);

/// <variable, operator, value>, e.g. <batteryLevel, equal, low>.
struct RuleCondition {
  std::string variable;
  RuleOp op = RuleOp::kEqual;
  CxtValue value;
};

/// Boolean combination of elementary conditions.
struct RuleExpr {
  enum class Kind : std::uint8_t { kCondition, kAnd, kOr };
  Kind kind = Kind::kCondition;
  RuleCondition condition;        // when kCondition
  std::vector<RuleExpr> children; // kAnd/kOr

  [[nodiscard]] static RuleExpr Leaf(RuleCondition c);
  [[nodiscard]] static RuleExpr And(std::vector<RuleExpr> children);
  [[nodiscard]] static RuleExpr Or(std::vector<RuleExpr> children);
};

struct ContextRule {
  std::string name;  // diagnostics
  RuleExpr condition;
  RuleAction action = RuleAction::kReducePower;
};

/// Resolves a monitored-variable name ("batteryLevel", "memoryUsage",
/// "activeQueries", ...) to its current value. Numeric variables may also
/// be exposed symbolically ("low"/"medium"/"high") by the monitor.
using VariableLookup =
    std::function<Result<CxtValue>(const std::string& variable)>;

/// Parses a rule from the CxtRulesVocabulary's textual form:
///
///   "IF batteryLevel equal low THEN reducePower"
///   "IF batteryPercent lessThan 20 AND activeQueries moreThan 2
///    THEN reducePower"
///   "IF memoryLevel equal high OR memoryItems moreThan 100
///    THEN reduceMemory"
///
/// Conditions are <variable, operator, value> triples joined by AND/OR
/// (AND binds tighter). Values are numbers or bare words.
[[nodiscard]] Result<ContextRule> ParseContextRule(std::string_view text);

class RulesEngine {
 public:
  void AddRule(ContextRule rule);
  void Clear() { rules_.clear(); }
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

  /// Evaluates every rule; returns the set of actions whose conditions
  /// hold. Lookup failures make the affected condition false (a variable
  /// the device cannot measure cannot trigger policy).
  [[nodiscard]] std::set<RuleAction> Evaluate(
      const VariableLookup& lookup) const;

  /// Evaluates one expression (exposed for tests).
  [[nodiscard]] static bool EvalExpr(const RuleExpr& expr,
                                     const VariableLookup& lookup);

 private:
  std::vector<ContextRule> rules_;
};

}  // namespace contory::core
