#include "core/policy_enforcer.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "policy";
}

void PolicyEnforcer::Evaluate() {
  const auto actions = rules_.Evaluate(monitor_.AsLookup());
  const auto newly_active = [&](RuleAction a) {
    return actions.contains(a) && !active_actions_.contains(a);
  };
  const bool power = newly_active(RuleAction::kReducePower);
  const bool memory = newly_active(RuleAction::kReduceMemory);
  const bool load = newly_active(RuleAction::kReduceLoad);
  active_actions_ = actions;
  if (power) EnforceReducePower();
  if (memory) EnforceReduceMemory();
  if (load) EnforceReduceLoad();
}

void PolicyEnforcer::EnforceReducePower() {
  // "the activation of the reducePower action can cause the suspension or
  // termination of high energy-consuming queries (e.g., those using the
  // 2G/3GReference)".
  CLOG_INFO(kModule, "reducePower active: suspending extInfra queries");
  facades_.at(query::SourceSel::kExtInfra)
      ->StopAll(ResourceExhausted("reducePower policy suspended the query"));
}

void PolicyEnforcer::EnforceReduceMemory() {
  const std::size_t target =
      std::max<std::size_t>(1, repository_.capacity_per_type() / 2);
  CLOG_INFO(kModule, "reduceMemory active: repository rings -> %zu", target);
  repository_.Shrink(target);
}

void PolicyEnforcer::EnforceReduceLoad() {
  // Keep at most reduce_load_provider_cap providers: suspend the rest,
  // preferring to keep the cheap mechanisms.
  std::size_t active = 0;
  for (const auto& [kind, facade] : facades_) {
    active += facade->active_provider_count();
  }
  if (active <= config_.reduce_load_provider_cap) return;
  CLOG_INFO(kModule, "reduceLoad active: %zu providers > cap %zu", active,
            config_.reduce_load_provider_cap);
  for (const query::SourceSel kind :
       {query::SourceSel::kExtInfra, query::SourceSel::kAdHocNetwork,
        query::SourceSel::kIntSensor}) {
    if (active <= config_.reduce_load_provider_cap) break;
    Facade& f = *facades_.at(kind);
    const std::size_t here = f.active_provider_count();
    if (here == 0) continue;
    f.StopAll(ResourceExhausted("reduceLoad policy suspended the query"));
    active -= here;
  }
}

}  // namespace contory::core
