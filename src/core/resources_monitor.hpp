// ResourcesMonitor (Sec. 4.3).
//
// "The ResourcesMonitor component is in charge of maintaining an updated
// view on the status of several hardware items (e.g., device drivers), on
// the device's overall power state, and on the available memory space.
// Each time, network, sensors, or device failures affect the functioning
// of a communication module, the corresponding Reference notifies the
// ResourcesMonitor module. This, in turn, will inform the ContextFactory
// which will enforce a reconfiguration strategy to take over."
//
// Monitored variables exposed to the rules engine:
//   batteryPercent  number   remaining battery, 0..100
//   batteryLevel    string   "low" | "medium" | "high"
//   powerDraw       number   instantaneous draw in mW
//   memoryItems     number   items held by the local repository
//   memoryLevel     string   "low" | "medium" | "high" pressure
//   activeQueries   number   queries the QueryTable tracks
//   activeProviders number   providers currently running
#pragma once

#include <functional>
#include <string>

#include "core/model/cxt_value.hpp"
#include "core/references/reference.hpp"
#include "core/rules.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

struct ResourcesMonitorConfig {
  /// Usable battery energy. BL-5C class cell: ~970 mAh x 3.7 V ~ 12.9 kJ.
  double battery_capacity_joules = 12'900.0;
  double battery_low_percent = 20.0;
  double battery_medium_percent = 50.0;
  /// Repository sizes above these are medium / high memory pressure.
  std::size_t memory_medium_items = 64;
  std::size_t memory_high_items = 128;
};

class ResourcesMonitor {
 public:
  ResourcesMonitor(sim::Simulation& sim, phone::SmartPhone& phone,
                   ResourcesMonitorConfig config = {});

  /// Hooks `reference`'s failure channel into this monitor.
  void Attach(Reference& reference);

  /// The ContextFactory's reconfiguration entry point.
  using FailureHandler = std::function<void(const std::string& module,
                                            const std::string& reason)>;
  void SetFailureHandler(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  // Gauges supplied by the owning factory (repository size, query counts).
  void SetMemoryGauge(std::function<std::size_t()> gauge) {
    memory_gauge_ = std::move(gauge);
  }
  void SetQueryGauge(std::function<std::size_t()> gauge) {
    query_gauge_ = std::move(gauge);
  }
  void SetProviderGauge(std::function<std::size_t()> gauge) {
    provider_gauge_ = std::move(gauge);
  }

  [[nodiscard]] double BatteryPercent() const;
  [[nodiscard]] std::string BatteryLevel() const;
  [[nodiscard]] std::string MemoryLevel() const;

  /// VariableLookup for the rules engine.
  [[nodiscard]] Result<CxtValue> Lookup(const std::string& variable) const;
  [[nodiscard]] VariableLookup AsLookup() const;

  [[nodiscard]] std::uint64_t failures_observed() const noexcept {
    return failures_;
  }

 private:
  sim::Simulation& sim_;
  phone::SmartPhone& phone_;
  ResourcesMonitorConfig config_;
  FailureHandler failure_handler_;
  std::function<std::size_t()> memory_gauge_;
  std::function<std::size_t()> query_gauge_;
  std::function<std::size_t()> provider_gauge_;
  std::uint64_t failures_ = 0;
};

}  // namespace contory::core
