#include "core/resources_monitor.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace contory::core {

ResourcesMonitor::ResourcesMonitor(sim::Simulation& sim,
                                   phone::SmartPhone& phone,
                                   ResourcesMonitorConfig config)
    : sim_(sim), phone_(phone), config_(config) {
  (void)sim_;
}

void ResourcesMonitor::Attach(Reference& reference) {
  const std::string module = reference.name();
  reference.SetFailureHandler([this, module](const std::string& reason) {
    ++failures_;
    CLOG_INFO("monitor", "%s failure: %s", module.c_str(), reason.c_str());
    if (failure_handler_) failure_handler_(module, reason);
  });
}

double ResourcesMonitor::BatteryPercent() const {
  const double used = phone_.energy().TotalEnergyJoules();
  const double frac =
      std::clamp(1.0 - used / config_.battery_capacity_joules, 0.0, 1.0);
  return frac * 100.0;
}

std::string ResourcesMonitor::BatteryLevel() const {
  const double pct = BatteryPercent();
  if (pct < config_.battery_low_percent) return "low";
  if (pct < config_.battery_medium_percent) return "medium";
  return "high";
}

std::string ResourcesMonitor::MemoryLevel() const {
  const std::size_t items = memory_gauge_ ? memory_gauge_() : 0;
  if (items >= config_.memory_high_items) return "high";
  if (items >= config_.memory_medium_items) return "medium";
  return "low";
}

Result<CxtValue> ResourcesMonitor::Lookup(const std::string& variable) const {
  if (variable == "batteryPercent") return CxtValue{BatteryPercent()};
  if (variable == "batteryLevel") return CxtValue{BatteryLevel()};
  if (variable == "powerDraw") {
    return CxtValue{phone_.energy().CurrentPowerMilliwatts()};
  }
  if (variable == "memoryItems") {
    return CxtValue{static_cast<double>(memory_gauge_ ? memory_gauge_() : 0)};
  }
  if (variable == "memoryLevel") return CxtValue{MemoryLevel()};
  if (variable == "activeQueries") {
    return CxtValue{static_cast<double>(query_gauge_ ? query_gauge_() : 0)};
  }
  if (variable == "activeProviders") {
    return CxtValue{
        static_cast<double>(provider_gauge_ ? provider_gauge_() : 0)};
  }
  return NotFound("unknown monitored variable '" + variable + "'");
}

VariableLookup ResourcesMonitor::AsLookup() const {
  return [this](const std::string& variable) { return Lookup(variable); };
}

}  // namespace contory::core
