#include "core/access_controller.hpp"

namespace contory::core {

AccessController::AccessController(AccessControllerConfig config)
    : config_(config) {}

void AccessController::Touch(const std::string& source, Entry& entry) {
  ++entry.accesses;
  lru_.erase(entry.lru_pos);
  lru_.push_front(source);
  entry.lru_pos = lru_.begin();
}

void AccessController::Remember(const std::string& source, bool allowed) {
  const auto it = entries_.find(source);
  if (it != entries_.end()) {
    it->second.allowed = allowed;
    Touch(source, it->second);
    return;
  }
  lru_.push_front(source);
  entries_[source] = Entry{allowed, 1, lru_.begin()};
  EvictIfNeeded();
}

void AccessController::EvictIfNeeded() {
  while (entries_.size() > config_.capacity) {
    // Scan the colder half of the LRU list for the least-accessed entry:
    // "only the most recent and the most often accessed sources are kept".
    auto victim = std::prev(lru_.end());
    std::uint64_t min_accesses = entries_.at(*victim).accesses;
    auto it = lru_.begin();
    std::advance(it, static_cast<long>(lru_.size() / 2));
    for (; it != lru_.end(); ++it) {
      const auto& entry = entries_.at(*it);
      if (entry.accesses < min_accesses) {
        min_accesses = entry.accesses;
        victim = it;
      }
    }
    entries_.erase(*victim);
    lru_.erase(victim);
  }
}

bool AccessController::Admit(const std::string& source, Client* client) {
  const auto it = entries_.find(source);
  if (it != entries_.end()) {
    Touch(source, it->second);
    return it->second.allowed;
  }
  bool allowed = false;
  if (mode_ == SecurityMode::kLow) {
    // "In low-security mode, every new entity is trusted."
    allowed = true;
  } else if (client != nullptr) {
    allowed = client->MakeDecision("admit context source '" + source + "'?");
  }
  Remember(source, allowed);
  return allowed;
}

void AccessController::Block(const std::string& source) {
  Remember(source, false);
}

void AccessController::Allow(const std::string& source) {
  Remember(source, true);
}

void AccessController::Forget(const std::string& source) {
  const auto it = entries_.find(source);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

bool AccessController::IsKnown(const std::string& source) const {
  return entries_.contains(source);
}

bool AccessController::IsBlocked(const std::string& source) const {
  const auto it = entries_.find(source);
  return it != entries_.end() && !it->second.allowed;
}

}  // namespace contory::core
