// Context metadata.
//
// "Types of metadata information include correctness (i.e., closeness to
// the true state), precision, accuracy, completeness (if any or no part of
// the described information remains unknown), and level of privacy and
// trust" (Sec. 4.1). WHERE clauses filter on these by name, so the struct
// exposes name-based numeric access alongside typed fields.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace contory {

enum class TrustLevel : std::uint8_t { kUntrusted = 0, kUnknown, kTrusted };
enum class PrivacyLevel : std::uint8_t { kPublic = 0, kProtected, kPrivate };

[[nodiscard]] const char* TrustLevelName(TrustLevel t) noexcept;
[[nodiscard]] const char* PrivacyLevelName(PrivacyLevel p) noexcept;

struct Metadata {
  /// Closeness to the true state, in [0,1].
  std::optional<double> correctness;
  /// Granularity of the reported value (e.g. 0.5 degC steps).
  std::optional<double> precision;
  /// Measurement error bound in value units (e.g. 0.2 degC).
  std::optional<double> accuracy;
  /// Fraction of the described information that is known, in [0,1].
  std::optional<double> completeness;
  /// Age of the observation at delivery time, in seconds. Set only by the
  /// factory's degraded mode when it answers from the local repository
  /// instead of a live mechanism; items served live leave it unset.
  /// Local-only annotation: not part of the wire encoding (a degraded
  /// answer never leaves the device).
  std::optional<double> staleness_seconds;
  PrivacyLevel privacy = PrivacyLevel::kPublic;
  TrustLevel trust = TrustLevel::kUnknown;

  /// Numeric view of a metadata field by query-language name
  /// ("accuracy", "precision", "correctness", "completeness", "trust",
  /// "privacy"). Unset optional fields are kNotFound; unknown names are
  /// kInvalidArgument. Trust/privacy map to their enum ordinal.
  [[nodiscard]] Result<double> GetNumeric(const std::string& field) const;

  /// Sets a field by name from a numeric literal (parser support).
  Status SetNumeric(const std::string& field, double value);

  /// True when every field of `required` that is set is satisfied by this
  /// metadata: accuracy/precision at least as good (<=), correctness/
  /// completeness/trust at least as high (>=), privacy no more private.
  [[nodiscard]] bool Satisfies(const Metadata& required) const;

  /// "accuracy=0.2,trust=trusted" (only set fields).
  [[nodiscard]] std::string ToString() const;

  void Encode(ByteWriter& w) const;
  [[nodiscard]] static Result<Metadata> Decode(ByteReader& r);

  friend bool operator==(const Metadata&, const Metadata&) = default;
};

/// The canonical metadata field names, as usable in WHERE clauses.
[[nodiscard]] bool IsMetadataField(const std::string& name) noexcept;

}  // namespace contory
