// Contory vocabularies.
//
// "Different vocabularies are made available to the application developer:
// (i) the CxtVocabulary contains context types, context values, and
// metadata types for specifying context items and device resources;
// (ii) the QueryVocabulary contains parameters for specifying context
// queries; and (iii) the CxtRulesVocabulary contains operators and actions
// for specifying control policies" (Sec. 4.4).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace contory {

/// What kind of CxtValue a context type carries.
enum class ValueKind : std::uint8_t { kNumber, kString, kBool, kGeo };

namespace vocab {

// --- CxtVocabulary: well-known context types (Sec. 4.1) -----------------
// Spatial
inline constexpr const char* kLocation = "location";
inline constexpr const char* kSpeed = "speed";
// Temporal
inline constexpr const char* kTime = "time";
inline constexpr const char* kDuration = "duration";
// User status
inline constexpr const char* kActivity = "activity";
inline constexpr const char* kMood = "mood";
// Environmental
inline constexpr const char* kTemperature = "temperature";
inline constexpr const char* kLight = "light";
inline constexpr const char* kNoise = "noise";
inline constexpr const char* kHumidity = "humidity";
inline constexpr const char* kWind = "wind";
inline constexpr const char* kPressure = "pressure";
// Resource availability
inline constexpr const char* kNearbyDevices = "nearbyDevices";
inline constexpr const char* kBatteryLevel = "batteryLevel";
inline constexpr const char* kMemoryFree = "memoryFree";

// --- QueryVocabulary: source kinds (Sec. 4.2) ----------------------------
inline constexpr const char* kIntSensor = "intSensor";
inline constexpr const char* kExtInfra = "extInfra";
inline constexpr const char* kAdHocNetwork = "adHocNetwork";

// --- CxtRulesVocabulary: operators and actions (Sec. 4.3) ---------------
inline constexpr const char* kOpEqual = "equal";
inline constexpr const char* kOpNotEqual = "notEqual";
inline constexpr const char* kOpMoreThan = "moreThan";
inline constexpr const char* kOpLessThan = "lessThan";
inline constexpr const char* kActionReducePower = "reducePower";
inline constexpr const char* kActionReduceMemory = "reduceMemory";
inline constexpr const char* kActionReduceLoad = "reduceLoad";

}  // namespace vocab

/// Registry entry for a known context type.
struct CxtTypeInfo {
  std::string name;
  ValueKind kind = ValueKind::kNumber;
  /// On-the-wire envelope the J2ME prototype produced for items of this
  /// type; our serializer pads to it so Table 1/2 payload sizes are
  /// faithful ("the size of a context item varies from 53 bytes (e.g., a
  /// wind item) to 136 bytes (e.g., a location item)").
  std::size_t envelope_bytes = 0;
  std::string unit;  // informational ("degC", "knots", "lux")
};

/// The CxtVocabulary: lookup of known context types. Unknown types are
/// allowed everywhere (extensibility is a design principle); they simply
/// carry no envelope padding and default to numeric values.
class CxtVocabulary {
 public:
  /// The process-wide vocabulary with the paper's types preloaded.
  [[nodiscard]] static const CxtVocabulary& Default();

  [[nodiscard]] std::optional<CxtTypeInfo> Find(
      const std::string& type) const;
  [[nodiscard]] bool Knows(const std::string& type) const;
  [[nodiscard]] std::vector<std::string> TypeNames() const;

  /// Registers (or replaces) a type — "new sources of context information
  /// ... will need to be easily accommodated".
  void RegisterType(CxtTypeInfo info);

 private:
  CxtVocabulary();
  std::vector<CxtTypeInfo> types_;
};

}  // namespace contory
