#include "core/model/cxt_value.hpp"

#include <cmath>
#include <cstdio>
#include <numbers>

namespace contory {
namespace {

enum class Kind : std::uint8_t { kNumber = 1, kString, kBool, kGeo };

}  // namespace

double DistanceMeters(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadius = 6'371'000.0;
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  const double mean_lat = (a.lat + b.lat) / 2.0 * kDegToRad;
  const double dx = (b.lon - a.lon) * kDegToRad * std::cos(mean_lat);
  const double dy = (b.lat - a.lat) * kDegToRad;
  return kEarthRadius * std::hypot(dx, dy);
}

Result<double> CxtValue::AsNumber() const {
  if (const auto* v = std::get_if<double>(&value_)) return *v;
  return InvalidArgument("value is not numeric: " + ToString());
}

Result<std::string> CxtValue::AsString() const {
  if (const auto* v = std::get_if<std::string>(&value_)) return *v;
  return InvalidArgument("value is not a string: " + ToString());
}

Result<bool> CxtValue::AsBool() const {
  if (const auto* v = std::get_if<bool>(&value_)) return *v;
  return InvalidArgument("value is not boolean: " + ToString());
}

Result<GeoPoint> CxtValue::AsGeo() const {
  if (const auto* v = std::get_if<GeoPoint>(&value_)) return *v;
  return InvalidArgument("value is not geographic: " + ToString());
}

std::string CxtValue::ToString() const {
  char buf[64];
  if (const auto* d = std::get_if<double>(&value_)) {
    std::snprintf(buf, sizeof buf, "%g", *d);
    return buf;
  }
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  if (const auto* b = std::get_if<bool>(&value_)) return *b ? "true" : "false";
  const auto& g = std::get<GeoPoint>(value_);
  std::snprintf(buf, sizeof buf, "%.4f,%.4f", g.lat, g.lon);
  return buf;
}

bool operator==(const CxtValue& a, const CxtValue& b) noexcept {
  return a.value_ == b.value_;
}

Result<int> CxtValue::Compare(const CxtValue& other) const {
  if (is_number() && other.is_number()) {
    const double lhs = std::get<double>(value_);
    const double rhs = std::get<double>(other.value_);
    return lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    return std::get<std::string>(value_).compare(
        std::get<std::string>(other.value_));
  }
  return InvalidArgument("values '" + ToString() + "' and '" +
                         other.ToString() + "' are not ordered");
}

void CxtValue::Encode(ByteWriter& w) const {
  if (const auto* d = std::get_if<double>(&value_)) {
    w.WriteU8(static_cast<std::uint8_t>(Kind::kNumber));
    w.WriteF64(*d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    w.WriteU8(static_cast<std::uint8_t>(Kind::kString));
    w.WriteString(*s);
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    w.WriteU8(static_cast<std::uint8_t>(Kind::kBool));
    w.WriteBool(*b);
  } else {
    const auto& g = std::get<GeoPoint>(value_);
    w.WriteU8(static_cast<std::uint8_t>(Kind::kGeo));
    w.WriteF64(g.lat);
    w.WriteF64(g.lon);
  }
}

Result<CxtValue> CxtValue::Decode(ByteReader& r) {
  const auto kind = r.ReadU8();
  if (!kind.ok()) return kind.status();
  switch (static_cast<Kind>(*kind)) {
    case Kind::kNumber: {
      const auto v = r.ReadF64();
      if (!v.ok()) return v.status();
      return CxtValue{*v};
    }
    case Kind::kString: {
      auto v = r.ReadString();
      if (!v.ok()) return v.status();
      return CxtValue{*std::move(v)};
    }
    case Kind::kBool: {
      const auto v = r.ReadBool();
      if (!v.ok()) return v.status();
      return CxtValue{*v};
    }
    case Kind::kGeo: {
      const auto lat = r.ReadF64();
      if (!lat.ok()) return lat.status();
      const auto lon = r.ReadF64();
      if (!lon.ok()) return lon.status();
      return CxtValue{GeoPoint{*lat, *lon}};
    }
  }
  return InvalidArgument("unknown CxtValue kind tag " +
                         std::to_string(*kind));
}

}  // namespace contory
