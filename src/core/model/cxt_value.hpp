// Context value: the typed payload of a context item.
//
// Context items describe "spatial information (location, speed), temporal
// information (time, duration), user status (activity, mood),
// environmental information (temperature, light, noise), and resource
// availability (nearby devices, device power)" (Sec. 4.1) — numerically
// valued, textually valued, boolean, or geographic. CxtValue is the sum
// type covering those, with ordered comparison where meaningful (query
// predicates compare values) and a compact wire encoding.
#pragma once

#include <string>
#include <variant>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace contory {

/// A WGS84-ish coordinate (we use plain lat/lon degrees; the simulation's
/// metric x/y positions are converted by the sensors that produce fixes).
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Distance in meters between two points, equirectangular approximation
/// (fine for the few-km regatta scales the paper's application works at).
[[nodiscard]] double DistanceMeters(const GeoPoint& a, const GeoPoint& b);

class CxtValue {
 public:
  using Storage = std::variant<double, std::string, bool, GeoPoint>;

  CxtValue() : value_(0.0) {}
  // NOLINTBEGIN(google-explicit-constructor): value types convert freely.
  CxtValue(double v) : value_(v) {}
  CxtValue(int v) : value_(static_cast<double>(v)) {}
  CxtValue(std::string v) : value_(std::move(v)) {}
  CxtValue(const char* v) : value_(std::string{v}) {}
  CxtValue(bool v) : value_(v) {}
  CxtValue(GeoPoint v) : value_(v) {}
  // NOLINTEND(google-explicit-constructor)

  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_geo() const noexcept {
    return std::holds_alternative<GeoPoint>(value_);
  }

  /// Typed accessors; Status failure when the value has another type.
  [[nodiscard]] Result<double> AsNumber() const;
  [[nodiscard]] Result<std::string> AsString() const;
  [[nodiscard]] Result<bool> AsBool() const;
  [[nodiscard]] Result<GeoPoint> AsGeo() const;

  [[nodiscard]] const Storage& storage() const noexcept { return value_; }

  /// Human-readable rendering ("14.5", "walking", "60.1520,24.9090").
  [[nodiscard]] std::string ToString() const;

  /// Equality across same-typed values; false for mixed types.
  friend bool operator==(const CxtValue& a, const CxtValue& b) noexcept;

  /// Ordered comparison for numbers and strings. Status failure for
  /// incomparable kinds (bool/geo or mixed types).
  [[nodiscard]] Result<int> Compare(const CxtValue& other) const;

  void Encode(ByteWriter& w) const;
  [[nodiscard]] static Result<CxtValue> Decode(ByteReader& r);

 private:
  Storage value_;
};

}  // namespace contory
